//! Workspace integration tests: the full machine, end to end.

use semper_apps::AppKind;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, KernelMode, MachineConfig};
use semperos::experiment::{parallel_efficiency, run_app_instances, run_nginx, MicroMachine};

#[test]
fn table3_shapes_hold() {
    let ex_local = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_exchange_local();
    let ex_span = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_exchange_spanning();
    let rv_local = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_revoke_local();
    let rv_span = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_revoke_spanning();
    let m3_ex = MicroMachine::new(1, 2, KernelMode::M3).measure_exchange_local();
    let m3_rv = MicroMachine::new(1, 2, KernelMode::M3).measure_revoke_local();

    // Paper Table 3 anchors, with a 10% tolerance band.
    let within =
        |measured: u64, paper: u64| (measured as f64 - paper as f64).abs() / paper as f64 <= 0.10;
    assert!(within(ex_local, 3597), "exchange local {ex_local} vs 3597");
    assert!(within(ex_span, 6484), "exchange spanning {ex_span} vs 6484");
    assert!(within(rv_local, 1997), "revoke local {rv_local} vs 1997");
    assert!(within(rv_span, 3876), "revoke spanning {rv_span} vs 3876");
    assert!(within(m3_ex, 3250), "M3 exchange {m3_ex} vs 3250");
    assert!(within(m3_rv, 1423), "M3 revoke {m3_rv} vs 1423");

    // Orderings that define the paper's story.
    assert!(ex_span > ex_local, "spanning exchanges cost more");
    assert!(rv_span > rv_local, "spanning revokes cost more");
    assert!(ex_local > m3_ex, "DDL indirection costs over M3");
    assert!(rv_local > m3_rv, "DDL indirection costs over M3");
}

#[test]
fn chain_revocation_scales_linearly() {
    let c10 = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_chain_revoke(10, false);
    let c40 = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_chain_revoke(40, false);
    let c80 = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_chain_revoke(80, false);
    // Roughly linear: the 40→80 increment is close to twice the 10→40
    // increment scaled.
    let slope1 = (c40 - c10) as f64 / 30.0;
    let slope2 = (c80 - c40) as f64 / 40.0;
    assert!(
        (slope1 - slope2).abs() / slope1 < 0.15,
        "chain revocation should be linear: {slope1} vs {slope2}"
    );
}

#[test]
fn spanning_chain_about_3x_local() {
    let local = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_chain_revoke(60, false);
    let spanning = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_chain_revoke(60, true);
    let ratio = spanning as f64 / local as f64;
    assert!(
        (2.0..5.0).contains(&ratio),
        "spanning chain should be ~3x local (paper), got {ratio:.2}x"
    );
}

#[test]
fn tree_revocation_parallelism_wins_eventually() {
    let local = MicroMachine::new(13, 12, KernelMode::SemperOS).measure_tree_revoke(128, 0);
    let par = MicroMachine::new(13, 12, KernelMode::SemperOS).measure_tree_revoke(128, 12);
    assert!(par < local, "at 128 children, 12-kernel revocation ({par}) must beat local ({local})");
}

#[test]
fn all_apps_run_to_completion_and_match_table4() {
    let mut cfg = MachineConfig::small();
    cfg.num_pes = 24;
    cfg.mesh_width = 5;
    cfg.kernels = 2;
    cfg.services = 2;
    for app in AppKind::ALL {
        let r = run_app_instances(&cfg, app, 4);
        assert_eq!(r.durations.len(), 4, "{}", app.name());
        let per_instance = r.cap_ops as f64 / 4.0;
        let paper = app.paper_cap_ops() as f64;
        assert!(
            (per_instance - paper).abs() <= 2.0,
            "{}: {per_instance} cap ops/instance vs paper {paper}",
            app.name()
        );
    }
}

#[test]
fn determinism_same_config_same_cycles() {
    let cfg = MachineConfig::paper_testbed(8, 8);
    let a = run_app_instances(&cfg, AppKind::PostMark, 32);
    let b = run_app_instances(&cfg, AppKind::PostMark, 32);
    assert_eq!(a.durations, b.durations, "simulation must be deterministic");
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.cap_ops, b.cap_ops);
}

#[test]
fn more_kernels_do_not_hurt() {
    // Kernel-dependence sanity (Figure 8 direction) at a small scale.
    let t1_4 = {
        let cfg = MachineConfig::paper_testbed(4, 16);
        run_app_instances(&cfg, AppKind::PostMark, 1).mean_duration()
    };
    let eff = |kernels: u16| {
        let cfg = MachineConfig::paper_testbed(kernels, 16);
        let tn = run_app_instances(&cfg, AppKind::PostMark, 128).mean_duration();
        parallel_efficiency(t1_4, tn)
    };
    let few = eff(4);
    let many = eff(32);
    assert!(
        many >= few - 1.0,
        "more kernels must not reduce efficiency: 4k={few:.1}% vs 32k={many:.1}%"
    );
}

#[test]
fn parallel_efficiency_in_paper_band_at_512() {
    // The headline result: 70-78% parallel efficiency at 512 instances
    // with 32 kernels + 32 services (we allow a slightly wider band for
    // the metadata-light find workload).
    let cfg = MachineConfig::paper_testbed(32, 32);
    for app in [AppKind::Tar, AppKind::Sqlite] {
        let t1 = run_app_instances(&cfg, app, 1).mean_duration();
        let tn = run_app_instances(&cfg, app, 512).mean_duration();
        let eff = parallel_efficiency(t1, tn);
        assert!(
            (65.0..=85.0).contains(&eff),
            "{} efficiency {eff:.1}% outside the paper's band",
            app.name()
        );
    }
}

#[test]
fn nginx_scales_with_servers() {
    let cfg = MachineConfig::paper_testbed(32, 32);
    let small = run_nginx(&cfg, 32, 2, 4, 200_000, 1_000_000);
    let large = run_nginx(&cfg, 128, 8, 4, 200_000, 1_000_000);
    assert!(
        large.requests_per_sec > 2.5 * small.requests_per_sec,
        "128 servers ({:.0}/s) should far exceed 32 servers ({:.0}/s)",
        large.requests_per_sec,
        small.requests_per_sec
    );
}

#[test]
fn micromachine_syscall_api_end_to_end() {
    let mut m = MicroMachine::new(2, 3, KernelMode::SemperOS);
    let a = m.vpe(0, 0);
    let b = m.vpe(1, 1);
    let sel = m.create_mem(a);
    // Delegate across kernels, delegate onwards within group 1, then
    // revoke the root and verify both copies disappear.
    let (b_sel, _) = m.delegate(a, b, sel);
    let c = m.vpe(1, 2);
    let (c_sel, _) = m.delegate(b, c, b_sel);
    m.revoke(a, sel);
    let (r, _) = m.machine().syscall_blocking(b, Syscall::Revoke { sel: b_sel, own: true });
    assert!(r.result.is_err(), "b's copy must be gone");
    let (r, _) = m.machine().syscall_blocking(c, Syscall::Revoke { sel: c_sel, own: true });
    assert!(r.result.is_err(), "c's copy must be gone");
    m.machine().check_invariants();
}

#[test]
fn derive_then_delegate_then_revoke_cross_kernel() {
    // The m3fs pattern as raw syscalls: derive an extent capability,
    // delegate it across kernels, revoke the derived capability.
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    let svc = m.vpe(0, 0);
    let client = m.vpe(1, 0);
    let root = m.create_mem(svc);
    let (r, _) = m.machine().syscall_blocking(
        svc,
        Syscall::DeriveMem { src: root, offset: 0, size: 1024, perms: Perms::R },
    );
    let Ok(SysReplyData::Sel(derived)) = r.result else { panic!("{r:?}") };
    let (client_sel, _) = m.delegate(svc, client, derived);
    assert_ne!(client_sel, CapSel::INVALID);
    m.revoke(svc, derived);
    // Root is still usable; the derived subtree is gone everywhere.
    let (r, _) = m.machine().syscall_blocking(
        svc,
        Syscall::DeriveMem { src: root, offset: 0, size: 64, perms: Perms::R },
    );
    assert!(r.result.is_ok(), "root must survive the derived revoke");
    let (r, _) = m.machine().syscall_blocking(
        client,
        Syscall::Exchange {
            other: svc,
            own_sel: client_sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    assert!(r.result.is_err(), "client's derived copy must be gone");
    m.machine().check_invariants();
}
