//! Property-based tests over the distributed capability protocol.
//!
//! Random sequences of capability-modifying operations (exchanges,
//! revokes, kills, exits) are executed against a multi-kernel cluster
//! with randomly interleaved message processing; afterwards every
//! structural invariant must hold and the system must quiesce with no
//! suspended operations.
//!
//! The cases are generated with the workspace's own deterministic RNG
//! (`semper_sim::DetRng`) instead of an external property-testing crate:
//! every case derives from a printed seed, so a failure is reproduced by
//! running the named generator with that seed.
//!
//! Each case builds its own cluster(s) and cases never share state, so
//! the case loops run on [`semperos::Runner`] worker threads — the
//! heavy suites are wall-clock-bound exactly like the bench scenarios.
//! Case numbering (and thus every case's RNG stream) is unchanged.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, CapType, DdlKey, PeId, VpeId};
use semper_kernel::harness::TestCluster;
use semper_sim::{DetRng, FaultPlan};
use semperos::Runner;

/// Runs `cases` seeded property cases on 4 worker threads.
fn for_cases(cases: u64, body: impl Fn(u64) + Sync) {
    Runner::new(4).map((0..cases).collect(), |_, case| body(case));
}

/// One randomly generated action.
#[derive(Debug, Clone)]
enum Action {
    CreateMem { vpe: u16 },
    Delegate { from: u16, to: u16 },
    Obtain { by: u16, from: u16 },
    RevokeNewest { vpe: u16 },
    Derive { vpe: u16 },
    PumpSome { n: usize },
    Kill { vpe: u16 },
}

/// Draws one action with the same weights the original proptest strategy
/// used (kills are rare relative to the other actions).
fn draw_action(rng: &mut DetRng, vpes: u16) -> Action {
    let v = |rng: &mut DetRng| rng.below(vpes as u64) as u16;
    match rng.below(25) {
        0..=3 => Action::CreateMem { vpe: v(rng) },
        4..=7 => Action::Delegate { from: v(rng), to: v(rng) },
        8..=11 => Action::Obtain { by: v(rng), from: v(rng) },
        12..=15 => Action::RevokeNewest { vpe: v(rng) },
        16..=19 => Action::Derive { vpe: v(rng) },
        20..=23 => Action::PumpSome { n: rng.between(1, 11) as usize },
        _ => Action::Kill { vpe: v(rng) },
    }
}

/// The newest capability selector a VPE holds, if any (scans the kernel
/// state; works because the harness exposes the tables).
fn newest_sel(c: &TestCluster, vpe: VpeId) -> Option<CapSel> {
    let k = c.kernel_of(vpe);
    let table = c.kernels[k.idx()].table(vpe)?;
    table.iter().map(|(sel, _)| sel).filter(|s| s.0 >= 2).max()
}

/// Random CMO interleavings never violate the capability-tree
/// invariants, never deadlock, and always quiesce.
#[test]
fn random_cmo_interleavings_preserve_invariants() {
    for_cases(64, |case| {
        let mut rng = DetRng::split(0xC0_FFEE, case);
        let n_actions = rng.between(1, 39) as usize;
        // 3 kernels x 2 VPEs; VPE v lives in group v / 2.
        let mut c = TestCluster::new(3, 2);
        let mut dead = std::collections::BTreeSet::new();
        for _ in 0..n_actions {
            match draw_action(&mut rng, 6) {
                Action::CreateMem { vpe } => {
                    if dead.contains(&vpe) {
                        continue;
                    }
                    c.syscall_async(
                        VpeId(vpe),
                        Syscall::CreateMem { size: 4096, perms: Perms::RW },
                    );
                }
                Action::Delegate { from, to } => {
                    if from == to || dead.contains(&from) || dead.contains(&to) {
                        continue;
                    }
                    let Some(sel) = newest_sel(&c, VpeId(from)) else { continue };
                    c.syscall_async(
                        VpeId(from),
                        Syscall::Exchange {
                            other: VpeId(to),
                            own_sel: sel,
                            other_sel: CapSel::INVALID,
                            kind: ExchangeKind::Delegate,
                        },
                    );
                }
                Action::Obtain { by, from } => {
                    if by == from || dead.contains(&by) || dead.contains(&from) {
                        continue;
                    }
                    let Some(sel) = newest_sel(&c, VpeId(from)) else { continue };
                    c.syscall_async(
                        VpeId(by),
                        Syscall::Exchange {
                            other: VpeId(from),
                            own_sel: CapSel::INVALID,
                            other_sel: sel,
                            kind: ExchangeKind::Obtain,
                        },
                    );
                }
                Action::RevokeNewest { vpe } => {
                    if dead.contains(&vpe) {
                        continue;
                    }
                    let Some(sel) = newest_sel(&c, VpeId(vpe)) else { continue };
                    c.syscall_async(VpeId(vpe), Syscall::Revoke { sel, own: true });
                }
                Action::Derive { vpe } => {
                    if dead.contains(&vpe) {
                        continue;
                    }
                    let Some(sel) = newest_sel(&c, VpeId(vpe)) else { continue };
                    c.syscall_async(
                        VpeId(vpe),
                        Syscall::DeriveMem { src: sel, offset: 0, size: 64, perms: Perms::R },
                    );
                }
                Action::PumpSome { n } => c.pump_n(n),
                Action::Kill { vpe } => {
                    if dead.insert(vpe) {
                        c.kill(VpeId(vpe));
                    }
                }
            }
        }
        c.pump_all();
        c.check_invariants();
        // Quiescence: nothing suspended anywhere.
        for k in &c.kernels {
            assert_eq!(
                k.pending_ops(),
                0,
                "case {case}: kernel {} left {} suspended ops",
                k.id(),
                k.pending_ops()
            );
        }
        // Capabilities of dead VPEs are fully gone.
        for vpe in &dead {
            for k in &c.kernels {
                if let Some(t) = k.table(VpeId(*vpe)) {
                    assert_eq!(t.len(), 0, "case {case}: dead VPE{vpe} still holds capabilities");
                }
            }
        }
    });
}

/// Revoking the root of any randomly built delegation structure
/// removes exactly the descendants, across any number of kernels.
#[test]
fn revoke_removes_exactly_the_subtree() {
    for_cases(64, |case| {
        let mut rng = DetRng::split(0xDE1E_647E, case);
        let n_edges = rng.between(1, 23) as usize;
        let mut c = TestCluster::new(4, 2);
        let root_sel =
            match c.syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
                Ok(SysReplyData::Mem { sel, .. }) => sel,
                other => panic!("case {case}: create_mem failed: {other:?}"),
            };
        // Holders of copies: vpe -> selectors (starting from the root).
        let mut sels: Vec<(VpeId, CapSel)> = vec![(VpeId(0), root_sel)];
        for _ in 0..n_edges {
            let src_idx = rng.below(8) as usize;
            let to = VpeId(rng.below(8) as u16);
            let (from, from_sel) = sels[src_idx % sels.len()];
            if to == from {
                continue;
            }
            let r = c.syscall(
                from,
                Syscall::Exchange {
                    other: to,
                    own_sel: from_sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            );
            if let Ok(SysReplyData::Delegated { recv_sel }) = r.result {
                sels.push((to, recv_sel));
            }
        }
        let before = c.total_caps();
        let r = c.syscall(VpeId(0), Syscall::Revoke { sel: root_sel, own: true });
        assert!(r.result.is_ok(), "case {case}: revoke failed: {:?}", r.result);
        // Exactly the tree (root + all successful delegations) vanished.
        assert_eq!(c.total_caps(), before - sels.len(), "case {case}");
        c.check_invariants();
        for (vpe, sel) in sels {
            let k = c.kernel_of(vpe);
            assert!(
                c.kernels[k.idx()].table(vpe).unwrap().get(sel).is_err(),
                "case {case}: {vpe} still holds {sel}"
            );
        }
    });
}

/// One randomly drawn batch item over a pool of live root capabilities.
/// Targets are drawn only from `live`, and a revoked root leaves the
/// pool, so items are structurally independent — the regime in which
/// `Syscall::Batch` guarantees item-for-item equivalence with
/// sequential issue (overlapping revokes in one run are documented to
/// report the conservative outcome instead).
fn draw_batch_item(rng: &mut DetRng, live: &mut Vec<CapSel>, vpes: u16) -> Syscall {
    let pick = |rng: &mut DetRng, live: &[CapSel]| live[rng.below(live.len() as u64) as usize];
    match rng.below(12) {
        0..=2 => Syscall::CreateMem { size: 4096, perms: Perms::RW },
        3..=4 if !live.is_empty() => {
            Syscall::DeriveMem { src: pick(rng, live), offset: 0, size: 64, perms: Perms::R }
        }
        5..=7 if !live.is_empty() => Syscall::Exchange {
            // Delegate a live root to some other VPE (possibly in
            // another group: the spanning two-way handshake).
            other: VpeId(1 + rng.below(vpes as u64 - 1) as u16),
            own_sel: pick(rng, live),
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
        8..=10 if !live.is_empty() => {
            let idx = rng.below(live.len() as u64) as usize;
            let sel = live.remove(idx);
            Syscall::Revoke { sel, own: true }
        }
        _ => Syscall::Noop,
    }
}

/// A `Batch` of N random capability operations leaves the kernels in
/// the same final state as the same N operations issued sequentially —
/// identical capability records and table bindings (state digests),
/// invariants intact, full quiescence — and the batch reply corresponds
/// item-for-item to the sequential replies.
#[test]
fn batched_ops_match_sequential() {
    for_cases(48, |case| {
        let mut rng = DetRng::split(0xBA7C_4ED5, case);
        let n_items = rng.between(1, 17) as usize;
        let mut seq = TestCluster::new(3, 2);
        let mut bat = TestCluster::new(3, 2);

        // Identical pre-seeded roots in both clusters.
        let mut live: Vec<CapSel> = Vec::new();
        for _ in 0..3 {
            let create = |c: &mut TestCluster| match c
                .syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW })
                .result
            {
                Ok(SysReplyData::Mem { sel, .. }) => sel,
                other => panic!("case {case}: create_mem failed: {other:?}"),
            };
            let sel = create(&mut seq);
            assert_eq!(sel, create(&mut bat), "case {case}: clusters diverged during seeding");
            live.push(sel);
        }

        let items: Vec<Syscall> =
            (0..n_items).map(|_| draw_batch_item(&mut rng, &mut live, 6)).collect();

        // Sequential reference: each item as its own blocking syscall.
        let seq_replies: Vec<_> =
            items.iter().map(|item| seq.syscall(VpeId(0), item.clone()).result).collect();

        // One batch with the same items.
        let r = bat.syscall(VpeId(0), Syscall::Batch(items.clone().into_boxed_slice()));
        let Ok(SysReplyData::Batch(bat_replies)) = r.result else {
            panic!("case {case}: batch failed: {:?}", r.result);
        };

        assert_eq!(bat_replies.len(), seq_replies.len(), "case {case}: reply count");
        for (i, (b, s)) in bat_replies.iter().zip(&seq_replies).enumerate() {
            assert_eq!(b, s, "case {case}: item {i} ({:?}) diverged", items[i]);
        }

        // Same final kernel state, bit for bit.
        seq.check_invariants();
        bat.check_invariants();
        for (ks, kb) in seq.kernels.iter().zip(&bat.kernels) {
            assert_eq!(
                ks.state_digest(),
                kb.state_digest(),
                "case {case}: kernel {} state diverged",
                ks.id()
            );
            assert_eq!(kb.pending_ops(), 0, "case {case}: suspended ops after batch");
        }
    });
}

/// The parallel partitioned sweep (`Feature::ParallelSweep`) is an
/// optimization of the revocation *schedule*, not its semantics: on a
/// random multi-kernel derivation DAG, revoking the root deletes
/// exactly the same capability set and leaves every kernel with the
/// same state digest as the classic depth-first sweep. Cases where the
/// structure never crosses a kernel (so no sweep triggers) are valid
/// too — equivalence is then trivial but still checked.
#[test]
fn parallel_sweep_matches_sequential_sweep() {
    for_cases(48, |case| {
        let mut rng = DetRng::split(0x5EE9_5EE9, case);
        let n_edges = rng.between(4, 35) as usize;
        let mut seq = TestCluster::new(4, 2);
        let mut par = TestCluster::new(4, 2);
        for k in &mut par.kernels {
            k.enable_feature_for_test(semper_base::Feature::ParallelSweep);
        }

        // Build the identical random structure on both clusters: a mix
        // of delegations (fan-out, possibly spanning kernels) and
        // derives (depth) from a single root at VPE 0. Replies are
        // asserted equal, so both clusters hold the same DAG.
        let both = |seq: &mut TestCluster, par: &mut TestCluster, vpe: VpeId, call: Syscall| {
            let a = seq.syscall(vpe, call.clone()).result;
            let b = par.syscall(vpe, call).result;
            assert_eq!(a, b, "case {case}: clusters diverged during build");
            a
        };
        let root_sel = match both(
            &mut seq,
            &mut par,
            VpeId(0),
            Syscall::CreateMem { size: 4096, perms: Perms::RW },
        ) {
            Ok(SysReplyData::Mem { sel, .. }) => sel,
            other => panic!("case {case}: create_mem failed: {other:?}"),
        };
        let mut sels: Vec<(VpeId, CapSel)> = vec![(VpeId(0), root_sel)];
        for _ in 0..n_edges {
            let (from, from_sel) = sels[rng.below(sels.len() as u64) as usize];
            if rng.below(4) == 0 {
                // Derive: a child of the same holder (adds depth).
                let call =
                    Syscall::DeriveMem { src: from_sel, offset: 0, size: 64, perms: Perms::R };
                if let Ok(SysReplyData::Sel(sel)) = both(&mut seq, &mut par, from, call) {
                    sels.push((from, sel));
                }
            } else {
                // Delegate: a copy at some other VPE (adds fan-out,
                // often across kernels).
                let to = VpeId(rng.below(8) as u16);
                if to == from {
                    continue;
                }
                let call = Syscall::Exchange {
                    other: to,
                    own_sel: from_sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                };
                if let Ok(SysReplyData::Delegated { recv_sel }) =
                    both(&mut seq, &mut par, from, call)
                {
                    sels.push((to, recv_sel));
                }
            }
        }

        let before = seq.total_caps();
        assert_eq!(before, par.total_caps(), "case {case}: pre-revoke cap counts differ");
        let r = both(&mut seq, &mut par, VpeId(0), Syscall::Revoke { sel: root_sel, own: true });
        assert!(r.is_ok(), "case {case}: revoke failed: {r:?}");

        // Identical deletions, identical final state, full quiescence.
        assert_eq!(seq.total_caps(), before - sels.len(), "case {case}: sequential delete set");
        assert_eq!(par.total_caps(), before - sels.len(), "case {case}: parallel delete set");
        seq.check_invariants();
        par.check_invariants();
        for (ks, kp) in seq.kernels.iter().zip(&par.kernels) {
            assert_eq!(
                ks.state_digest(),
                kp.state_digest(),
                "case {case}: kernel {} state diverged",
                ks.id()
            );
            assert_eq!(kp.pending_ops(), 0, "case {case}: suspended ops after parallel sweep");
        }
    });
}

/// One node of a random dependent-call DAG for the promise-IPC
/// equivalence test. `dep` indexes an earlier node whose result the
/// call consumes (`None` → the pre-seeded root capability).
#[derive(Debug, Clone, Copy)]
enum PipeOp {
    Create,
    Derive { dep: Option<usize> },
    Delegate { dep: Option<usize>, to: u16 },
}

/// Draws a DAG node; dependencies only reference earlier nodes that
/// yield a capability selector (creates and derives).
fn draw_pipe_op(rng: &mut DetRng, prior: &[PipeOp]) -> PipeOp {
    let dep = |rng: &mut DetRng| {
        let candidates: Vec<usize> = prior
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, PipeOp::Create | PipeOp::Derive { .. }))
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() || rng.below(3) == 0 {
            None
        } else {
            Some(candidates[rng.below(candidates.len() as u64) as usize])
        }
    };
    match rng.below(6) {
        0..=1 => PipeOp::Create,
        2..=3 => PipeOp::Derive { dep: dep(rng) },
        _ => PipeOp::Delegate { dep: dep(rng), to: 1 + rng.below(5) as u16 },
    }
}

/// One run of a random dependent-call DAG, either blocking (each call
/// its own synchronous syscall) or pipelined (every call submitted
/// asynchronously through `Syscall::SubmitAsync`, dependencies named by
/// their *promise* selector, results redeemed afterwards). Returns the
/// observable transcript: every per-call result plus every kernel's
/// state digest.
fn run_pipe_case(case: u64, pipelined: bool) -> String {
    let mut rng = DetRng::split(0x9120_14ED, case);
    let n_ops = rng.between(2, 15) as usize;
    let mut c = TestCluster::new(3, 2);
    if pipelined {
        for k in &mut c.kernels {
            k.enable_feature_for_test(semper_base::Feature::PromiseIpc);
        }
    }
    let issuer = VpeId(0);
    let root = match c.syscall(issuer, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("case {case}: root create failed: {other:?}"),
    };

    let mut ops: Vec<PipeOp> = Vec::new();
    for _ in 0..n_ops {
        let op = draw_pipe_op(&mut rng, &ops);
        ops.push(op);
    }

    let mut results: Vec<semper_base::Result<SysReplyData>> = Vec::new();
    if pipelined {
        // Submit the whole DAG up front; each dependency is the
        // *promise* selector of the producing call, so the kernel must
        // park or substitute — the client never blocks mid-chain.
        let mut promises: Vec<CapSel> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let operand = |dep: &Option<usize>, promises: &[CapSel]| match dep {
                Some(j) => promises[*j],
                None => root,
            };
            let inner = match op {
                PipeOp::Create => Syscall::CreateMem { size: 4096, perms: Perms::RW },
                PipeOp::Derive { dep } => Syscall::DeriveMem {
                    src: operand(dep, &promises),
                    offset: 0,
                    size: 64,
                    perms: Perms::R,
                },
                PipeOp::Delegate { dep, to } => Syscall::Exchange {
                    other: VpeId(*to),
                    own_sel: operand(dep, &promises),
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            };
            let r = c.syscall(issuer, Syscall::SubmitAsync(Box::new(inner)));
            let Ok(SysReplyData::Promise { sel }) = r.result else {
                panic!("case {case}: submission {i} not a promise: {r:?}");
            };
            promises.push(sel);
        }
        for (i, p) in promises.iter().enumerate() {
            let r = c.syscall(issuer, Syscall::WaitPromise { sel: *p, block: true });
            assert!(r.result.is_ok(), "case {case}: pipelined op {i} failed: {:?}", r.result);
            results.push(r.result);
        }
    } else {
        // Blocking reference: each call waits for its predecessor, so a
        // dependency is the *resolved* selector of the producing call.
        let mut sels: Vec<CapSel> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let operand = |dep: &Option<usize>, sels: &[CapSel]| match dep {
                Some(j) => sels[*j],
                None => root,
            };
            let call = match op {
                PipeOp::Create => Syscall::CreateMem { size: 4096, perms: Perms::RW },
                PipeOp::Derive { dep } => Syscall::DeriveMem {
                    src: operand(dep, &sels),
                    offset: 0,
                    size: 64,
                    perms: Perms::R,
                },
                PipeOp::Delegate { dep, to } => Syscall::Exchange {
                    other: VpeId(*to),
                    own_sel: operand(dep, &sels),
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            };
            let r = c.syscall(issuer, call);
            assert!(r.result.is_ok(), "case {case}: blocking op {i} failed: {:?}", r.result);
            let sel = match &r.result {
                Ok(SysReplyData::Mem { sel, .. }) => *sel,
                Ok(SysReplyData::Sel(sel)) => *sel,
                _ => CapSel::INVALID,
            };
            sels.push(sel);
            results.push(r.result);
        }
    }

    c.pump_all();
    c.check_invariants();
    c.assert_quiescent();
    let mut transcript = String::new();
    for (i, r) in results.iter().enumerate() {
        transcript.push_str(&format!("op {i}: {r:?}\n"));
    }
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "case {case}: suspended ops left behind");
        for line in k.state_digest() {
            transcript.push_str(&line);
            transcript.push('\n');
        }
    }
    transcript
}

/// Pipelined asynchronous invocation is an optimization of the call
/// *schedule*, not its semantics: a random dependent-call DAG submitted
/// through promise capabilities produces exactly the per-call results
/// of the same DAG executed blocking, leaves every kernel with the same
/// state digest, quiesces fully, and replays bit-identically.
#[test]
fn pipelined_ops_match_blocking() {
    for_cases(48, |case| {
        let blocking = run_pipe_case(case, false);
        let pipelined = run_pipe_case(case, true);
        assert_eq!(blocking, pipelined, "case {case}: pipelined run diverged from blocking");
        let replay = run_pipe_case(case, true);
        assert_eq!(pipelined, replay, "case {case}: pipelined replay diverged");
    });
}

/// One full faulted run: a random capability workload executed under a
/// random fault plan, pumped to quiescence within a step bound.
/// Returns a complete observable transcript — every reply, every
/// kernel's state digest, and all fault counters — so the caller can
/// demand bit-identical replays.
fn run_faulted_case(case: u64) -> String {
    let mut rng = DetRng::split(0xFA_17CA5E, case);
    let mut c = TestCluster::new(3, 2);

    // A random plan: drop/duplicate/delay rates, and (in half the
    // cases) a one-way partition window between two random kernels.
    // Scripted crashes are exercised by the dedicated scenario tests —
    // here every kernel survives, so the "every op is answered"
    // property stays unconditional.
    let mut plan = FaultPlan::seeded(DetRng::split(0xFA_17CA5E, case).next_u64())
        .with_drop(rng.below(120))
        .with_duplicate(rng.below(80))
        .with_delay(rng.below(120), rng.between(1, 16));
    if rng.below(2) == 0 {
        let from = rng.below(3) as u16;
        let to = (from + 1 + rng.below(2) as u16) % 3;
        let start = rng.below(64);
        plan = plan.with_partition(semper_sim::PartitionWindow {
            from,
            to,
            start,
            end: start + rng.between(16, 128),
        });
    }
    c.set_fault_plan(plan, 512);

    let n_actions = rng.between(8, 40) as usize;
    let mut tags: Vec<(VpeId, u64)> = Vec::new();
    let mut dead = std::collections::BTreeSet::new();
    for _ in 0..n_actions {
        match draw_action(&mut rng, 6) {
            Action::CreateMem { vpe } => {
                if dead.contains(&vpe) {
                    continue;
                }
                let t = c
                    .syscall_async(VpeId(vpe), Syscall::CreateMem { size: 4096, perms: Perms::RW });
                tags.push((VpeId(vpe), t));
            }
            Action::Delegate { from, to } => {
                if from == to || dead.contains(&from) || dead.contains(&to) {
                    continue;
                }
                let Some(sel) = newest_sel(&c, VpeId(from)) else { continue };
                let t = c.syscall_async(
                    VpeId(from),
                    Syscall::Exchange {
                        other: VpeId(to),
                        own_sel: sel,
                        other_sel: CapSel::INVALID,
                        kind: ExchangeKind::Delegate,
                    },
                );
                tags.push((VpeId(from), t));
            }
            Action::Obtain { by, from } => {
                if by == from || dead.contains(&by) || dead.contains(&from) {
                    continue;
                }
                let Some(sel) = newest_sel(&c, VpeId(from)) else { continue };
                let t = c.syscall_async(
                    VpeId(by),
                    Syscall::Exchange {
                        other: VpeId(from),
                        own_sel: CapSel::INVALID,
                        other_sel: sel,
                        kind: ExchangeKind::Obtain,
                    },
                );
                tags.push((VpeId(by), t));
            }
            Action::RevokeNewest { vpe } => {
                if dead.contains(&vpe) {
                    continue;
                }
                let Some(sel) = newest_sel(&c, VpeId(vpe)) else { continue };
                let t = c.syscall_async(VpeId(vpe), Syscall::Revoke { sel, own: true });
                tags.push((VpeId(vpe), t));
            }
            Action::Derive { vpe } => {
                if dead.contains(&vpe) {
                    continue;
                }
                let Some(sel) = newest_sel(&c, VpeId(vpe)) else { continue };
                let t = c.syscall_async(
                    VpeId(vpe),
                    Syscall::DeriveMem { src: sel, offset: 0, size: 64, perms: Perms::R },
                );
                tags.push((VpeId(vpe), t));
            }
            Action::PumpSome { n } => c.pump_n(n),
            Action::Kill { vpe } => {
                if dead.insert(vpe) {
                    c.kill(VpeId(vpe));
                }
            }
        }
    }

    // Termination within a hard step bound: deadlines must abort every
    // starved operation instead of letting the run hang or storm.
    let mut steps = 0u64;
    while c.step() {
        steps += 1;
        assert!(steps < 200_000, "case {case}: faulted run exceeded the step bound");
    }

    // Every issued operation was answered — Ok or Err, never silence.
    // The one exemption: an issuer killed after issuing no longer
    // receives traffic, so its outstanding replies are legitimately
    // dropped on the floor (the op itself still terminated — the
    // quiescence check below would catch a leaked ledger entry).
    let mut transcript = String::new();
    for (vpe, tag) in tags {
        let reply = c.take_reply(vpe, tag);
        if !dead.contains(&vpe.0) {
            assert!(reply.is_some(), "case {case}: {vpe} tag {tag} was never answered");
        }
        transcript.push_str(&format!("{vpe} {tag}: {:?}\n", reply.map(|r| r.result)));
    }

    // No ledger leaks, no open windows, no stalled credit queues.
    c.check_invariants();
    c.assert_quiescent();

    let fs = c.fault_stats().expect("plan installed");
    transcript.push_str(&format!(
        "net: injected {} dropped {} duplicated {} delayed {} partitioned {} healed {}\n",
        fs.injected, fs.dropped, fs.duplicated, fs.delayed, fs.partitioned, fs.partitions_healed
    ));
    for k in &c.kernels {
        let s = k.stats();
        transcript.push_str(&format!(
            "kernel {}: retries {} aborted {} anomalies {}\n",
            k.id(),
            s.retries,
            s.ops_aborted,
            s.fault_anomalies
        ));
        for line in k.state_digest() {
            transcript.push_str(&line);
            transcript.push('\n');
        }
    }
    transcript
}

/// Under any random fault plan, every operation terminates (a reply
/// arrives within a bounded number of steps — completed or aborted),
/// the cluster reaches true quiescence with no ledger leaks, and the
/// run is deterministic: replaying the same plan and seed reproduces
/// every reply, every kernel state digest, and every fault counter
/// bit-identically.
#[test]
fn faulted_ops_terminate() {
    for_cases(48, |case| {
        let first = run_faulted_case(case);
        let replay = run_faulted_case(case);
        assert_eq!(first, replay, "case {case}: replay diverged from the first run");
    });
}

/// DDL keys pack and unpack losslessly for every field combination.
#[test]
fn ddl_key_roundtrip() {
    let mut rng = DetRng::seed_from(0xDD1);
    for _ in 0..256 {
        let pe = rng.below(1 << 16) as u16;
        let vpe = rng.below(1 << 16) as u16;
        let ty = CapType::from_u8(rng.between(1, 7) as u8).unwrap();
        let obj = rng.below(1 << 24) as u32;
        let k = DdlKey::new(PeId(pe), VpeId(vpe), ty, obj);
        assert_eq!(k.pe(), PeId(pe));
        assert_eq!(k.vpe(), VpeId(vpe));
        assert_eq!(k.cap_type(), Some(ty));
        assert_eq!(k.object_id(), obj);
        assert_eq!(DdlKey::from_raw(k.raw()), k);
    }
}

/// Operations racing a live migration are equivalent to quiescing
/// first: a `race` cluster starts the migration and then runs a random
/// operation sequence through the *old* owner (its DTU not yet
/// re-programmed), with random partial pumping so the calls land in the
/// await-install window, the membership-drain window, or after
/// completion; a `twin` cluster migrates to quiescence first and then
/// runs the same sequence. VPEs block on system calls, so each call
/// completes before the next is issued — the racing is strictly
/// ops-versus-migration. The old owner holds or forwards every call, so
/// both clusters must produce identical replies, identical deleted
/// sets, and bit-identical state digests.
#[test]
fn ops_during_migration_match_quiesce_then_migrate() {
    use semper_base::KernelId;

    for_cases(48, |case| {
        let mut rng = DetRng::split(0x417E_CA5E, case);
        // 3 kernels x 2 VPEs; the migrating VPE 0 starts in group 0 and
        // moves to group 2.
        let mut race = TestCluster::new(3, 2);
        let mut twin = TestCluster::new(3, 2);
        let a = VpeId(0);

        // Identical quiescent seeding on both clusters. Exchange roots
        // and revoke roots are disjoint so the generated operations
        // never race each other — only the migration.
        let both = |race: &mut TestCluster, twin: &mut TestCluster, vpe: VpeId, call: Syscall| {
            let r = race.syscall(vpe, call.clone()).result;
            let t = twin.syscall(vpe, call).result;
            assert_eq!(r, t, "case {case}: clusters diverged during seeding");
            r
        };
        let mem = |race: &mut TestCluster, twin: &mut TestCluster, vpe| match both(
            race,
            twin,
            vpe,
            Syscall::CreateMem { size: 4096, perms: Perms::RW },
        ) {
            Ok(SysReplyData::Mem { sel, .. }) => sel,
            other => panic!("case {case}: create_mem failed: {other:?}"),
        };
        let ex_roots: Vec<CapSel> = (0..3).map(|_| mem(&mut race, &mut twin, a)).collect();
        let mut rv_roots: Vec<CapSel> = (0..3).map(|_| mem(&mut race, &mut twin, a)).collect();
        for sel in &rv_roots {
            // Give every revoke root a spanning child at group 1.
            let r = both(
                &mut race,
                &mut twin,
                a,
                Syscall::Exchange {
                    other: VpeId(2),
                    own_sel: *sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            );
            assert!(r.is_ok(), "case {case}: seeding delegate failed: {r:?}");
        }
        let theirs = mem(&mut race, &mut twin, VpeId(2)); // obtain target

        // Twin: quiesce-then-migrate, then the sequence, sequentially.
        twin.migrate(a, KernelId(2)).expect("quiescent twin migration");
        // Race: open the handover window, then fire the sequence at the
        // old owner with random partial pumping in between.
        let src = race.start_migration(a, KernelId(2)).expect("race start");

        let n_ops = rng.between(4, 15) as usize;
        for i in 0..n_ops {
            let pump = rng.between(0, 7) as usize;
            race.pump_n(pump);
            let call = match rng.below(8) {
                0..=1 => Syscall::Exchange {
                    other: VpeId(1 + rng.below(5) as u16),
                    own_sel: ex_roots[rng.below(3) as usize],
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
                2..=3 => Syscall::DeriveMem {
                    src: ex_roots[rng.below(3) as usize],
                    offset: 0,
                    size: 64,
                    perms: Perms::R,
                },
                4 => Syscall::Exchange {
                    other: VpeId(2),
                    own_sel: CapSel::INVALID,
                    other_sel: theirs,
                    kind: ExchangeKind::Obtain,
                },
                5..=6 if !rv_roots.is_empty() => {
                    Syscall::Revoke { sel: rv_roots.pop().unwrap(), own: true }
                }
                _ => Syscall::CreateMem { size: 4096, perms: Perms::RW },
            };
            let expected = twin.syscall(a, call.clone()).result;
            // The racing call goes to the stale kernel and blocks: no
            // lost, duplicated, or misrouted operation may occur no
            // matter which migration phase it lands in.
            let tag = race.syscall_async_via(a, KernelId(0), call);
            let mut steps = 0u32;
            let got = loop {
                if let Some(r) = race.take_reply(a, tag) {
                    break r.result;
                }
                assert!(race.step(), "case {case}: op {i} lost its reply");
                steps += 1;
                assert!(steps < 100_000, "case {case}: op {i} never completed");
            };
            assert_eq!(got, expected, "case {case}: op {i} diverged");
        }
        race.pump_all();
        assert!(race.kernels[src.idx()].take_migration_failure(a).is_none());

        // Identical final state, full quiescence, equal deleted sets.
        race.check_invariants();
        twin.check_invariants();
        assert_eq!(race.total_caps(), twin.total_caps(), "case {case}: survivor counts differ");
        for (kr, kt) in race.kernels.iter().zip(&twin.kernels) {
            assert_eq!(
                kr.state_digest(),
                kt.state_digest(),
                "case {case}: kernel {} state diverged",
                kr.id()
            );
            assert_eq!(kr.pending_ops(), 0, "case {case}: race left suspended ops");
            assert_eq!(kt.pending_ops(), 0, "case {case}: twin left suspended ops");
        }
        let s = race.kernels[src.idx()].stats();
        assert!(
            s.ops_held + s.syscalls_forwarded > 0,
            "case {case}: the old owner never held or forwarded anything"
        );
    });
}
