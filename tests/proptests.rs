//! Property-based tests over the distributed capability protocol.
//!
//! Random sequences of capability-modifying operations (exchanges,
//! revokes, kills, exits) are executed against a multi-kernel cluster
//! with randomly interleaved message processing; afterwards every
//! structural invariant must hold and the system must quiesce with no
//! suspended operations.

use proptest::prelude::*;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, DdlKey, PeId, VpeId};
use semper_base::{CapType, ExchangeKind as EK};
use semper_kernel::harness::TestCluster;

/// One randomly generated action.
#[derive(Debug, Clone)]
enum Action {
    CreateMem { vpe: u16 },
    Delegate { from: u16, to: u16 },
    Obtain { by: u16, from: u16 },
    RevokeNewest { vpe: u16 },
    Derive { vpe: u16 },
    PumpSome { n: usize },
    Kill { vpe: u16 },
}

fn action_strategy(vpes: u16) -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0..vpes).prop_map(|vpe| Action::CreateMem { vpe }),
        4 => (0..vpes, 0..vpes).prop_map(|(from, to)| Action::Delegate { from, to }),
        4 => (0..vpes, 0..vpes).prop_map(|(by, from)| Action::Obtain { by, from }),
        4 => (0..vpes).prop_map(|vpe| Action::RevokeNewest { vpe }),
        4 => (0..vpes).prop_map(|vpe| Action::Derive { vpe }),
        4 => (1usize..12).prop_map(|n| Action::PumpSome { n }),
        // Kills are rare relative to the other actions.
        1 => (0..vpes).prop_map(|vpe| Action::Kill { vpe }),
    ]
}

/// The newest capability selector a VPE holds, if any (scans the kernel
/// state; works because the harness exposes the tables).
fn newest_sel(c: &TestCluster, vpe: VpeId) -> Option<CapSel> {
    let k = c.kernel_of(vpe);
    let table = c.kernels[k.idx()].table(vpe)?;
    table.iter().map(|(sel, _)| sel).filter(|s| s.0 >= 2).max()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Random CMO interleavings never violate the capability-tree
    /// invariants, never deadlock, and always quiesce.
    #[test]
    fn random_cmo_interleavings_preserve_invariants(
        actions in proptest::collection::vec(action_strategy(6), 1..40)
    ) {
        // 3 kernels x 2 VPEs; VPE v lives in group v / 2.
        let mut c = TestCluster::new(3, 2);
        let mut dead = std::collections::BTreeSet::new();
        for action in actions {
            match action {
                Action::CreateMem { vpe } => {
                    if dead.contains(&vpe) { continue; }
                    c.syscall_async(
                        VpeId(vpe),
                        Syscall::CreateMem { size: 4096, perms: Perms::RW },
                    );
                }
                Action::Delegate { from, to } => {
                    if from == to || dead.contains(&from) || dead.contains(&to) { continue; }
                    let Some(sel) = newest_sel(&c, VpeId(from)) else { continue };
                    c.syscall_async(
                        VpeId(from),
                        Syscall::Exchange {
                            other: VpeId(to),
                            own_sel: sel,
                            other_sel: CapSel::INVALID,
                            kind: ExchangeKind::Delegate,
                        },
                    );
                }
                Action::Obtain { by, from } => {
                    if by == from || dead.contains(&by) || dead.contains(&from) { continue; }
                    let Some(sel) = newest_sel(&c, VpeId(from)) else { continue };
                    c.syscall_async(
                        VpeId(by),
                        Syscall::Exchange {
                            other: VpeId(from),
                            own_sel: CapSel::INVALID,
                            other_sel: sel,
                            kind: EK::Obtain,
                        },
                    );
                }
                Action::RevokeNewest { vpe } => {
                    if dead.contains(&vpe) { continue; }
                    let Some(sel) = newest_sel(&c, VpeId(vpe)) else { continue };
                    c.syscall_async(VpeId(vpe), Syscall::Revoke { sel, own: true });
                }
                Action::Derive { vpe } => {
                    if dead.contains(&vpe) { continue; }
                    let Some(sel) = newest_sel(&c, VpeId(vpe)) else { continue };
                    c.syscall_async(
                        VpeId(vpe),
                        Syscall::DeriveMem { src: sel, offset: 0, size: 64, perms: Perms::R },
                    );
                }
                Action::PumpSome { n } => c.pump_n(n),
                Action::Kill { vpe } => {
                    if dead.insert(vpe) {
                        c.kill(VpeId(vpe));
                    }
                }
            }
        }
        c.pump_all();
        c.check_invariants();
        // Quiescence: nothing suspended anywhere.
        for k in &c.kernels {
            prop_assert_eq!(
                k.pending_ops(), 0,
                "kernel {} left {} suspended ops", k.id(), k.pending_ops()
            );
        }
        // Capabilities of dead VPEs are fully gone.
        for vpe in &dead {
            for k in &c.kernels {
                if let Some(t) = k.table(VpeId(*vpe)) {
                    prop_assert_eq!(t.len(), 0, "dead VPE{} still holds capabilities", vpe);
                }
            }
        }
    }

    /// Revoking the root of any randomly built delegation structure
    /// removes exactly the descendants, across any number of kernels.
    #[test]
    fn revoke_removes_exactly_the_subtree(
        edges in proptest::collection::vec((0u16..8, 0u16..8), 1..24)
    ) {
        let mut c = TestCluster::new(4, 2);
        let root_sel = match c
            .syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW })
            .result
        {
            Ok(SysReplyData::Mem { sel, .. }) => sel,
            other => panic!("create_mem failed: {other:?}"),
        };
        // Holders of copies: vpe -> selectors (starting from the root).
        let mut sels: Vec<(VpeId, CapSel)> = vec![(VpeId(0), root_sel)];
        for (src_idx, to) in edges {
            let (from, from_sel) = sels[src_idx as usize % sels.len()];
            let to = VpeId(to);
            if to == from { continue; }
            let r = c.syscall(
                from,
                Syscall::Exchange {
                    other: to,
                    own_sel: from_sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            );
            if let Ok(SysReplyData::Delegated { recv_sel }) = r.result {
                sels.push((to, recv_sel));
            }
        }
        let before = c.total_caps();
        let r = c.syscall(VpeId(0), Syscall::Revoke { sel: root_sel, own: true });
        prop_assert!(r.result.is_ok());
        // Exactly the tree (root + all successful delegations) vanished.
        prop_assert_eq!(c.total_caps(), before - sels.len());
        c.check_invariants();
        for (vpe, sel) in sels {
            let k = c.kernel_of(vpe);
            prop_assert!(c.kernels[k.idx()].table(vpe).unwrap().get(sel).is_err());
        }
    }

    /// DDL keys pack and unpack losslessly for every field combination.
    #[test]
    fn ddl_key_roundtrip(pe in any::<u16>(), vpe in any::<u16>(), ty in 1u8..=7, obj in 0u32..(1 << 24)) {
        let ty = CapType::from_u8(ty).unwrap();
        let k = DdlKey::new(PeId(pe), VpeId(vpe), ty, obj);
        prop_assert_eq!(k.pe(), PeId(pe));
        prop_assert_eq!(k.vpe(), VpeId(vpe));
        prop_assert_eq!(k.cap_type(), Some(ty));
        prop_assert_eq!(k.object_id(), obj);
        prop_assert_eq!(DdlKey::from_raw(k.raw()), k);
    }
}
