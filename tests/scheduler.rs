//! Property tests for the stall-lane event engine.
//!
//! The engine ([`semper_sim::PeSchedule`]) replaced the original
//! "requeue into the global heap until the PE is free" retry loop. Its
//! contract is *exact trace equivalence*: for any workload, every event
//! is delivered at the same cycle, in the same order, with the same
//! number of heap pops, as the retry loop produced — including
//! same-cycle tie-breaks, where a deferred event competes with freshly
//! arriving traffic at the instant its PE frees.
//!
//! The reference model below *is* the old engine, reimplemented on the
//! raw [`EventQueue`] exactly as `Machine::step` used to: pop, and if
//! the destination is busy, push the whole event back at `busy_until`.
//! [`DetRng`]-randomized workloads (bursty arrivals on a small time
//! window, zero-cost handlers, fan-out follow-up events) then drive
//! both engines and compare full traces.

use semper_sim::{Cycles, DetRng, EventQueue, PeSchedule};

/// One simulated event: an id whose handler cost and follow-up fan-out
/// are derived deterministically from the id, so both engines compute
/// identical workloads without sharing state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ev {
    id: u64,
    pe: usize,
    /// Spawning generation: deliveries of generation > 0 spawn
    /// follow-up events (handler output traffic).
    gen: u8,
}

/// Deterministic per-event parameters (cost, fan-out, delays).
struct Workload {
    seed: u64,
    pes: usize,
}

impl Workload {
    fn cost(&self, id: u64) -> u64 {
        // Small costs with plenty of zeros force busy windows that end
        // exactly on other events' arrival cycles.
        DetRng::split(self.seed, id ^ 0xC0).below(7)
    }

    fn followups(&self, ev: Ev, end: Cycles) -> Vec<(Cycles, Ev)> {
        if ev.gen == 0 {
            return Vec::new();
        }
        let mut rng = DetRng::split(self.seed, ev.id ^ 0xFA);
        let n = rng.below(3);
        (0..n)
            .map(|i| {
                let child = Ev {
                    id: ev.id * 31 + i + 1,
                    pe: rng.below(self.pes as u64) as usize,
                    gen: ev.gen - 1,
                };
                // Zero-delay children land on the exact cycle the
                // handler finishes — the adversarial boundary tie.
                (end + rng.below(5), child)
            })
            .collect()
    }
}

/// A delivered-event trace entry: (cycle, event id, pe).
type Trace = Vec<(u64, u64, usize)>;

/// The pre-refactor engine: retry loop on the raw stable queue.
fn reference_trace(w: &Workload, initial: &[(Cycles, Ev)]) -> (Trace, u64, u64) {
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut busy_until = vec![Cycles::ZERO; w.pes];
    for (at, ev) in initial {
        queue.schedule(*at, *ev);
    }
    let mut trace = Trace::new();
    while let Some((t, ev)) = queue.pop() {
        if busy_until[ev.pe] > t {
            // The PE is still executing; retry when it frees up (the
            // original Machine::step logic, verbatim).
            let at = busy_until[ev.pe];
            queue.schedule(at, ev);
            continue;
        }
        let end = t + w.cost(ev.id);
        busy_until[ev.pe] = end;
        trace.push((t.0, ev.id, ev.pe));
        for (at, child) in w.followups(ev, end) {
            queue.schedule(at, child);
        }
    }
    (trace, queue.processed(), queue.now().0)
}

/// The stall-lane engine on the same workload.
fn stall_lane_trace(w: &Workload, initial: &[(Cycles, Ev)]) -> (Trace, u64, u64) {
    let mut sched: PeSchedule<Ev> = PeSchedule::new(w.pes);
    for (at, ev) in initial {
        sched.schedule(*at, ev.pe, *ev);
    }
    let mut trace = Trace::new();
    while let Some((t, pe, ev)) = sched.pop_ready() {
        assert_eq!(pe, ev.pe, "schedule() PE must round-trip");
        let end = t + w.cost(ev.id);
        sched.set_busy(pe, end);
        trace.push((t.0, ev.id, ev.pe));
        for (at, child) in w.followups(ev, end) {
            sched.schedule(at, child.pe, child);
        }
    }
    assert_eq!(sched.parked(), 0, "drained engine must have empty stall lanes");
    (trace, sched.processed(), sched.now().0)
}

fn initial_burst(seed: u64, pes: usize, n: u64, window: u64, gen: u8) -> Vec<(Cycles, Ev)> {
    let mut rng = DetRng::seed_from(seed);
    (0..n)
        .map(|id| {
            let at = Cycles(rng.below(window));
            let pe = rng.below(pes as u64) as usize;
            (at, Ev { id, pe, gen })
        })
        .collect()
}

/// The property: for randomized bursty workloads with follow-up
/// traffic, the stall-lane engine delivers the exact same
/// (cycle, event, pe) trace as the retry-loop reference — same
/// delivery order among same-cycle contenders, same final time, and
/// the same number of heap pops (so `Machine::events` is comparable
/// across the refactor).
#[test]
fn randomized_workloads_match_reference_trace() {
    for seed in 0..16u64 {
        let w = Workload { seed: 0xA11CE ^ (seed * 0x9E37_79B9), pes: 4 };
        // 300 events over a 50-cycle window: most deliveries contend,
        // and busy windows constantly end on other arrivals' cycles.
        let initial = initial_burst(w.seed, w.pes, 300, 50, 2);
        let (ref_trace, ref_pops, ref_now) = reference_trace(&w, &initial);
        let (lane_trace, lane_pops, lane_now) = stall_lane_trace(&w, &initial);
        assert_eq!(
            lane_trace, ref_trace,
            "seed {seed}: stall-lane engine diverged from the retry-loop reference"
        );
        assert_eq!(lane_pops, ref_pops, "seed {seed}: pop counts diverged");
        assert_eq!(lane_now, ref_now, "seed {seed}: final time diverged");
        // Sanity: the workload actually exercised deferrals.
        assert!(ref_pops > ref_trace.len() as u64, "seed {seed}: no deferrals happened");
    }
}

/// Same-cycle burst onto one PE: every event arrives at cycle 10, so
/// the entire schedule is tie-breaks. Delivery must follow arrival
/// (insertion) order with each handler pushing the next delivery out
/// by its cost — on both engines identically.
#[test]
fn same_cycle_burst_delivers_in_arrival_order() {
    let w = Workload { seed: 7, pes: 1 };
    let initial: Vec<(Cycles, Ev)> =
        (0..64).map(|id| (Cycles(10), Ev { id, pe: 0, gen: 0 })).collect();
    let (ref_trace, ..) = reference_trace(&w, &initial);
    let (lane_trace, ..) = stall_lane_trace(&w, &initial);
    assert_eq!(lane_trace, ref_trace);
    let ids: Vec<u64> = lane_trace.iter().map(|(_, id, _)| *id).collect();
    assert_eq!(ids, (0..64).collect::<Vec<u64>>(), "ties must deliver in arrival order");
    // Cycles are monotonically non-decreasing and start at the burst.
    assert_eq!(lane_trace[0].0, 10);
    assert!(lane_trace.windows(2).all(|w| w[0].0 <= w[1].0));
}

/// Deep deferral chains: a PE kept busy by a steady drip of work while
/// a low-priority burst waits. Exercises repeated re-deferral (a wake
/// token losing the free cycle to an earlier same-cycle contender
/// several times in a row).
#[test]
fn repeated_redeferral_matches_reference() {
    for seed in 0..8u64 {
        let w = Workload { seed: 0xBEEF ^ seed, pes: 2 };
        let mut initial = initial_burst(w.seed, w.pes, 64, 8, 1);
        // A same-cycle wall at the window edge: many events landing at
        // the exact cycle earlier busy windows tend to end on.
        for id in 1000..1032 {
            initial.push((Cycles(8), Ev { id, pe: (id % 2) as usize, gen: 0 }));
        }
        let (ref_trace, ref_pops, _) = reference_trace(&w, &initial);
        let (lane_trace, lane_pops, _) = stall_lane_trace(&w, &initial);
        assert_eq!(lane_trace, ref_trace, "seed {seed}");
        assert_eq!(lane_pops, ref_pops, "seed {seed}");
    }
}

/// Deadline-bounded draining (`Machine::run_until`): the old driver
/// popped heap entries one at a time while the head was within the
/// deadline, so a stalled message whose retry landed past the deadline
/// stayed queued *unhandled*. `pop_ready_before` must reproduce that —
/// never delivering an event at a cycle past the deadline — and the
/// post-deadline continuation must then match the reference exactly.
#[test]
fn deadline_bounded_drain_matches_reference() {
    for seed in 0..8u64 {
        let w = Workload { seed: 0xDEAD ^ seed, pes: 3 };
        let initial = initial_burst(w.seed, w.pes, 200, 40, 2);
        for deadline in [Cycles(0), Cycles(17), Cycles(25), Cycles(60), Cycles(10_000)] {
            // Reference: the old Machine::run_until loop, verbatim.
            let mut queue: EventQueue<Ev> = EventQueue::new();
            let mut busy_until = vec![Cycles::ZERO; w.pes];
            for (at, ev) in &initial {
                queue.schedule(*at, *ev);
            }
            let mut ref_trace = Trace::new();
            let drive = |queue: &mut EventQueue<Ev>,
                         busy_until: &mut Vec<Cycles>,
                         trace: &mut Trace,
                         bound: Option<Cycles>| {
                while let Some(pt) = queue.peek_time() {
                    if bound.is_some_and(|d| pt > d) {
                        break;
                    }
                    let (t, ev) = queue.pop().expect("peeked");
                    if busy_until[ev.pe] > t {
                        let at = busy_until[ev.pe];
                        queue.schedule(at, ev);
                        continue;
                    }
                    let end = t + w.cost(ev.id);
                    busy_until[ev.pe] = end;
                    trace.push((t.0, ev.id, ev.pe));
                    for (at, child) in w.followups(ev, end) {
                        queue.schedule(at, child);
                    }
                }
            };
            drive(&mut queue, &mut busy_until, &mut ref_trace, Some(deadline));
            let ref_cut = (ref_trace.len(), queue.processed(), queue.now().0);

            // Stall-lane engine, same workload, same deadline.
            let mut sched: PeSchedule<Ev> = PeSchedule::new(w.pes);
            for (at, ev) in &initial {
                sched.schedule(*at, ev.pe, *ev);
            }
            let mut lane_trace = Trace::new();
            while let Some((t, _pe, ev)) = sched.pop_ready_before(deadline) {
                assert!(t <= deadline, "delivered past the deadline");
                let end = t + w.cost(ev.id);
                sched.set_busy(ev.pe, end);
                lane_trace.push((t.0, ev.id, ev.pe));
                for (at, child) in w.followups(ev, end) {
                    sched.schedule(at, child.pe, child);
                }
            }
            assert_eq!(lane_trace, ref_trace, "seed {seed} deadline {deadline}: bounded phase");
            assert_eq!(
                (lane_trace.len(), sched.processed(), sched.now().0),
                ref_cut,
                "seed {seed} deadline {deadline}: bounded-phase counters"
            );

            // Continue both to idle: the leftover (parked/requeued)
            // state must produce the same tail.
            drive(&mut queue, &mut busy_until, &mut ref_trace, None);
            while let Some((t, _pe, ev)) = sched.pop_ready() {
                let end = t + w.cost(ev.id);
                sched.set_busy(ev.pe, end);
                lane_trace.push((t.0, ev.id, ev.pe));
                for (at, child) in w.followups(ev, end) {
                    sched.schedule(at, child.pe, child);
                }
            }
            assert_eq!(lane_trace, ref_trace, "seed {seed} deadline {deadline}: tail after resume");
        }
    }
}

/// An idle machine (every handler free when its event arrives) must
/// never park anything: the stall lanes are pure overhead-free
/// passthrough in the uncontended case.
#[test]
fn uncontended_events_never_park() {
    let w = Workload { seed: 3, pes: 4 };
    // One event every 100 cycles — far apart, costs ≤ 6.
    let initial: Vec<(Cycles, Ev)> =
        (0..32).map(|id| (Cycles(id * 100), Ev { id, pe: (id % 4) as usize, gen: 0 })).collect();
    let (trace, pops, _) = stall_lane_trace(&w, &initial);
    assert_eq!(pops, trace.len() as u64, "no deferral pops expected");
}
