//! Asserted fault-injection suite (PR 9).
//!
//! The five failure scenarios that `examples/failure_injection.rs`
//! demonstrates print-only are pinned here as hard assertions, and the
//! deterministic fault engine (`semper_sim::faults` +
//! `Feature::FaultInjection`) gets its own scripted scenarios: a kernel
//! crash between the mark and delete phases of a parallel sweep, a
//! one-way network partition across a live group migration, and a
//! drop/duplicate/delay storm over a mixed workload. Every scenario
//! must *terminate* — each issued operation completes or errors, the
//! surviving kernels reach true quiescence ([`TestCluster::
//! assert_quiescent`]), and the structural invariants hold.
//!
//! The legacy scenarios build independent clusters, so they run on the
//! parallel harness (`semperos::Runner`, sized by `BENCH_THREADS`);
//! their results come back in submission order regardless of the
//! worker count.

use semper_base::config::Feature;
use semper_base::msg::{ExchangeKind, Perms, SysReply, SysReplyData, Syscall};
use semper_base::{CapSel, KernelId, VpeId};
use semper_kernel::harness::TestCluster;
use semper_sim::{CrashPoint, FaultPlan, PartitionWindow};
use semperos::{Job, Runner};

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

fn delegate(c: &mut TestCluster, from: VpeId, to: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        from,
        Syscall::Exchange {
            other: to,
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    match r.result {
        Ok(SysReplyData::Delegated { recv_sel }) => recv_sel,
        other => panic!("delegate failed: {other:?}"),
    }
}

/// Pumps until the reply for `tag` arrives (bounded); unlike
/// [`TestCluster::syscall`] this does not drain the whole cluster, so
/// other operations stay genuinely in flight.
fn await_reply(c: &mut TestCluster, vpe: VpeId, tag: u64) -> SysReply {
    let mut steps = 0u64;
    loop {
        if let Some(r) = c.take_reply(vpe, tag) {
            return r;
        }
        assert!(c.step(), "{vpe} tag {tag}: cluster went idle without a reply");
        steps += 1;
        assert!(steps < 200_000, "{vpe} tag {tag}: reply never arrived");
    }
}

fn assert_no_pending(c: &TestCluster) {
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} left suspended ops", k.id());
    }
}

// ----- the five legacy scenarios, assert-ified -------------------------

/// Scenario 1: the obtainer dies while its obtain is in flight. The
/// owner's kernel must clean the orphaned child link, leaving only the
/// owner's self-capability and its memory capability.
fn obtainer_killed_mid_obtain() -> &'static str {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    c.pump_n(4); // owner linked the child; reply is in flight
    c.kill(VpeId(1));
    c.pump_all();
    c.check_invariants();
    assert_eq!(c.kernels[0].stats().orphans_cleaned, 1, "orphan not cleaned at the owner");
    assert_eq!(c.total_caps(), 2, "only VPE0's self-cap and its memory cap may survive");
    assert_no_pending(&c);
    "obtainer_killed_mid_obtain"
}

/// Scenario 2: the receiver dies during a delegate handshake. The
/// delegator must get an error reply and no dangling child reference
/// may remain.
fn receiver_killed_mid_delegate() -> &'static str {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let tag = c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    c.pump_n(5); // pending insert created at the receiver's kernel
    c.kill(VpeId(1));
    c.pump_all();
    let reply = c.take_reply(VpeId(0), tag).expect("delegator must be answered");
    assert!(reply.result.is_err(), "delegate into a dead receiver must fail: {:?}", reply.result);
    c.check_invariants();
    assert_no_pending(&c);
    "receiver_killed_mid_delegate"
}

/// Scenario 3: a VPE holding a two-hop cross-kernel delegation chain
/// exits. The recursive revocation crosses all three kernels; only the
/// two bystander VPEs' self-capabilities survive.
fn exit_with_cross_kernel_chain() -> &'static str {
    let mut c = TestCluster::new(3, 1);
    let a = create_mem(&mut c, VpeId(0));
    let b = delegate(&mut c, VpeId(0), VpeId(1), a);
    let _ = delegate(&mut c, VpeId(1), VpeId(2), b);
    c.syscall_async(VpeId(0), Syscall::Exit);
    c.pump_all();
    c.check_invariants();
    assert_eq!(c.total_caps(), 2, "the exiting VPE's chain must vanish on every kernel");
    assert_no_pending(&c);
    "exit_with_cross_kernel_chain"
}

/// Scenario 4: a peer kernel's whole workload dies while a parallel
/// partitioned sweep is marking its partition. The victims' teardown
/// revokes must chain onto the in-flight sweep, and the sweep must
/// still complete and acknowledge the initiator.
fn workload_death_mid_parallel_sweep() -> &'static str {
    let mut c = TestCluster::new(4, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::ParallelSweep);
    }
    let root = create_mem(&mut c, VpeId(0));
    for to in [2u16, 3, 4, 5, 6, 7] {
        let _ = delegate(&mut c, VpeId(0), VpeId(to), root);
    }
    let before = c.total_caps();
    let tag = c.syscall_async(VpeId(0), Syscall::Revoke { sel: root, own: true });
    c.pump_n(3); // mark requests are out; the partitions are not yet swept
    c.kill(VpeId(2));
    c.kill(VpeId(3));
    c.pump_all();
    assert!(c.take_reply(VpeId(0), tag).unwrap().result.is_ok(), "sweep not acknowledged");
    c.check_invariants();
    assert!(c.kernels[0].stats().sweeps >= 1, "revoke did not take the sweep path");
    assert_eq!(c.total_caps(), before - 7 - 2, "subtree + the dead VPEs' self-caps gone");
    assert_no_pending(&c);
    "workload_death_mid_parallel_sweep"
}

/// Scenario 5: a stale-routed obtain and a kill race a live group
/// migration. The old owner must hold or relay both; the obtain must
/// be answered, the kill must chase the group to the new owner, and
/// the migration itself must still complete.
fn kill_races_live_migration() -> &'static str {
    let mut c = TestCluster::new(3, 1);
    let root = create_mem(&mut c, VpeId(0));
    let src = c.start_migration(VpeId(0), KernelId(2)).expect("start migration");
    let tag = c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: root,
            kind: ExchangeKind::Obtain,
        },
    );
    c.kill(VpeId(0));
    c.pump_all();
    assert!(c.kernels[src.idx()].take_migration_failure(VpeId(0)).is_none());
    // The obtain raced the kill: either outcome is legal, but it must
    // be answered, and the teardown must reach the new owner.
    assert!(c.take_reply(VpeId(1), tag).is_some(), "racing obtain lost its reply");
    c.pump_all();
    c.check_invariants();
    for k in &c.kernels {
        assert!(!k.vpe_alive(VpeId(0)), "kernel {} kept the killed VPE alive", k.id());
    }
    assert_no_pending(&c);
    let s = *c.kernels[src.idx()].stats();
    assert_eq!(s.migrations_out, 1, "the migration itself must still complete");
    "kill_races_live_migration"
}

/// The five legacy scenarios from `examples/failure_injection.rs`,
/// asserted and run on the parallel harness.
#[test]
fn legacy_failure_scenarios_hold() {
    let jobs: Vec<Job<'static, &'static str>> = vec![
        Box::new(obtainer_killed_mid_obtain),
        Box::new(receiver_killed_mid_delegate),
        Box::new(exit_with_cross_kernel_chain),
        Box::new(workload_death_mid_parallel_sweep),
        Box::new(kill_races_live_migration),
    ];
    let ran = Runner::from_env().run(jobs);
    assert_eq!(
        ran,
        vec![
            "obtainer_killed_mid_obtain",
            "receiver_killed_mid_delegate",
            "exit_with_cross_kernel_chain",
            "workload_death_mid_parallel_sweep",
            "kill_races_live_migration",
        ],
        "scenario results must come back in submission order"
    );
}

// ----- scripted fault-engine scenarios ---------------------------------

/// The ISSUE's tentpole script: kernel 2 dies after marking its sweep
/// partition, before the delete order arrives. The crash point fires on
/// the first `sweep-part` park at kernel 2 — its island freezes with
/// the partition marked but unswept. The survivors must detect the
/// peer's death, the coordinator must force its delete phase over the
/// partitions that did answer, and the initiating revoke must still be
/// acknowledged. No silent hang, no leaked ledger entries.
#[test]
fn kernel_crash_between_sweep_mark_and_delete() {
    let mut c = TestCluster::new(4, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::ParallelSweep);
    }
    let plan =
        FaultPlan::empty().with_crash(CrashPoint { kernel: 2, phase: "sweep-part", after_nth: 1 });
    c.set_fault_plan(plan, 64);

    // Root at VPE 0 (kernel 0), one copy in every other group: the
    // sweep partitions by owning kernel, so kernels 1, 2 and 3 each
    // hold a partition.
    let root = create_mem(&mut c, VpeId(0));
    for to in [2u16, 3, 4, 5, 6, 7] {
        let _ = delegate(&mut c, VpeId(0), VpeId(to), root);
    }
    let tag = c.syscall_async(VpeId(0), Syscall::Revoke { sel: root, own: true });
    c.pump_all();

    assert!(!c.kernel_alive(KernelId(2)), "the scripted crash point never fired");
    assert_eq!(c.dead_kernels().len(), 1, "only kernel 2 may die");
    let reply = c.take_reply(VpeId(0), tag).expect("initiator must be answered");
    assert!(reply.result.is_ok(), "revoke replies are always-Ok: {:?}", reply.result);
    assert!(c.kernels[0].stats().sweeps >= 1, "revoke did not take the sweep path");
    // The coordinator lost a participant: either its fan-in aborted via
    // peer-death or a deadline — both count as an aborted op.
    assert!(c.kernels[0].stats().ops_aborted >= 1, "the lost partition never aborted");
    // Survivors' partitions are swept: no copy of the subtree remains
    // outside the dead island.
    for k in &c.kernels {
        if !c.kernel_alive(k.id()) {
            continue;
        }
        for vpe in 0..8u16 {
            if let Some(t) = k.table(VpeId(vpe)) {
                for (sel, _) in t.iter() {
                    assert!(sel.0 < 2, "kernel {} still holds subtree cap {sel}", k.id());
                }
            }
        }
    }
    c.check_invariants();
    c.assert_quiescent();
}

/// A one-way partition (kernel 0 cannot reach kernel 2) opens just as
/// a group migration 0 → 2 starts: the install request is dropped on
/// the NoC, the source's `migrate-await-install` deadline expires, and
/// the migration aborts through the protocol's own refusal path — the
/// group never leaves. After the window heals, the same migration
/// succeeds.
#[test]
fn partition_aborts_then_heals_migration() {
    let mut c = TestCluster::new(3, 1);
    // The window covers the install request's send but closes before
    // the 128-step deadline fires: the first migration still aborts
    // (install requests carry no retry legs — the drop is fatal), and
    // by the time the deadline pump has run, the route is healed.
    let plan =
        FaultPlan::empty().with_partition(PartitionWindow { from: 0, to: 2, start: 0, end: 64 });
    c.set_fault_plan(plan, 128);
    let root = create_mem(&mut c, VpeId(0));

    let src = c.start_migration(VpeId(0), KernelId(2)).expect("start migration");
    c.pump_all();
    let err = c.kernels[src.idx()].take_migration_failure(VpeId(0));
    assert!(err.is_some(), "the partitioned install must abort the migration");
    assert_eq!(c.kernel_of(VpeId(0)), KernelId(0), "the group must not leave the source");
    let fs = c.fault_stats().expect("plan installed");
    assert!(fs.partitioned > 0, "the partition never dropped anything");
    c.check_invariants();
    c.assert_quiescent();

    // The pump drained past the window's end (quiet-network clock
    // jumps); the healed route must now carry the same migration.
    c.migrate(VpeId(0), KernelId(2)).expect("migration must succeed after the heal");
    assert_eq!(c.kernel_of(VpeId(0)), KernelId(2));
    let fs = c.fault_stats().expect("plan installed");
    assert_eq!(fs.partitions_healed, 1, "the healed window must be counted once");
    // The delegation structure survived the aborted attempt: the
    // migrated VPE still holds its root capability.
    let k = c.kernel_of(VpeId(0));
    assert!(c.kernels[k.idx()].table(VpeId(0)).unwrap().get(root).is_ok());
    c.check_invariants();
    c.assert_quiescent();
}

/// A drop/duplicate/delay storm over a pipelined promise chain: three
/// asynchronous cross-kernel delegates are submitted back to back, so
/// their `Provide`/`Resolve` legs cross the lossy NoC while the chain
/// is still unresolved. Every redeeming wait must be answered — the
/// delegation result, or a real `Err` from a deadline abort — never
/// silence, and the cluster must reach true quiescence with no parked
/// waiter or async execution leaked.
#[test]
fn promise_chain_survives_resolve_leg_storm() {
    let mut c = TestCluster::new(3, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::PromiseIpc);
    }
    let plan = FaultPlan::seeded(0x9120_5704).with_drop(80).with_duplicate(50).with_delay(100, 12);
    c.set_fault_plan(plan, 256);

    let root = create_mem(&mut c, VpeId(0));
    // Submit the whole chain before anything resolves: `await_reply`
    // pumps only up to each submission's (immediate) reply, so the
    // delegates themselves are still in flight when the next one is
    // gated behind them in program order.
    let mut promises = Vec::new();
    for to in [2u16, 4, 3] {
        let tag = c.syscall_async(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::Exchange {
                other: VpeId(to),
                own_sel: root,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            })),
        );
        let r = await_reply(&mut c, VpeId(0), tag);
        let Ok(SysReplyData::Promise { sel }) = r.result else {
            panic!("submission must yield a promise: {r:?}");
        };
        promises.push(sel);
    }
    let tags: Vec<u64> = promises
        .iter()
        .map(|p| c.syscall_async(VpeId(0), Syscall::WaitPromise { sel: *p, block: true }))
        .collect();
    c.pump_all();

    for (i, tag) in tags.iter().enumerate() {
        let reply = c.take_reply(VpeId(0), *tag);
        let Some(reply) = reply else {
            panic!("chain link {i}: wait vanished without a reply");
        };
        assert!(
            matches!(reply.result, Ok(SysReplyData::Delegated { .. }) | Err(_)),
            "chain link {i} must complete or abort with a real error: {:?}",
            reply.result
        );
    }
    let fs = c.fault_stats().expect("plan installed");
    assert!(fs.injected > 0, "the storm never fired");
    let resolved: u64 = c.kernels.iter().map(|k| k.stats().promises_resolved).sum();
    assert_eq!(resolved, 3, "every promise of the chain must resolve exactly once");
    c.check_invariants();
    c.assert_quiescent();
}

/// Kernel 1 crashes while it holds the receiver-side consent of an
/// unresolved promise (`promise-consent` park). The submitter's kernel
/// must detect the peer's death, abort the provide leg, and resolve the
/// promise to a real error — the redeeming wait returns `Err`, never
/// hangs — and the surviving island reaches true quiescence.
#[test]
fn peer_crash_holding_unresolved_promise_yields_real_error() {
    let mut c = TestCluster::new(2, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::PromiseIpc);
    }
    let plan = FaultPlan::empty().with_crash(CrashPoint {
        kernel: 1,
        phase: "promise-consent",
        after_nth: 1,
    });
    c.set_fault_plan(plan, 64);

    let root = create_mem(&mut c, VpeId(0));
    let tag = c.syscall_async(
        VpeId(0),
        Syscall::SubmitAsync(Box::new(Syscall::Exchange {
            other: VpeId(2),
            own_sel: root,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        })),
    );
    let r = await_reply(&mut c, VpeId(0), tag);
    let Ok(SysReplyData::Promise { sel }) = r.result else {
        panic!("submission must yield a promise: {r:?}");
    };
    c.pump_all();
    assert!(!c.kernel_alive(KernelId(1)), "the scripted crash point never fired");

    let r = c.syscall(VpeId(0), Syscall::WaitPromise { sel, block: true });
    assert!(r.result.is_err(), "a promise held by a dead peer must resolve to an error: {r:?}");
    let s = c.kernels[0].stats();
    assert!(s.promises_resolved >= 1, "the orphaned promise never resolved");
    assert!(s.ops_aborted >= 1, "the provide leg never aborted");
    c.check_invariants();
    c.assert_quiescent();
}

/// A drop/duplicate/delay storm over a mixed spanning workload: every
/// issued operation must be answered (Ok or Err — never silence), the
/// cluster must reach true quiescence, and the structural invariants
/// must hold on every kernel.
#[test]
fn message_storm_terminates_with_all_ops_answered() {
    let mut c = TestCluster::new(3, 2);
    let plan = FaultPlan::seeded(0x57_0421).with_drop(60).with_duplicate(40).with_delay(80, 12);
    c.set_fault_plan(plan, 256);

    let mut tags: Vec<(VpeId, u64)> = Vec::new();
    let mut roots: Vec<(VpeId, CapSel)> = Vec::new();
    for v in 0..6u16 {
        let vpe = VpeId(v);
        let sel = create_mem(&mut c, vpe);
        roots.push((vpe, sel));
    }
    for (i, &(vpe, sel)) in roots.iter().enumerate() {
        // Spanning delegation to the next group's first VPE.
        let to = VpeId(((vpe.0 / 2 + 1) % 3) * 2);
        tags.push((
            vpe,
            c.syscall_async(
                vpe,
                Syscall::Exchange {
                    other: to,
                    own_sel: sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            ),
        ));
        c.pump_n(1 + i); // interleave so windows overlap
    }
    for &(vpe, sel) in &roots {
        tags.push((vpe, c.syscall_async(vpe, Syscall::Revoke { sel, own: true })));
    }
    c.pump_all();

    for (vpe, tag) in tags {
        let reply = c.take_reply(vpe, tag);
        assert!(reply.is_some(), "{vpe} tag {tag}: operation vanished without a reply");
    }
    let fs = c.fault_stats().expect("plan installed");
    assert!(fs.injected > 0, "the storm never fired");
    c.check_invariants();
    c.assert_quiescent();
}
