//! Determinism regression tests.
//!
//! The simulator's contract is that two runs of the same experiment
//! produce bit-identical results: `semper_sim::EventQueue`'s FIFO
//! tie-breaking is the sole ordering authority, and no kernel
//! bookkeeping structure may leak its internal order into the protocol.
//! These tests protect that contract through data-structure refactors
//! (such as the O(1)-bookkeeping change that moved the mapping database
//! and pending-op storage from `BTreeMap` onto hash maps): if a swap
//! accidentally makes message order depend on map iteration, per-client
//! finish times or kernel statistics diverge here.

use semper_apps::AppKind;
use semper_base::{KernelMode, MachineConfig};
use semper_kernel::KernelStats;
use semperos::experiment::{run_app_instances, MicroMachine};

/// A full application run, reduced to its observable outputs.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    durations: Vec<u64>,
    makespan: u64,
    cap_ops: u64,
    kernel_stats: Vec<KernelStats>,
}

fn app_run(cfg: &MachineConfig, app: AppKind, instances: u32) -> RunFingerprint {
    let res = run_app_instances(cfg, app, instances);
    RunFingerprint {
        durations: res.durations.clone(),
        makespan: res.makespan,
        cap_ops: res.cap_ops,
        kernel_stats: res.kernel_stats,
    }
}

/// The same multi-kernel application experiment, run twice, must yield
/// bit-identical per-client finish times and kernel statistics.
#[test]
fn app_runs_are_bit_identical() {
    let mut cfg = MachineConfig::small();
    cfg.num_pes = 16;
    cfg.kernels = 2;
    cfg.services = 2;
    let first = app_run(&cfg, AppKind::Find, 4);
    let second = app_run(&cfg, AppKind::Find, 4);
    assert_eq!(first, second, "two runs of the same experiment diverged");
    // Sanity: the run actually did distributed work.
    assert_eq!(first.durations.len(), 4);
    assert!(first.kernel_stats.iter().any(|s| s.kcalls_out > 0));
}

/// Large revocations — the paths most affected by the bookkeeping
/// refactor — must be cycle-identical across runs, including the exact
/// inter-kernel message counts.
#[test]
fn spanning_revokes_are_bit_identical() {
    let run = || {
        let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
        let chain = m.measure_chain_revoke(64, true);
        let tree = m.measure_tree_revoke(128, 2);
        let stats: Vec<KernelStats> = m.machine().kernel_stats();
        (chain, tree, m.machine().events(), m.machine().now(), stats)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "revocation experiment diverged between runs");
    assert!(first.0 > 0 && first.1 > 0);
}

/// Concurrent, overlapping revocations wake their waiters in a fixed
/// order; the kill/exit path sorts its pending-op sweep. Run the same
/// interleaving twice and compare every kernel's counters.
#[test]
fn teardown_under_load_is_bit_identical() {
    use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
    use semper_base::{CapSel, VpeId};
    use semper_kernel::harness::TestCluster;

    let run = || {
        let mut c = TestCluster::new(3, 2);
        let sel =
            match c.syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
                Ok(SysReplyData::Mem { sel, .. }) => sel,
                other => panic!("create_mem failed: {other:?}"),
            };
        // Spread copies over every VPE, then kill holders mid-traffic.
        for to in 1..6u16 {
            let _ = c.syscall(
                VpeId(0),
                Syscall::Exchange {
                    other: VpeId(to),
                    own_sel: sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            );
        }
        c.syscall_async(VpeId(0), Syscall::Revoke { sel, own: true });
        c.pump_n(3);
        c.kill(VpeId(3));
        c.kill(VpeId(1));
        c.pump_all();
        c.check_invariants();
        let stats: Vec<_> = c.kernels.iter().map(|k| *k.stats()).collect();
        let caps = c.total_caps();
        (stats, caps)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "teardown interleaving diverged between runs");
}
