//! Determinism regression tests.
//!
//! The simulator's contract is that two runs of the same experiment
//! produce bit-identical results: `semper_sim::EventQueue`'s FIFO
//! tie-breaking is the sole ordering authority, and no kernel
//! bookkeeping structure may leak its internal order into the protocol.
//! These tests protect that contract through data-structure refactors
//! (such as the O(1)-bookkeeping change that moved the mapping database
//! and pending-op storage from `BTreeMap` onto hash maps): if a swap
//! accidentally makes message order depend on map iteration, per-client
//! finish times or kernel statistics diverge here.

use semper_apps::AppKind;
use semper_base::{KernelId, KernelMode, MachineConfig};
use semper_kernel::KernelStats;
use semperos::experiment::{run_app_instances, run_app_instances_threads, MicroMachine};
use semperos::{Job, Runner, SharedMachinePool};

/// A full application run, reduced to its observable outputs.
#[derive(Debug, PartialEq, Eq)]
struct RunFingerprint {
    durations: Vec<u64>,
    makespan: u64,
    cap_ops: u64,
    kernel_stats: Vec<KernelStats>,
}

fn app_run(cfg: &MachineConfig, app: AppKind, instances: u32) -> RunFingerprint {
    let res = run_app_instances(cfg, app, instances);
    RunFingerprint {
        durations: res.durations.clone(),
        makespan: res.makespan,
        cap_ops: res.cap_ops,
        kernel_stats: res.kernel_stats,
    }
}

/// The same multi-kernel application experiment, run twice, must yield
/// bit-identical per-client finish times and kernel statistics.
#[test]
fn app_runs_are_bit_identical() {
    let mut cfg = MachineConfig::small();
    cfg.num_pes = 16;
    cfg.kernels = 2;
    cfg.services = 2;
    let first = app_run(&cfg, AppKind::Find, 4);
    let second = app_run(&cfg, AppKind::Find, 4);
    assert_eq!(first, second, "two runs of the same experiment diverged");
    // Sanity: the run actually did distributed work.
    assert_eq!(first.durations.len(), 4);
    assert!(first.kernel_stats.iter().any(|s| s.kcalls_out > 0));
}

/// Large revocations — the paths most affected by the bookkeeping
/// refactor — must be cycle-identical across runs, including the exact
/// inter-kernel message counts.
#[test]
fn spanning_revokes_are_bit_identical() {
    let run = || {
        let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
        let chain = m.measure_chain_revoke(64, true);
        let tree = m.measure_tree_revoke(128, 2);
        let stats: Vec<KernelStats> = m.machine().kernel_stats();
        (chain, tree, m.machine().events(), m.machine().now(), stats)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "revocation experiment diverged between runs");
    assert!(first.0 > 0 && first.1 > 0);
}

/// Golden cycle counts for [`cross_machine_revocation_matches_golden`],
/// recorded on the pre-stall-lane event engine (PR 1, commit 3d2b330).
/// The stall-lane engine must reproduce these bit-identically: the
/// tokens it parks consume the same sequence numbers the old
/// requeue-into-the-heap retry loop did, so every handler runs at the
/// same cycle in the same order. If this test fails after an engine
/// change, the change altered protocol-visible event ordering — that is
/// a bug unless the cost model intentionally changed, in which case
/// re-record via `cargo test golden -- --nocapture`.
const GOLDEN_REVOKE_CYCLES: u64 = 83337;
const GOLDEN_FINAL_NOW: u64 = 526069;
const GOLDEN_EVENTS: u64 = 667;
const GOLDEN_CAPS_DELETED: u64 = 57;
const GOLDEN_KCALLS: u64 = 150;

/// A three-kernel machine revokes one capability tree that is both wide
/// (24 children fanned over every VPE of two remote groups) and deep (a
/// 32-link delegation chain ping-ponging between the two remote groups,
/// hanging off one of the wide children). The revocation crosses
/// machine boundaries in both directions and its cycle count is pinned
/// to the pre-refactor engine.
#[test]
fn cross_machine_revocation_matches_golden() {
    use semper_base::KernelMode;

    let run = || {
        let mut m = MicroMachine::new(3, 3, KernelMode::SemperOS);
        let a = m.vpe(0, 0);
        let root = m.create_mem(a);
        // Wide layer: every other VPE of all three groups holds three
        // direct children of the root.
        let mut first_remote_child = None;
        for round in 0..3 {
            for g in 0..3u16 {
                for j in 0..3u16 {
                    if (g, j) == (0, 0) {
                        continue;
                    }
                    let (sel, _) = m.delegate(a, m.vpe(g, j), root);
                    if round == 0 && g == 1 && j == 0 {
                        first_remote_child = Some(sel);
                    }
                }
            }
        }
        // Deep layer: a spanning chain under the first remote child,
        // alternating between groups 1 and 2 on every link.
        let mut holder = m.vpe(1, 0);
        let mut sel = first_remote_child.expect("wide layer populated");
        for _ in 0..32 {
            let next = if holder == m.vpe(1, 0) { m.vpe(2, 0) } else { m.vpe(1, 0) };
            let (nsel, _) = m.delegate(holder, next, sel);
            holder = next;
            sel = nsel;
        }
        let revoke_cycles = m.revoke(a, root);
        m.machine().check_invariants();
        let stats: Vec<KernelStats> = m.machine().kernel_stats();
        let caps_deleted: u64 = stats.iter().map(|s| s.caps_deleted).sum();
        let kcalls: u64 = stats.iter().map(|s| s.kcalls_out).sum();
        (revoke_cycles, m.machine().now().0, m.machine().events(), caps_deleted, kcalls, stats)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "cross-machine revocation diverged between runs");
    println!(
        "golden: revoke_cycles={} now={} events={} caps_deleted={} kcalls={}",
        first.0, first.1, first.2, first.3, first.4
    );
    assert_eq!(
        (first.0, first.1, first.2, first.3, first.4),
        (GOLDEN_REVOKE_CYCLES, GOLDEN_FINAL_NOW, GOLDEN_EVENTS, GOLDEN_CAPS_DELETED, GOLDEN_KCALLS),
        "cycle trace drifted from the pre-stall-lane engine golden"
    );
}

/// Golden cycle counts for [`session_open_close_matches_golden`],
/// recorded on the hand-rolled per-module protocol state machines
/// *before* the port onto the `kernel::ops` distributed-op engine
/// (PR 3). The engine must reproduce the session-establishment protocol
/// bit-identically: same upcalls, same inter-kernel messages, same
/// costs. Re-record via `cargo test session_open -- --nocapture` only if
/// the cost model or protocol intentionally changed.
const GOLDEN_SESS_OPEN_REMOTE_A: u64 = 4441;
const GOLDEN_SESS_OPEN_REMOTE_B: u64 = 4081;
const GOLDEN_SESS_OPEN_LOCAL: u64 = 2040;
const GOLDEN_SESS_CLOSE_CLIENT: u64 = 1267;
const GOLDEN_SESS_CLOSE_SRV: u64 = 4678;
const GOLDEN_SESS_FINAL_NOW: u64 = 17629;
const GOLDEN_SESS_EVENTS: u64 = 30;

/// A three-kernel machine runs the full session lifecycle: a service
/// registers in group 1 (announced to every kernel), two clients in
/// groups 0 and 2 open sessions across kernel boundaries, one client in
/// group 1 opens locally, then one client closes (revokes its session
/// capability — the parent link at the service's kernel goes stale), and
/// finally the service capability is revoked, sweeping the remaining
/// session children through the revocation protocol — including the
/// vacuous revoke replies for the already-closed session. Pinned before
/// the `kernel::ops` port so the refactor is locked to this exact
/// message choreography.
#[test]
fn session_open_close_matches_golden() {
    use semper_base::msg::{SysReplyData, Syscall};

    const NAME: u64 = 77;
    let run = || {
        let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
        let srv = m.vpe(1, 0);
        let client_a = m.vpe(0, 0);
        let client_b = m.vpe(2, 0);
        let client_local = m.vpe(1, 1);
        let (r, _) = m.machine().syscall_blocking(srv, Syscall::CreateSrv { name: NAME });
        let Ok(SysReplyData::Sel(srv_sel)) = r.result else { panic!("create_srv: {r:?}") };
        // Let the service announcements reach every kernel before the
        // first open (boot-time barrier, as in the application runs).
        m.machine().run_until_idle();

        let open = |m: &mut MicroMachine, vpe| {
            let (r, cycles) =
                m.machine().syscall_blocking(vpe, Syscall::OpenSession { name: NAME });
            match r.result {
                Ok(SysReplyData::Session { sel, .. }) => (sel, cycles),
                other => panic!("open_session: {other:?}"),
            }
        };
        let (sess_a, open_a) = open(&mut m, client_a);
        let (_sess_b, open_b) = open(&mut m, client_b);
        let (_sess_l, open_l) = open(&mut m, client_local);

        // Close A's session: a client-side revoke of the session
        // capability (the stale child reference stays at the service's
        // kernel until the service capability goes).
        let close_a = m.revoke(client_a, sess_a);
        // Tear the service down: revoking the service capability sweeps
        // the remaining sessions in groups 1 and 2.
        let close_srv = m.revoke(srv, srv_sel);
        m.machine().check_invariants();
        let stats: Vec<KernelStats> = m.machine().kernel_stats();
        let opened: u64 = stats.iter().map(|s| s.sessions_opened).sum();
        let deleted: u64 = stats.iter().map(|s| s.caps_deleted).sum();
        (
            open_a,
            open_b,
            open_l,
            close_a,
            close_srv,
            m.machine().now().0,
            m.machine().events(),
            opened,
            deleted,
            stats,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "session lifecycle diverged between runs");
    println!(
        "golden: open_a={} open_b={} open_l={} close_a={} close_srv={} now={} events={}",
        first.0, first.1, first.2, first.3, first.4, first.5, first.6
    );
    assert_eq!(first.7, 3, "three sessions opened");
    assert_eq!(
        (first.0, first.1, first.2, first.3, first.4, first.5, first.6),
        (
            GOLDEN_SESS_OPEN_REMOTE_A,
            GOLDEN_SESS_OPEN_REMOTE_B,
            GOLDEN_SESS_OPEN_LOCAL,
            GOLDEN_SESS_CLOSE_CLIENT,
            GOLDEN_SESS_CLOSE_SRV,
            GOLDEN_SESS_FINAL_NOW,
            GOLDEN_SESS_EVENTS,
        ),
        "session protocol cycle trace drifted from the pre-ops-engine golden"
    );
}

/// Golden cycle counts for [`group_migration_matches_golden`], recorded
/// when the capability-group migration protocol landed (PR 3, on the
/// `kernel::ops` engine). Pins the full choreography: marshal, install,
/// handover, membership fan-out/acks, and the post-migration routing of
/// exchanges and revokes to the group's new owner.
const GOLDEN_MIG_FIRST: u64 = 6918;
const GOLDEN_MIG_SECOND: u64 = 6902;
const GOLDEN_MIG_OBTAIN: u64 = 6548;
const GOLDEN_MIG_REVOKE: u64 = 6671;
const GOLDEN_MIG_FINAL_NOW: u64 = 48565;
const GOLDEN_MIG_EVENTS: u64 = 46;

/// A three-kernel machine migrates a VPE's capability group twice
/// (kernel 0 → 1 → 2) while the group's capability tree has children in
/// every other group, then exercises the protocol against the new
/// owner: a spanning obtain routed by the updated membership tables and
/// a revoke sweeping the pre-migration children. Cycle-pinned.
#[test]
fn group_migration_matches_golden() {
    use semper_base::KernelId;

    let run = || {
        let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
        let a = m.vpe(0, 0);
        let root = m.create_mem(a);
        // Children in both remote groups plus one local sibling holder.
        let (_, _) = m.delegate(a, m.vpe(1, 0), root);
        let (_, _) = m.delegate(a, m.vpe(2, 0), root);
        let (_, _) = m.delegate(a, m.vpe(0, 1), root);

        let first = m.machine().migrate_vpe(a, KernelId(1)).expect("quiescent migration");
        let second = m.machine().migrate_vpe(a, KernelId(2)).expect("quiescent migration");
        // Routing after two hops: a spanning obtain from group 0 must
        // find the group at kernel 2.
        let (_, obtain_cycles) = m.obtain(m.vpe(0, 1), a, root);
        let revoke_cycles = m.revoke(a, root);
        m.machine().check_invariants();
        let stats: Vec<KernelStats> = m.machine().kernel_stats();
        let migrations: u64 = stats.iter().map(|s| s.migrations_out + s.migrations_in).sum();
        (
            first,
            second,
            obtain_cycles,
            revoke_cycles,
            m.machine().now().0,
            m.machine().events(),
            migrations,
            stats,
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "group migration diverged between runs");
    println!(
        "golden: first={} second={} obtain={} revoke={} now={} events={}",
        first.0, first.1, first.2, first.3, first.4, first.5
    );
    assert_eq!(first.6, 4, "two completed migrations, counted at source and destination");
    assert_eq!(
        (first.0, first.1, first.2, first.3, first.4, first.5),
        (
            GOLDEN_MIG_FIRST,
            GOLDEN_MIG_SECOND,
            GOLDEN_MIG_OBTAIN,
            GOLDEN_MIG_REVOKE,
            GOLDEN_MIG_FINAL_NOW,
            GOLDEN_MIG_EVENTS,
        ),
        "migration cycle trace drifted from the PR 3 golden"
    );
}

/// A measurement on a machine reused through [`MachinePool`] must
/// yield the same simulated cycles as on a freshly built machine:
/// selector free lists hand back freed selectors, credit budgets are
/// restored at quiescence, and allocator high-water marks never enter
/// a cost computation. This is what lets the figure benches pool
/// machines without perturbing their reported cycle counts.
#[test]
fn pooled_reuse_is_cycle_identical() {
    use semper_base::KernelMode;
    use semperos::pool::MachinePool;

    let mut pool = MachinePool::new();
    let fresh_chain = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(24, true));
    assert_eq!(pool.idle(), 1);
    // Same measurements, same machine (reused twice more).
    let reused_once = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(24, true));
    let reused_twice = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(24, true));
    assert_eq!(fresh_chain, reused_once, "first reuse drifted");
    assert_eq!(fresh_chain, reused_twice, "repeated reuse drifted");
    // A different measurement shape on the reused machine still matches
    // a fresh machine.
    let reused_tree = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_tree_revoke(16, 1));
    let fresh_tree = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_tree_revoke(16, 1);
    assert_eq!(reused_tree, fresh_tree, "reused machine measured different cycles than fresh");
}

/// One scenario's observable outputs plus every kernel's full state
/// digest, for serial-vs-parallel comparison.
#[derive(Debug, PartialEq, Eq)]
struct DetRow {
    name: &'static str,
    cycles: u64,
    events: u64,
    now: u64,
    caps_deleted: u64,
    kcalls: u64,
    digest: Vec<String>,
}

/// Runs one measurement and reduces the machine to a [`DetRow`].
fn det_row(name: &'static str, mut m: MicroMachine, cycles: u64) -> DetRow {
    let kernels = m.shape().0;
    let mach = m.machine();
    let stats = mach.kernel_stats();
    DetRow {
        name,
        cycles,
        events: mach.events(),
        now: mach.now().0,
        caps_deleted: stats.iter().map(|s| s.caps_deleted).sum(),
        kcalls: stats.iter().map(|s| s.kcalls_out).sum(),
        digest: (0..kernels).flat_map(|k| mach.kernel(KernelId(k)).state_digest()).collect(),
    }
}

/// The scenario job list of the parallel-runner golden: a mix of
/// shapes and protocols, each job building and consuming its own
/// machine — the `scale_capops` pattern in miniature.
fn runner_jobs() -> Vec<Job<'static, DetRow>> {
    vec![
        Box::new(|| {
            let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
            let c = m.measure_chain_revoke(32, false);
            det_row("chain_local", m, c)
        }),
        Box::new(|| {
            let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
            let c = m.measure_chain_revoke(48, true);
            det_row("chain_spanning", m, c)
        }),
        Box::new(|| {
            let mut m = MicroMachine::new(3, 3, KernelMode::SemperOS);
            let c = m.measure_tree_revoke(64, 2);
            det_row("tree_wide", m, c)
        }),
        Box::new(|| {
            let mut m = MicroMachine::new(1, 3, KernelMode::M3);
            let c = m.measure_chain_revoke(24, false);
            det_row("chain_m3", m, c)
        }),
        Box::new(|| {
            let mut m = MicroMachine::new(4, 2, KernelMode::SemperOS);
            let c = m.measure_tree_revoke(48, 3);
            det_row("tree_spanning", m, c)
        }),
        Box::new(|| {
            let mut m = MicroMachine::new(2, 3, KernelMode::SemperOS);
            let c = m.measure_chain_revoke(40, false);
            det_row("chain_deep", m, c)
        }),
    ]
}

/// The parallel runner's determinism golden (ISSUE 8): the same job
/// list at 1, 2 and 4 workers must produce byte-identical rows — same
/// simulated cycles, event counts, kernel statistics, and full kernel
/// state digests, in the same (submission) order — and pooled-machine
/// reuse across workers must not perturb measured cycles.
#[test]
fn parallel_runner_matches_serial() {
    let render = |rows: &[DetRow]| -> String {
        rows.iter()
            .map(|r| {
                format!(
                    "{} cycles={} events={} now={} caps={} kcalls={} digest={}",
                    r.name,
                    r.cycles,
                    r.events,
                    r.now,
                    r.caps_deleted,
                    r.kcalls,
                    r.digest.join(";")
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };

    let serial = Runner::new(1).run(runner_jobs());
    assert_eq!(serial.len(), 6);
    assert!(serial.iter().all(|r| r.cycles > 0 && !r.digest.is_empty()));
    for threads in [2, 4] {
        let parallel = Runner::new(threads).run(runner_jobs());
        assert_eq!(serial, parallel, "{threads}-worker run diverged from serial");
        // Byte-identity, not just structural equality: everything a
        // report would print from these rows is the same string.
        assert_eq!(
            render(&serial),
            render(&parallel),
            "{threads}-worker rendering diverged from serial"
        );
    }

    // Pooled reuse across workers: machines parked by one worker and
    // reused by another must measure the same cycles as a fresh build
    // (the MachinePool contract, now exercised through the shared pool
    // under real thread interleaving).
    let fresh = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_chain_revoke(24, true);
    let pool = SharedMachinePool::new(4);
    pool.put(MicroMachine::new(2, 2, KernelMode::SemperOS));
    pool.put(MicroMachine::new(2, 2, KernelMode::SemperOS));
    let pooled = Runner::new(4).map_pooled(
        &pool,
        2,
        2,
        KernelMode::SemperOS,
        (0..6).collect::<Vec<u32>>(),
        |_, _, m| m.measure_chain_revoke(24, true),
    );
    assert_eq!(pooled, vec![fresh; 6], "pooled reuse across workers drifted from fresh");
    assert!(pool.idle() >= 2, "the seeded machines must come back to the pool");
}

/// A machine built with the parallel build phase must be
/// indistinguishable from a serially built one: the same application
/// run on both yields bit-identical per-client finish times and kernel
/// statistics.
#[test]
fn parallel_build_matches_serial_build() {
    let mut cfg = MachineConfig::small();
    cfg.num_pes = 16;
    cfg.kernels = 2;
    cfg.services = 2;
    let serial = app_run(&cfg, AppKind::Find, 4);
    for threads in [2, 4] {
        let res = run_app_instances_threads(&cfg, AppKind::Find, 4, threads);
        let parallel = RunFingerprint {
            durations: res.durations.clone(),
            makespan: res.makespan,
            cap_ops: res.cap_ops,
            kernel_stats: res.kernel_stats,
        };
        assert_eq!(serial, parallel, "{threads}-thread build produced a different machine");
    }
}

/// Concurrent, overlapping revocations wake their waiters in a fixed
/// order; the kill/exit path sorts its pending-op sweep. Run the same
/// interleaving twice and compare every kernel's counters.
#[test]
fn teardown_under_load_is_bit_identical() {
    use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
    use semper_base::{CapSel, VpeId};
    use semper_kernel::harness::TestCluster;

    let run = || {
        let mut c = TestCluster::new(3, 2);
        let sel =
            match c.syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
                Ok(SysReplyData::Mem { sel, .. }) => sel,
                other => panic!("create_mem failed: {other:?}"),
            };
        // Spread copies over every VPE, then kill holders mid-traffic.
        for to in 1..6u16 {
            let _ = c.syscall(
                VpeId(0),
                Syscall::Exchange {
                    other: VpeId(to),
                    own_sel: sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            );
        }
        c.syscall_async(VpeId(0), Syscall::Revoke { sel, own: true });
        c.pump_n(3);
        c.kill(VpeId(3));
        c.kill(VpeId(1));
        c.pump_all();
        c.check_invariants();
        let stats: Vec<_> = c.kernels.iter().map(|k| *k.stats()).collect();
        let caps = c.total_caps();
        (stats, caps)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "teardown interleaving diverged between runs");
}
