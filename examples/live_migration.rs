//! Non-quiescent capability-group migration: the forward-or-hold
//! window (§4.2, extended).
//!
//! ```text
//! cargo run --release --example live_migration
//! ```
//!
//! Alice's capability group migrates from kernel 0 to kernel 2 while
//! traffic keeps flowing: Alice herself issues system calls through her
//! not-yet-re-programmed DTU (they land at the old owner), and Bob —
//! whose kernel has not yet seen the membership update — fires a
//! spanning obtain at the stale address. The old owner parks every call
//! that resolves into the moving group in the migration's hold queue,
//! replays it in arrival order once the bystander fan-in drains, and
//! relays stale-routed traffic to the new owner afterwards. No call is
//! lost, duplicated, or answered from stale state.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, KernelId, VpeId};
use semper_kernel::harness::TestCluster;

fn main() {
    let mut c = TestCluster::new(3, 2);
    let alice = VpeId(0); // group 0
    let bob = VpeId(2); // group 1

    // Alice shares a capability with Bob: a cross-kernel parent/child
    // link that the migration must carry over intact.
    let root = match c.syscall(alice, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem: {other:?}"),
    };
    let r = c.syscall(
        alice,
        Syscall::Exchange {
            other: bob,
            own_sel: root,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    assert!(r.result.is_ok(), "delegate: {:?}", r.result);
    println!("alice ({alice}) shared a capability with bob ({bob}); parent at kernel 0");

    // Open the handover window — and keep the traffic coming.
    let src = c.start_migration(alice, KernelId(2)).expect("start migration");
    println!("migration to kernel 2 started; handover window is open");

    // Alice's DTU still points at kernel 0: her calls arrive at the old
    // owner mid-window and ride the hold queue.
    let t_create = c.syscall_async_via(
        alice,
        KernelId(0),
        Syscall::CreateMem { size: 4096, perms: Perms::RW },
    );
    let t_revoke =
        c.syscall_async_via(alice, KernelId(0), Syscall::Revoke { sel: root, own: true });
    // Bob's kernel still routes alice to kernel 0: the inter-kernel
    // request is held too, then relayed to the new owner.
    let t_obtain = c.syscall_async(
        bob,
        Syscall::Exchange {
            other: alice,
            own_sel: CapSel::INVALID,
            other_sel: root,
            kind: ExchangeKind::Obtain,
        },
    );
    c.pump_all();

    assert!(c.kernels[src.idx()].take_migration_failure(alice).is_none(), "migration failed");
    let create = c.take_reply(alice, t_create).expect("create reply lost");
    let revoke = c.take_reply(alice, t_revoke).expect("revoke reply lost");
    let obtain = c.take_reply(bob, t_obtain).expect("obtain reply lost");
    assert!(create.result.is_ok(), "create: {:?}", create.result);
    assert!(revoke.result.is_ok(), "revoke: {:?}", revoke.result);
    println!("alice's held create + revoke replayed against the new owner, in arrival order");
    // The obtain raced the revoke of the very capability it wanted —
    // serialized through the hold queue, it must observe the revoke's
    // outcome (the create/obtain/revoke arrival order above is fixed,
    // so the obtain replays after the subtree is gone).
    assert!(obtain.result.is_err(), "obtain must see the replayed revoke: {:?}", obtain.result);
    println!("bob's stale-routed obtain was relayed and observed the revoke (denied cleanly)");

    c.check_invariants();
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} left suspended ops", k.id());
    }
    assert!(c.kernels[2].vpe_alive(alice), "group must land at kernel 2");
    let s = *c.kernels[src.idx()].stats();
    assert_eq!(s.migrations_out, 1);
    assert!(s.ops_held >= 3, "all three racing calls ride the hold queue: {}", s.ops_held);
    println!();
    println!(
        "old owner: held {} ops, forwarded {} syscalls + {} kcalls; \
         new owner: {} migration in, {} caps total across the cluster",
        s.ops_held,
        s.syscalls_forwarded,
        s.kcalls_forwarded,
        c.kernels[2].stats().migrations_in,
        c.total_caps()
    );
    println!("non-quiescent migration converged: no call lost, no stale answer.");
}
