//! Quickstart: boot a small SemperOS machine and exercise the
//! distributed capability system.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The machine has two kernels (two PE groups) and four application VPEs.
//! We create a memory capability in group 0, obtain it from group 1 (a
//! group-spanning exchange, sequence B of Figure 3), and then revoke it,
//! which removes the remote copy through the two-phase revocation
//! protocol.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, KernelMode};
use semper_sim::Cycles;
use semperos::experiment::MicroMachine;

fn main() {
    // Two kernels, two VPEs per group: VPE0/VPE2 live in group 0,
    // VPE1/VPE3 in group 1 (round-robin placement).
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    let alice = m.vpe(0, 0); // group 0
    let bob = m.vpe(1, 0); // group 1

    // Alice allocates 4 KiB of global memory.
    let (reply, cycles) =
        m.machine().syscall_blocking(alice, Syscall::CreateMem { size: 4096, perms: Perms::RW });
    let Ok(SysReplyData::Mem { sel, addr }) = reply.result else {
        panic!("create_mem failed: {reply:?}");
    };
    println!("alice ({alice}) created a memory capability:");
    println!("  selector {sel}, region {addr:#x}..{:#x}  ({cycles} cycles)", addr + 4096);

    // Bob obtains it — his kernel coordinates with Alice's kernel.
    let (reply, cycles) = m.machine().syscall_blocking(
        bob,
        Syscall::Exchange {
            other: alice,
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    let Ok(SysReplyData::Sel(bob_sel)) = reply.result else {
        panic!("obtain failed: {reply:?}");
    };
    println!("bob ({bob}) obtained it across kernels:");
    println!("  selector {bob_sel}  ({cycles} cycles — a group-spanning exchange)");

    // Alice revokes: the recursive revocation reaches Bob's kernel.
    let (reply, cycles) = m.machine().syscall_blocking(alice, Syscall::Revoke { sel, own: true });
    assert!(reply.result.is_ok());
    println!("alice revoked the capability ({cycles} cycles, spanning two kernels)");

    // Bob's copy is gone: using the selector now fails.
    let (reply, _) = m.machine().syscall_blocking(bob, Syscall::Revoke { sel: bob_sel, own: true });
    println!(
        "bob's copy is gone: revoking his stale selector reports {:?}",
        reply.result.unwrap_err().code()
    );

    m.machine().check_invariants();
    println!();
    let now: Cycles = m.machine().now();
    println!(
        "simulated {} cycles ({:.2} µs at 2 GHz), {} events — all capability",
        now.0,
        now.as_micros(),
        m.machine().events()
    );
    println!("trees consistent across both kernels.");
}
