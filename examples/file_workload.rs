//! Domain example: run the paper's application workloads against m3fs.
//!
//! ```text
//! cargo run --release --example file_workload [instances]
//! ```
//!
//! Boots the paper's 640-PE testbed with 32 kernels and 32 m3fs
//! instances, runs the requested number of parallel instances of every
//! application (default 64), and reports per-application runtimes,
//! capability-operation counts, and parallel efficiency — a miniature of
//! Table 4 and Figure 6.

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semper_sim::Cycles;
use semperos::experiment::{parallel_efficiency, run_app_instances};

fn main() {
    let instances: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let cfg = MachineConfig::paper_testbed(32, 32);
    println!(
        "machine: {} PEs, {} kernels, {} m3fs instances; {instances} instances per app",
        cfg.num_pes, cfg.kernels, cfg.services
    );
    println!();
    println!(
        "{:<9} {:>12} {:>10} {:>12} {:>12} {:>11}",
        "app", "runtime(ms)", "cap ops", "cap ops/s", "efficiency", "paper ops"
    );
    for app in AppKind::ALL {
        let r1 = run_app_instances(&cfg, app, 1);
        let rn = run_app_instances(&cfg, app, instances);
        let eff = parallel_efficiency(r1.mean_duration(), rn.mean_duration());
        println!(
            "{:<9} {:>12.3} {:>10} {:>12.0} {:>11.1}% {:>11}",
            app.name(),
            Cycles(rn.mean_duration() as u64).as_millis(),
            rn.cap_ops,
            rn.cap_ops_per_sec(),
            eff,
            app.paper_cap_ops() * instances as u64,
        );
    }
    println!();
    println!("each instance opens an m3fs session, pulls per-extent memory");
    println!("capabilities for its file accesses, and closes files to revoke");
    println!("them — every row above is real protocol traffic.");
}
