//! Domain example: the Nginx webserver experiment (§5.3.3).
//!
//! ```text
//! cargo run --release --example webserver
//! ```
//!
//! Network-interface PEs drive closed-loop request load against
//! webserver VPEs; each request is served by replaying an
//! open-read-close trace against m3fs (one extent capability delegated
//! and revoked per request). Prints a small scaling sweep.

use semper_base::MachineConfig;
use semperos::experiment::run_nginx;

fn main() {
    println!("{:<22} {:>10} {:>14}", "config", "servers", "requests/s");
    for (kernels, services) in [(8u16, 8u16), (32, 32)] {
        for servers in [32u16, 64, 128] {
            let cfg = MachineConfig::paper_testbed(kernels, services);
            let res = run_nginx(&cfg, servers, (servers / 16).max(1), 4, 500_000, 2_000_000);
            println!(
                "{:<22} {:>10} {:>14.0}",
                format!("{kernels} kernels {services} svc"),
                servers,
                res.requests_per_sec
            );
        }
    }
    println!();
    println!("with ample OS resources (32/32) throughput scales with server");
    println!("count; the small-OS configuration flattens as the kernels and");
    println!("services saturate — the shape of the paper's Figure 10.");
}
