//! Blocking vs promise-pipelined service chains (`Feature::PromiseIpc`).
//!
//! ```text
//! cargo run --release --example pipelined_service_chain
//! ```
//!
//! Every client runs the canonical three-hop dependent chain of a
//! service interaction — "open" (create a memory capability), "read"
//! (derive the transfer window from it), "hand off" (delegate the
//! window to a partner VPE in the other kernel group) — once blocking,
//! once pipelined through promise capabilities. The blocking twin
//! issues each hop as its own synchronous system call; the pipelined
//! twin submits all three hops up front (dependencies named by their
//! *promise* selector) and redeems only the tail, so the submission
//! round trips of later clients overlap the kernel-side work of
//! earlier ones.
//!
//! The example hard-asserts that the pipelined twin finishes the whole
//! workload in fewer simulated cycles than the blocking twin, and
//! prints per-hop latencies plus the kernels' network and promise
//! counters. Output is **byte-identical across runs and harness worker
//! counts**: CI executes this example serially and with
//! `BENCH_THREADS=4` and diffs the two outputs verbatim.

use semper_base::config::Feature;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, KernelMode, VpeId};
use semperos::experiment::MicroMachine;
use semperos::{Job, Runner};

/// Kernel groups in each twin machine.
const KERNELS: u16 = 2;
/// Client VPEs per group — the chain runs once per client.
const CLIENTS_PER_GROUP: u16 = 8;
/// Hops per chain (open → read → hand off).
const HOPS: usize = 3;

/// The three-hop chain of `client`, as plain syscalls. `dep` selectors
/// are filled by the caller (resolved selectors when blocking, promise
/// selectors when pipelined).
fn hop_call(hop: usize, client: VpeId, dep: CapSel) -> Syscall {
    match hop {
        0 => Syscall::CreateMem { size: 16 * 1024, perms: Perms::RW },
        1 => Syscall::DeriveMem { src: dep, offset: 0, size: 4096, perms: Perms::R },
        // The partner lives in the other group (round-robin placement
        // by VPE id parity), so the hand-off spans both kernels.
        2 => Syscall::Exchange {
            other: VpeId(client.0 ^ 1),
            own_sel: dep,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
        _ => unreachable!("the chain has {HOPS} hops"),
    }
}

/// Selector carried out of a hop's (resolved) reply.
fn result_sel(reply: &SysReplyData) -> CapSel {
    match reply {
        SysReplyData::Mem { sel, .. } => *sel,
        SysReplyData::Sel(sel) => *sel,
        _ => CapSel::INVALID,
    }
}

/// One full twin run; returns the printable block and the end-to-end
/// simulated cycle count of the whole workload.
fn run_twin(pipelined: bool) -> (String, u64) {
    let mut mm = MicroMachine::new(KERNELS, CLIENTS_PER_GROUP, KernelMode::SemperOS);
    if pipelined {
        mm.machine().enable_feature_everywhere(Feature::PromiseIpc);
    }
    // Only group-0 clients initiate; their partners in group 1 receive
    // the hand-off (round-robin placement: even ids → group 0).
    let clients: Vec<VpeId> = (0..CLIENTS_PER_GROUP).map(|j| VpeId(j * KERNELS)).collect();

    let t0 = mm.machine().now();
    let mut hop_cycles = [0u64; HOPS];
    let mut wait_cycles = 0u64;

    if pipelined {
        // Submit every client's whole chain; each submission replies
        // immediately with a promise, so the kernels work on earlier
        // chains while later clients are still submitting.
        let mut tails: Vec<(VpeId, CapSel)> = Vec::new();
        for &client in &clients {
            let mut dep = CapSel::INVALID;
            for (hop, spent) in hop_cycles.iter_mut().enumerate() {
                let call = Syscall::SubmitAsync(Box::new(hop_call(hop, client, dep)));
                let (reply, cycles) = mm.machine().syscall_blocking(client, call);
                let Ok(SysReplyData::Promise { sel }) = reply.result else {
                    panic!("submission must yield a promise: {reply:?}");
                };
                *spent += cycles;
                dep = sel;
            }
            tails.push((client, dep));
        }
        // Redeem only the tails: program order guarantees the earlier
        // hops completed when the tail resolves.
        for (client, tail) in tails {
            let (reply, cycles) = mm
                .machine()
                .syscall_blocking(client, Syscall::WaitPromise { sel: tail, block: true });
            assert!(
                matches!(reply.result, Ok(SysReplyData::Delegated { .. })),
                "tail must resolve to the hand-off result: {reply:?}"
            );
            wait_cycles += cycles;
        }
    } else {
        for &client in &clients {
            let mut dep = CapSel::INVALID;
            for (hop, spent) in hop_cycles.iter_mut().enumerate() {
                let (reply, cycles) =
                    mm.machine().syscall_blocking(client, hop_call(hop, client, dep));
                let data = reply.result.unwrap_or_else(|e| panic!("hop {hop} failed: {e}"));
                *spent += cycles;
                dep = result_sel(&data);
            }
        }
    }

    mm.machine().run_until_idle();
    mm.machine().check_invariants();
    mm.machine().assert_quiescent();
    let total = (mm.machine().now() - t0).0;

    let n = clients.len() as u64;
    let mode = if pipelined { "pipelined" } else { "blocking" };
    let mut out = format!("{mode} twin ({n} clients x {HOPS}-hop chains):\n");
    let hop_names = ["open (create)", "read (derive)", "hand off (delegate)"];
    for (hop, name) in hop_names.iter().enumerate() {
        let what = if pipelined { "submit latency" } else { "latency" };
        out.push_str(&format!(
            "  hop {hop} {name:<22} mean {what} {:>6} cycles\n",
            hop_cycles[hop] / n
        ));
    }
    if pipelined {
        out.push_str(&format!(
            "  tail redemption            mean latency {:>6} cycles\n",
            wait_cycles / n
        ));
    }
    out.push_str(&format!("  end-to-end: {total} cycles\n"));
    let mut kcalls_out = 0u64;
    let mut spanning = 0u64;
    let (mut created, mut resolved, mut pipelined_calls) = (0u64, 0u64, 0u64);
    for s in mm.machine().kernel_stats() {
        kcalls_out += s.kcalls_out;
        spanning += s.exchanges_spanning;
        created += s.promises_created;
        resolved += s.promises_resolved;
        pipelined_calls += s.calls_pipelined;
    }
    out.push_str(&format!(
        "  net: kcalls {kcalls_out}, spanning exchanges {spanning}, promises {created} created / \
         {resolved} resolved, {pipelined_calls} calls pipelined\n"
    ));
    (out, total)
}

fn main() {
    let jobs: Vec<Job<'static, (String, u64)>> =
        vec![Box::new(|| run_twin(false)), Box::new(|| run_twin(true))];
    let mut results = Runner::from_env().run(jobs);
    let (pip_block, pip_total) = results.pop().expect("pipelined twin ran");
    let (blk_block, blk_total) = results.pop().expect("blocking twin ran");
    println!("{blk_block}");
    println!("{pip_block}");
    assert!(
        pip_total < blk_total,
        "pipelining must reduce end-to-end cycles: pipelined {pip_total} >= blocking {blk_total}"
    );
    let saved = blk_total - pip_total;
    println!(
        "pipelined chains finished in {pip_total} cycles vs {blk_total} blocking — \
         {saved} cycles ({:.1}%) saved by overlapping submissions with kernel work.",
        100.0 * saved as f64 / blk_total as f64
    );
}
