//! Domain example: failure injection against the exchange protocols.
//!
//! ```text
//! cargo run --release --example failure_injection
//! ```
//!
//! Replays the interference scenarios of Table 2 with VPEs dying at the
//! worst possible moments, and shows the protocol cleaning up: orphaned
//! capabilities are removed, the two-way delegate handshake aborts
//! cleanly, and overlapping revocations complete exactly once.
//!
//! Each scenario builds its own cluster, so they run on the parallel
//! harness (`semperos::Runner`, sized by `BENCH_THREADS`, default
//! serial); the summaries print in scenario order regardless of the
//! worker count.

use semper_base::config::Feature;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, VpeId};
use semper_kernel::harness::TestCluster;
use semperos::{Job, Runner};

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

/// Scenario 1: the obtainer dies while its obtain is in flight.
fn obtainer_killed_mid_obtain() -> String {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    c.pump_n(4); // owner linked the child; reply is in flight
    c.kill(VpeId(1));
    c.pump_all();
    c.check_invariants();
    format!(
        "scenario 1: obtainer killed mid-obtain\n  -> orphan cleaned at the owner's kernel: {} \
         (capabilities left: {})",
        c.kernels[0].stats().orphans_cleaned == 1,
        c.total_caps()
    )
}

/// Scenario 2: the receiver dies during a delegate handshake.
fn receiver_killed_mid_delegate() -> String {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let tag = c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    c.pump_n(5); // pending insert created at the receiver's kernel
    c.kill(VpeId(1));
    c.pump_all();
    let err = c.take_reply(VpeId(0), tag).unwrap().result.unwrap_err();
    c.check_invariants();
    format!(
        "scenario 2: receiver killed mid-delegate (two-way handshake in flight)\n  -> delegator \
         notified with {err}; no dangling child reference"
    )
}

/// Scenario 3: a VPE holding cross-kernel delegations exits.
fn exit_with_cross_kernel_chain() -> String {
    let mut c = TestCluster::new(3, 1);
    let a = create_mem(&mut c, VpeId(0));
    let r = c.syscall(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: a,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    let Ok(SysReplyData::Delegated { recv_sel }) = r.result else { panic!() };
    let _ = c.syscall(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(2),
            own_sel: recv_sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    c.syscall_async(VpeId(0), Syscall::Exit);
    c.pump_all();
    c.check_invariants();
    format!(
        "scenario 3: exit of a VPE with a two-hop cross-kernel delegation chain\n  -> recursive \
         revocation crossed three kernels; {} capabilities remain",
        c.total_caps()
    )
}

/// Scenario 4: a peer kernel's whole workload dies while a parallel
/// partitioned sweep (PR 6, `kernel::ops::sweep`) is marking its
/// partition. VPE death is the failure unit the model supports, so a
/// "kernel crash" is every VPE hosted by that kernel dying at once:
/// the victims' teardown revokes overlap the in-flight sweep and
/// must chain onto it instead of racing it, and the sweep must still
/// complete and acknowledge the initiator.
fn kernel_crash_mid_parallel_sweep() -> String {
    let mut c = TestCluster::new(4, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::ParallelSweep);
    }
    let root = create_mem(&mut c, VpeId(0));
    for to in [2u16, 3, 4, 5, 6, 7] {
        let r = c.syscall(
            VpeId(0),
            Syscall::Exchange {
                other: VpeId(to),
                own_sel: root,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        assert!(r.result.is_ok(), "delegate failed: {:?}", r.result);
    }
    let before = c.total_caps();
    let tag = c.syscall_async(VpeId(0), Syscall::Revoke { sel: root, own: true });
    c.pump_n(3); // mark requests are out; the partitions are not yet swept
    c.kill(VpeId(2));
    c.kill(VpeId(3));
    c.pump_all();
    assert!(c.take_reply(VpeId(0), tag).unwrap().result.is_ok(), "sweep not acknowledged");
    c.check_invariants();
    assert!(c.kernels[0].stats().sweeps >= 1, "revoke did not take the sweep path");
    assert_eq!(c.total_caps(), before - 7 - 2, "subtree + the dead VPEs' self-caps gone");
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} left suspended ops", k.id());
    }
    format!(
        "scenario 4: kernel 1's VPEs all die mid-parallel-sweep\n  -> sweep completed despite \
         the crash; {} capabilities remain, all kernels quiescent",
        c.total_caps()
    )
}

/// Scenario 5: a bystander kernel is effectively partitioned from
/// the migration's membership fan-out — its stale table still routes
/// the moving group to the old owner while the handover is in
/// flight, and the migrating VPE is killed before the window closes.
/// The old owner must hold both the stale-routed request and the
/// kill, replay them once the fan-in drains, and relay them to the
/// new owner; nothing may be lost or double-applied.
fn kill_races_live_migration() -> String {
    let mut c = TestCluster::new(3, 1);
    let root = create_mem(&mut c, VpeId(0));
    let src = c.start_migration(VpeId(0), semper_base::KernelId(2)).expect("start migration");
    let tag = c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: root,
            kind: ExchangeKind::Obtain,
        },
    );
    c.kill(VpeId(0));
    c.pump_all();
    assert!(c.kernels[src.idx()].take_migration_failure(VpeId(0)).is_none());
    // The obtain raced the kill: either outcome is legal, but it must
    // be answered, and the teardown must reach the new owner.
    assert!(c.take_reply(VpeId(1), tag).is_some(), "racing obtain lost its reply");
    c.pump_all();
    c.check_invariants();
    for k in &c.kernels {
        assert!(!k.vpe_alive(VpeId(0)), "kernel {} kept the killed VPE alive", k.id());
        assert_eq!(k.pending_ops(), 0, "kernel {} left suspended ops", k.id());
    }
    let s = *c.kernels[src.idx()].stats();
    assert_eq!(s.migrations_out, 1, "the migration itself must still complete");
    format!(
        "scenario 5: stale-routed obtain and a kill race a live group migration\n  -> old owner \
         held {} op(s), relayed {} request(s); kill chased the group, {} capabilities remain",
        s.ops_held,
        s.kcalls_forwarded,
        c.total_caps()
    )
}

fn main() {
    let jobs: Vec<Job<'static, String>> = vec![
        Box::new(obtainer_killed_mid_obtain),
        Box::new(receiver_killed_mid_delegate),
        Box::new(exit_with_cross_kernel_chain),
        Box::new(kernel_crash_mid_parallel_sweep),
        Box::new(kill_races_live_migration),
    ];
    for summary in Runner::from_env().run(jobs) {
        println!("{summary}");
    }
    println!();
    println!("all failure paths converged to consistent capability trees.");
}
