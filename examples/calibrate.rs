//! Internal calibration probe: prints Table 3 measurements.
use semper_base::KernelMode;
use semperos::experiment::MicroMachine;

fn main() {
    let mut s = MicroMachine::new(2, 2, KernelMode::SemperOS);
    println!("exchange local   (target 3597): {}", s.measure_exchange_local());
    println!("exchange spanning(target 6484): {}", s.measure_exchange_spanning());
    let mut s2 = MicroMachine::new(2, 2, KernelMode::SemperOS);
    println!("revoke local     (target 1997): {}", s2.measure_revoke_local());
    let mut s3 = MicroMachine::new(2, 2, KernelMode::SemperOS);
    println!("revoke spanning  (target 3876): {}", s3.measure_revoke_spanning());
    let mut m = MicroMachine::new(1, 2, KernelMode::M3);
    println!("M3 exchange local(target 3250): {}", m.measure_exchange_local());
    let mut m2 = MicroMachine::new(1, 2, KernelMode::M3);
    println!("M3 revoke local  (target 1423): {}", m2.measure_revoke_local());
}
