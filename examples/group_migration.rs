//! Capability-group migration: move a VPE's DDL ownership between
//! kernels mid-run (§4.2), on a live three-kernel machine.
//!
//! ```text
//! cargo run --release --example group_migration
//! ```
//!
//! Alice (group 0) shares a memory capability with Bob (group 1) and
//! Carol (group 2), then her whole capability group is migrated to
//! Carol's kernel. Her DDL keys — and with them the cross-kernel
//! parent/child links — stay valid verbatim; only the membership tables
//! change, propagated to every kernel with acknowledged updates. After
//! the move, Bob obtains from Alice *through her new kernel*, and
//! Alice's revoke sweeps all copies from her new home.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, KernelId, KernelMode};
use semperos::experiment::MicroMachine;

fn main() {
    let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
    let alice = m.vpe(0, 0); // group 0
    let bob = m.vpe(1, 0); // group 1
    let carol = m.vpe(2, 0); // group 2

    // Alice allocates memory and hands copies to Bob and Carol — two
    // group-spanning delegations; the children live at kernels 1 and 2
    // while their parent lives at kernel 0.
    let (r, _) =
        m.machine().syscall_blocking(alice, Syscall::CreateMem { size: 4096, perms: Perms::RW });
    let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!("create_mem: {r:?}") };
    let (_, _) = m.delegate(alice, bob, sel);
    let (_, _) = m.delegate(alice, carol, sel);
    println!("alice ({alice}) shared a capability with bob ({bob}) and carol ({carol}):");
    println!("  parent at kernel 0, children at kernels 1 and 2");

    // Migrate Alice's capability group to kernel 2. The records move
    // wholesale (same keys, same selectors); kernel 1 learns the new
    // routing through an acknowledged membership update.
    let cycles = m.machine().migrate_vpe(alice, KernelId(2)).expect("quiescent migration");
    println!("alice's group migrated to kernel 2 ({cycles} cycles:");
    println!("  marshal + install + handover + 1 membership ack)");

    // Bob obtains from Alice again — his kernel now routes the request
    // to kernel 2.
    let (r, cycles) = m.machine().syscall_blocking(
        bob,
        Syscall::Exchange {
            other: alice,
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{r:?}");
    println!("bob obtained from alice at her new kernel ({cycles} cycles)");

    // Alice revokes from her new home: the two-phase revocation fans
    // out from kernel 2 and removes every copy at kernels 1 and 2.
    let (r, cycles) = m.machine().syscall_blocking(alice, Syscall::Revoke { sel, own: true });
    assert!(r.result.is_ok(), "revoke: {r:?}");
    println!("alice revoked the tree from kernel 2 ({cycles} cycles, spanning revoke)");

    m.machine().check_invariants();
    let stats = m.machine().kernel_stats();
    println!();
    for (k, s) in stats.iter().enumerate() {
        println!(
            "kernel {k}: migrations out={} in={}, kcalls out={}, caps deleted={}",
            s.migrations_out, s.migrations_in, s.kcalls_out, s.caps_deleted
        );
    }
    assert_eq!(stats[0].migrations_out, 1);
    assert_eq!(stats[2].migrations_in, 1);
    println!();
    println!(
        "simulated {} cycles, {} events — capability trees consistent on all three kernels.",
        m.machine().now().0,
        m.machine().events()
    );
}
