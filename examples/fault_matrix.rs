//! Fixed-seed fault matrix: the determinism contract, demonstrated.
//!
//! ```text
//! cargo run --release --example fault_matrix
//! ```
//!
//! Runs one fixed spanning workload under three scripted fault plans —
//! a drop-heavy lossy network, a duplicate/delay storm, and a one-way
//! partition combined with a scripted kernel crash mid-sweep — and
//! prints every observable of each run: the NoC fault counters, each
//! surviving kernel's recovery stats, and its full state digest.
//!
//! The output is **byte-identical across runs and across harness
//! worker counts** (plan + seed ⇒ bit-identical run): CI executes this
//! example serially and with `BENCH_THREADS=4` and diffs the two
//! outputs verbatim. Each plan builds its own cluster, so the three
//! runs land on [`semperos::Runner`] workers; results print in plan
//! order regardless of completion order.

use semper_base::config::Feature;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, VpeId};
use semper_kernel::harness::TestCluster;
use semper_sim::{CrashPoint, FaultPlan, PartitionWindow};
use semperos::{Job, Runner};

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

/// One matrix cell: the fixed workload under `plan`. Three groups of
/// two VPEs; every VPE creates a root, delegates it to the next group
/// (spanning), and then every root is revoked — all issued
/// asynchronously with partial pumping so the windows overlap the
/// injected faults. The run must terminate quiescent; the returned
/// block is its complete observable state.
fn run_plan(name: &'static str, plan: FaultPlan, sweep: bool) -> String {
    let mut c = TestCluster::new(3, 2);
    if sweep {
        for k in &mut c.kernels {
            k.enable_feature_for_test(Feature::ParallelSweep);
        }
    }
    c.set_fault_plan(plan, 256);

    let roots: Vec<(VpeId, CapSel)> =
        (0..6u16).map(|v| (VpeId(v), create_mem(&mut c, VpeId(v)))).collect();
    for (i, &(vpe, sel)) in roots.iter().enumerate() {
        let to = VpeId(((vpe.0 / 2 + 1) % 3) * 2);
        c.syscall_async(
            vpe,
            Syscall::Exchange {
                other: to,
                own_sel: sel,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        c.pump_n(1 + i);
    }
    for &(vpe, sel) in &roots {
        c.syscall_async(vpe, Syscall::Revoke { sel, own: true });
    }
    c.pump_all();
    c.check_invariants();
    c.assert_quiescent();

    let fs = c.fault_stats().expect("plan installed");
    let mut out = format!(
        "plan {name}:\n  net: injected {} dropped {} duplicated {} delayed {} \
         partitioned {} healed {}\n",
        fs.injected, fs.dropped, fs.duplicated, fs.delayed, fs.partitioned, fs.partitions_healed
    );
    for k in &c.kernels {
        if !c.kernel_alive(k.id()) {
            out.push_str(&format!("  kernel {}: crashed\n", k.id()));
            continue;
        }
        let s = k.stats();
        out.push_str(&format!(
            "  kernel {}: retries {} aborted {} anomalies {} caps {}\n",
            k.id(),
            s.retries,
            s.ops_aborted,
            s.fault_anomalies,
            k.mapdb().len()
        ));
        for line in k.state_digest() {
            out.push_str("    ");
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

fn main() {
    let jobs: Vec<Job<'static, String>> = vec![
        Box::new(|| {
            run_plan(
                "drop-heavy",
                FaultPlan::seeded(0xFA17_0001).with_drop(90).with_delay(40, 8),
                false,
            )
        }),
        Box::new(|| {
            run_plan(
                "dup-delay-storm",
                FaultPlan::seeded(0xFA17_0002).with_duplicate(70).with_delay(110, 14),
                false,
            )
        }),
        Box::new(|| {
            run_plan(
                "partition-and-crash",
                FaultPlan::seeded(0xFA17_0003)
                    .with_drop(25)
                    .with_partition(PartitionWindow { from: 0, to: 1, start: 8, end: 160 })
                    .with_crash(CrashPoint { kernel: 2, phase: "sweep-part", after_nth: 1 }),
                true,
            )
        }),
    ];
    for block in Runner::from_env().run(jobs) {
        println!("{block}");
    }
    println!("all plans terminated quiescent; output is seed-deterministic.");
}
