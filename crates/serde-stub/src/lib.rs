//! Offline stand-in for `serde`.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the real `serde` cannot be fetched. The workspace only
//! uses serde for `#[derive(Serialize, Deserialize)]` decoration — no
//! code actually serializes anything yet — so this proc-macro crate
//! provides the two derives as no-ops. The derive sites stay untouched
//! in the source; pointing the workspace dependency back at the real
//! `serde = { version = "1", features = ["derive"] }` is all that is
//! needed once a registry is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
