//! m3fs: the in-memory, extent-based filesystem service.
//!
//! m3fs is the OS service the paper's application benchmarks exercise
//! (§2.2, §5.3.1): it implements file access *by handing out memory
//! capabilities*. A client opens a session, opens a file, and requests
//! extents; the service derives a memory capability covering the extent
//! from its filesystem-image capability and **delegates** it to the
//! client, which then accesses the data through its DTU without any
//! further OS involvement. Closing the file **revokes** the delegated
//! capabilities. Every file access thus turns into capability-system
//! load — which is exactly why these workloads stress SemperOS.
//!
//! * [`image`] — the filesystem image: directory tree, inodes, extents,
//!   and the specs used to pre-populate instances for the benchmarks.
//! * [`service`] — the service actor: session handling, the FS protocol,
//!   and the derive → delegate → revoke capability lifecycle.

pub mod image;
pub mod service;

pub use image::{FsImage, FsSpec};
pub use service::{FsService, FsServiceStats};

/// The well-known service name m3fs instances register under.
pub const M3FS_NAME: u64 = 0x6D33_6673; // "m3fs"
