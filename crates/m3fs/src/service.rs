//! The m3fs service actor.
//!
//! The service is a VPE like any other: it talks to its kernel through
//! blocking system calls (one at a time) and to its clients through
//! session-scoped IPC. Serving an extent takes two system calls —
//! `DeriveMem` (attenuate the image capability to the extent range) and
//! `Exchange`/delegate (hand it to the client, possibly across kernels) —
//! and closing a file revokes every capability delegated for it. This is
//! the exact capability lifecycle the paper describes for m3fs (§2.2)
//! and what generates the capability operations counted in Table 4.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use semper_apps::conn::{BatchBuilder, KernelConn};
use semper_base::msg::{
    ExchangeKind, FsOp, FsReplyData, FsReq, Outbox, Payload, Perms, SysReply, SysReplyData,
    Syscall, Upcall, UpcallReply,
};
use semper_base::{CapSel, Code, CostModel, Error, Msg, PeId, Result, VpeId};

use crate::image::{FsImage, EXTENT_BYTES};
use crate::M3FS_NAME;

/// Counters maintained by each service instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FsServiceStats {
    /// Sessions accepted.
    pub sessions: u64,
    /// Files opened.
    pub opens: u64,
    /// Extent capabilities served (derive + delegate pairs).
    pub extents_served: u64,
    /// Files closed.
    pub closes: u64,
    /// Revokes issued on close.
    pub revokes: u64,
    /// Metadata operations (stat, readdir, mkdir, unlink).
    pub meta_ops: u64,
}

/// Boot progress of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BootState {
    /// Not started.
    Cold,
    /// `CreateSrv` in flight.
    Registering,
    /// `CreateMem` for the image region in flight.
    AllocatingImage,
    /// Fully operational.
    Ready,
}

/// An open file handle.
#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    session: u64,
    /// Service-side selectors of extent capabilities delegated for this
    /// file (children of the image capability; revoked on close).
    delegated: Vec<CapSel>,
}

/// Where a pipelined close currently is, between syscall replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipeStep {
    /// `SubmitAsync(Revoke)` in flight for the head of `remaining`.
    Submit,
    /// Severing the promise handle of a non-tail revoke.
    Sever,
    /// Blocking `WaitPromise` on the tail promise.
    WaitTail,
    /// Severing the tail handle after it resolved.
    SeverTail,
}

/// Work that needs system calls, processed one syscall at a time.
#[derive(Debug, Clone)]
enum Work {
    /// Serve an extent: derive, then delegate.
    Extent {
        client_vpe: VpeId,
        client_pe: PeId,
        tag: u64,
        fid: u64,
        /// Range within the image region.
        region_offset: u64,
        /// File offset the extent starts at.
        file_offset: u64,
        len: u64,
        perms: Perms,
        /// Filled after the derive completed.
        derived_sel: Option<CapSel>,
    },
    /// Close a file: revoke each delegated capability, then ack.
    Close { client_pe: PeId, tag: u64, fid: u64, remaining: Vec<CapSel> },
    /// Close a file over the promise pipeline (`Feature::PromiseIpc`):
    /// submit one asynchronous revoke per delegated extent, sever each
    /// promise handle the moment the kernel hands it back, and block
    /// on the tail promise only — program-order pipelining guarantees
    /// every earlier revoke completed once the tail resolves.
    ClosePipelined {
        client_pe: PeId,
        tag: u64,
        fid: u64,
        /// Extent selectors not yet submitted.
        remaining: Vec<CapSel>,
        /// Revokes submitted in total, counted at the tail resolution.
        submitted: u64,
        /// Promise handle of the revoke most recently submitted.
        promise: Option<CapSel>,
        step: PipeStep,
    },
}

/// One m3fs instance.
pub struct FsService {
    vpe: VpeId,
    pe: PeId,
    cost: CostModel,
    /// The filesystem image. Shared (`Arc`) across instances at machine
    /// build; the first runtime mutation of an instance's metadata
    /// clones its private copy (`Arc::make_mut`), preserving the
    /// paper's each-instance-has-its-own-copy semantics (§5.3.1)
    /// without paying one deep clone per instance up front.
    image: Arc<FsImage>,

    boot: BootState,
    image_sel: CapSel,
    image_addr: u64,
    image_size: u64,

    sessions: BTreeMap<u64, (VpeId, PeId)>,
    next_ident: u64,
    files: BTreeMap<u64, OpenFile>,
    next_fid: u64,

    /// The kernel connection: tag allocation, the one-blocking-syscall
    /// marker, and hard-error reply matching (`semper_apps::conn` — the
    /// hand-rolled `syscall_busy`/`next_tag` pair this actor used to
    /// keep).
    conn: KernelConn,
    /// When set, the close path revokes all of a file's delegated
    /// extents as one `Syscall::Batch` instead of one revoke syscall
    /// per extent (`Feature::SyscallBatching`'s service-side half).
    batch_ops: bool,
    /// When set, the close path issues its revokes asynchronously via
    /// promise capabilities and blocks on the tail promise only
    /// (`Feature::PromiseIpc`'s service-side half). Takes precedence
    /// over `batch_ops`.
    pipelined_ops: bool,
    queue: VecDeque<Work>,
    current: Option<Work>,

    stats: FsServiceStats,
}

impl FsService {
    /// Creates a service instance for `vpe` on `pe`, managed by the
    /// kernel on `kernel_pe`, pre-populated with `image`.
    pub fn new(
        vpe: VpeId,
        pe: PeId,
        kernel_pe: PeId,
        cost: CostModel,
        image: Arc<FsImage>,
        image_size: u64,
    ) -> FsService {
        FsService {
            vpe,
            pe,
            cost,
            image,
            boot: BootState::Cold,
            image_sel: CapSel::INVALID,
            image_addr: 0,
            image_size,
            sessions: BTreeMap::new(),
            next_ident: 1,
            files: BTreeMap::new(),
            next_fid: 1,
            conn: KernelConn::new(pe, kernel_pe),
            batch_ops: false,
            pipelined_ops: false,
            queue: VecDeque::new(),
            current: None,
            stats: FsServiceStats::default(),
        }
    }

    /// Switches the close path to batched revocation: one
    /// `Syscall::Batch` revokes every delegated extent of a closed file
    /// in a single kernel round trip. Off by default — the sequential
    /// path is the baseline the determinism goldens pin.
    pub fn set_batched_ops(&mut self, on: bool) {
        self.batch_ops = on;
    }

    /// Switches the close path to promise-pipelined revocation: every
    /// delegated extent is revoked through `Syscall::SubmitAsync`, each
    /// promise handle severed as soon as it arrives, and only the tail
    /// promise is waited on. Off by default — the blocking path is the
    /// baseline the determinism goldens pin.
    pub fn set_pipelined_ops(&mut self, on: bool) {
        self.pipelined_ops = on;
    }

    /// This instance's VPE.
    pub fn vpe(&self) -> VpeId {
        self.vpe
    }

    /// This instance's PE.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Statistics counters.
    pub fn stats(&self) -> &FsServiceStats {
        &self.stats
    }

    /// True once boot completed.
    pub fn ready(&self) -> bool {
        self.boot == BootState::Ready
    }

    /// One-line state dump for stall diagnostics (tests/benches).
    pub fn debug_state(&self) -> String {
        format!(
            "ready={} conn_busy={} current={} queued={} sessions={} extents={} revokes={}",
            self.ready(),
            self.conn.busy(),
            self.current.is_some(),
            self.queue.len(),
            self.sessions.len(),
            self.stats.extents_served,
            self.stats.revokes,
        )
    }

    /// Starts the boot sequence: register the service, then allocate the
    /// image region.
    pub fn boot(&mut self, out: &mut Outbox) -> u64 {
        assert_eq!(self.boot, BootState::Cold, "boot called twice");
        self.boot = BootState::Registering;
        self.syscall(Syscall::CreateSrv { name: M3FS_NAME }, out);
        self.cost.fs_meta_op
    }

    fn syscall(&mut self, call: Syscall, out: &mut Outbox) -> u64 {
        self.conn.submit(call, out).tag()
    }

    /// Handles one incoming message; returns the modeled cycle cost.
    pub fn handle(&mut self, msg: &Msg, out: &mut Outbox) -> u64 {
        match &msg.payload {
            Payload::Upcall(Upcall::SessionOpen { op, client_vpe, client_pe }) => {
                let ident = self.next_ident;
                self.next_ident += 1;
                self.sessions.insert(ident, (*client_vpe, *client_pe));
                self.stats.sessions += 1;
                out.push(Msg::new(
                    self.pe,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::SessionOpen { op: *op, result: Ok(ident) }),
                ));
                self.cost.session_accept
            }
            Payload::Upcall(Upcall::AcceptExchange { op, .. }) => {
                out.push(Msg::new(
                    self.pe,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::AcceptExchange { op: *op, accept: true }),
                ));
                self.cost.upcall_work
            }
            Payload::Fs(req) => self.handle_fs(msg.src, req, out),
            Payload::SysReply(reply) => self.handle_sys_reply(reply, out),
            other => {
                debug_assert!(false, "m3fs got unexpected payload {other:?}");
                0
            }
        }
    }

    fn reply_fs(&self, out: &mut Outbox, dst: PeId, tag: u64, result: Result<FsReplyData>) {
        out.push(Msg::new(self.pe, dst, Payload::fs_reply(tag, result)));
    }

    fn handle_fs(&mut self, src: PeId, req: &FsReq, out: &mut Outbox) -> u64 {
        if self.boot != BootState::Ready {
            self.reply_fs(out, src, req.tag, Err(Error::new(Code::InvalidSession)));
            return self.cost.fs_meta_op;
        }
        let Some((client_vpe, client_pe)) = self.sessions.get(&req.session).copied() else {
            self.reply_fs(out, src, req.tag, Err(Error::new(Code::InvalidSession)));
            return self.cost.fs_meta_op;
        };
        match &req.op {
            FsOp::Open { path, write, create } => {
                self.stats.opens += 1;
                let result = (|| -> Result<FsReplyData> {
                    if !self.image.exists(path) {
                        if *create && *write {
                            Arc::make_mut(&mut self.image).create_file(path)?;
                        } else {
                            return Err(Error::new(Code::NoSuchFile));
                        }
                    }
                    let stat = self.image.stat(path)?;
                    if stat.is_dir {
                        return Err(Error::new(Code::IsDir));
                    }
                    let fid = self.next_fid;
                    self.next_fid += 1;
                    self.files.insert(
                        fid,
                        OpenFile {
                            path: path.clone(),
                            session: req.session,
                            delegated: Vec::new(),
                        },
                    );
                    Ok(FsReplyData::Opened { fid, size: stat.size })
                })();
                self.reply_fs(out, src, req.tag, result);
                self.cost.fs_meta_op
            }
            FsOp::Stat { path } => {
                self.stats.meta_ops += 1;
                let result = self.image.stat(path).map(FsReplyData::Stat);
                self.reply_fs(out, src, req.tag, result);
                self.cost.fs_meta_op
            }
            FsOp::ReadDir { path } => {
                self.stats.meta_ops += 1;
                let result = self.image.read_dir(path).map(|names| FsReplyData::Dir { names });
                self.reply_fs(out, src, req.tag, result);
                self.cost.fs_meta_op
            }
            FsOp::Mkdir { path } => {
                self.stats.meta_ops += 1;
                let result = Arc::make_mut(&mut self.image).mkdir(path).map(|_| FsReplyData::Ok);
                self.reply_fs(out, src, req.tag, result);
                self.cost.fs_meta_op
            }
            FsOp::Unlink { path } => {
                self.stats.meta_ops += 1;
                let result = Arc::make_mut(&mut self.image).unlink(path).map(|_| FsReplyData::Ok);
                self.reply_fs(out, src, req.tag, result);
                self.cost.fs_meta_op
            }
            FsOp::NextExtent { fid, offset, write } => {
                let prep = (|| -> Result<Work> {
                    let file = self.files.get(fid).ok_or(Error::new(Code::InvalidArgs))?.clone();
                    if file.session != req.session {
                        return Err(Error::new(Code::InvalidSession));
                    }
                    if *write {
                        // Appending: make sure the extent exists.
                        Arc::make_mut(&mut self.image)
                            .grow_to(&file.path, offset + EXTENT_BYTES)?;
                    }
                    let (ext, file_offset, len) = self.image.extent_at(&file.path, *offset)?;
                    Ok(Work::Extent {
                        client_vpe,
                        client_pe,
                        tag: req.tag,
                        fid: *fid,
                        region_offset: ext.region_offset,
                        file_offset,
                        len,
                        perms: if *write { Perms::RW } else { Perms::R },
                        derived_sel: None,
                    })
                })();
                match prep {
                    Err(e) => {
                        self.reply_fs(out, src, req.tag, Err(e));
                        self.cost.fs_extent_op
                    }
                    Ok(work) => {
                        self.enqueue(work, out);
                        self.cost.fs_extent_op
                    }
                }
            }
            FsOp::Close { fid } => {
                self.stats.closes += 1;
                let Some(file) = self.files.remove(fid) else {
                    self.reply_fs(out, src, req.tag, Err(Error::new(Code::InvalidArgs)));
                    return self.cost.fs_meta_op;
                };
                if file.delegated.is_empty() {
                    self.reply_fs(out, src, req.tag, Ok(FsReplyData::Ok));
                    return self.cost.fs_meta_op;
                }
                self.enqueue(
                    Work::Close { client_pe, tag: req.tag, fid: *fid, remaining: file.delegated },
                    out,
                );
                self.cost.fs_meta_op
            }
        }
    }

    fn enqueue(&mut self, work: Work, out: &mut Outbox) {
        self.queue.push_back(work);
        self.kick(out);
    }

    /// Starts the next queued work item if no system call is in flight.
    fn kick(&mut self, out: &mut Outbox) {
        if self.conn.busy() || self.current.is_some() {
            return;
        }
        let Some(work) = self.queue.pop_front() else { return };
        match &work {
            Work::Extent { region_offset, len, perms, .. } => {
                let call = Syscall::DeriveMem {
                    src: self.image_sel,
                    offset: *region_offset,
                    size: *len,
                    perms: *perms,
                };
                self.current = Some(work);
                self.syscall(call, out);
            }
            Work::Close { client_pe, tag, fid, remaining } => {
                if self.pipelined_ops && remaining.len() > 1 {
                    // Pipelined path: the revoke for extent `i+1` is
                    // submitted while the kernel still works on extent
                    // `i`; the service's submit/sever round trips
                    // overlap with the revocation sweeps instead of
                    // serialising behind them.
                    let (client_pe, tag, fid) = (*client_pe, *tag, *fid);
                    let remaining = remaining.clone();
                    let sel = remaining[0];
                    self.current = Some(Work::ClosePipelined {
                        client_pe,
                        tag,
                        fid,
                        remaining,
                        submitted: 0,
                        promise: None,
                        step: PipeStep::Submit,
                    });
                    self.syscall(
                        Syscall::SubmitAsync(Box::new(Syscall::Revoke { sel, own: true })),
                        out,
                    );
                } else if self.batch_ops && remaining.len() > 1 {
                    // Bulk path: revoke every delegated extent of the
                    // file in one batched system call — one round trip,
                    // and the kernel coalesces the cross-kernel fan-out.
                    let mut batch = BatchBuilder::new();
                    for sel in remaining {
                        batch.push(Syscall::Revoke { sel: *sel, own: true });
                    }
                    self.current = Some(work);
                    batch.submit(&mut self.conn, out);
                } else {
                    let sel = remaining[0];
                    self.current = Some(work);
                    self.syscall(Syscall::Revoke { sel, own: true }, out);
                }
            }
            Work::ClosePipelined { .. } => {
                unreachable!("pipelined close work is created in flight, never queued");
            }
        }
    }

    fn handle_sys_reply(&mut self, reply: &SysReply, out: &mut Outbox) -> u64 {
        // Previously `syscall_busy = false` with no tag check — a
        // mismatched reply was silently absorbed. A reply the connection
        // cannot match is a protocol violation; fail loudly in every
        // build.
        if let Err(e) = self.conn.accept(reply) {
            panic!("m3fs: unmatched syscall reply tag {}: {e}", reply.tag);
        }
        match self.boot {
            BootState::Registering => {
                debug_assert!(reply.result.is_ok(), "CreateSrv failed: {:?}", reply.result);
                self.boot = BootState::AllocatingImage;
                self.syscall(Syscall::CreateMem { size: self.image_size, perms: Perms::RW }, out);
                return self.cost.fs_meta_op;
            }
            BootState::AllocatingImage => {
                match &reply.result {
                    Ok(SysReplyData::Mem { sel, addr }) => {
                        self.image_sel = *sel;
                        self.image_addr = *addr;
                        self.boot = BootState::Ready;
                    }
                    other => panic!("m3fs image allocation failed: {other:?}"),
                }
                return self.cost.fs_meta_op;
            }
            BootState::Cold => {
                debug_assert!(false, "sys reply before boot");
                return 0;
            }
            BootState::Ready => {}
        }

        let Some(work) = self.current.take() else {
            debug_assert!(false, "sys reply without in-flight work");
            return 0;
        };
        let cost = match work {
            Work::Extent {
                client_vpe,
                client_pe,
                tag,
                fid,
                region_offset,
                file_offset,
                len,
                perms,
                derived_sel,
            } => match derived_sel {
                None => {
                    // DeriveMem completed → delegate to the client.
                    match &reply.result {
                        Ok(SysReplyData::Sel(sel)) => {
                            let sel = *sel;
                            self.current = Some(Work::Extent {
                                client_vpe,
                                client_pe,
                                tag,
                                fid,
                                region_offset,
                                file_offset,
                                len,
                                perms,
                                derived_sel: Some(sel),
                            });
                            self.syscall(
                                Syscall::Exchange {
                                    other: client_vpe,
                                    own_sel: sel,
                                    other_sel: CapSel::INVALID,
                                    kind: ExchangeKind::Delegate,
                                },
                                out,
                            );
                            self.cost.fs_extent_op
                        }
                        other => {
                            self.reply_fs(out, client_pe, tag, Err(extract_err(other)));
                            self.cost.fs_extent_op
                        }
                    }
                }
                Some(own_sel) => {
                    // Delegate completed → tell the client its selector.
                    match &reply.result {
                        Ok(SysReplyData::Delegated { recv_sel }) => {
                            if let Some(f) = self.files.get_mut(&fid) {
                                f.delegated.push(own_sel);
                            }
                            self.stats.extents_served += 1;
                            self.reply_fs(
                                out,
                                client_pe,
                                tag,
                                Ok(FsReplyData::Extent {
                                    sel: *recv_sel,
                                    addr: self.image_addr + region_offset,
                                    offset: file_offset,
                                    len,
                                }),
                            );
                        }
                        other => {
                            self.reply_fs(out, client_pe, tag, Err(extract_err(other)));
                        }
                    }
                    self.cost.fs_extent_op
                }
            },
            Work::Close { client_pe, tag, fid, mut remaining } => {
                if let Ok(SysReplyData::Batch(results)) = &reply.result {
                    // Batched close: one reply covers every delegated
                    // extent of the file. A failed item must reach the
                    // client as an error — swallowing it in release
                    // builds would report a close as clean while extent
                    // capabilities survive.
                    debug_assert_eq!(results.len(), remaining.len());
                    self.stats.revokes += results.iter().filter(|r| r.is_ok()).count() as u64;
                    let failed = results.iter().find_map(|r| r.as_ref().err().copied());
                    let outcome = match failed {
                        None => Ok(FsReplyData::Ok),
                        Some(e) => Err(e),
                    };
                    self.reply_fs(out, client_pe, tag, outcome);
                } else {
                    debug_assert!(reply.result.is_ok(), "revoke failed: {:?}", reply.result);
                    self.stats.revokes += 1;
                    remaining.remove(0);
                    if remaining.is_empty() {
                        self.reply_fs(out, client_pe, tag, Ok(FsReplyData::Ok));
                    } else {
                        let sel = remaining[0];
                        self.current = Some(Work::Close { client_pe, tag, fid, remaining });
                        self.syscall(Syscall::Revoke { sel, own: true }, out);
                    }
                }
                self.cost.fs_meta_op
            }
            Work::ClosePipelined {
                client_pe,
                tag,
                fid,
                mut remaining,
                submitted,
                promise,
                step,
            } => {
                match step {
                    PipeStep::Submit => {
                        // The kernel handed back the promise for the
                        // head revoke; it executes asynchronously.
                        let Ok(SysReplyData::Promise { sel }) = &reply.result else {
                            panic!("pipelined close: expected a promise, got {:?}", reply.result);
                        };
                        let psel = *sel;
                        remaining.remove(0);
                        let submitted = submitted + 1;
                        if remaining.is_empty() {
                            // Tail: block on it. Program order means
                            // the tail resolving implies every earlier
                            // revoke completed as well.
                            self.current = Some(Work::ClosePipelined {
                                client_pe,
                                tag,
                                fid,
                                remaining,
                                submitted,
                                promise: Some(psel),
                                step: PipeStep::WaitTail,
                            });
                            self.syscall(Syscall::WaitPromise { sel: psel, block: true }, out);
                        } else {
                            self.current = Some(Work::ClosePipelined {
                                client_pe,
                                tag,
                                fid,
                                remaining,
                                submitted,
                                promise: Some(psel),
                                step: PipeStep::Sever,
                            });
                            self.syscall(Syscall::Revoke { sel: psel, own: true }, out);
                        }
                    }
                    PipeStep::Sever => {
                        // Handle severed; submit the next revoke while
                        // the previous ones are still in flight.
                        debug_assert!(reply.result.is_ok(), "sever failed: {:?}", reply.result);
                        let sel = remaining[0];
                        self.current = Some(Work::ClosePipelined {
                            client_pe,
                            tag,
                            fid,
                            remaining,
                            submitted,
                            promise: None,
                            step: PipeStep::Submit,
                        });
                        self.syscall(
                            Syscall::SubmitAsync(Box::new(Syscall::Revoke { sel, own: true })),
                            out,
                        );
                    }
                    PipeStep::WaitTail => {
                        debug_assert!(
                            reply.result.is_ok(),
                            "pipelined revoke failed: {:?}",
                            reply.result
                        );
                        // Count every revoke of the chain here: the
                        // tail resolved, so all of them landed.
                        self.stats.revokes += submitted;
                        let psel = promise.expect("tail promise recorded at submit");
                        self.current = Some(Work::ClosePipelined {
                            client_pe,
                            tag,
                            fid,
                            remaining,
                            submitted,
                            promise: None,
                            step: PipeStep::SeverTail,
                        });
                        self.syscall(Syscall::Revoke { sel: psel, own: true }, out);
                    }
                    PipeStep::SeverTail => {
                        debug_assert!(reply.result.is_ok(), "sever failed: {:?}", reply.result);
                        self.reply_fs(out, client_pe, tag, Ok(FsReplyData::Ok));
                    }
                }
                self.cost.fs_meta_op
            }
        };
        self.kick(out);
        cost
    }
}

fn extract_err(result: &Result<SysReplyData>) -> Error {
    match result {
        Err(e) => *e,
        Ok(_) => Error::new(Code::InternalError),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::FsSpec;

    fn svc() -> FsService {
        let spec = FsSpec::empty().file("/f.txt", 300_000);
        let size = spec.region_size(4 << 20);
        FsService::new(
            VpeId(9),
            PeId(3),
            PeId(0),
            CostModel::calibrated(),
            Arc::new(FsImage::build(&spec, size)),
            size,
        )
    }

    #[test]
    fn boot_sequence_issues_create_srv_then_create_mem() {
        let mut s = svc();
        let mut out = Outbox::new();
        s.boot(&mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(&msgs[0].0.payload, Payload::Sys { call: Syscall::CreateSrv { .. }, .. }));
        // Feed the CreateSrv reply.
        let reply =
            Msg::new(PeId(0), PeId(3), Payload::sys_reply(1, Ok(SysReplyData::Sel(CapSel(2)))));
        let mut out = Outbox::new();
        s.handle(&reply, &mut out);
        let msgs = out.drain();
        assert!(matches!(&msgs[0].0.payload, Payload::Sys { call: Syscall::CreateMem { .. }, .. }));
        // Feed the CreateMem reply.
        let reply = Msg::new(
            PeId(0),
            PeId(3),
            Payload::sys_reply(2, Ok(SysReplyData::Mem { sel: CapSel(3), addr: 0x4000_0000 })),
        );
        let mut out = Outbox::new();
        s.handle(&reply, &mut out);
        assert!(s.ready());
    }

    #[test]
    fn session_upcall_accepted() {
        let mut s = svc();
        let mut out = Outbox::new();
        let up = Msg::new(
            PeId(0),
            PeId(3),
            Payload::Upcall(Upcall::SessionOpen {
                op: semper_base::OpId(5),
                client_vpe: VpeId(1),
                client_pe: PeId(7),
            }),
        );
        s.handle(&up, &mut out);
        let msgs = out.drain();
        assert!(matches!(
            &msgs[0].0.payload,
            Payload::UpcallReply(UpcallReply::SessionOpen { result: Ok(1), .. })
        ));
        assert_eq!(s.stats().sessions, 1);
    }

    #[test]
    fn fs_request_before_ready_rejected() {
        let mut s = svc();
        let mut out = Outbox::new();
        let req = Msg::new(
            PeId(7),
            PeId(3),
            Payload::fs(FsReq { session: 1, tag: 9, op: FsOp::Stat { path: "/f.txt".into() } }),
        );
        s.handle(&req, &mut out);
        let msgs = out.drain();
        let Payload::FsReply(r) = &msgs[0].0.payload else { panic!() };
        assert_eq!(r.result.as_ref().unwrap_err().code(), Code::InvalidSession);
    }
}
