//! The in-memory filesystem image.
//!
//! Files are backed by fixed-size *extents* allocated from the service's
//! memory region (the region behind its filesystem-image capability).
//! Only metadata is modeled — contents live in the simulated global
//! memory whose accesses cost cycles but carry no data, matching the
//! paper's methodology (§5.3.1).

use semper_base::msg::FileStat;
use semper_base::{Code, Error, Result};
use std::collections::BTreeMap;

/// Size of one extent in bytes (the range granularity at which m3fs
/// hands out memory capabilities).
///
/// 1 MiB reproduces the paper's Table 4 capability-operation counts for
/// the trace mixes in `semper-apps` (e.g. tar: 10 extents delegated +
/// 10 revoked + 1 session = 21 cap ops).
pub const EXTENT_BYTES: u64 = 1024 * 1024;

/// One extent: an offset into the service's memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Offset of this extent within the FS image region.
    pub region_offset: u64,
}

/// An inode: a file or directory.
#[derive(Debug, Clone)]
pub struct Inode {
    /// Logical size in bytes (files only).
    pub size: u64,
    /// Backing extents, in file order.
    pub extents: Vec<Extent>,
    /// True for directories.
    pub is_dir: bool,
}

/// Specification of a filesystem image's initial contents.
///
/// The evaluation pre-populates every m3fs instance with its own copy of
/// the image (§5.3.1: "each having its own copy of the filesystem image
/// in memory").
#[derive(Debug, Clone, Default)]
pub struct FsSpec {
    /// Directories to create (parents are created implicitly).
    pub dirs: Vec<String>,
    /// Files to create: (path, size in bytes).
    pub files: Vec<(String, u64)>,
}

impl FsSpec {
    /// An empty filesystem.
    pub fn empty() -> FsSpec {
        FsSpec::default()
    }

    /// Adds a directory (builder style).
    pub fn dir(mut self, path: &str) -> FsSpec {
        self.dirs.push(path.to_string());
        self
    }

    /// Adds a file of the given size (builder style).
    pub fn file(mut self, path: &str, size: u64) -> FsSpec {
        self.files.push((path.to_string(), size));
        self
    }

    /// Total bytes of extent storage this spec needs, plus headroom for
    /// runtime growth.
    pub fn region_size(&self, headroom: u64) -> u64 {
        let used: u64 =
            self.files.iter().map(|(_, size)| size.div_ceil(EXTENT_BYTES) * EXTENT_BYTES).sum();
        used + headroom
    }
}

/// The filesystem image: metadata plus extent allocation.
#[derive(Debug, Clone)]
pub struct FsImage {
    inodes: BTreeMap<String, Inode>,
    region_size: u64,
    next_extent: u64,
}

impl FsImage {
    /// Builds an image from a spec, allocating extents for all files.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not fit into `region_size` bytes.
    pub fn build(spec: &FsSpec, region_size: u64) -> FsImage {
        let mut img = FsImage { inodes: BTreeMap::new(), region_size, next_extent: 0 };
        img.inodes.insert("/".to_string(), Inode { size: 0, extents: Vec::new(), is_dir: true });
        for d in &spec.dirs {
            img.mkdir_all(d);
        }
        for (path, size) in &spec.files {
            img.create_file(path).expect("spec paths are valid");
            img.grow_to(path, *size).expect("spec fits in region");
        }
        img
    }

    fn mkdir_all(&mut self, path: &str) {
        let norm = normalize(path);
        let mut cur = String::new();
        for part in norm.split('/').filter(|p| !p.is_empty()) {
            cur.push('/');
            cur.push_str(part);
            self.inodes.entry(cur.clone()).or_insert(Inode {
                size: 0,
                extents: Vec::new(),
                is_dir: true,
            });
        }
    }

    /// Creates an empty file; fails if the path exists.
    pub fn create_file(&mut self, path: &str) -> Result<()> {
        let norm = normalize(path);
        if self.inodes.contains_key(&norm) {
            return Err(Error::new(Code::FileExists));
        }
        if let Some(parent) = parent_of(&norm) {
            self.mkdir_all(&parent);
        }
        self.inodes.insert(norm, Inode { size: 0, extents: Vec::new(), is_dir: false });
        Ok(())
    }

    /// Grows a file to at least `size` bytes, allocating extents.
    pub fn grow_to(&mut self, path: &str, size: u64) -> Result<()> {
        let norm = normalize(path);
        let needed = size.div_ceil(EXTENT_BYTES);
        // Check capacity before touching the inode.
        let have = {
            let inode = self.inodes.get(&norm).ok_or(Error::new(Code::NoSuchFile))?;
            if inode.is_dir {
                return Err(Error::new(Code::IsDir));
            }
            inode.extents.len() as u64
        };
        let extra = needed.saturating_sub(have);
        if self.next_extent + extra * EXTENT_BYTES > self.region_size {
            return Err(Error::new(Code::NoSpace));
        }
        let mut new_extents = Vec::new();
        for _ in 0..extra {
            new_extents.push(Extent { region_offset: self.next_extent });
            self.next_extent += EXTENT_BYTES;
        }
        let inode = self.inodes.get_mut(&norm).expect("checked above");
        inode.extents.extend(new_extents);
        inode.size = inode.size.max(size);
        Ok(())
    }

    /// Looks up an inode.
    pub fn stat(&self, path: &str) -> Result<FileStat> {
        let inode = self.inodes.get(&normalize(path)).ok_or(Error::new(Code::NoSuchFile))?;
        Ok(FileStat { size: inode.size, is_dir: inode.is_dir, extents: inode.extents.len() as u32 })
    }

    /// True if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inodes.contains_key(&normalize(path))
    }

    /// The extent covering byte `offset` of the file, with the file
    /// offset the extent starts at.
    pub fn extent_at(&self, path: &str, offset: u64) -> Result<(Extent, u64, u64)> {
        let inode = self.inodes.get(&normalize(path)).ok_or(Error::new(Code::NoSuchFile))?;
        if inode.is_dir {
            return Err(Error::new(Code::IsDir));
        }
        if offset >= inode.size {
            return Err(Error::new(Code::EndOfFile));
        }
        let idx = (offset / EXTENT_BYTES) as usize;
        let ext = inode.extents.get(idx).copied().ok_or(Error::new(Code::InternalError))?;
        let start = idx as u64 * EXTENT_BYTES;
        let len = EXTENT_BYTES.min(inode.size - start);
        Ok((ext, start, len))
    }

    /// Removes a file.
    pub fn unlink(&mut self, path: &str) -> Result<()> {
        let norm = normalize(path);
        let inode = self.inodes.get(&norm).ok_or(Error::new(Code::NoSuchFile))?;
        if inode.is_dir {
            return Err(Error::new(Code::IsDir));
        }
        // Extent storage is not reclaimed (bump allocation) — the
        // workloads' churn fits the headroom; see FsSpec::region_size.
        self.inodes.remove(&norm);
        Ok(())
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> Result<()> {
        let norm = normalize(path);
        if self.inodes.contains_key(&norm) {
            return Err(Error::new(Code::FileExists));
        }
        self.mkdir_all(&norm);
        Ok(())
    }

    /// Names of entries directly inside a directory.
    pub fn read_dir(&self, path: &str) -> Result<Vec<String>> {
        let norm = normalize(path);
        let dir = self.inodes.get(&norm).ok_or(Error::new(Code::NoSuchFile))?;
        if !dir.is_dir {
            return Err(Error::new(Code::InvalidArgs));
        }
        let prefix = if norm == "/" { "/".to_string() } else { format!("{norm}/") };
        let mut names = Vec::new();
        for key in self.inodes.keys() {
            if let Some(rest) = key.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    names.push(rest.to_string());
                }
            }
        }
        Ok(names)
    }

    /// Number of inodes (including the root).
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// Bytes of extent storage allocated so far.
    pub fn bytes_allocated(&self) -> u64 {
        self.next_extent
    }
}

fn normalize(path: &str) -> String {
    let norm = if path.starts_with('/') {
        path.trim_end_matches('/').to_string()
    } else {
        format!("/{}", path.trim_end_matches('/'))
    }
    .replace("//", "/");
    if norm.is_empty() {
        "/".to_string()
    } else {
        norm
    }
}

fn parent_of(norm: &str) -> Option<String> {
    let idx = norm.rfind('/')?;
    if idx == 0 {
        None
    } else {
        Some(norm[..idx].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// b.txt spans three extents; a.txt fits in one.
    const B_SIZE: u64 = 2 * EXTENT_BYTES + 100_000;

    fn img() -> FsImage {
        let spec =
            FsSpec::empty().dir("/data").file("/data/a.txt", 100_000).file("/data/b.txt", B_SIZE);
        FsImage::build(&spec, 64 << 20)
    }

    #[test]
    fn build_creates_inodes_and_extents() {
        let i = img();
        let a = i.stat("/data/a.txt").unwrap();
        assert_eq!(a.size, 100_000);
        assert_eq!(a.extents, 1);
        let b = i.stat("/data/b.txt").unwrap();
        assert_eq!(b.extents, 3); // B_SIZE spans three extents
        assert!(i.stat("/data").unwrap().is_dir);
    }

    #[test]
    fn extent_lookup_covers_offsets() {
        let i = img();
        let (e0, start0, len0) = i.extent_at("/data/b.txt", 0).unwrap();
        assert_eq!(start0, 0);
        assert_eq!(len0, EXTENT_BYTES);
        let (e2, start2, len2) = i.extent_at("/data/b.txt", 2 * EXTENT_BYTES + 5).unwrap();
        assert_ne!(e0.region_offset, e2.region_offset);
        assert_eq!(start2, 2 * EXTENT_BYTES);
        assert_eq!(len2, B_SIZE - 2 * EXTENT_BYTES);
    }

    #[test]
    fn read_past_eof_fails() {
        let i = img();
        assert_eq!(i.extent_at("/data/a.txt", 200_000).unwrap_err().code(), Code::EndOfFile);
    }

    #[test]
    fn grow_allocates_new_extents() {
        let mut i = img();
        i.grow_to("/data/a.txt", EXTENT_BYTES + 300_000).unwrap();
        assert_eq!(i.stat("/data/a.txt").unwrap().extents, 2);
        assert_eq!(i.stat("/data/a.txt").unwrap().size, EXTENT_BYTES + 300_000);
    }

    #[test]
    fn grow_beyond_region_fails() {
        let spec = FsSpec::empty().file("/x", 1);
        let mut i = FsImage::build(&spec, EXTENT_BYTES);
        assert_eq!(i.grow_to("/x", 10 << 20).unwrap_err().code(), Code::NoSpace);
    }

    #[test]
    fn create_unlink_roundtrip() {
        let mut i = img();
        i.create_file("/new.txt").unwrap();
        assert!(i.exists("/new.txt"));
        assert_eq!(i.create_file("/new.txt").unwrap_err().code(), Code::FileExists);
        i.unlink("/new.txt").unwrap();
        assert!(!i.exists("/new.txt"));
        assert_eq!(i.unlink("/new.txt").unwrap_err().code(), Code::NoSuchFile);
    }

    #[test]
    fn unlink_dir_rejected() {
        let mut i = img();
        assert_eq!(i.unlink("/data").unwrap_err().code(), Code::IsDir);
    }

    #[test]
    fn read_dir_lists_children() {
        let i = img();
        let mut names = i.read_dir("/data").unwrap();
        names.sort();
        assert_eq!(names, vec!["a.txt", "b.txt"]);
        assert_eq!(i.read_dir("/").unwrap(), vec!["data"]);
    }

    #[test]
    fn mkdir_nested() {
        let mut i = img();
        i.mkdir("/a/b/c").unwrap();
        assert!(i.stat("/a/b").unwrap().is_dir);
        assert!(i.stat("/a/b/c").unwrap().is_dir);
        assert_eq!(i.mkdir("/a/b/c").unwrap_err().code(), Code::FileExists);
    }

    #[test]
    fn normalize_accepts_relative_paths() {
        let i = img();
        assert!(i.exists("data/a.txt"));
        assert!(i.exists("/data/a.txt"));
    }

    #[test]
    fn region_size_accounts_rounding() {
        let spec = FsSpec::empty().file("/a", 1).file("/b", EXTENT_BYTES + 1);
        assert_eq!(spec.region_size(0), 3 * EXTENT_BYTES);
    }
}
