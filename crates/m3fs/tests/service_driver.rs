//! Driver-level tests of the m3fs service: the derive → delegate →
//! revoke capability pipeline, exercised by feeding the actor messages
//! by hand (no kernel — the replies are scripted).

use semper_base::msg::{
    FsOp, FsReply, FsReplyData, FsReq, Outbox, Payload, SysReplyData, Syscall, Upcall,
};
use semper_base::{CapSel, Code, CostModel, Msg, OpId, PeId, VpeId};
use semper_m3fs::{FsImage, FsService, FsSpec};

const SVC_PE: PeId = PeId(3);
const KRN_PE: PeId = PeId(0);
const CLIENT_PE: PeId = PeId(7);
const CLIENT_VPE: VpeId = VpeId(1);

fn booted_service() -> FsService {
    let spec = FsSpec::empty().file("/f.dat", 300_000);
    let size = spec.region_size(8 << 20);
    let mut s = FsService::new(
        VpeId(9),
        SVC_PE,
        KRN_PE,
        CostModel::calibrated(),
        std::sync::Arc::new(FsImage::build(&spec, size)),
        size,
    );
    let mut out = Outbox::new();
    s.boot(&mut out);
    sys_reply(&mut s, 1, Ok(SysReplyData::Sel(CapSel(2))));
    sys_reply(&mut s, 2, Ok(SysReplyData::Mem { sel: CapSel(3), addr: 0x1000_0000 }));
    assert!(s.ready());
    // Open a session for the client.
    let mut out = Outbox::new();
    s.handle(
        &Msg::new(
            KRN_PE,
            SVC_PE,
            Payload::Upcall(Upcall::SessionOpen {
                op: OpId(1),
                client_vpe: CLIENT_VPE,
                client_pe: CLIENT_PE,
            }),
        ),
        &mut out,
    );
    s
}

fn sys_reply(s: &mut FsService, tag: u64, result: semper_base::Result<SysReplyData>) -> Outbox {
    let mut out = Outbox::new();
    s.handle(&Msg::new(KRN_PE, SVC_PE, Payload::sys_reply(tag, result)), &mut out);
    out
}

fn fs_req(s: &mut FsService, tag: u64, op: FsOp) -> Outbox {
    let mut out = Outbox::new();
    s.handle(&Msg::new(CLIENT_PE, SVC_PE, Payload::fs(FsReq { session: 1, tag, op })), &mut out);
    out
}

fn expect_fs_reply(out: &mut Outbox, tag: u64) -> semper_base::Result<FsReplyData> {
    for (m, _) in out.drain() {
        if let Payload::FsReply(r) = m.payload {
            let FsReply { tag: t, result } = *r;
            assert_eq!(t, tag);
            return result;
        }
    }
    panic!("no fs reply with tag {tag}");
}

fn expect_syscall(out: &mut Outbox) -> (u64, Syscall) {
    for (m, _) in out.drain() {
        if let Payload::Sys { tag, call } = m.payload {
            assert_eq!(m.dst, KRN_PE, "syscalls go to the kernel");
            return (tag, call);
        }
    }
    panic!("no syscall emitted");
}

#[test]
fn open_reports_size_and_fid() {
    let mut s = booted_service();
    let mut out =
        fs_req(&mut s, 10, FsOp::Open { path: "/f.dat".into(), write: false, create: false });
    match expect_fs_reply(&mut out, 10) {
        Ok(FsReplyData::Opened { fid, size }) => {
            assert_eq!(fid, 1);
            assert_eq!(size, 300_000);
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn extent_pipeline_derive_then_delegate_then_reply() {
    let mut s = booted_service();
    let mut out =
        fs_req(&mut s, 10, FsOp::Open { path: "/f.dat".into(), write: false, create: false });
    let _ = expect_fs_reply(&mut out, 10);

    // The extent request triggers a DeriveMem syscall first.
    let mut out = fs_req(&mut s, 11, FsOp::NextExtent { fid: 1, offset: 0, write: false });
    let (tag, call) = expect_syscall(&mut out);
    let Syscall::DeriveMem { src, offset, size, .. } = call else {
        panic!("expected derive, got {call:?}");
    };
    assert_eq!(src, CapSel(3), "derives from the image capability");
    assert_eq!(offset, 0);
    assert_eq!(size, 300_000);

    // Completing the derive triggers the delegate to the client.
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::Sel(CapSel(8))));
    let (tag, call) = expect_syscall(&mut out);
    let Syscall::Exchange { other, own_sel, .. } = call else {
        panic!("expected delegate, got {call:?}");
    };
    assert_eq!(other, CLIENT_VPE);
    assert_eq!(own_sel, CapSel(8));

    // Completing the delegate produces the extent reply to the client.
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::Delegated { recv_sel: CapSel(4) }));
    match expect_fs_reply(&mut out, 11) {
        Ok(FsReplyData::Extent { sel, offset, len, .. }) => {
            assert_eq!(sel, CapSel(4));
            assert_eq!(offset, 0);
            assert_eq!(len, 300_000);
        }
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(s.stats().extents_served, 1);
}

#[test]
fn close_revokes_each_delegated_extent() {
    let mut s = booted_service();
    let mut out =
        fs_req(&mut s, 10, FsOp::Open { path: "/f.dat".into(), write: false, create: false });
    let _ = expect_fs_reply(&mut out, 10);
    // Serve one extent.
    let mut out = fs_req(&mut s, 11, FsOp::NextExtent { fid: 1, offset: 0, write: false });
    let (tag, _) = expect_syscall(&mut out);
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::Sel(CapSel(8))));
    let (tag, _) = expect_syscall(&mut out);
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::Delegated { recv_sel: CapSel(4) }));
    let _ = expect_fs_reply(&mut out, 11);

    // Close: the service revokes the derived capability it delegated.
    let mut out = fs_req(&mut s, 12, FsOp::Close { fid: 1 });
    let (tag, call) = expect_syscall(&mut out);
    let Syscall::Revoke { sel, own } = call else { panic!("expected revoke") };
    assert_eq!(sel, CapSel(8));
    assert!(own, "the derived capability itself is revoked");
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::None));
    assert!(matches!(expect_fs_reply(&mut out, 12), Ok(FsReplyData::Ok)));
    assert_eq!(s.stats().revokes, 1);
    assert_eq!(s.stats().closes, 1);
}

#[test]
fn close_without_extents_replies_immediately() {
    let mut s = booted_service();
    let mut out =
        fs_req(&mut s, 10, FsOp::Open { path: "/f.dat".into(), write: false, create: false });
    let _ = expect_fs_reply(&mut out, 10);
    let mut out = fs_req(&mut s, 11, FsOp::Close { fid: 1 });
    assert!(matches!(expect_fs_reply(&mut out, 11), Ok(FsReplyData::Ok)));
}

#[test]
fn requests_queue_while_a_syscall_is_in_flight() {
    let mut s = booted_service();
    let mut out =
        fs_req(&mut s, 10, FsOp::Open { path: "/f.dat".into(), write: false, create: false });
    let _ = expect_fs_reply(&mut out, 10);
    // First extent request: derive in flight.
    let mut out = fs_req(&mut s, 11, FsOp::NextExtent { fid: 1, offset: 0, write: false });
    let (tag1, _) = expect_syscall(&mut out);
    // A second extent request must NOT emit a syscall yet (one blocking
    // syscall per VPE).
    let mut out = fs_req(&mut s, 12, FsOp::NextExtent { fid: 1, offset: 0, write: false });
    assert!(
        !out.drain().iter().any(|(m, _)| matches!(m.payload, Payload::Sys { .. })),
        "second request must queue behind the in-flight syscall"
    );
    // Drain the pipeline for request 11; request 12's derive follows.
    let mut out = sys_reply(&mut s, tag1, Ok(SysReplyData::Sel(CapSel(8))));
    let (tag2, _) = expect_syscall(&mut out); // delegate for 11
    let mut out = sys_reply(&mut s, tag2, Ok(SysReplyData::Delegated { recv_sel: CapSel(4) }));
    // One drain: the reply to request 11 AND request 12's derive syscall
    // leave in the same handler.
    let msgs = out.drain();
    assert!(msgs.iter().any(|(m, _)| matches!(
        &m.payload,
        Payload::FsReply(r)
            if matches!(r.as_ref(), FsReply { tag: 11, result: Ok(FsReplyData::Extent { .. }) })
    )));
    assert!(msgs
        .iter()
        .any(|(m, _)| matches!(&m.payload, Payload::Sys { call: Syscall::DeriveMem { .. }, .. })));
}

#[test]
fn unknown_session_and_fid_rejected() {
    let mut s = booted_service();
    let mut out = Outbox::new();
    s.handle(
        &Msg::new(
            CLIENT_PE,
            SVC_PE,
            Payload::fs(FsReq { session: 999, tag: 5, op: FsOp::Stat { path: "/f.dat".into() } }),
        ),
        &mut out,
    );
    match expect_fs_reply(&mut out, 5) {
        Err(e) => assert_eq!(e.code(), Code::InvalidSession),
        other => panic!("unexpected: {other:?}"),
    }
    let mut out = fs_req(&mut s, 6, FsOp::Close { fid: 42 });
    assert_eq!(expect_fs_reply(&mut out, 6).unwrap_err().code(), Code::InvalidArgs);
}

#[test]
fn append_grows_the_file() {
    let mut s = booted_service();
    let mut out =
        fs_req(&mut s, 10, FsOp::Open { path: "/new.log".into(), write: true, create: true });
    match expect_fs_reply(&mut out, 10) {
        Ok(FsReplyData::Opened { size, .. }) => assert_eq!(size, 0),
        other => panic!("unexpected: {other:?}"),
    }
    // Write past EOF with write=true: the service allocates the extent.
    let mut out = fs_req(&mut s, 11, FsOp::NextExtent { fid: 1, offset: 0, write: true });
    let (tag, call) = expect_syscall(&mut out);
    assert!(matches!(call, Syscall::DeriveMem { .. }));
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::Sel(CapSel(8))));
    let (tag, _) = expect_syscall(&mut out);
    let mut out = sys_reply(&mut s, tag, Ok(SysReplyData::Delegated { recv_sel: CapSel(4) }));
    match expect_fs_reply(&mut out, 11) {
        Ok(FsReplyData::Extent { len, .. }) => assert!(len > 0),
        other => panic!("unexpected: {other:?}"),
    }
}
