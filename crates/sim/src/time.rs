//! Simulated time in CPU cycles.

use core::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, measured in cycles of the
/// modeled 2 GHz clock.
///
/// `Cycles` is used both as an instant and as a duration; the arithmetic
/// below covers the combinations the simulation needs. Saturating
/// subtraction keeps statistics code panic-free on empty intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

/// The modeled core clock in Hz (paper §5.1: 2 GHz).
pub const CLOCK_HZ: u64 = 2_000_000_000;

impl Cycles {
    /// Time zero.
    pub const ZERO: Cycles = Cycles(0);

    /// Largest representable time (used as "never" sentinel).
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Converts to microseconds at the modeled clock.
    pub fn as_micros(self) -> f64 {
        self.0 as f64 / (CLOCK_HZ as f64 / 1e6)
    }

    /// Converts to milliseconds at the modeled clock.
    pub fn as_millis(self) -> f64 {
        self.0 as f64 / (CLOCK_HZ as f64 / 1e3)
    }

    /// Converts to seconds at the modeled clock.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / CLOCK_HZ as f64
    }

    /// Saturating difference (`self - other`, clamped at zero).
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Cycles) -> Cycles {
        Cycles(self.0.min(other.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycles {
    type Output = Cycles;
    fn add(self, rhs: u64) -> Cycles {
        Cycles(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycles {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl core::fmt::Display for Cycles {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Cycles(3) + Cycles(4), Cycles(7));
        assert_eq!(Cycles(3) + 4u64, Cycles(7));
        assert_eq!(Cycles(7) - Cycles(4), Cycles(3));
        let mut c = Cycles(1);
        c += 2;
        c += Cycles(3);
        assert_eq!(c, Cycles(6));
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Cycles(3).saturating_sub(Cycles(5)), Cycles::ZERO);
        assert_eq!(Cycles(5).saturating_sub(Cycles(3)), Cycles(2));
    }

    #[test]
    fn unit_conversions() {
        // 2000 cycles at 2 GHz = 1 µs.
        assert!((Cycles(2000).as_micros() - 1.0).abs() < 1e-9);
        assert!((Cycles(2_000_000).as_millis() - 1.0).abs() < 1e-9);
        assert!((Cycles(CLOCK_HZ).as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_max() {
        assert_eq!(Cycles(3).max(Cycles(5)), Cycles(5));
        assert_eq!(Cycles(3).min(Cycles(5)), Cycles(3));
    }
}
