//! Deterministic discrete-event simulation engine.
//!
//! This crate is the reproduction's substitute for gem5 (§5.1 of the
//! paper): a cycle-granular event queue driving actor state machines. It
//! is intentionally micro-architecture-free — all timing comes from the
//! cost model in `semper-base` — but it is *strictly deterministic*: two
//! runs with the same configuration produce bit-identical schedules.
//!
//! Determinism rests on two rules enforced here and honoured by all
//! users:
//!
//! 1. Events at equal timestamps are ordered by insertion sequence
//!    number ([`EventQueue`] is a stable priority queue).
//! 2. No randomness outside [`rng::DetRng`], which is seeded from the
//!    machine configuration.

pub mod faults;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;

pub use faults::{CrashPoint, FaultPlan, FaultStats, NetVerdict, PartitionWindow};
pub use queue::EventQueue;
pub use rng::DetRng;
pub use sched::PeSchedule;
pub use stats::{Counter, Summary};
pub use time::Cycles;

// The engine holds no `Rc`, `RefCell`, thread-local or global state —
// a whole simulation is an owned value that can move between threads.
// The parallel harness (`semperos::runner`) runs independent machines
// on worker threads on the strength of this; lock it in at compile
// time so a shared-mutability regression fails the build here.
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send::<EventQueue<u64>>();
    assert_send::<PeSchedule<u64>>();
    assert_send::<DetRng>();
    assert_send::<FaultPlan>();
    assert_send::<Counter>();
    assert_send::<Summary>();
};
