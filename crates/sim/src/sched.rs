//! Per-PE stall lanes over the deterministic event queue.
//!
//! Every PE of the simulated machine serializes its handlers: an event
//! arriving while the PE is still executing must wait until the PE
//! frees. The original engine expressed that wait by pushing the whole
//! event back into the global heap (timestamped at `busy_until`) every
//! time it popped too early — O(log n) heap churn *and* a full event
//! move per retry, paid once per deferral hop on the hottest paths
//! (kernel PEs under syscall bursts are busy almost continuously).
//!
//! [`PeSchedule`] replaces the retry loop with per-PE *stall lanes*:
//! a deferred event is parked exactly once in its destination PE's lane
//! (an O(1) slot write; the event is never moved again until delivery)
//! and a pointer-sized wake token rides the heap in its place. Lanes
//! drain when `busy_until` passes: the token pops at the PE's free
//! time and hands the parked event out of the lane.
//!
//! # Ordering contract (bit-identical to the retry loop)
//!
//! The global heap remains the *sole* ordering authority. A wake token
//! is scheduled at exactly the timestamp the old engine would have
//! rescheduled the event at (`busy_until` as of the deferral), and it
//! consumes one sequence number at exactly the same moment the old
//! requeue did — including on re-deferral, when a token pops at the
//! PE's former free time but an earlier same-cycle event claimed the
//! PE first. Same-cycle contenders therefore interleave with freshly
//! delivered traffic in precisely the order the retry loop produced,
//! [`PeSchedule::processed`] counts the same pops, and every handler
//! runs at the same cycle. `tests/scheduler.rs` checks this equivalence
//! against a reference model on randomized workloads; the golden
//! assertions in `tests/determinism.rs` pin it to recorded cycle
//! counts.

use crate::queue::EventQueue;
use crate::time::Cycles;

/// Heap entry: either a fresh delivery or a wake token pointing at a
/// parked event. Tokens are what make deferral cheap — the event
/// payload stays in the lane while the token rides the heap.
enum Tok<E> {
    /// An event on its first trip through the queue.
    Deliver {
        /// Destination PE.
        pe: u32,
        /// The event itself.
        event: E,
    },
    /// A deferred event parked in `pe`'s stall lane at `slot`.
    Wake {
        /// Destination PE (owner of the lane).
        pe: u32,
        /// Slot in the lane's slab.
        slot: u32,
    },
}

/// One PE's stall lane: a slab of parked events with a free list.
///
/// Delivery order among parked events is dictated by their wake tokens
/// in the global heap (see the module docs), so the lane itself needs
/// no internal ordering — just O(1) park and take.
struct Lane<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Default for Lane<E> {
    fn default() -> Self {
        Lane { slots: Vec::new(), free: Vec::new() }
    }
}

impl<E> Lane<E> {
    fn park(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(event);
                slot
            }
            None => {
                self.slots.push(Some(event));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, slot: u32) -> E {
        let e = self.slots[slot as usize].take().expect("wake token points at a parked event");
        self.free.push(slot);
        e
    }
}

/// A deterministic event schedule over a fixed set of serializing PEs.
///
/// Owns the event queue, the per-PE `busy_until` times, and the stall
/// lanes. The driver loop calls [`PeSchedule::pop_ready`] to obtain the
/// next event whose PE is free, runs the handler, and reports the
/// handler's end time via [`PeSchedule::set_busy`].
pub struct PeSchedule<E> {
    queue: EventQueue<Tok<E>>,
    busy_until: Vec<Cycles>,
    lanes: Vec<Lane<E>>,
    parked: usize,
}

impl<E> PeSchedule<E> {
    /// Creates a schedule for `pes` PEs, all idle, at time zero.
    pub fn new(pes: usize) -> PeSchedule<E> {
        PeSchedule {
            queue: EventQueue::new(),
            busy_until: vec![Cycles::ZERO; pes],
            lanes: (0..pes).map(|_| Lane::default()).collect(),
            parked: 0,
        }
    }

    /// Current simulated time (timestamp of the last popped entry).
    pub fn now(&self) -> Cycles {
        self.queue.now()
    }

    /// Heap pops so far. Counts wake-token pops exactly as the old
    /// engine counted retry pops, so event totals are comparable across
    /// the refactor.
    pub fn processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Entries currently in the heap (each parked event holds exactly
    /// one wake token, so parked events are included).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Events currently parked in stall lanes (diagnostics).
    pub fn parked(&self) -> usize {
        self.parked
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The time `pe` is busy until.
    pub fn busy_until(&self, pe: usize) -> Cycles {
        self.busy_until[pe]
    }

    /// Marks `pe` busy until `until` (handler completion).
    pub fn set_busy(&mut self, pe: usize, until: Cycles) {
        self.busy_until[pe] = until;
    }

    /// Extends `pe`'s busy time to at least `until` (boot sequencing).
    pub fn extend_busy(&mut self, pe: usize, until: Cycles) {
        if self.busy_until[pe] < until {
            self.busy_until[pe] = until;
        }
    }

    /// Schedules `event` for PE `pe` at absolute time `at`.
    pub fn schedule(&mut self, at: Cycles, pe: usize, event: E) {
        self.queue.schedule(at, Tok::Deliver { pe: pe as u32, event });
    }

    /// Timestamp of the earliest pending entry (delivery or wake).
    pub fn peek_time(&self) -> Option<Cycles> {
        self.queue.peek_time()
    }

    /// Pops the next event whose PE is free at its delivery time,
    /// advancing `now`; returns `None` when the queue is empty.
    ///
    /// Events popping while their PE is busy are parked in the PE's
    /// stall lane (once — the event is not touched again until
    /// delivery) and replaced by a wake token at the PE's free time.
    /// A token popping while the PE is busy again (an earlier same-cycle
    /// event won the PE) is rescheduled at the new free time, consuming
    /// a fresh sequence number exactly as the old retry loop did.
    pub fn pop_ready(&mut self) -> Option<(Cycles, usize, E)> {
        self.pop_ready_bounded(None)
    }

    /// Like [`PeSchedule::pop_ready`], but never pops a heap entry
    /// with a timestamp after `deadline`. This is the exact granularity
    /// of the old retry loop's deadline-bounded driver (`Machine::
    /// run_until`): deferrals whose wake time lies past the deadline
    /// stay parked rather than delivering early — the retry loop left
    /// their requeued entries in the heap the same way. May park
    /// in-deadline entries (consuming pops) and still return `None`.
    pub fn pop_ready_before(&mut self, deadline: Cycles) -> Option<(Cycles, usize, E)> {
        self.pop_ready_bounded(Some(deadline))
    }

    fn pop_ready_bounded(&mut self, deadline: Option<Cycles>) -> Option<(Cycles, usize, E)> {
        loop {
            if let Some(deadline) = deadline {
                if self.queue.peek_time()? > deadline {
                    return None;
                }
            }
            let (t, tok) = self.queue.pop()?;
            match tok {
                Tok::Deliver { pe, event } => {
                    let busy = self.busy_until[pe as usize];
                    if busy > t {
                        let slot = self.lanes[pe as usize].park(event);
                        self.parked += 1;
                        self.queue.schedule(busy, Tok::Wake { pe, slot });
                        continue;
                    }
                    return Some((t, pe as usize, event));
                }
                Tok::Wake { pe, slot } => {
                    let busy = self.busy_until[pe as usize];
                    if busy > t {
                        self.queue.schedule(busy, Tok::Wake { pe, slot });
                        continue;
                    }
                    let event = self.lanes[pe as usize].take(slot);
                    self.parked -= 1;
                    return Some((t, pe as usize, event));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_pes_deliver_in_time_order() {
        let mut s: PeSchedule<&str> = PeSchedule::new(2);
        s.schedule(Cycles(20), 1, "b");
        s.schedule(Cycles(10), 0, "a");
        assert_eq!(s.pop_ready(), Some((Cycles(10), 0, "a")));
        assert_eq!(s.pop_ready(), Some((Cycles(20), 1, "b")));
        assert_eq!(s.pop_ready(), None);
    }

    #[test]
    fn busy_pe_parks_and_drains_in_arrival_order() {
        let mut s: PeSchedule<u32> = PeSchedule::new(1);
        s.schedule(Cycles(10), 0, 1);
        s.schedule(Cycles(11), 0, 2);
        s.schedule(Cycles(12), 0, 3);
        let (t, pe, e) = s.pop_ready().unwrap();
        assert_eq!((t, pe, e), (Cycles(10), 0, 1));
        s.set_busy(0, Cycles(50));
        // Both remaining events arrive while busy: parked, then drained
        // at the free time in arrival order.
        assert_eq!(s.pop_ready(), Some((Cycles(50), 0, 2)));
        assert_eq!(s.parked(), 1);
        s.set_busy(0, Cycles(60));
        assert_eq!(s.pop_ready(), Some((Cycles(60), 0, 3)));
        assert_eq!(s.parked(), 0);
        assert_eq!(s.pop_ready(), None);
    }

    #[test]
    fn interleaves_fresh_arrivals_at_the_free_boundary() {
        let mut s: PeSchedule<u32> = PeSchedule::new(1);
        s.schedule(Cycles(10), 0, 1);
        // Scheduled before the deferral below, arriving exactly when
        // the PE frees: its lower sequence number wins the PE.
        s.schedule(Cycles(50), 0, 99);
        s.schedule(Cycles(11), 0, 2);
        assert_eq!(s.pop_ready(), Some((Cycles(10), 0, 1)));
        s.set_busy(0, Cycles(50));
        assert_eq!(s.pop_ready(), Some((Cycles(50), 0, 99)));
        s.set_busy(0, Cycles(70));
        assert_eq!(s.pop_ready(), Some((Cycles(70), 0, 2)));
    }

    #[test]
    fn zero_cost_handlers_do_not_stall() {
        let mut s: PeSchedule<u32> = PeSchedule::new(1);
        s.schedule(Cycles(5), 0, 1);
        s.schedule(Cycles(5), 0, 2);
        assert_eq!(s.pop_ready(), Some((Cycles(5), 0, 1)));
        s.set_busy(0, Cycles(5));
        // busy_until == t means free (strict > defers).
        assert_eq!(s.pop_ready(), Some((Cycles(5), 0, 2)));
    }

    #[test]
    fn lane_slots_are_reused() {
        let mut s: PeSchedule<u32> = PeSchedule::new(1);
        for round in 0..3u32 {
            let base = u64::from(round) * 100;
            s.schedule(Cycles(base + 1), 0, 1);
            s.schedule(Cycles(base + 2), 0, 2);
            let _ = s.pop_ready().unwrap();
            s.set_busy(0, Cycles(base + 50));
            assert_eq!(s.pop_ready(), Some((Cycles(base + 50), 0, 2)));
            s.set_busy(0, Cycles(base + 51));
        }
        // One deferral per round, always through the same recycled slot.
        assert_eq!(s.lanes[0].slots.len(), 1);
    }
}
