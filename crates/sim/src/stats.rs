//! Lightweight statistics collection for experiments.

use crate::time::Cycles;

/// A streaming summary of a series of samples: count, mean, min, max, and
/// exact percentiles (samples are retained; experiment scales here are
/// modest).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<u64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Adds a raw sample.
    pub fn add(&mut self, v: u64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Adds a duration sample.
    pub fn add_cycles(&mut self, c: Cycles) {
        self.add(c.0);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|&v| v as f64).sum::<f64>() / self.samples.len() as f64
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Exact percentile (nearest-rank), or `None` when empty.
    ///
    /// `p` is in `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Population standard deviation, or 0.0 when fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self
            .samples
            .iter()
            .map(|&v| {
                let d = v as f64 - m;
                d * d
            })
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }
}

/// A named monotone counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increments by one.
    pub fn bump(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for v in [4, 1, 3, 2, 5] {
            s.add(v);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(5));
        assert_eq!(s.percentile(0.0), Some(1));
        assert_eq!(s.percentile(50.0), Some(3));
        assert_eq!(s.percentile(100.0), Some(5));
    }

    #[test]
    fn summary_empty() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn stddev_constant_series_is_zero() {
        let mut s = Summary::new();
        for _ in 0..10 {
            s.add(7);
        }
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn counter() {
        let mut c = Counter::default();
        c.bump();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn add_cycles_records_raw_value() {
        let mut s = Summary::new();
        s.add_cycles(Cycles(123));
        assert_eq!(s.max(), Some(123));
    }
}
