//! Deterministic random number generation.
//!
//! All randomness in the reproduction (workload think times, file
//! selection, request interleavings) flows through [`DetRng`], a
//! splittable deterministic generator. Splitting matters: each actor gets
//! its own stream derived from the machine seed and the actor's id, so
//! adding an actor never perturbs another actor's random sequence — a
//! property plain shared-RNG designs lack and which keeps experiment
//! sweeps comparable.
//!
//! The generator is implemented in-crate (xoshiro256++ seeded through
//! SplitMix64) rather than via the `rand` crate: the sequence is part of
//! the simulator's determinism contract, so it must not change when an
//! external dependency bumps its algorithm — and the offline build
//! environment has no registry access anyway.

/// A deterministic, splittable RNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> DetRng {
        // Expand the seed through SplitMix64, as the xoshiro authors
        // recommend, so nearby seeds yield decorrelated states.
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(z);
        }
        DetRng { s }
    }

    /// Derives an independent stream for a sub-actor.
    ///
    /// Mixing uses SplitMix64 so nearby `(seed, salt)` pairs yield
    /// decorrelated streams.
    pub fn split(seed: u64, salt: u64) -> DetRng {
        DetRng::seed_from(splitmix64(seed ^ splitmix64(salt)))
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Debiased multiply-shift (Lemire); the rejection loop terminates
        // with overwhelming probability after one draw.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let t = bound.wrapping_neg() % bound;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }
}

/// SplitMix64 finaliser — the standard seed-mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_salts_differ() {
        let mut a = DetRng::split(42, 0);
        let mut b = DetRng::split(42, 1);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be decorrelated");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed_from(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn between_is_inclusive() {
        let mut r = DetRng::seed_from(7);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.between(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = DetRng::seed_from(9);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::seed_from(11);
        for _ in 0..100 {
            let v = r.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_covers_full_range() {
        let mut r = DetRng::seed_from(13);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn sequence_is_pinned() {
        // The stream is part of the determinism contract: changing the
        // generator changes every workload. Pin the first few outputs.
        let mut r = DetRng::seed_from(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = DetRng::seed_from(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        assert_ne!(first[0], first[1]);
    }
}
