//! Deterministic fault injection.
//!
//! A [`FaultPlan`] scripts failures for one simulated run: network
//! faults at the NoC boundary (drop, duplicate, delay, one-way
//! partitions between kernel islands) and kernel crashes at named
//! ops-engine phase boundaries. The plan is *part of the experiment
//! configuration*: the same plan and seed produce a bit-identical run,
//! because
//!
//! 1. random network verdicts come from a dedicated [`DetRng`] stream
//!    with **exactly one draw per inter-kernel message** (the verdict
//!    and the delay width both derive from that single draw), and
//! 2. the harness consults [`FaultPlan::verdict`] at a single choke
//!    point, in the deterministic delivery order of the event queue.
//!
//! The empty plan ([`FaultPlan::default`]) returns
//! [`NetVerdict::Deliver`] for everything and scripts no crashes, so a
//! machine built without a plan behaves byte-for-byte as before.

use crate::rng::DetRng;

/// What the network does with one inter-kernel message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetVerdict {
    /// Deliver normally.
    Deliver,
    /// Silently lose the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Deliver after an extra delay (harness time units).
    Delay(u64),
}

/// A scripted one-way partition: messages from island `from` to island
/// `to` are dropped while `start <= now < end` (harness time units).
/// Model a two-way partition with two windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Source kernel island (raw kernel id).
    pub from: u16,
    /// Destination kernel island (raw kernel id).
    pub to: u16,
    /// First instant the partition is in force.
    pub start: u64,
    /// First instant after the partition heals.
    pub end: u64,
}

/// A scripted kernel crash at an ops-engine phase boundary: kernel
/// `kernel` dies when it parks a phase named `phase` for the
/// `after_nth`-th time (1-based), *before* the parked phase's awaited
/// reply can arrive — e.g. `("sweep-mark", 1)` is "dies after
/// SweepMark, before SweepDelete".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Raw id of the kernel that dies.
    pub kernel: u16,
    /// `PhaseSpec` name that triggers the crash when parked.
    pub phase: &'static str,
    /// Which park of that phase triggers it (1 = the first).
    pub after_nth: u32,
}

/// Counters of faults the plan actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Total faulted verdicts (everything but `Deliver`).
    pub injected: u64,
    /// Messages dropped by the random stream.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages delayed.
    pub delayed: u64,
    /// Messages dropped by a partition window.
    pub partitioned: u64,
    /// Partition windows whose end has passed.
    pub partitions_healed: u64,
}

/// A deterministic, seed-scripted fault plan for one run.
#[derive(Debug, Default, Clone)]
pub struct FaultPlan {
    /// Per-message drop probability in permille (0..=1000).
    pub drop_permille: u64,
    /// Per-message duplication probability in permille.
    pub dup_permille: u64,
    /// Per-message delay probability in permille.
    pub delay_permille: u64,
    /// Maximum extra delay (harness time units) for a delayed message.
    pub max_delay: u64,
    rng: Option<DetRng>,
    partitions: Vec<PartitionWindow>,
    healed: Vec<bool>,
    crashes: Vec<CrashPoint>,
    stats: FaultStats,
}

impl FaultPlan {
    /// The empty plan: deliver everything, crash nobody.
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan drawing random verdicts from a dedicated stream salted
    /// off `seed` (so workload streams derived from the same seed are
    /// unperturbed).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { rng: Some(DetRng::split(seed, 0xFA17)), ..FaultPlan::default() }
    }

    /// Sets the random drop rate (builder style).
    pub fn with_drop(mut self, permille: u64) -> FaultPlan {
        self.drop_permille = permille;
        self
    }

    /// Sets the random duplication rate.
    pub fn with_duplicate(mut self, permille: u64) -> FaultPlan {
        self.dup_permille = permille;
        self
    }

    /// Sets the random delay rate and its maximum width.
    pub fn with_delay(mut self, permille: u64, max_delay: u64) -> FaultPlan {
        self.delay_permille = permille;
        self.max_delay = max_delay.max(1);
        self
    }

    /// Scripts a one-way partition window.
    pub fn with_partition(mut self, w: PartitionWindow) -> FaultPlan {
        self.partitions.push(w);
        self.healed.push(false);
        self
    }

    /// Scripts a kernel crash at a phase boundary.
    pub fn with_crash(mut self, c: CrashPoint) -> FaultPlan {
        self.crashes.push(c);
        self
    }

    /// True if the plan can never inject anything (the default plan).
    pub fn is_empty(&self) -> bool {
        let random = self.rng.is_some()
            && (self.drop_permille > 0 || self.dup_permille > 0 || self.delay_permille > 0);
        !random && self.partitions.is_empty() && self.crashes.is_empty()
    }

    /// The crash points scripted for one kernel, in script order.
    pub fn crash_points(&self, kernel: u16) -> Vec<(&'static str, u32)> {
        self.crashes.iter().filter(|c| c.kernel == kernel).map(|c| (c.phase, c.after_nth)).collect()
    }

    /// Counters of injected faults so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Decides the fate of one inter-kernel message from island `from`
    /// to island `to` at harness time `now`.
    ///
    /// Scripted partitions take precedence over the random stream; a
    /// partitioned message consumes **no** random draw, and a
    /// non-partitioned message consumes exactly one, so the stream
    /// stays aligned across runs of the same plan.
    pub fn verdict(&mut self, from: u16, to: u16, now: u64) -> NetVerdict {
        for (i, w) in self.partitions.iter().enumerate() {
            if now >= w.end && !self.healed[i] {
                self.healed[i] = true;
                self.stats.partitions_healed += 1;
            }
            if w.from == from && w.to == to && now >= w.start && now < w.end {
                self.stats.injected += 1;
                self.stats.partitioned += 1;
                return NetVerdict::Drop;
            }
        }
        let Some(rng) = self.rng.as_mut() else {
            return NetVerdict::Deliver;
        };
        // One draw decides both the verdict bucket and the delay width.
        let x = rng.next_u64();
        let bucket = x % 1000;
        if bucket < self.drop_permille {
            self.stats.injected += 1;
            self.stats.dropped += 1;
            NetVerdict::Drop
        } else if bucket < self.drop_permille + self.dup_permille {
            self.stats.injected += 1;
            self.stats.duplicated += 1;
            NetVerdict::Duplicate
        } else if bucket < self.drop_permille + self.dup_permille + self.delay_permille {
            self.stats.injected += 1;
            self.stats.delayed += 1;
            NetVerdict::Delay(1 + (x >> 10) % self.max_delay.max(1))
        } else {
            NetVerdict::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_delivers_everything() {
        let mut p = FaultPlan::empty();
        assert!(p.is_empty());
        for t in 0..100 {
            assert_eq!(p.verdict(0, 1, t), NetVerdict::Deliver);
        }
        assert_eq!(p.stats().injected, 0);
    }

    #[test]
    fn same_seed_same_verdicts() {
        let make = || FaultPlan::seeded(42).with_drop(100).with_duplicate(50).with_delay(50, 8);
        let mut a = make();
        let mut b = make();
        for t in 0..500 {
            assert_eq!(a.verdict(0, 1, t), b.verdict(0, 1, t));
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().injected > 0, "rates that high must fire in 500 messages");
    }

    #[test]
    fn partition_window_drops_one_way() {
        let mut p = FaultPlan::empty().with_partition(PartitionWindow {
            from: 0,
            to: 1,
            start: 10,
            end: 20,
        });
        assert_eq!(p.verdict(0, 1, 9), NetVerdict::Deliver);
        assert_eq!(p.verdict(0, 1, 10), NetVerdict::Drop);
        assert_eq!(p.verdict(1, 0, 15), NetVerdict::Deliver, "one-way only");
        assert_eq!(p.verdict(0, 1, 19), NetVerdict::Drop);
        assert_eq!(p.verdict(0, 1, 20), NetVerdict::Deliver);
        assert_eq!(p.stats().partitioned, 2);
        assert_eq!(p.stats().partitions_healed, 1);
    }

    #[test]
    fn partition_consumes_no_draw() {
        // With a partition in front, the random stream after the window
        // must match a plan that never had the partition.
        let mut part = FaultPlan::seeded(7).with_drop(500).with_partition(PartitionWindow {
            from: 0,
            to: 1,
            start: 0,
            end: 10,
        });
        let mut plain = FaultPlan::seeded(7).with_drop(500);
        for t in 0..10 {
            assert_eq!(part.verdict(0, 1, t), NetVerdict::Drop);
        }
        for t in 10..200 {
            assert_eq!(part.verdict(0, 1, t), plain.verdict(0, 1, t - 10));
        }
    }

    #[test]
    fn crash_points_filter_by_kernel() {
        let p = FaultPlan::empty()
            .with_crash(CrashPoint { kernel: 2, phase: "sweep-mark", after_nth: 1 })
            .with_crash(CrashPoint { kernel: 1, phase: "revoke-run", after_nth: 3 });
        assert_eq!(p.crash_points(2), vec![("sweep-mark", 1)]);
        assert_eq!(p.crash_points(1), vec![("revoke-run", 3)]);
        assert!(p.crash_points(0).is_empty());
        assert!(!p.is_empty());
    }

    #[test]
    fn delay_verdict_bounded() {
        let mut p = FaultPlan::seeded(3).with_delay(1000, 16);
        for t in 0..200 {
            match p.verdict(0, 1, t) {
                NetVerdict::Delay(d) => assert!((1..=16).contains(&d)),
                v => panic!("expected delay, got {v:?}"),
            }
        }
    }
}
