//! A stable priority queue of timestamped events.

use crate::time::Cycles;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry: ordered by time, then by insertion sequence.
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest event.
        // Ties break on the *lower* sequence number (FIFO among equals),
        // which is what makes the whole simulation deterministic.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue.
///
/// Events are popped in timestamp order; events with the same timestamp
/// are popped in insertion order. This stability is a correctness
/// property, not an optimisation: the kernel protocol relies on FIFO
/// channel ordering (§4.3.1), which the NoC implements on top of this
/// queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Cycles,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: Cycles::ZERO, popped: 0 }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past — an event scheduled before `now`
    /// indicates a bug in a cost computation.
    pub fn schedule(&mut self, at: Cycles, event: E) {
        assert!(at >= self.now, "event scheduled in the past: {} < now {}", at, self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.popped += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.at)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), "c");
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(20), "b");
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
        assert_eq!(q.pop(), Some((Cycles(20), "b")));
        assert_eq!(q.pop(), Some((Cycles(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(5), i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), ());
        assert_eq!(q.now(), Cycles::ZERO);
        q.pop();
        assert_eq!(q.now(), Cycles(10));
        q.schedule_in(5, ());
        assert_eq!(q.pop(), Some((Cycles(15), ())));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), ());
        q.pop();
        q.schedule(Cycles(5), ());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycles(1), ());
        q.schedule(Cycles(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Cycles(1)));
        q.pop();
        assert_eq!(q.processed(), 1);
        assert_eq!(q.len(), 1);
    }
}
