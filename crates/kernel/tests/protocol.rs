//! Protocol-level tests of the distributed capability management (§4.3),
//! including every interference case of Table 2.

use semper_base::config::Feature;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, Code, VpeId};
use semper_kernel::harness::TestCluster;

/// Convenience: create a memory capability and return its selector.
fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    let r = c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW });
    match r.result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

/// Convenience: `to` obtains `from`'s capability at `sel`.
fn obtain(c: &mut TestCluster, to: VpeId, from: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        to,
        Syscall::Exchange {
            other: from,
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    match r.result {
        Ok(SysReplyData::Sel(sel)) => sel,
        other => panic!("obtain failed: {other:?}"),
    }
}

/// Convenience: `from` delegates its capability at `sel` to `to`.
fn delegate(c: &mut TestCluster, from: VpeId, to: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        from,
        Syscall::Exchange {
            other: to,
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    match r.result {
        Ok(SysReplyData::Delegated { recv_sel }) => recv_sel,
        other => panic!("delegate failed: {other:?}"),
    }
}

fn revoke(c: &mut TestCluster, vpe: VpeId, sel: CapSel) {
    let r = c.syscall(vpe, Syscall::Revoke { sel, own: true });
    assert!(matches!(r.result, Ok(SysReplyData::None)), "revoke failed: {:?}", r.result);
}

#[test]
fn local_delegate_roundtrip() {
    let mut c = TestCluster::new(1, 2);
    let sel = create_mem(&mut c, VpeId(0));
    let recv_sel = delegate(&mut c, VpeId(0), VpeId(1), sel);
    assert_ne!(recv_sel, CapSel::INVALID);
    c.check_invariants();
    assert_eq!(c.kernels[0].stats().exchanges_local, 1);
}

#[test]
fn spanning_delegate_two_way_handshake() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let recv_sel = delegate(&mut c, VpeId(0), VpeId(1), sel);
    assert_ne!(recv_sel, CapSel::INVALID);
    c.check_invariants();
    // The delegator's kernel counts the spanning exchange.
    assert_eq!(c.kernels[0].stats().exchanges_spanning, 1);
    // Receiver-side kernel holds the new capability.
    assert!(c.kernels[1].table(VpeId(1)).unwrap().get(recv_sel).is_ok());
}

#[test]
fn denied_exchange_returns_error() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.deny_exchanges(VpeId(1));
    let r = c.syscall(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    assert_eq!(r.result.unwrap_err().code(), Code::ExchangeDenied);
    c.check_invariants();
}

#[test]
fn local_revoke_removes_subtree() {
    let mut c = TestCluster::new(1, 3);
    let sel = create_mem(&mut c, VpeId(0));
    let s1 = delegate(&mut c, VpeId(0), VpeId(1), sel);
    let _s2 = delegate(&mut c, VpeId(1), VpeId(2), s1);
    let before = c.total_caps();
    revoke(&mut c, VpeId(0), sel);
    // Root + two delegated copies are gone.
    assert_eq!(c.total_caps(), before - 3);
    c.check_invariants();
    assert!(c.kernels[0].table(VpeId(1)).unwrap().get(s1).is_err());
}

#[test]
fn spanning_revoke_removes_remote_children() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let recv_sel = delegate(&mut c, VpeId(0), VpeId(1), sel);
    revoke(&mut c, VpeId(0), sel);
    c.check_invariants();
    assert!(c.kernels[1].table(VpeId(1)).unwrap().get(recv_sel).is_err());
    assert_eq!(c.kernels[0].stats().revokes_spanning, 1);
}

#[test]
fn spanning_obtain_then_owner_revoke() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let got = obtain(&mut c, VpeId(1), VpeId(0), sel);
    assert!(c.kernels[1].table(VpeId(1)).unwrap().get(got).is_ok());
    revoke(&mut c, VpeId(0), sel);
    c.check_invariants();
    assert!(c.kernels[1].table(VpeId(1)).unwrap().get(got).is_err());
    assert_eq!(c.kernels[0].stats().revokes_spanning, 1);
}

#[test]
fn cross_kernel_chain_revokes_fully() {
    // The adversarial ping-pong chain of §5.2: a capability delegated
    // back and forth between VPEs of two different kernels.
    let mut c = TestCluster::new(2, 2);
    // Groups: K0 = {VPE0, VPE1}, K1 = {VPE2, VPE3}.
    let root = create_mem(&mut c, VpeId(0));
    let mut sels = vec![(VpeId(0), root)];
    let mut cur = root;
    let mut holder = VpeId(0);
    // Alternate: 0 -> 2 -> 1 -> 3 -> 0... building a deep chain.
    let order = [VpeId(2), VpeId(1), VpeId(3), VpeId(0), VpeId(2), VpeId(1)];
    for &next in &order {
        cur = delegate(&mut c, holder, next, cur);
        holder = next;
        sels.push((next, cur));
    }
    let total_before = c.total_caps();
    revoke(&mut c, VpeId(0), root);
    assert_eq!(c.total_caps(), total_before - sels.len());
    c.check_invariants();
    // Every selector in the chain is gone.
    for (vpe, sel) in sels {
        let k = c.kernel_of(vpe);
        assert!(c.kernels[k.idx()].table(vpe).unwrap().get(sel).is_err());
    }
}

#[test]
fn wide_tree_revoke_across_kernels() {
    let mut c = TestCluster::new(4, 3);
    // VPE0 (group 0) delegates to all 11 other VPEs.
    let root = create_mem(&mut c, VpeId(0));
    for v in 1..12u16 {
        let _ = delegate(&mut c, VpeId(0), VpeId(v), root);
    }
    let before = c.total_caps();
    revoke(&mut c, VpeId(0), root);
    assert_eq!(c.total_caps(), before - 12);
    c.check_invariants();
}

#[test]
fn revoke_children_only_keeps_root() {
    let mut c = TestCluster::new(1, 2);
    let sel = create_mem(&mut c, VpeId(0));
    let _ = delegate(&mut c, VpeId(0), VpeId(1), sel);
    let r = c.syscall(VpeId(0), Syscall::Revoke { sel, own: false });
    assert!(r.result.is_ok());
    // Root survives, child is gone.
    assert!(c.kernels[0].table(VpeId(0)).unwrap().get(sel).is_ok());
    c.check_invariants();
}

// ----- Table 2: interference cases -------------------------------------

#[test]
fn orphaned_obtain_cleaned_up() {
    // Obtain followed by the obtainer's death while the inter-kernel
    // call is in flight → the owner-side child reference is orphaned and
    // must be cleaned via the orphan notice (Table 2 "Orphaned").
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    // VPE1 (group 1) starts obtaining from VPE0 (group 0).
    c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    // Deliver: syscall → K1, ObtainReq → K0, upcall → VPE0, reply → K0.
    // That links the child at the owner; the obtain reply to K1 is queued.
    c.pump_n(4);
    // Kill the obtainer before its kernel processes the reply.
    c.kill(VpeId(1));
    c.pump_all();
    c.check_invariants();
    // The owner's capability must have no children left (orphan removed).
    let k0 = &c.kernels[0];
    let key = k0.table(VpeId(0)).unwrap().get(sel).unwrap();
    assert_eq!(k0.mapdb().get(key).unwrap().child_count(), 0);
    assert_eq!(k0.stats().orphans_cleaned, 1);
}

#[test]
fn delegate_to_killed_receiver_unwinds() {
    // Delegate where the receiver dies mid-handshake → the pending
    // capability is dropped and the delegator unlinks the child.
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    // syscall → K0, DelegateReq → K1, upcall → VPE1, reply → K1,
    // DelegateReply → K0 (which links the child and sends the ack).
    c.pump_n(5);
    c.kill(VpeId(1));
    c.pump_all();
    c.check_invariants();
    // Delegator's capability has no children; no stray capability at K1.
    let k0 = &c.kernels[0];
    let key = k0.table(VpeId(0)).unwrap().get(sel).unwrap();
    assert_eq!(k0.mapdb().get(key).unwrap().child_count(), 0);
}

#[test]
fn invalid_prevention_revoke_during_delegate() {
    // Table 2 "Invalid": parent revoked while the delegate handshake is
    // in flight. With the two-way handshake the receiver must NOT end up
    // with a usable capability.
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    // Process only the first leg up to the receiver-side creation:
    // syscall → K0 (sends DelegateReq), K1 handles it (upcall), VPE1
    // accepts, K1 parks the pending insert + replies.
    c.pump_n(4);
    // Now revoke the parent at K0 *before* the DelegateReply is
    // processed — the parent has no children yet, so the revoke
    // completes locally and the reply finds the parent gone.
    let tag = c.syscall_front(VpeId(0), Syscall::Revoke { sel, own: true });
    c.pump_all();
    assert!(c.take_reply(VpeId(0), tag).unwrap().result.is_ok());
    c.check_invariants();
    // The receiver must have no memory capability: the pending insert
    // was aborted by the handshake.
    let k1 = &c.kernels[1];
    let has_mem = k1
        .mapdb()
        .iter()
        .any(|cap| matches!(cap.kind, semper_base::msg::CapKindDesc::Memory { .. }));
    assert!(!has_mem, "receiver holds an invalid capability");
    assert_eq!(k1.pending_ops(), 0, "no pending insert may leak");
}

#[test]
fn one_way_delegate_ablation_leaves_invalid_cap() {
    // The same race with the handshake disabled demonstrates the window:
    // the receiver ends up holding a capability whose parent is gone.
    let mut c = TestCluster::new(2, 1);
    for k in &mut c.kernels {
        // Enable the ablation on every kernel.
        // (TestCluster has no feature plumbing; poke the config.)
        k.enable_feature_for_test(Feature::OneWayDelegate);
    }
    let sel = create_mem(&mut c, VpeId(0));
    c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    c.pump_n(4); // receiver inserts immediately under one-way protocol
    let tag = c.syscall_front(VpeId(0), Syscall::Revoke { sel, own: true });
    c.pump_all();
    assert!(c.take_reply(VpeId(0), tag).unwrap().result.is_ok());
    let k1 = &c.kernels[1];
    let has_mem = k1
        .mapdb()
        .iter()
        .any(|cap| matches!(cap.kind, semper_base::msg::CapKindDesc::Memory { .. }));
    assert!(has_mem, "ablation: the naive protocol should exhibit the invalid capability");
}

#[test]
fn pointless_exchange_denied_during_revoke() {
    // Table 2 "Pointless": an exchange touching a capability that is
    // marked for revocation is denied immediately.
    let mut c = TestCluster::new(2, 2);
    // Build a spanning tree so the revoke stays in flight: VPE0 → VPE2.
    let sel = create_mem(&mut c, VpeId(0));
    let _ = delegate(&mut c, VpeId(0), VpeId(2), sel);
    // Start the revoke but stop before the remote reply returns:
    // syscall → K0 marks locally + sends RevokeReq.
    let rtag = c.syscall_async(VpeId(0), Syscall::Revoke { sel, own: true });
    c.pump_n(1);
    // VPE1 (same group as VPE0) now tries to obtain the marked cap.
    let otag = c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    c.pump_all();
    assert_eq!(
        c.take_reply(VpeId(1), otag).unwrap().result.unwrap_err().code(),
        Code::RevokeInProgress
    );
    assert!(c.take_reply(VpeId(0), rtag).unwrap().result.is_ok());
    assert!(c.kernels[0].stats().pointless_denied >= 1);
    c.check_invariants();
}

#[test]
fn concurrent_overlapping_revokes_both_complete() {
    // Table 2 "Incomplete": revoke(A) and revoke(B) with B inside A's
    // subtree, racing across kernels. Both must be acknowledged only
    // when their subtrees are fully gone.
    let mut c = TestCluster::new(3, 1);
    // Chain A(VPE0@K0) → B(VPE1@K1) → C(VPE2@K2).
    let a = create_mem(&mut c, VpeId(0));
    let b = delegate(&mut c, VpeId(0), VpeId(1), a);
    let _cc = delegate(&mut c, VpeId(1), VpeId(2), b);
    let before = c.total_caps();
    // Fire both revokes without pumping in between.
    let ta = c.syscall_async(VpeId(0), Syscall::Revoke { sel: a, own: true });
    let tb = c.syscall_async(VpeId(1), Syscall::Revoke { sel: b, own: true });
    c.pump_all();
    assert!(c.take_reply(VpeId(0), ta).unwrap().result.is_ok());
    assert!(c.take_reply(VpeId(1), tb).unwrap().result.is_ok());
    assert_eq!(c.total_caps(), before - 3);
    c.check_invariants();
    // No pending operations may survive.
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0);
    }
}

#[test]
fn concurrent_revokes_other_order() {
    // Same as above but the inner revoke is fired first.
    let mut c = TestCluster::new(3, 1);
    let a = create_mem(&mut c, VpeId(0));
    let b = delegate(&mut c, VpeId(0), VpeId(1), a);
    let _cc = delegate(&mut c, VpeId(1), VpeId(2), b);
    let before = c.total_caps();
    let tb = c.syscall_async(VpeId(1), Syscall::Revoke { sel: b, own: true });
    let ta = c.syscall_async(VpeId(0), Syscall::Revoke { sel: a, own: true });
    c.pump_all();
    assert!(c.take_reply(VpeId(1), tb).unwrap().result.is_ok());
    assert!(c.take_reply(VpeId(0), ta).unwrap().result.is_ok());
    assert_eq!(c.total_caps(), before - 3);
    c.check_invariants();
}

#[test]
fn double_revoke_same_cap() {
    // Two VPEs of different groups revoke overlapping subtrees rooted at
    // the same exchange simultaneously; the second must wait, not error.
    let mut c = TestCluster::new(2, 1);
    let a = create_mem(&mut c, VpeId(0));
    let b = delegate(&mut c, VpeId(0), VpeId(1), a);
    let ta = c.syscall_async(VpeId(0), Syscall::Revoke { sel: a, own: true });
    let tb = c.syscall_async(VpeId(1), Syscall::Revoke { sel: b, own: true });
    c.pump_all();
    assert!(c.take_reply(VpeId(0), ta).unwrap().result.is_ok());
    assert!(c.take_reply(VpeId(1), tb).unwrap().result.is_ok());
    assert_eq!(c.total_caps(), 2); // only the two self-caps remain
    c.check_invariants();
}

// ----- sessions ----------------------------------------------------------

#[test]
fn local_session_open() {
    let mut c = TestCluster::new(1, 2);
    let r = c.syscall(VpeId(0), Syscall::CreateSrv { name: 42 });
    assert!(r.result.is_ok());
    let r = c.syscall(VpeId(1), Syscall::OpenSession { name: 42 });
    match r.result {
        Ok(SysReplyData::Session { ident, .. }) => assert!(ident > 0),
        other => panic!("open session failed: {other:?}"),
    }
    c.check_invariants();
    assert_eq!(c.kernels[0].stats().sessions_opened, 1);
}

#[test]
fn remote_session_open_links_under_service_cap() {
    let mut c = TestCluster::new(2, 1);
    // Service on VPE0 (group 0), client VPE1 (group 1).
    let r = c.syscall(VpeId(0), Syscall::CreateSrv { name: 7 });
    let Ok(SysReplyData::Sel(srv_sel)) = r.result else { panic!() };
    let r = c.syscall(VpeId(1), Syscall::OpenSession { name: 7 });
    assert!(matches!(r.result, Ok(SysReplyData::Session { .. })), "{:?}", r.result);
    c.check_invariants();
    // The session capability (owned by K1) is a child of the service
    // capability (owned by K0) — the cross-kernel relation of §3.4.
    let k0 = &c.kernels[0];
    let srv_key = k0.table(VpeId(0)).unwrap().get(srv_sel).unwrap();
    assert_eq!(k0.mapdb().get(srv_key).unwrap().child_count(), 1);
}

#[test]
fn revoking_service_cap_kills_remote_sessions() {
    let mut c = TestCluster::new(2, 1);
    let r = c.syscall(VpeId(0), Syscall::CreateSrv { name: 7 });
    let Ok(SysReplyData::Sel(srv_sel)) = r.result else { panic!() };
    let r = c.syscall(VpeId(1), Syscall::OpenSession { name: 7 });
    let Ok(SysReplyData::Session { sel: sess_sel, .. }) = r.result else { panic!() };
    revoke(&mut c, VpeId(0), srv_sel);
    c.check_invariants();
    assert!(c.kernels[1].table(VpeId(1)).unwrap().get(sess_sel).is_err());
}

#[test]
fn open_session_unknown_service_fails() {
    let mut c = TestCluster::new(1, 1);
    let r = c.syscall(VpeId(0), Syscall::OpenSession { name: 999 });
    assert_eq!(r.result.unwrap_err().code(), Code::NoSuchService);
}

// ----- derive + exit ------------------------------------------------------

#[test]
fn derive_mem_creates_attenuated_child() {
    let mut c = TestCluster::new(1, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let r = c.syscall(
        VpeId(0),
        Syscall::DeriveMem { src: sel, offset: 1024, size: 512, perms: Perms::R },
    );
    assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{:?}", r.result);
    // Deriving beyond the parent's range fails.
    let r = c.syscall(
        VpeId(0),
        Syscall::DeriveMem { src: sel, offset: 4000, size: 512, perms: Perms::R },
    );
    assert_eq!(r.result.unwrap_err().code(), Code::InvalidArgs);
    // Widening permissions fails.
    let r2 = c
        .syscall(VpeId(0), Syscall::DeriveMem { src: sel, offset: 0, size: 64, perms: Perms::RWX });
    assert_eq!(r2.result.unwrap_err().code(), Code::NoPerm);
    c.check_invariants();
}

#[test]
fn exit_revokes_everything_including_remote() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let recv = delegate(&mut c, VpeId(0), VpeId(1), sel);
    // VPE0 exits: its memory cap and the remote child must disappear.
    c.syscall_async(VpeId(0), Syscall::Exit);
    c.pump_all();
    c.check_invariants();
    assert!(c.kernels[1].table(VpeId(1)).unwrap().get(recv).is_err());
    // Only VPE1's self-cap remains.
    assert_eq!(c.total_caps(), 1);
}

#[test]
fn exchange_with_self_rejected() {
    let mut c = TestCluster::new(1, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let r = c.syscall(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    assert_eq!(r.result.unwrap_err().code(), Code::InvalidArgs);
}

#[test]
fn obtain_nonexistent_selector_fails() {
    let mut c = TestCluster::new(2, 1);
    let r = c.syscall(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: CapSel(12345),
            kind: ExchangeKind::Obtain,
        },
    );
    assert_eq!(r.result.unwrap_err().code(), Code::NoSuchCap);
}

// ----- batching (ablation) -----------------------------------------------

#[test]
fn batched_revoke_equivalent_to_unbatched() {
    for batching in [false, true] {
        let mut c = TestCluster::new(3, 2);
        if batching {
            for k in &mut c.kernels {
                k.enable_feature_for_test(Feature::RevokeBatching);
            }
        }
        let root = create_mem(&mut c, VpeId(0));
        // Delegate to several VPEs across kernels: children at K1 and K2.
        for v in [2u16, 3, 4, 5] {
            let _ = delegate(&mut c, VpeId(0), VpeId(v), root);
        }
        let before = c.total_caps();
        revoke(&mut c, VpeId(0), root);
        assert_eq!(c.total_caps(), before - 5, "batching={batching}");
        c.check_invariants();
    }
}

#[test]
fn credit_budget_is_respected() {
    // Flood one kernel pair with more requests than M_inflight; the
    // excess must queue, not exceed the budget, and still complete.
    let mut c = TestCluster::new(2, 6);
    // Groups: K0 = VPE0..5, K1 = VPE6..11.
    let mut sels = Vec::new();
    for v in 0..6u16 {
        sels.push((VpeId(v), create_mem(&mut c, VpeId(v))));
    }
    // Queue six spanning delegates at once (> M_inflight = 4).
    let mut tags = Vec::new();
    for (i, (v, sel)) in sels.iter().enumerate() {
        tags.push((
            *v,
            c.syscall_async(
                *v,
                Syscall::Exchange {
                    other: VpeId(6 + i as u16),
                    own_sel: *sel,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
            ),
        ));
    }
    c.pump_all();
    for (v, tag) in tags {
        assert!(c.take_reply(v, tag).unwrap().result.is_ok(), "{v} delegate failed");
    }
    c.check_invariants();
    assert!(c.kernels[0].stats().kcalls_credit_stalled > 0, "expected credit stalls");
}

// ----- DTU endpoint activation (gates) -----------------------------------

#[test]
fn activate_binds_and_revoke_invalidates() {
    use semper_base::EpId;
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    let recv = delegate(&mut c, VpeId(0), VpeId(1), sel);
    // The receiver activates an endpoint for its delegated capability.
    let r = c.syscall(VpeId(1), Syscall::Activate { sel: recv, ep: EpId(3) });
    assert!(r.result.is_ok(), "{:?}", r.result);
    let k1 = c.kernel_of(VpeId(1));
    assert!(c.kernels[k1.idx()].ep_binding(VpeId(1), EpId(3)).is_some());
    // Revoking the root must deconfigure the endpoint: the hardware
    // access path is severed.
    revoke(&mut c, VpeId(0), sel);
    assert!(c.kernels[k1.idx()].ep_binding(VpeId(1), EpId(3)).is_none());
    assert_eq!(c.kernels[k1.idx()].stats().eps_invalidated, 1);
    c.check_invariants();
}

#[test]
fn activate_rejects_bad_arguments() {
    use semper_base::EpId;
    let mut c = TestCluster::new(1, 1);
    let sel = create_mem(&mut c, VpeId(0));
    // Out-of-range endpoint.
    let r = c.syscall(VpeId(0), Syscall::Activate { sel, ep: EpId(200) });
    assert_eq!(r.result.unwrap_err().code(), Code::InvalidArgs);
    // Non-memory capability (the VPE's self capability at selector 0).
    let r = c.syscall(VpeId(0), Syscall::Activate { sel: CapSel(0), ep: EpId(1) });
    assert_eq!(r.result.unwrap_err().code(), Code::InvalidArgs);
    // Unknown selector.
    let r = c.syscall(VpeId(0), Syscall::Activate { sel: CapSel(999), ep: EpId(1) });
    assert_eq!(r.result.unwrap_err().code(), Code::NoSuchCap);
}

#[test]
fn activate_rebinding_replaces_previous() {
    use semper_base::EpId;
    let mut c = TestCluster::new(1, 1);
    let a = create_mem(&mut c, VpeId(0));
    let b = create_mem(&mut c, VpeId(0));
    c.syscall(VpeId(0), Syscall::Activate { sel: a, ep: EpId(5) });
    c.syscall(VpeId(0), Syscall::Activate { sel: b, ep: EpId(5) });
    let k = c.kernel_of(VpeId(0));
    let bound = c.kernels[k.idx()].ep_binding(VpeId(0), EpId(5)).unwrap();
    let key_b = c.kernels[k.idx()].table(VpeId(0)).unwrap().get(b).unwrap();
    assert_eq!(bound, key_b, "rebinding must replace the previous binding");
}

#[test]
fn activate_denied_during_revocation() {
    use semper_base::EpId;
    // Mark a capability by starting a spanning revoke, then try to
    // activate it: must be denied (pointless prevention extends to
    // endpoint configuration).
    let mut c = TestCluster::new(2, 2);
    let sel = create_mem(&mut c, VpeId(0));
    let _ = delegate(&mut c, VpeId(0), VpeId(2), sel);
    let rt = c.syscall_async(VpeId(0), Syscall::Revoke { sel, own: true });
    c.pump_n(1); // marked locally; remote child still pending
                 // The harness allows probing the kernel-side check directly while
                 // the revoke is still in flight.
    let at = c.syscall_front(VpeId(0), Syscall::Activate { sel, ep: EpId(2) });
    c.pump_all();
    assert_eq!(
        c.take_reply(VpeId(0), at).unwrap().result.unwrap_err().code(),
        Code::RevokeInProgress
    );
    assert!(c.take_reply(VpeId(0), rt).unwrap().result.is_ok());
    c.check_invariants();
}

// ----- parallel partitioned sweep (PR 6) ---------------------------------

/// Builds a 4-kernel cluster with `Feature::ParallelSweep` enabled
/// everywhere, a root at VPE 0 whose children spread over the three
/// peer kernels (which triggers the partitioned mark → delete sweep on
/// revoke), and a second-level copy under each child.
fn spanning_sweep_cluster() -> (TestCluster, CapSel, Vec<(VpeId, CapSel)>) {
    let mut c = TestCluster::new(4, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::ParallelSweep);
    }
    let root = create_mem(&mut c, VpeId(0));
    let mut copies = Vec::new();
    for to in [2u16, 4, 6, 3, 5, 7] {
        let s = delegate(&mut c, VpeId(0), VpeId(to), root);
        copies.push((VpeId(to), s));
        // One more hop so the participants' partitions have depth.
        let grandchild = VpeId(if to % 2 == 0 { to + 1 } else { to - 1 });
        let g = delegate(&mut c, VpeId(to), grandchild, s);
        copies.push((grandchild, g));
    }
    (c, root, copies)
}

#[test]
fn parallel_sweep_spanning_revoke() {
    // Baseline behavior: the sweep deletes exactly the subtree and
    // quiesces (and really ran — the sweep counter moved).
    let (mut c, root, copies) = spanning_sweep_cluster();
    let before = c.total_caps();
    revoke(&mut c, VpeId(0), root);
    assert_eq!(c.total_caps(), before - 1 - copies.len());
    assert!(c.kernels[0].stats().sweeps >= 1, "revoke did not take the sweep path");
    c.check_invariants();
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0);
    }
}

#[test]
fn kill_mid_parallel_sweep() {
    // The initiating VPE dies while its sweep is in flight: the sweep
    // must still run to completion (the kill's own teardown revoke
    // waits on the in-progress subtree instead of deadlocking), and no
    // capability of the dead VPE may survive.
    let (mut c, root, copies) = spanning_sweep_cluster();
    c.syscall_async(VpeId(0), Syscall::Revoke { sel: root, own: true });
    // A few pumps: the mark requests are out, partitions exist at the
    // peers, but the delete phase has not completed.
    c.pump_n(3);
    c.kill(VpeId(0));
    c.pump_all();
    c.check_invariants();
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} left suspended ops", k.id());
    }
    if let Some(t) = c.kernels[0].table(VpeId(0)) {
        assert_eq!(t.len(), 0, "dead VPE still holds capabilities");
    }
    for (vpe, sel) in copies {
        let k = c.kernel_of(vpe);
        assert!(
            c.kernels[k.idx()].table(vpe).unwrap().get(sel).is_err(),
            "{vpe} still holds swept capability {sel}"
        );
    }
}

#[test]
fn overlapping_parallel_sweeps_no_deadlock() {
    // Two concurrent sweeps whose subtrees overlap (B's root lives
    // inside A's subtree), in both firing orders: the inner op must
    // chain onto the outer one's progress (Table 2 "Incomplete"), both
    // must be acknowledged, and nothing may deadlock.
    for inner_first in [false, true] {
        let mut c = TestCluster::new(4, 2);
        for k in &mut c.kernels {
            k.enable_feature_for_test(Feature::ParallelSweep);
        }
        let a = create_mem(&mut c, VpeId(0));
        // B: a copy of A at VPE 2 (kernel 1), itself fanned out across
        // kernels 2 and 3 — revoking B triggers its own sweep.
        let b = delegate(&mut c, VpeId(0), VpeId(2), a);
        for to in [4u16, 6, 5, 7] {
            let _ = delegate(&mut c, VpeId(2), VpeId(to), b);
        }
        // A's other children span kernels 1-3 so A sweeps too.
        for to in [3u16, 4, 6, 5, 7] {
            let _ = delegate(&mut c, VpeId(0), VpeId(to), a);
        }
        let before = c.total_caps();
        let (ta, tb);
        if inner_first {
            tb = c.syscall_async(VpeId(2), Syscall::Revoke { sel: b, own: true });
            ta = c.syscall_async(VpeId(0), Syscall::Revoke { sel: a, own: true });
        } else {
            ta = c.syscall_async(VpeId(0), Syscall::Revoke { sel: a, own: true });
            tb = c.syscall_async(VpeId(2), Syscall::Revoke { sel: b, own: true });
        }
        c.pump_all();
        assert!(
            c.take_reply(VpeId(0), ta).unwrap().result.is_ok(),
            "outer sweep failed (inner_first={inner_first})"
        );
        assert!(
            c.take_reply(VpeId(2), tb).unwrap().result.is_ok(),
            "inner sweep failed (inner_first={inner_first})"
        );
        // The whole structure is gone: root + 10 delegated copies.
        assert_eq!(c.total_caps(), before - 11, "inner_first={inner_first}");
        c.check_invariants();
        for k in &c.kernels {
            assert_eq!(k.pending_ops(), 0, "inner_first={inner_first}: suspended ops");
        }
    }
}
