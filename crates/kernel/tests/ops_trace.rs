//! Protocol trace-equivalence tests for the `kernel::ops` port.
//!
//! In the style of the scheduler's reference-model tests
//! (`tests/scheduler.rs` at the workspace root): instead of checking
//! aggregate outcomes, these tests pin the *entire observable message
//! trace* of each distributed protocol — every syscall, upcall,
//! inter-kernel call and reply, in delivery order, with full payloads
//! (op ids, DDL keys, selectors). Two protocol implementations that
//! produce the same trace are indistinguishable to VPEs and to other
//! kernels.
//!
//! The golden fingerprints below were recorded on the hand-rolled
//! per-module state machines (`exchange.rs` / `revoke.rs` /
//! `session.rs`) *before* the port onto the `kernel::ops` engine; the
//! engine must reproduce them byte-for-byte. On mismatch the full trace
//! is printed so the first diverging message can be found by diffing.
//! Re-record (`cargo test -p semper-kernel --test ops_trace -- --nocapture`)
//! only when the protocol intentionally changes.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, Feature, VpeId};
use semper_kernel::harness::TestCluster;

/// FNV-1a over the joined trace — stable across platforms and runs.
fn fingerprint(trace: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in trace {
        for b in line.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn check(trace: Vec<String>, golden_len: usize, golden_fp: u64, what: &str) {
    let fp = fingerprint(&trace);
    if trace.len() != golden_len || fp != golden_fp {
        eprintln!("--- {what}: full trace ({} messages, fp {fp:#x}) ---", trace.len());
        for (i, line) in trace.iter().enumerate() {
            eprintln!("{i:3}  {line}");
        }
        panic!(
            "{what}: trace diverged from the pre-ops-engine golden \
             (got {} msgs / {fp:#x}, want {golden_len} / {golden_fp:#x})",
            trace.len()
        );
    }
    println!("{what}: {} messages, fp {fp:#x}", trace.len());
}

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

/// Group-spanning obtain (Figure 3, sequence B): request, consent
/// upcall at the owner, child linked before the reply, insertion at the
/// requester.
#[test]
fn spanning_obtain_trace_matches_golden() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.enable_tracing();
    let r = c.syscall(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    check(c.take_trace(), 6, 0x0c7da2f932c627fb, "spanning obtain");
}

/// Group-spanning delegate: the two-way handshake (§4.3.2) — request,
/// consent upcall at the receiver, parked uninserted capability,
/// commit ack, insertion, done-reply.
#[test]
fn spanning_delegate_trace_matches_golden() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.enable_tracing();
    let r = c.syscall(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    check(c.take_trace(), 8, 0x357ea72111d0e9f0, "spanning delegate");
}

/// A cross-kernel delegation chain over three kernels, then one revoke
/// of the root: the mark-and-sweep bounces between kernels (Algorithm
/// 1), with one revoke request per remote child and completion replies
/// only after each remote subtree is fully gone.
#[test]
fn spanning_chain_revoke_trace_matches_golden() {
    let mut c = TestCluster::new(3, 1);
    let root = create_mem(&mut c, VpeId(0));
    let mut holder = VpeId(0);
    let mut sel = root;
    for next in [VpeId(1), VpeId(2), VpeId(0), VpeId(1)] {
        let r = c.syscall(
            holder,
            Syscall::Exchange {
                other: next,
                own_sel: sel,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        let Ok(SysReplyData::Delegated { recv_sel }) = r.result else {
            panic!("delegate failed: {r:?}")
        };
        holder = next;
        sel = recv_sel;
    }
    c.enable_tracing();
    let r = c.syscall(VpeId(0), Syscall::Revoke { sel: root, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    assert_eq!(c.total_caps(), 3, "only the self-capabilities remain");
    check(c.take_trace(), 10, 0x505df7ed76ac416c, "spanning chain revoke");
}

/// The same wide-tree revoke with [`Feature::RevokeBatching`]: remote
/// children grouped into one batched request per kernel, answered once
/// the whole batch is done.
#[test]
fn batched_revoke_trace_matches_golden() {
    let mut c = TestCluster::new(3, 2);
    for k in &mut c.kernels {
        k.enable_feature_for_test(Feature::RevokeBatching);
    }
    let root = create_mem(&mut c, VpeId(0));
    // Two children in each remote group, one local.
    for to in [VpeId(1), VpeId(4), VpeId(2), VpeId(5), VpeId(3)] {
        let r = c.syscall(
            VpeId(0),
            Syscall::Exchange {
                other: to,
                own_sel: root,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        assert!(r.result.is_ok(), "{r:?}");
    }
    c.enable_tracing();
    let r = c.syscall(VpeId(0), Syscall::Revoke { sel: root, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    check(c.take_trace(), 6, 0x43014bb3e421a812, "batched revoke");
}

/// The full session lifecycle across three kernels: service
/// registration and announcement, one spanning and one local open, a
/// client-side close, and the final service teardown sweeping the
/// remaining sessions.
#[test]
fn session_lifecycle_trace_matches_golden() {
    const NAME: u64 = 42;
    let mut c = TestCluster::new(3, 2);
    c.enable_tracing();
    let r = c.syscall(VpeId(2), Syscall::CreateSrv { name: NAME });
    let Ok(SysReplyData::Sel(srv_sel)) = r.result else { panic!("{r:?}") };
    let open = |c: &mut TestCluster, vpe: VpeId| {
        let r = c.syscall(vpe, Syscall::OpenSession { name: NAME });
        match r.result {
            Ok(SysReplyData::Session { sel, .. }) => sel,
            other => panic!("open_session: {other:?}"),
        }
    };
    let sess_a = open(&mut c, VpeId(0)); // group 0, spanning
    let _sess_b = open(&mut c, VpeId(4)); // group 2, spanning
    let _sess_l = open(&mut c, VpeId(3)); // group 1, local
                                          // Client-side close, then service teardown.
    let r = c.syscall(VpeId(0), Syscall::Revoke { sel: sess_a, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    let r = c.syscall(VpeId(2), Syscall::Revoke { sel: srv_sel, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    check(c.take_trace(), 28, 0xddf24b722fba7583, "session lifecycle");
}

/// Failure interleavings (Table 2): the obtainer dies while its obtain
/// is in flight (orphan notice), and a delegate receiver dies
/// mid-handshake (abort + VpeGone done-reply). Exercises the
/// cancellation sweep and orphan cleanup paths.
#[test]
fn failure_paths_trace_matches_golden() {
    let mut c = TestCluster::new(2, 1);
    let sel = create_mem(&mut c, VpeId(0));
    c.enable_tracing();
    c.syscall_async(
        VpeId(1),
        Syscall::Exchange {
            other: VpeId(0),
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    c.pump_n(4); // owner linked the child; reply in flight
    c.kill(VpeId(1));
    c.pump_all();
    c.check_invariants();
    assert_eq!(c.kernels[0].stats().orphans_cleaned, 1);

    // Receiver dies during a delegate handshake.
    let tag = c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    c.pump_all();
    let r = c.take_reply(VpeId(0), tag).expect("delegate must resolve");
    assert!(r.result.is_err(), "receiver is dead: {r:?}");
    c.check_invariants();
    check(c.take_trace(), 10, 0xd5e94b7a8944ac5b, "failure paths");
}
