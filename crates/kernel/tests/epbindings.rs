//! Forward/reverse agreement of the endpoint-binding table.
//!
//! [`EpBindings`] encapsulates the pair of maps that used to live as
//! two hand-synchronized kernel fields. These tests prove the pair
//! cannot diverge through any public mutation: every operation is
//! exercised directly, then a DetRng-driven random walk replays
//! thousands of mixed operations against a naive model while checking
//! [`EpBindings::check_sync`] after every step. The kernel-level
//! `check_invariants` now runs the same agreement check, which is what
//! replaced the ad-hoc per-site bookkeeping.

use semper_base::{CapType, DdlKey, EpId, PeId, VpeId};
use semper_kernel::EpBindings;
use semper_sim::DetRng;

fn key(n: u32) -> DdlKey {
    DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
}

#[test]
fn bind_then_get_roundtrips() {
    let mut b = EpBindings::new();
    assert!(b.is_empty());
    assert_eq!(b.bind(VpeId(1), EpId(2), key(7)), None);
    assert_eq!(b.get(VpeId(1), EpId(2)), Some(key(7)));
    assert_eq!(b.get(VpeId(1), EpId(3)), None);
    assert_eq!(b.len(), 1);
    b.check_sync().unwrap();
}

#[test]
fn rebind_replaces_and_reports_old_binding() {
    let mut b = EpBindings::new();
    b.bind(VpeId(1), EpId(2), key(7));
    assert_eq!(b.bind(VpeId(1), EpId(2), key(8)), Some(key(7)));
    assert_eq!(b.get(VpeId(1), EpId(2)), Some(key(8)));
    assert_eq!(b.len(), 1);
    // The old key has no bindings left; unbinding it touches nothing.
    assert!(b.unbind_key(key(7)).is_empty());
    b.check_sync().unwrap();
}

#[test]
fn unbind_key_clears_all_slots_in_activation_order() {
    let mut b = EpBindings::new();
    b.bind(VpeId(2), EpId(0), key(7));
    b.bind(VpeId(1), EpId(5), key(7));
    b.bind(VpeId(1), EpId(6), key(9));
    let victims = b.unbind_key(key(7));
    assert_eq!(victims, vec![(VpeId(2), EpId(0)), (VpeId(1), EpId(5))]);
    assert_eq!(b.get(VpeId(2), EpId(0)), None);
    assert_eq!(b.get(VpeId(1), EpId(5)), None);
    assert_eq!(b.get(VpeId(1), EpId(6)), Some(key(9)), "other keys untouched");
    assert_eq!(b.len(), 1);
    b.check_sync().unwrap();
}

#[test]
fn rebind_same_key_keeps_one_reverse_entry() {
    let mut b = EpBindings::new();
    b.bind(VpeId(1), EpId(2), key(7));
    // Rebinding the same slot to the same key must not duplicate the
    // reverse entry (the divergence the old ad-hoc sites risked).
    b.bind(VpeId(1), EpId(2), key(7));
    b.check_sync().unwrap();
    assert_eq!(b.unbind_key(key(7)), vec![(VpeId(1), EpId(2))]);
    assert!(b.is_empty());
    b.check_sync().unwrap();
}

/// A DetRng random walk over all public mutations, checked against a
/// naive `(slot, key)` list model after every operation. Any path that
/// could desynchronize the forward and reverse maps fails here.
#[test]
fn random_walk_agrees_with_model_and_stays_in_sync() {
    let mut rng = DetRng::seed_from(0x5EED_EB1D);
    let mut b = EpBindings::new();
    let mut model: Vec<((VpeId, EpId), DdlKey)> = Vec::new();

    for step in 0..5_000u32 {
        let vpe = VpeId((rng.next_u64() % 4) as u16);
        let ep = EpId((rng.next_u64() % 4) as u8);
        let k = key((rng.next_u64() % 6) as u32);
        match rng.next_u64() % 3 {
            // bind
            0 | 1 => {
                let expected_old = model.iter().find(|(s, _)| *s == (vpe, ep)).map(|(_, k)| *k);
                let old = b.bind(vpe, ep, k);
                assert_eq!(old, expected_old, "step {step}: replaced binding mismatch");
                model.retain(|(s, _)| *s != (vpe, ep));
                model.push(((vpe, ep), k));
            }
            // unbind a whole key (what the revocation sweep does)
            _ => {
                let expected: Vec<(VpeId, EpId)> =
                    model.iter().filter(|(_, mk)| *mk == k).map(|(s, _)| *s).collect();
                let mut victims = b.unbind_key(k);
                // The model is insertion-ordered by last bind, the
                // table by first activation; compare as sets.
                victims.sort();
                let mut expected = expected;
                expected.sort();
                assert_eq!(victims, expected, "step {step}: unbound slots mismatch");
                model.retain(|(_, mk)| *mk != k);
            }
        }
        assert_eq!(b.len(), model.len(), "step {step}: size drifted");
        for (slot, mk) in &model {
            assert_eq!(b.get(slot.0, slot.1), Some(*mk), "step {step}: lookup drifted");
        }
        b.check_sync().unwrap_or_else(|e| panic!("step {step}: {e}"));
    }
}
