//! Capability-group migration protocol tests (`kernel::ops::migrate`).
//!
//! Migration hands a VPE's DDL partition — the VPE and every capability
//! record it owns — to another kernel. These tests drive the protocol
//! on the untimed [`TestCluster`] and check the properties the paper's
//! DDL design promises: keys (and with them cross-kernel parent/child
//! links) survive the move verbatim, routing follows the updated
//! membership on *every* kernel, and the capability protocol keeps
//! working against the new owner — including revocations that sweep
//! pre-migration children and post-migration key allocations that stay
//! globally unique.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, Code, KernelId, VpeId};
use semper_kernel::harness::TestCluster;

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

fn delegate(c: &mut TestCluster, from: VpeId, to: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        from,
        Syscall::Exchange {
            other: to,
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    match r.result {
        Ok(SysReplyData::Delegated { recv_sel }) => recv_sel,
        other => panic!("delegate failed: {other:?}"),
    }
}

fn obtain(c: &mut TestCluster, to: VpeId, from: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        to,
        Syscall::Exchange {
            other: from,
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    match r.result {
        Ok(SysReplyData::Sel(s)) => s,
        other => panic!("obtain failed: {other:?}"),
    }
}

/// The records move wholesale: same selectors, same keys, same tree
/// links; the source kernel forgets the VPE entirely.
#[test]
fn migration_moves_records_verbatim() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let extra = create_mem(&mut c, a);
    // A cross-kernel child under the root (owned by group 1).
    let _child = delegate(&mut c, a, VpeId(1), root);

    let key_root = c.kernels[0].table(a).unwrap().get(root).unwrap();
    let key_extra = c.kernels[0].table(a).unwrap().get(extra).unwrap();
    let caps_before = c.total_caps();

    c.migrate(a, KernelId(2));
    c.check_invariants();

    // Source forgot the VPE; destination owns it, alive, same bindings.
    assert!(c.kernels[0].table(a).is_none());
    assert!(!c.kernels[0].vpe_alive(a));
    assert!(c.kernels[2].vpe_alive(a));
    let table = c.kernels[2].table(a).expect("table moved");
    assert_eq!(table.get(root).unwrap(), key_root);
    assert_eq!(table.get(extra).unwrap(), key_extra);
    // Record count conserved (moved, not created).
    assert_eq!(c.total_caps(), caps_before);
    // The cross-kernel child link moved with the root.
    assert!(c.kernels[2].mapdb().get(key_root).unwrap().child_count() == 1);
    // Nothing is left pending anywhere.
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} leaked a pending op", k.id());
    }
}

/// After the membership fan-out, *every* kernel routes the moved keys
/// to the new owner: a third-party obtain of the migrated capability
/// reaches the destination kernel, and a follow-up revoke from the
/// migrated VPE sweeps children created both before and after the move.
#[test]
fn protocol_keeps_working_against_the_new_owner() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    // Pre-migration child at group 1.
    let _pre = delegate(&mut c, a, VpeId(1), root);

    c.migrate(a, KernelId(2));

    // Group 1's VPE obtains the migrated capability: its kernel must
    // route the request to kernel 2 now.
    let _post = obtain(&mut c, VpeId(1), a, root);
    let k2_spanning = c.kernels[2].stats().kcalls_in;
    assert!(k2_spanning > 0, "obtain after migration must reach the new owner");

    // New allocations at the new owner keep the per-creator sequence:
    // no key collision with pre-migration records.
    let fresh = create_mem(&mut c, a);
    assert_ne!(fresh, root);
    c.check_invariants();

    // The migrated VPE revokes the root: the sweep runs at kernel 2 and
    // reaches the children held in group 1 (one pre-, one
    // post-migration).
    let r = c.syscall(a, Syscall::Revoke { sel: root, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    // Only the three self-caps plus the fresh cap survive.
    assert_eq!(c.total_caps(), 4);
    assert_eq!(c.kernels[2].stats().revokes_spanning, 1);
}

/// A VPE can migrate repeatedly, including back to its original group;
/// each hop is acknowledged by every bystander before completing.
#[test]
fn repeated_migration_round_trips() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let _child = delegate(&mut c, a, VpeId(2), root);

    c.migrate(a, KernelId(1));
    c.migrate(a, KernelId(2));
    c.migrate(a, KernelId(0));
    c.check_invariants();

    assert!(c.kernels[0].vpe_alive(a));
    assert_eq!(c.kernels[0].stats().migrations_out, 1);
    assert_eq!(c.kernels[0].stats().migrations_in, 1);
    assert_eq!(c.kernels[1].stats().migrations_out, 1);
    assert_eq!(c.kernels[1].stats().migrations_in, 1);

    // Everything still works at home.
    let r = c.syscall(a, Syscall::Revoke { sel: root, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    assert_eq!(c.total_caps(), 3);
}

/// Migration is refused while any of the group's capabilities is under
/// revocation, and for nonsensical destinations.
#[test]
fn migration_guards_reject_unsafe_moves() {
    let mut c = TestCluster::new(2, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let _child = delegate(&mut c, a, VpeId(1), root);

    // Mark the root revoking but leave the operation incomplete: issue
    // the revoke and pump only the syscall itself (the remote child
    // keeps the fan-in open).
    c.syscall_async(a, Syscall::Revoke { sel: root, own: true });
    c.pump_n(1);

    let src = c.kernel_of(a);
    let mut out = semper_kernel::Outbox::new();
    let err = c.kernels[src.idx()]
        .start_group_migration(a, KernelId(1), &mut out)
        .expect_err("must refuse mid-revocation");
    assert_eq!(err.code(), Code::RevokeInProgress);

    let err = c.kernels[src.idx()]
        .start_group_migration(a, KernelId(0), &mut out)
        .expect_err("must refuse the own group");
    assert_eq!(err.code(), Code::InvalidArgs);
    assert!(out.is_empty(), "refused migrations must not emit messages");

    // Drain the revocation; the cluster converges.
    c.pump_all();
    c.check_invariants();
}

/// Service VPEs are pinned: the registry names their kernel, so the
/// engine refuses to migrate them.
#[test]
fn service_vpes_cannot_migrate() {
    let mut c = TestCluster::new(2, 1);
    let r = c.syscall(VpeId(0), Syscall::CreateSrv { name: 7 });
    assert!(r.result.is_ok(), "{r:?}");
    let mut out = semper_kernel::Outbox::new();
    let err = c.kernels[0]
        .start_group_migration(VpeId(0), KernelId(1), &mut out)
        .expect_err("service VPEs are pinned");
    assert_eq!(err.code(), Code::InvalidArgs);
}
