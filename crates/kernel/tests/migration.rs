//! Capability-group migration protocol tests (`kernel::ops::migrate`).
//!
//! Migration hands a VPE's DDL partition — the VPE and every capability
//! record it owns — to another kernel. These tests drive the protocol
//! on the untimed [`TestCluster`] and check the properties the paper's
//! DDL design promises: keys (and with them cross-kernel parent/child
//! links) survive the move verbatim, routing follows the updated
//! membership on *every* kernel, and the capability protocol keeps
//! working against the new owner — including revocations that sweep
//! pre-migration children and post-migration key allocations that stay
//! globally unique.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, Code, KernelId, VpeId};
use semper_kernel::harness::TestCluster;

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

fn delegate(c: &mut TestCluster, from: VpeId, to: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        from,
        Syscall::Exchange {
            other: to,
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    match r.result {
        Ok(SysReplyData::Delegated { recv_sel }) => recv_sel,
        other => panic!("delegate failed: {other:?}"),
    }
}

fn obtain(c: &mut TestCluster, to: VpeId, from: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        to,
        Syscall::Exchange {
            other: from,
            own_sel: CapSel::INVALID,
            other_sel: sel,
            kind: ExchangeKind::Obtain,
        },
    );
    match r.result {
        Ok(SysReplyData::Sel(s)) => s,
        other => panic!("obtain failed: {other:?}"),
    }
}

/// The records move wholesale: same selectors, same keys, same tree
/// links; the source kernel forgets the VPE entirely.
#[test]
fn migration_moves_records_verbatim() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let extra = create_mem(&mut c, a);
    // A cross-kernel child under the root (owned by group 1).
    let _child = delegate(&mut c, a, VpeId(1), root);

    let key_root = c.kernels[0].table(a).unwrap().get(root).unwrap();
    let key_extra = c.kernels[0].table(a).unwrap().get(extra).unwrap();
    let caps_before = c.total_caps();

    c.migrate(a, KernelId(2)).expect("quiescent migration");
    c.check_invariants();

    // Source forgot the VPE; destination owns it, alive, same bindings.
    assert!(c.kernels[0].table(a).is_none());
    assert!(!c.kernels[0].vpe_alive(a));
    assert!(c.kernels[2].vpe_alive(a));
    let table = c.kernels[2].table(a).expect("table moved");
    assert_eq!(table.get(root).unwrap(), key_root);
    assert_eq!(table.get(extra).unwrap(), key_extra);
    // Record count conserved (moved, not created).
    assert_eq!(c.total_caps(), caps_before);
    // The cross-kernel child link moved with the root.
    assert!(c.kernels[2].mapdb().get(key_root).unwrap().child_count() == 1);
    // Nothing is left pending anywhere.
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} leaked a pending op", k.id());
    }
}

/// After the membership fan-out, *every* kernel routes the moved keys
/// to the new owner: a third-party obtain of the migrated capability
/// reaches the destination kernel, and a follow-up revoke from the
/// migrated VPE sweeps children created both before and after the move.
#[test]
fn protocol_keeps_working_against_the_new_owner() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    // Pre-migration child at group 1.
    let _pre = delegate(&mut c, a, VpeId(1), root);

    c.migrate(a, KernelId(2)).expect("quiescent migration");

    // Group 1's VPE obtains the migrated capability: its kernel must
    // route the request to kernel 2 now.
    let _post = obtain(&mut c, VpeId(1), a, root);
    let k2_spanning = c.kernels[2].stats().kcalls_in;
    assert!(k2_spanning > 0, "obtain after migration must reach the new owner");

    // New allocations at the new owner keep the per-creator sequence:
    // no key collision with pre-migration records.
    let fresh = create_mem(&mut c, a);
    assert_ne!(fresh, root);
    c.check_invariants();

    // The migrated VPE revokes the root: the sweep runs at kernel 2 and
    // reaches the children held in group 1 (one pre-, one
    // post-migration).
    let r = c.syscall(a, Syscall::Revoke { sel: root, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    // Only the three self-caps plus the fresh cap survive.
    assert_eq!(c.total_caps(), 4);
    assert_eq!(c.kernels[2].stats().revokes_spanning, 1);
}

/// A VPE can migrate repeatedly, including back to its original group;
/// each hop is acknowledged by every bystander before completing.
#[test]
fn repeated_migration_round_trips() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let _child = delegate(&mut c, a, VpeId(2), root);

    c.migrate(a, KernelId(1)).expect("hop 1");
    c.migrate(a, KernelId(2)).expect("hop 2");
    c.migrate(a, KernelId(0)).expect("hop 3");
    c.check_invariants();

    assert!(c.kernels[0].vpe_alive(a));
    assert_eq!(c.kernels[0].stats().migrations_out, 1);
    assert_eq!(c.kernels[0].stats().migrations_in, 1);
    assert_eq!(c.kernels[1].stats().migrations_out, 1);
    assert_eq!(c.kernels[1].stats().migrations_in, 1);

    // Everything still works at home.
    let r = c.syscall(a, Syscall::Revoke { sel: root, own: true });
    assert!(r.result.is_ok(), "{r:?}");
    c.check_invariants();
    assert_eq!(c.total_caps(), 3);
}

/// Migration is refused while any of the group's capabilities is under
/// revocation, and for nonsensical destinations.
#[test]
fn migration_guards_reject_unsafe_moves() {
    let mut c = TestCluster::new(2, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let _child = delegate(&mut c, a, VpeId(1), root);

    // Mark the root revoking but leave the operation incomplete: issue
    // the revoke and pump only the syscall itself (the remote child
    // keeps the fan-in open).
    c.syscall_async(a, Syscall::Revoke { sel: root, own: true });
    c.pump_n(1);

    let src = c.kernel_of(a);
    let mut out = semper_kernel::Outbox::new();
    let err = c.kernels[src.idx()]
        .start_group_migration(a, KernelId(1), &mut out)
        .expect_err("must refuse mid-revocation");
    assert_eq!(err.code(), Code::RevokeInProgress);

    let err = c.kernels[src.idx()]
        .start_group_migration(a, KernelId(0), &mut out)
        .expect_err("must refuse the own group");
    assert_eq!(err.code(), Code::InvalidArgs);
    assert!(out.is_empty(), "refused migrations must not emit messages");

    // Drain the revocation; the cluster converges.
    c.pump_all();
    c.check_invariants();
}

/// Service VPEs are pinned: the registry names their kernel, so the
/// engine refuses to migrate them.
#[test]
fn service_vpes_cannot_migrate() {
    let mut c = TestCluster::new(2, 1);
    let r = c.syscall(VpeId(0), Syscall::CreateSrv { name: 7 });
    assert!(r.result.is_ok(), "{r:?}");
    let mut out = semper_kernel::Outbox::new();
    let err = c.kernels[0]
        .start_group_migration(VpeId(0), KernelId(1), &mut out)
        .expect_err("service VPEs are pinned");
    assert_eq!(err.code(), Code::InvalidArgs);
}

// ----- non-quiescent migration: forward-or-hold races -------------------

fn digests(c: &TestCluster) -> Vec<Vec<String>> {
    c.kernels.iter().map(|k| k.state_digest()).collect()
}

fn assert_quiesced(c: &TestCluster) {
    c.check_invariants();
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} leaked a pending op", k.id());
    }
}

/// A revoke racing a migration converges to the same state in both
/// arrival orders: revoke-first refuses the start until the sweep
/// drains; migration-first holds the revoke in the handover window and
/// replays it against the new owner.
#[test]
fn revoke_vs_migrate_race_both_orders() {
    // Order A: the revoke is in flight when the migration is requested.
    let mut early = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut early, a);
    let _child = delegate(&mut early, a, VpeId(1), root);
    let tag = early.syscall_async(a, Syscall::Revoke { sel: root, own: true });
    early.pump_n(1); // spanning sweep now pending at the source
    let err = early.start_migration(a, KernelId(2)).expect_err("must refuse mid-revocation");
    assert_eq!(err.code(), Code::RevokeInProgress);
    early.pump_all();
    assert!(early.take_reply(a, tag).expect("revoke reply").result.is_ok());
    early.migrate(a, KernelId(2)).expect("migration after the sweep drained");
    assert_quiesced(&early);

    // Order B: the migration window is open when the revoke arrives.
    let mut late = TestCluster::new(3, 1);
    let root2 = create_mem(&mut late, a);
    assert_eq!(root2, root);
    let _child = delegate(&mut late, a, VpeId(1), root2);
    let src = late.start_migration(a, KernelId(2)).expect("start");
    let tag = late.syscall_async(a, Syscall::Revoke { sel: root2, own: true });
    late.pump_all();
    assert!(late.kernels[src.idx()].take_migration_failure(a).is_none());
    assert!(late.take_reply(a, tag).expect("revoke reply").result.is_ok());
    assert_quiesced(&late);
    assert!(late.kernels[src.idx()].stats().ops_held > 0, "revoke must ride the hold queue");

    // Same survivors, same bindings, group at kernel 2 in both.
    assert!(early.kernels[2].vpe_alive(a) && late.kernels[2].vpe_alive(a));
    assert_eq!(early.total_caps(), 3); // only the three self-caps survive
    assert_eq!(digests(&early), digests(&late), "arrival order changed the final state");
}

/// A bystander's obtain racing the migration converges in both arrival
/// orders: obtain-first blocks the start while the exchange references
/// the group; migration-first holds the inter-kernel request and
/// forwards it to the new owner after the membership fan-in.
#[test]
fn exchange_vs_migrate_race_both_orders() {
    let a = VpeId(0);
    let b = VpeId(1);
    let obtain_call = |root| Syscall::Exchange {
        other: a,
        own_sel: CapSel::INVALID,
        other_sel: root,
        kind: ExchangeKind::Obtain,
    };

    // Order A: the obtain is parked at the owner when the start runs.
    let mut early = TestCluster::new(3, 1);
    let root = create_mem(&mut early, a);
    let tag = early.syscall_async(b, obtain_call(root));
    early.pump_n(2); // b's syscall, then the ObtainReq parked at kernel 0
    let err = early.start_migration(a, KernelId(2)).expect_err("must refuse mid-exchange");
    assert_eq!(err.code(), Code::RevokeInProgress);
    early.pump_all();
    assert!(matches!(
        early.take_reply(b, tag).expect("obtain reply").result,
        Ok(SysReplyData::Sel(_))
    ));
    early.migrate(a, KernelId(2)).expect("migration after the exchange drained");
    assert_quiesced(&early);

    // Order B: the ObtainReq lands inside the handover window.
    let mut late = TestCluster::new(3, 1);
    let root2 = create_mem(&mut late, a);
    assert_eq!(root2, root);
    let src = late.start_migration(a, KernelId(2)).expect("start");
    let tag = late.syscall_async(b, obtain_call(root2));
    late.pump_all();
    assert!(late.kernels[src.idx()].take_migration_failure(a).is_none());
    assert!(matches!(
        late.take_reply(b, tag).expect("obtain reply").result,
        Ok(SysReplyData::Sel(_))
    ));
    assert_quiesced(&late);
    let s = late.kernels[src.idx()].stats();
    assert!(
        s.ops_held > 0 && s.kcalls_forwarded > 0,
        "the racing ObtainReq must be held, then relayed to the new owner"
    );

    // Both orders: parent at kernel 2 with one child, held by b.
    for c in [&early, &late] {
        let key = c.kernels[2].table(a).unwrap().get(root).unwrap();
        assert_eq!(c.kernels[2].mapdb().get(key).unwrap().child_count(), 1);
        assert!(c.kernels[1].table(b).is_some());
    }
    assert_eq!(digests(&early), digests(&late), "arrival order changed the final state");
}

/// Killing the VPE while its group is mid-migration neither loses the
/// kill nor strands records: the kill rides the hold queue, chases the
/// group to its new owner, and tears everything down there.
#[test]
fn kill_vpe_mid_migration_chases_the_group() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    let _child = delegate(&mut c, a, VpeId(1), root);

    let src = c.start_migration(a, KernelId(2)).expect("start");
    c.kill(a); // lands inside the handover window
    c.pump_all();

    assert!(c.kernels[src.idx()].take_migration_failure(a).is_none());
    assert_quiesced(&c);
    for k in &c.kernels {
        assert!(!k.vpe_alive(a), "kernel {} still thinks {a} is alive", k.id());
    }
    // The migration completed, then the replayed kill swept the group:
    // only the two surviving self-caps remain.
    assert_eq!(c.kernels[src.idx()].stats().migrations_out, 1);
    assert_eq!(c.total_caps(), 2);
    assert!(c.kernels[src.idx()].stats().ops_held > 0, "kill must ride the hold queue");
}

/// A destination that refuses the install (duplicate VPE id) surfaces
/// the error to the driver and leaves the group at the source with
/// membership untouched — the group keeps working as if nothing
/// happened.
#[test]
fn failed_install_keeps_group_at_source() {
    let mut c = TestCluster::new(2, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);
    // Fabricate a conflicting registration at the destination: the
    // duplicate VPE id is what the install validation must catch.
    let k1_pe = c.kernels[1].pe();
    c.kernels[1].add_vpe(a, k1_pe);

    let err = c.migrate(a, KernelId(1)).expect_err("install must be refused");
    assert_eq!(err.code(), Code::Exists);

    // Group intact at the source; error consumed exactly once.
    assert!(c.kernels[0].vpe_alive(a));
    assert!(c.kernels[0].table(a).unwrap().get(root).is_ok());
    assert!(c.kernels[0].take_migration_failure(a).is_none());
    let s = c.kernels[0].stats();
    assert_eq!(s.migrations_failed, 1);
    assert_eq!(s.migrations_out, 0);
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} leaked a pending op", k.id());
    }
    // The group still serves capability traffic at its old home.
    let fresh = create_mem(&mut c, a);
    assert_ne!(fresh, root);
}

/// Several calls parked in one handover window replay in arrival
/// order: their selector assignments come out exactly as if the kernel
/// had processed them the moment they arrived.
#[test]
fn hold_queue_replays_in_arrival_order() {
    let mut c = TestCluster::new(3, 1);
    let a = VpeId(0);
    let root = create_mem(&mut c, a);

    let src = c.start_migration(a, KernelId(2)).expect("start");
    let t1 = c.syscall_async(a, Syscall::CreateMem { size: 4096, perms: Perms::RW });
    let t2 =
        c.syscall_async(a, Syscall::DeriveMem { src: root, offset: 0, size: 64, perms: Perms::R });
    let t3 = c.syscall_async(a, Syscall::CreateMem { size: 4096, perms: Perms::RW });
    c.pump_all();

    assert!(c.kernels[src.idx()].take_migration_failure(a).is_none());
    assert_eq!(c.kernels[src.idx()].stats().ops_held, 3, "all three calls ride the hold queue");
    let sel = |c: &mut TestCluster, tag| match c.take_reply(a, tag).expect("reply").result {
        Ok(SysReplyData::Mem { sel, .. }) | Ok(SysReplyData::Sel(sel)) => sel,
        other => panic!("unexpected reply: {other:?}"),
    };
    let (s1, s2, s3) = (sel(&mut c, t1), sel(&mut c, t2), sel(&mut c, t3));
    assert!(s1.0 < s2.0 && s2.0 < s3.0, "replay must preserve arrival order: {s1} {s2} {s3}");
    assert_quiesced(&c);
    assert!(c.kernels[2].vpe_alive(a));
}
