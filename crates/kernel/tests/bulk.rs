//! Protocol tests of the batched-syscall engine (`ops::bulk`,
//! `Syscall::Batch`): ordered execution, per-item results, the
//! coalesced revoke fan-out, error items, and teardown mid-batch.

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, Code, VpeId};
use semper_kernel::harness::TestCluster;

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    let r = c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW });
    match r.result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem failed: {other:?}"),
    }
}

fn delegate(c: &mut TestCluster, from: VpeId, to: VpeId, sel: CapSel) -> CapSel {
    let r = c.syscall(
        from,
        Syscall::Exchange {
            other: to,
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    match r.result {
        Ok(SysReplyData::Delegated { recv_sel }) => recv_sel,
        other => panic!("delegate failed: {other:?}"),
    }
}

/// Issues a batch and returns the per-item results.
fn batch(
    c: &mut TestCluster,
    vpe: VpeId,
    items: Vec<Syscall>,
) -> Vec<semper_base::Result<SysReplyData>> {
    let r = c.syscall(vpe, Syscall::Batch(items.into_boxed_slice()));
    match r.result {
        Ok(SysReplyData::Batch(results)) => *results,
        other => panic!("batch failed: {other:?}"),
    }
}

/// A mixed batch executes in order and reports item-for-item results —
/// including a derive that references a capability created by an
/// *earlier* standalone call, and a revoke of it at the end.
#[test]
fn mixed_batch_reports_per_item_results() {
    let mut c = TestCluster::new(1, 2);
    let root = create_mem(&mut c, VpeId(0));
    let results = batch(
        &mut c,
        VpeId(0),
        vec![
            Syscall::Noop,
            Syscall::DeriveMem { src: root, offset: 0, size: 64, perms: Perms::R },
            Syscall::CreateMem { size: 4096, perms: Perms::RW },
            Syscall::Revoke { sel: root, own: true },
        ],
    );
    assert_eq!(results.len(), 4);
    assert_eq!(results[0], Ok(SysReplyData::None));
    assert!(matches!(results[1], Ok(SysReplyData::Sel(_))), "{:?}", results[1]);
    assert!(matches!(results[2], Ok(SysReplyData::Mem { .. })), "{:?}", results[2]);
    assert_eq!(results[3], Ok(SysReplyData::None));
    // The revoke removed the root and the derived child; the batch's
    // CreateMem survives.
    c.check_invariants();
    let k = &c.kernels[0];
    assert_eq!(k.stats().revokes_local, 1);
    assert!(k.table(VpeId(0)).unwrap().get(root).is_err(), "root must be revoked");
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "batch left suspended ops");
    }
}

/// Spanning exchanges inside a batch run through the ordinary exchange
/// machinery (consent upcalls, two-way handshake) and complete their
/// items when the protocol rounds finish.
#[test]
fn batched_spanning_delegate_completes() {
    let mut c = TestCluster::new(2, 1);
    let root = create_mem(&mut c, VpeId(0));
    let results = batch(
        &mut c,
        VpeId(0),
        vec![
            Syscall::Exchange {
                other: VpeId(1),
                own_sel: root,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
            Syscall::Noop,
        ],
    );
    assert!(matches!(results[0], Ok(SysReplyData::Delegated { .. })), "{:?}", results[0]);
    assert_eq!(results[1], Ok(SysReplyData::None));
    assert_eq!(c.kernels[0].stats().exchanges_spanning, 1);
    c.check_invariants();
}

/// A run of consecutive revokes whose subtrees span two remote kernels
/// is coalesced: one `RevokeBatchReq` per destination kernel instead of
/// one `RevokeReq` per remote child.
#[test]
fn consecutive_revokes_coalesce_cross_kernel_messages() {
    let n = 6u32;
    let build = |c: &mut TestCluster| -> Vec<CapSel> {
        (0..n)
            .map(|i| {
                let sel = create_mem(c, VpeId(0));
                // Alternate remote children over groups 1 and 2.
                let to = VpeId(1 + (i as u16 % 2));
                let _ = delegate(c, VpeId(0), to, sel);
                sel
            })
            .collect()
    };

    // Sequential: one revoke syscall per capability.
    let mut seq = TestCluster::new(3, 1);
    let sels = build(&mut seq);
    let before = seq.kernels[0].stats().kcalls_out;
    for sel in sels {
        let r = seq.syscall(VpeId(0), Syscall::Revoke { sel, own: true });
        assert!(r.result.is_ok());
    }
    let seq_kcalls = seq.kernels[0].stats().kcalls_out - before;

    // Batched: the same revokes as one batch.
    let mut bat = TestCluster::new(3, 1);
    let sels = build(&mut bat);
    let before = bat.kernels[0].stats().kcalls_out;
    let items = sels.iter().map(|sel| Syscall::Revoke { sel: *sel, own: true }).collect();
    let results = batch(&mut bat, VpeId(0), items);
    assert!(results.iter().all(|r| *r == Ok(SysReplyData::None)), "{results:?}");
    let bat_kcalls = bat.kernels[0].stats().kcalls_out - before;

    assert_eq!(seq_kcalls, n as u64, "one revoke request per remote child");
    assert_eq!(bat_kcalls, 2, "one grouped request per destination kernel");
    // Same final state either way: everything revoked.
    seq.check_invariants();
    bat.check_invariants();
    assert_eq!(seq.total_caps(), bat.total_caps());
    assert_eq!(
        bat.kernels[0].stats().revokes_spanning,
        n as u64,
        "a coalesced run still counts one revocation per item"
    );
}

/// Overlapping revokes in one run (duplicate selector, and a child
/// followed by its ancestor) fold into one sweep and all report `Ok`.
#[test]
fn overlapping_revoke_run_folds_into_one_sweep() {
    let mut c = TestCluster::new(1, 2);
    let root = create_mem(&mut c, VpeId(0));
    let child = match c
        .syscall(VpeId(0), Syscall::DeriveMem { src: root, offset: 0, size: 64, perms: Perms::R })
        .result
    {
        Ok(SysReplyData::Sel(sel)) => sel,
        other => panic!("derive failed: {other:?}"),
    };
    let results = batch(
        &mut c,
        VpeId(0),
        vec![
            // Child first, then its ancestor, then the ancestor again.
            Syscall::Revoke { sel: child, own: true },
            Syscall::Revoke { sel: root, own: true },
            Syscall::Revoke { sel: root, own: true },
        ],
    );
    assert!(results.iter().all(|r| *r == Ok(SysReplyData::None)), "{results:?}");
    c.check_invariants();
    assert!(c.kernels[0].table(VpeId(0)).unwrap().get(root).is_err());
    assert!(c.kernels[0].table(VpeId(0)).unwrap().get(child).is_err());
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "overlapping run must not deadlock");
    }
}

/// Error items fail individually without aborting the rest of the
/// batch; `Exit` and nested batches are rejected per item.
#[test]
fn error_items_fail_individually() {
    let mut c = TestCluster::new(1, 2);
    let root = create_mem(&mut c, VpeId(0));
    let results = batch(
        &mut c,
        VpeId(0),
        vec![
            Syscall::Revoke { sel: CapSel(999), own: true },
            Syscall::Exit,
            Syscall::Batch(vec![Syscall::Noop].into_boxed_slice()),
            Syscall::DeriveMem { src: root, offset: 0, size: 64, perms: Perms::R },
        ],
    );
    assert_eq!(results[0].as_ref().unwrap_err().code(), Code::NoSuchCap);
    assert_eq!(results[1].as_ref().unwrap_err().code(), Code::NotSupported);
    assert_eq!(results[2].as_ref().unwrap_err().code(), Code::NotSupported);
    assert!(matches!(results[3], Ok(SysReplyData::Sel(_))), "the batch continued: {results:?}");
    c.check_invariants();
}

/// A second batch issued while one is active (a client protocol
/// violation) is refused with `InvalidArgs` — and the rejection must
/// not be swallowed by the active batch's reply interception: the
/// first batch still completes normally.
#[test]
fn second_batch_while_active_is_refused_not_intercepted() {
    let mut c = TestCluster::new(2, 1);
    let root = create_mem(&mut c, VpeId(0));
    // First batch parks on a spanning delegate handshake.
    let tag1 = c.syscall_async(
        VpeId(0),
        Syscall::Batch(
            vec![Syscall::Exchange {
                other: VpeId(1),
                own_sel: root,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            }]
            .into_boxed_slice(),
        ),
    );
    c.pump_n(1); // deliver the batch; it parks on the handshake
    let tag2 = c.syscall_async(VpeId(0), Syscall::Batch(vec![Syscall::Noop].into_boxed_slice()));
    // A plain syscall during the batch is refused the same way — it
    // must not run a handler whose reply would be folded into the
    // batch as a bogus item completion.
    let tag3 = c.syscall_async(VpeId(0), Syscall::Noop);
    c.pump_all();
    let r2 = c.take_reply(VpeId(0), tag2).expect("the violating batch must still get a reply");
    assert_eq!(r2.result.unwrap_err().code(), Code::InvalidArgs);
    let r3 = c.take_reply(VpeId(0), tag3).expect("the violating syscall must still get a reply");
    assert_eq!(r3.result.unwrap_err().code(), Code::InvalidArgs);
    let r1 = c.take_reply(VpeId(0), tag1).expect("the active batch completes");
    let Ok(SysReplyData::Batch(results)) = r1.result else { panic!("{:?}", r1.result) };
    assert!(matches!(results[0], Ok(SysReplyData::Delegated { .. })), "{results:?}");
    c.check_invariants();
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0);
    }
}

/// An empty batch completes immediately with an empty result list.
#[test]
fn empty_batch_completes() {
    let mut c = TestCluster::new(1, 1);
    let results = batch(&mut c, VpeId(0), Vec::new());
    assert!(results.is_empty());
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0);
    }
}

/// Killing the issuing VPE mid-batch tears the batch down: late item
/// completions are dropped, nothing stays suspended, and the peer
/// kernels converge.
#[test]
fn killing_the_issuer_mid_batch_quiesces() {
    let mut c = TestCluster::new(2, 1);
    let root = create_mem(&mut c, VpeId(0));
    // A spanning delegate parks the batch on the handshake.
    c.syscall_async(
        VpeId(0),
        Syscall::Batch(
            vec![
                Syscall::Exchange {
                    other: VpeId(1),
                    own_sel: root,
                    other_sel: CapSel::INVALID,
                    kind: ExchangeKind::Delegate,
                },
                Syscall::CreateMem { size: 4096, perms: Perms::RW },
            ]
            .into_boxed_slice(),
        ),
    );
    // Deliver the batch and the first protocol round, then kill.
    c.pump_n(2);
    c.kill(VpeId(0));
    c.pump_all();
    c.check_invariants();
    for k in &c.kernels {
        assert_eq!(k.pending_ops(), 0, "kernel {} left suspended ops", k.id());
    }
    // The dead VPE holds nothing.
    assert_eq!(c.kernels[0].table(VpeId(0)).unwrap().len(), 0);
}
