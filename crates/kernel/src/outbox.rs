//! Outgoing-message collection (re-exported from `semper-base`).
//!
//! The kernel, services, and application actors all share the same
//! outbox type so the machine layer can treat them uniformly.

pub use semper_base::msg::Outbox;
