//! DTU endpoint bindings: which capability each endpoint is activated
//! for, with a reverse index for O(1) revocation sweeps.
//!
//! The kernel must answer two questions in O(1):
//!
//! * *forward* — which capability is endpoint `(vpe, ep)` configured
//!   for? (`activate` replaces bindings; syscall handling reads them);
//! * *reverse* — which endpoints are configured for capability `k`?
//!   (revocation deconfigures every endpoint of each deleted
//!   capability — this is the action that actually severs the hardware
//!   access path).
//!
//! Both maps must agree at all times. They used to live as two separate
//! fields on the kernel, synchronized by hand at each mutation site —
//! easy to get wrong when a new mutation site is added. [`EpBindings`]
//! owns the pair; the public operations are total (every path through
//! them updates both maps), so the maps cannot diverge through any
//! public mutation. `tests/epbindings` exercises every operation
//! against a model and checks agreement after each step.

use semper_base::{DdlKey, DetHashMap, EpId, RawDdlKey, VpeId};

/// One endpoint slot: a VPE's DTU endpoint.
pub type EpSlot = (VpeId, EpId);

/// The endpoint-binding table of one kernel's PE group.
#[derive(Debug, Default, Clone)]
pub struct EpBindings {
    /// Forward map: endpoint slot → the capability it is activated for.
    forward: DetHashMap<EpSlot, DdlKey>,
    /// Reverse index: packed capability key → the endpoint slots
    /// activated for it, in activation order.
    reverse: DetHashMap<RawDdlKey, Vec<EpSlot>>,
}

impl EpBindings {
    /// Creates an empty binding table.
    pub fn new() -> EpBindings {
        EpBindings::default()
    }

    /// Number of configured endpoints.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True if no endpoint is configured.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The capability endpoint `(vpe, ep)` is activated for, if any.
    pub fn get(&self, vpe: VpeId, ep: EpId) -> Option<DdlKey> {
        self.forward.get(&(vpe, ep)).copied()
    }

    /// (Re)configures endpoint `(vpe, ep)` for `key`. An endpoint holds
    /// at most one binding: a previous binding is dropped from the
    /// reverse index first. Returns the replaced capability, if any.
    pub fn bind(&mut self, vpe: VpeId, ep: EpId, key: DdlKey) -> Option<DdlKey> {
        let slot = (vpe, ep);
        let old = self.forward.insert(slot, key);
        if let Some(old) = old {
            self.drop_reverse(old, slot);
        }
        self.reverse.entry(key.raw()).or_default().push(slot);
        old
    }

    /// Deconfigures every endpoint activated for `key`, returning the
    /// affected slots in activation order (the caller models one DTU
    /// reconfiguration per slot). O(1) per deleted capability plus the
    /// number of its bindings.
    pub fn unbind_key(&mut self, key: DdlKey) -> Vec<EpSlot> {
        let Some(victims) = self.reverse.remove(&key.raw()) else {
            return Vec::new();
        };
        for slot in &victims {
            let removed = self.forward.remove(slot);
            debug_assert_eq!(removed, Some(key), "reverse index out of sync");
        }
        victims
    }

    /// True if any endpoint of `vpe` holds a binding. O(bindings);
    /// used only by control-plane guards (group migration), never on a
    /// protocol hot path.
    pub fn vpe_bound(&self, vpe: VpeId) -> bool {
        self.forward.keys().any(|(v, _)| *v == vpe)
    }

    /// Drops `slot` from `old`'s reverse entry (after a rebind).
    fn drop_reverse(&mut self, old: DdlKey, slot: EpSlot) {
        if let Some(slots) = self.reverse.get_mut(&old.raw()) {
            slots.retain(|s| *s != slot);
            if slots.is_empty() {
                self.reverse.remove(&old.raw());
            }
        }
    }

    /// Verifies forward/reverse agreement (tests): every forward
    /// binding appears exactly once in its key's reverse entry and vice
    /// versa.
    pub fn check_sync(&self) -> Result<(), String> {
        let mut reverse_total = 0usize;
        for (raw, slots) in &self.reverse {
            if slots.is_empty() {
                return Err(format!("empty reverse entry for {raw:?}"));
            }
            reverse_total += slots.len();
            for slot in slots {
                match self.forward.get(slot) {
                    Some(k) if k.raw() == *raw => {}
                    Some(k) => {
                        return Err(format!(
                            "reverse {raw:?} lists {slot:?}, forward has {:?}",
                            k.raw()
                        ));
                    }
                    None => return Err(format!("reverse {raw:?} lists unbound slot {slot:?}")),
                }
            }
        }
        if reverse_total != self.forward.len() {
            return Err(format!(
                "reverse indexes {reverse_total} slots, forward has {}",
                self.forward.len()
            ));
        }
        Ok(())
    }
}
