//! The distributed-operation engine (§4.3).
//!
//! Every cross-kernel operation in the paper's capability protocol has
//! the same shape: a **local start** (system call or machine control),
//! a **fan-out** of inter-kernel calls and/or consent upcalls, a
//! **collection** of replies tracked by pending-op state, and a
//! **completion** that notifies whoever started the operation. The
//! engine factors that shape out once; a protocol is then *declared* as
//! a set of typed phases plus the handler for each phase transition:
//!
//! * [`PendingOp`] — the union of all suspended phases, one variant per
//!   protocol ([`exchange`], [`session`], [`revoke`], [`migrate`]).
//!   Each phase carries exactly the continuation state its resume
//!   handler needs.
//! * [`PhaseSpec`] — the per-phase declaration: what the phase awaits
//!   ([`Awaits`]) and whether it parks a cooperative kernel thread
//!   ([`Thread`], the §4.2 pool accounting). The ledger derives thread
//!   accounting from the spec instead of hand-maintained match arms.
//! * [`ledger::PendingTable`] — the one shared pending-op ledger, keyed
//!   by correlation id ([`semper_base::OpId`]).
//! * The **reply router** (`Kernel::route_kcall` / `route_kreply` /
//!   `route_upcall_reply` below) — the single dispatch point for every
//!   inter-kernel call, reply, and upcall answer. Replies resume the
//!   parked phase through one ledger lookup; requests dispatch straight
//!   to the protocol's request handler.
//! * [`FanIn`] — counted completion shared by every fan-out phase
//!   (revocation's outstanding remote subtrees, batched revokes,
//!   migration's membership acks), with a running tally for the
//!   statistics the reply carries back.
//!
//! # Paper §4.3 → engine phases
//!
//! | paper step | engine phase |
//! |---|---|
//! | Fig. 3 A.2/A.3 consent upcall (group-local exchange) | [`exchange::Phase::LocalAccept`] |
//! | Fig. 3 B.2 obtain request at the owner's kernel | [`exchange::Phase::ObtainRemote`] → [`exchange::Phase::ObtainAtOwner`] |
//! | §4.3.2 two-way delegate handshake, first leg | [`exchange::Phase::DelegateRemote`] → [`exchange::Phase::DelegateAtRecv`] |
//! | §4.3.2 two-way delegate handshake, second leg | [`exchange::Phase::DelegatePendingInsert`] / [`exchange::Phase::DelegateWaitDone`] / [`exchange::Phase::DelegateAborted`] |
//! | §3.4 session capability attachment | [`session::Phase::OpenRemote`] → [`session::Phase::AtService`], [`session::Phase::OpenLocal`] |
//! | §4.3.3 Algorithm 1 mark/sweep + reply counting | [`revoke::Phase::Run`] / [`revoke::Phase::Batch`] |
//! | §5.2 partitioned parallel sweep (mark → delete) | [`sweep::Phase::Coordinate`] → [`sweep::Phase::Collect`], [`sweep::Phase::Partition`] |
//! | §4.2 group migration (ownership handover) | [`migrate::Phase::AwaitInstall`] → [`migrate::Phase::Draining`] |
//! | §5.2 bulk capability operations (`Syscall::Batch`) | [`bulk::Phase::Run`] |
//!
//! # What a new protocol costs
//!
//! Group migration ([`migrate`]) is the existence proof: a new
//! distributed operation is its phase enum (two variants), a spec row
//! per phase, one request handler per participant role, and one resume
//! handler per phase — the ledger, router, credit gating, thread
//! accounting, and fan-in counting are all inherited. The pre-engine
//! protocols carried ~150 LoC of that plumbing *each*.
//!
//! # Determinism contract
//!
//! The engine preserves the pre-engine protocols bit-for-bit: the same
//! messages with the same payloads leave in the same order at the same
//! modeled cycle costs, proven by the pinned goldens in
//! `tests/determinism.rs` and the full-trace fingerprints in
//! `crates/kernel/tests/ops_trace.rs`.

pub mod bulk;
pub mod exchange;
pub mod faults;
pub mod ledger;
pub mod memops;
pub mod migrate;
pub mod promise;
pub mod revoke;
pub mod session;
pub mod sweep;

use semper_base::msg::{KReply, Kcall, UpcallReply};
use semper_base::{KernelId, OpId, PeId, VpeId};

use crate::kernel::Kernel;
use crate::outbox::Outbox;

/// What a suspended phase is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Awaits {
    /// A consent/notification upcall answer from a local VPE.
    UpcallReply,
    /// A protocol reply (or reply-like call, e.g. the delegate ack)
    /// from one specific peer kernel.
    KReply,
    /// A counted set of completions ([`FanIn`] reaches zero).
    FanIn,
}

/// Whether a suspended phase occupies a cooperative kernel thread
/// (§4.2). Only operations that *park a thread* count against the pool
/// `V_group + K_max · M_inflight`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Thread {
    /// Parks a thread: syscall-initiated waits and consent-upcall waits.
    Holds,
    /// Thread-free bookkeeping: the paper's revoke handlers return
    /// without pausing (Algorithm 1), and a parked-but-uninserted
    /// delegate capability is pure state.
    Free,
    /// Depends on who initiated the operation (revocation: syscalls and
    /// internal cleanup hold the calling thread; incoming requests are
    /// thread-free).
    PerInitiator,
}

/// The declared shape of one protocol phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpec {
    /// Phase label for logs, statistics, and assertions.
    pub name: &'static str,
    /// What the phase awaits.
    pub awaits: Awaits,
    /// Thread-pool accounting class.
    pub thread: Thread,
}

/// Counted fan-out completion with a running tally.
///
/// Shared by every phase that waits for N independent completions:
/// revocation (one per remote subtree plus one per dependency on a
/// concurrent revoke), batched revokes (one per key), and migration
/// (one membership ack per bystander kernel). The tally accumulates
/// whatever the completions report (deleted capabilities, installed
/// records) for the completion notification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanIn {
    outstanding: u32,
    tally: u64,
}

impl FanIn {
    /// A fan-in with nothing armed.
    pub fn new() -> FanIn {
        FanIn::default()
    }

    /// Arms one more expected completion.
    pub fn arm(&mut self) {
        self.outstanding += 1;
    }

    /// Arms `n` expected completions.
    pub fn arm_n(&mut self, n: u32) {
        self.outstanding += n;
    }

    /// Adds to the tally without consuming a completion (local work
    /// accounted by the operation itself).
    pub fn add(&mut self, n: u64) {
        self.tally += n;
    }

    /// Records one completion carrying `n` tally units; returns true
    /// when this was the last outstanding completion. A completion
    /// against an already-idle fan-in is absorbed (returns false): a
    /// lossy NoC duplicates replies, and a fault-aborted operation can
    /// receive the straggler leg it gave up on. Without fault injection
    /// neither happens, so normal runs are bit-identical.
    pub fn complete_one(&mut self, n: u64) -> bool {
        self.tally += n;
        match self.outstanding {
            0 => false,
            left => {
                self.outstanding = left - 1;
                self.outstanding == 0
            }
        }
    }

    /// True if no completions are outstanding.
    pub fn idle(&self) -> bool {
        self.outstanding == 0
    }

    /// Completions still outstanding.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// The accumulated tally.
    pub fn tally(&self) -> u64 {
        self.tally
    }
}

/// A suspended distributed operation: one protocol's phase, parked in
/// the shared ledger under its correlation id.
#[derive(Debug, Clone)]
pub enum PendingOp {
    /// Capability exchange (obtain / delegate, §4.3.2).
    Exchange(exchange::Phase),
    /// Session establishment (§3.4).
    Session(session::Phase),
    /// Revocation (§4.3.3, Algorithm 1).
    Revoke(revoke::Phase),
    /// Partitioned parallel revocation sweep ([`sweep`]).
    Sweep(sweep::Phase),
    /// Capability-group migration (§4.2 ownership handover).
    Migrate(migrate::Phase),
    /// A batched system call ([`bulk`]): N capability operations in one
    /// message, executed in order with coalesced revoke fan-outs.
    Bulk(bulk::Phase),
    /// Promise-capability IPC ([`promise`]): the eager-provide legs of
    /// an asynchronous cross-kernel delegate (`Feature::PromiseIpc`).
    Promise(promise::Phase),
}

impl PendingOp {
    /// The phase's declared spec.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            PendingOp::Exchange(p) => p.spec(),
            PendingOp::Session(p) => p.spec(),
            PendingOp::Revoke(p) => p.spec(),
            PendingOp::Sweep(p) => p.spec(),
            PendingOp::Migrate(p) => p.spec(),
            PendingOp::Bulk(p) => p.spec(),
            PendingOp::Promise(p) => p.spec(),
        }
    }

    /// True if this suspended phase parks a cooperative kernel thread
    /// (§4.2) — derived from the phase table.
    pub fn holds_thread(&self) -> bool {
        match self.spec().thread {
            Thread::Holds => true,
            Thread::Free => false,
            Thread::PerInitiator => match self {
                // Bulk-initiated revokes carry the batch syscall's
                // thread: the batch op itself is declared `Free`, and
                // ordered execution guarantees at most one coalesced
                // run is suspended per batch.
                PendingOp::Revoke(revoke::Phase::Run(op)) => matches!(
                    op.initiator,
                    revoke::Initiator::Syscall { .. }
                        | revoke::Initiator::Internal
                        | revoke::Initiator::Bulk { .. }
                ),
                // A sweep coordinator carries whatever its classic
                // counterpart would have carried.
                PendingOp::Sweep(sweep::Phase::Coordinate(s))
                | PendingOp::Sweep(sweep::Phase::Collect(s)) => matches!(
                    s.initiator,
                    revoke::Initiator::Syscall { .. }
                        | revoke::Initiator::Internal
                        | revoke::Initiator::Bulk { .. }
                ),
                other => unreachable!("{} has no initiator", other.spec().name),
            },
        }
    }

    /// The local VPE whose upcall answer this phase awaits, if its
    /// death must cancel the operation. Only the exchange consent
    /// phases resolve this way: the VPE being asked for consent can die
    /// while the upcall is in flight, and the initiator (possibly at
    /// another kernel) must be unblocked with `VpeGone`. Session-open
    /// upcalls go to *service* VPEs, whose death mid-open is not
    /// modeled (services outlive the workloads in every scenario).
    pub fn upcall_responder(&self) -> Option<VpeId> {
        match self {
            PendingOp::Exchange(p) => p.upcall_responder(),
            PendingOp::Promise(p) => p.upcall_responder(),
            _ => None,
        }
    }

    /// True if this suspended operation references `vpe`'s capability
    /// group: its resume handler would read or mutate records the
    /// group-migration protocol is about to marshal away.
    /// [`Kernel::start_group_migration`] refuses to open the handover
    /// window while such an op is parked — operations arriving *after*
    /// the window opens are held and replayed instead. Conservative
    /// where a phase cannot resolve selectors without kernel context
    /// (bulk items).
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            PendingOp::Exchange(p) => p.references_vpe(vpe),
            PendingOp::Session(p) => p.references_vpe(vpe),
            PendingOp::Revoke(p) => p.references_vpe(vpe),
            PendingOp::Sweep(p) => p.references_vpe(vpe),
            PendingOp::Migrate(p) => p.references_vpe(vpe),
            PendingOp::Bulk(p) => p.references_vpe(vpe),
            PendingOp::Promise(p) => p.references_vpe(vpe),
        }
    }
}

impl Kernel {
    // ----- the reply router ---------------------------------------------
    //
    // One dispatch point per message class. Requests go straight to the
    // protocol's request handler; replies resume the parked phase
    // through a single ledger lookup. The modeled entry costs are
    // charged here, once, so every protocol pays the same dispatch
    // price it did pre-engine.

    /// Routes one inter-kernel request to its protocol handler.
    pub(crate) fn route_kcall(&mut self, src: PeId, call: &Kcall, out: &mut Outbox) -> u64 {
        let from = self.membership.kernel_of(src);
        self.cfg.cost.kcall_entry + self.dispatch_kcall(from, call, out)
    }

    /// Dispatches one inter-kernel request on behalf of `from` — the
    /// shared funnel of fresh arrivals ([`Kernel::route_kcall`]),
    /// relayed requests ([`Kcall::Forwarded`] unwraps to the original
    /// caller so replies re-home to it), and hold-queue replays.
    ///
    /// Before the protocol match, two migration-window rules apply
    /// (both host-cost-only no-ops outside a window): a request
    /// resolving into a group this kernel is currently migrating is
    /// held for replay, and a request whose group is owned elsewhere
    /// (the sender raced a membership update) is relayed to the
    /// current owner.
    pub(crate) fn dispatch_kcall(&mut self, from: KernelId, call: &Kcall, out: &mut Outbox) -> u64 {
        if let Kcall::Forwarded { from: orig, call: inner } = call {
            return self.dispatch_kcall(*orig, inner, out);
        }
        if !self.active_migrations.is_empty() {
            if let Some(mig) = self.migration_holding_kcall(call) {
                self.hold_op(mig, migrate::Held::Kcall { from, call: call.clone() });
                return 0;
            }
        }
        if let Some(target) = self.kcall_forward_target(call) {
            self.stats.kcalls_forwarded += 1;
            self.send_kcall(out, target, Kcall::Forwarded { from, call: Box::new(call.clone()) });
            return self.cfg.cost.kcall_exit;
        }
        match call {
            Kcall::AnnounceService { id, name, owner, srv_key, srv_pe, srv_vpe } => self
                .announce_service(crate::registry::ServiceInfo {
                    id: *id,
                    name: *name,
                    owner: *owner,
                    srv_key: *srv_key,
                    srv_pe: *srv_pe,
                    srv_vpe: *srv_vpe,
                }),
            Kcall::ObtainReq { op, child_key, owner_vpe, owner_sel, requester_vpe } => self
                .obtain_request(from, *op, *child_key, *owner_vpe, *owner_sel, *requester_vpe, out),
            Kcall::OrphanNotice { parent_key, child_key } => {
                self.orphan_notice(*parent_key, *child_key)
            }
            Kcall::DelegateReq { op, parent_key, desc, recv_vpe } => {
                self.delegate_request(from, *op, *parent_key, *desc, *recv_vpe, out)
            }
            Kcall::DelegateAck { op, reply_op, commit } => {
                self.delegate_ack(from, *op, *reply_op, *commit, out)
            }
            Kcall::RevokeReq { op, cap_key } => self.revoke_request(from, *op, *cap_key, out),
            Kcall::RevokeBatchReq { op, cap_keys } => {
                self.revoke_batch_request(from, *op, cap_keys, out)
            }
            Kcall::SweepMarkReq { op, cap_keys } => {
                self.sweep_mark_request(from, *op, cap_keys, out)
            }
            Kcall::SweepDeleteReq { op } => self.sweep_delete_request(from, *op, out),
            Kcall::SweepDoneNotice { op } => self.sweep_done_notice(from, *op, out),
            Kcall::OpenSessReq { op, child_key, service, client_vpe } => {
                self.open_sess_request(from, *op, *child_key, *service, *client_vpe, out)
            }
            Kcall::MigrateReq { op, pe, vpe, next_object_id, next_sel, caps } => {
                self.migrate_request(from, *op, *pe, *vpe, *next_object_id, *next_sel, caps, out)
            }
            Kcall::MembershipUpdate { op, pe, new_kernel } => {
                self.membership_update(from, *op, *pe, *new_kernel, out)
            }
            Kcall::Provide { op, from_vpe, recv_vpe } => {
                self.promise_provide_request(from, *op, *from_vpe, *recv_vpe, out)
            }
            Kcall::Resolve { op, reply_op, result } => {
                self.promise_resolve_request(from, *op, *reply_op, result, out)
            }
            Kcall::KillVpe { vpe } => self.kill_vpe_request(*vpe, out),
            Kcall::Forwarded { .. } => unreachable!("unwrapped above"),
        }
    }

    /// Routes one inter-kernel reply: counted completions (revocation)
    /// decrement their fan-in; everything else resumes a parked phase.
    pub(crate) fn route_kreply(&mut self, src: PeId, reply: &KReply, out: &mut Outbox) -> u64 {
        let from = self.membership.kernel_of(src);
        // Revoke completions are counter decrements (Algorithm 1's
        // `receive_revoke_reply`), far cheaper to dispatch than the
        // protocol replies that resume full continuations.
        let entry = match reply {
            KReply::Revoke { .. } | KReply::RevokeBatch { .. } | KReply::SweepDelete { .. } => {
                self.cfg.cost.thread_switch
            }
            _ => self.cfg.cost.kcall_entry,
        };
        entry
            + match reply {
                KReply::Revoke { op, deleted, result, .. } => {
                    debug_assert!(result.is_ok(), "revoke replies always succeed");
                    self.revoke_reply_arrived(*op, *deleted, out)
                }
                KReply::RevokeBatch { op, deleted, result, .. } => {
                    debug_assert!(result.is_ok(), "revoke replies always succeed");
                    self.revoke_reply_arrived(*op, *deleted, out)
                }
                // The mark reply resumes the coordinator's regrouping
                // work (a full continuation, like the protocol
                // replies); the delete reply is a counter decrement.
                KReply::SweepMark { op, frontier, .. } => self.sweep_mark_reply(*op, frontier, out),
                KReply::SweepDelete { op, deleted } => self.sweep_delete_reply(*op, *deleted, out),
                other => self.resume_from_kreply(from, other, out),
            }
    }

    /// Resumes the phase parked under a reply's correlation id.
    fn resume_from_kreply(
        &mut self,
        from: semper_base::KernelId,
        reply: &KReply,
        out: &mut Outbox,
    ) -> u64 {
        use exchange::Phase as Ex;
        use migrate::Phase as Mig;
        use promise::Phase as Pr;
        use session::Phase as Sess;

        let op = reply.op();
        let Some(state) = self.pending.remove(op) else {
            // Under fault injection: a duplicated reply, or a straggler
            // for an op that already aborted.
            self.fault_anomaly(&format!("reply {reply:?} without a pending op"));
            return 0;
        };
        match (state, reply) {
            (
                PendingOp::Exchange(Ex::ObtainRemote { tag, requester, child_key, .. }),
                KReply::Obtain { result, .. },
            ) => self.obtain_reply(from, tag, requester, child_key, result, out),
            (
                PendingOp::Exchange(Ex::DelegateRemote { tag, delegator, parent_key, .. }),
                KReply::Delegate { result, .. },
            ) => self.delegate_reply(from, tag, delegator, parent_key, result, out),
            (
                PendingOp::Exchange(Ex::DelegateWaitDone { tag, delegator, parent_key, child_key }),
                KReply::DelegateDone { result, .. },
            ) => self.delegate_done(tag, delegator, parent_key, child_key, *result, out),
            (
                PendingOp::Exchange(Ex::DelegateAborted { tag, delegator, reason }),
                KReply::DelegateDone { .. },
            ) => self.delegate_done_aborted(tag, delegator, reason, out),
            (
                PendingOp::Session(Sess::OpenRemote { tag, client, child_key, srv }),
                KReply::OpenSess { result, .. },
            ) => self.open_sess_reply(tag, client, child_key, srv, *result, out),
            (PendingOp::Migrate(Mig::AwaitInstall(install)), KReply::Migrate { result, .. }) => {
                self.migrate_installed(op, *install, *result, out)
            }
            (PendingOp::Migrate(Mig::Draining(drain)), KReply::MembershipAck { .. }) => {
                self.migrate_ack(op, drain, out)
            }
            (PendingOp::Promise(Pr::ProvidePending(p)), KReply::Provide { result, .. }) => {
                self.promise_provide_reply(op, p, result, out)
            }
            (
                PendingOp::Promise(Pr::AwaitResolved { promise, parent_key, .. }),
                KReply::Resolved { result, .. },
            ) => self.promise_resolved_reply(from, op, promise, parent_key, result, out),
            (
                PendingOp::Promise(Pr::AwaitInsert {
                    promise, parent_key, child_key, linked, ..
                }),
                KReply::DelegateDone { result, .. },
            ) => self.promise_insert_done(promise, parent_key, child_key, linked, result, out),
            (state, reply) => {
                // Under fault injection: a duplicated reply arriving
                // after the op legitimately advanced to another phase.
                // Re-park the phase untouched.
                self.fault_anomaly(&format!("reply {reply:?} cannot resume {}", state.spec().name));
                self.pending.insert(op, state);
                0
            }
        }
    }

    /// Routes a VPE's upcall answer: resumes the phase parked under the
    /// echoed correlation id. A missing op means the operation was
    /// cancelled (a party died); the answer is dropped. An op parked in
    /// a phase that awaits something else is put back untouched.
    pub(crate) fn route_upcall_reply(
        &mut self,
        src: PeId,
        reply: &UpcallReply,
        out: &mut Outbox,
    ) -> u64 {
        use exchange::Phase as Ex;
        use promise::Phase as Pr;
        use session::Phase as Sess;

        let op = match reply {
            UpcallReply::AcceptExchange { op, .. } | UpcallReply::SessionOpen { op, .. } => *op,
        };
        let Some(state) = self.pending.remove(op) else {
            // The operation was cancelled (e.g. a party died); ignore.
            return 0;
        };
        match (state, reply) {
            (
                PendingOp::Exchange(Ex::LocalAccept {
                    tag,
                    initiator,
                    peer,
                    kind,
                    own_sel,
                    other_sel,
                }),
                UpcallReply::AcceptExchange { accept, .. },
            ) => {
                debug_assert_eq!(self.pe_of_vpe(peer).ok(), Some(src));
                self.local_exchange_accept(
                    tag, initiator, peer, kind, own_sel, other_sel, *accept, out,
                )
            }
            (
                PendingOp::Exchange(Ex::ObtainAtOwner {
                    caller_op,
                    caller_kernel,
                    child_key,
                    parent_key,
                    ..
                }),
                UpcallReply::AcceptExchange { accept, .. },
            ) => self.obtain_owner_accept(
                caller_op,
                caller_kernel,
                child_key,
                parent_key,
                *accept,
                out,
            ),
            (
                PendingOp::Exchange(Ex::DelegateAtRecv {
                    caller_op,
                    caller_kernel,
                    parent_key,
                    desc,
                    recv,
                }),
                UpcallReply::AcceptExchange { accept, .. },
            ) => self.delegate_recv_accept(
                caller_op,
                caller_kernel,
                parent_key,
                desc,
                recv,
                *accept,
                out,
            ),
            (
                PendingOp::Promise(Pr::ConsentAtRecv { caller_op, caller_kernel, recv, .. }),
                UpcallReply::AcceptExchange { accept, .. },
            ) => self.promise_consent_accept(caller_op, caller_kernel, recv, *accept, out),
            (
                PendingOp::Session(Sess::OpenLocal { tag, client, child_key, srv }),
                UpcallReply::SessionOpen { result, .. },
            ) => self.session_local_accept(tag, client, child_key, srv, *result, out),
            (
                PendingOp::Session(Sess::AtService { caller_op, caller_kernel, child_key, srv }),
                UpcallReply::SessionOpen { result, .. },
            ) => {
                self.session_service_accept(caller_op, caller_kernel, child_key, srv, *result, out)
            }
            (state, reply) => {
                debug_assert!(false, "upcall reply {reply:?} cannot resume {}", state.spec().name);
                self.pending.insert(op, state);
                0
            }
        }
    }

    /// Cancels every pending operation awaiting a consent upcall from
    /// `vpe` (the VPE died). The cancellation order is protocol-visible
    /// (each cancel emits a reply), so the collected ops are sorted by
    /// id — the order the pre-hash-map id-ordered ledger iterated in.
    pub(crate) fn cancel_upcall_waiters(&mut self, vpe: VpeId, out: &mut Outbox) {
        let mut cancelled: Vec<OpId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.upcall_responder() == Some(vpe))
            .map(|(op, _)| op)
            .collect();
        cancelled.sort_unstable();
        for op in cancelled {
            let p = self.pending.remove(op).expect("collected above");
            match p {
                PendingOp::Exchange(phase) => self.cancel_exchange_phase(phase, out),
                PendingOp::Promise(promise::Phase::ConsentAtRecv {
                    caller_op,
                    caller_kernel,
                    ..
                }) => {
                    // The receiving VPE died mid-consent: report the
                    // verdict the sender's promise will resolve to.
                    self.send_kreply(
                        out,
                        caller_kernel,
                        KReply::Provide {
                            op: caller_op,
                            result: Err(semper_base::Error::new(semper_base::Code::VpeGone)),
                        },
                    );
                }
                other => unreachable!("{} does not await consent upcalls", other.spec().name),
            }
        }
    }
}
