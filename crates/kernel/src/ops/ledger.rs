//! The shared pending-operation ledger.
//!
//! The paper's kernel suspends cooperative threads at preemption points
//! while waiting for other kernels or VPEs (§4.2). Our event-driven
//! kernel stores the suspended continuation explicitly as a
//! [`PendingOp`] phase in this ledger; the engine's reply router
//! resumes it when the awaited message arrives. Thread-pool accounting
//! (`pending ≤ V_group + K_max · M_inflight`) is derived from each
//! phase's declared [`crate::ops::PhaseSpec`] and maintained
//! incrementally.
//!
//! Op ids are allocated from a per-kernel monotone counter, so they are
//! stable handles: an id on the wire resolves to the same operation for
//! the operation's whole lifetime.
//!
//! # Determinism
//!
//! The map is never iterated on protocol paths; the only iteration
//! ([`PendingTable::iter`]) feeds VPE teardown, which sorts the
//! collected op ids before acting on them (matching the id-ordered
//! iteration of the old `BTreeMap`).

use semper_base::{DetHashMap, OpId};

use crate::ops::PendingOp;

/// O(1) storage for suspended operations, keyed by [`OpId`].
#[derive(Debug, Default)]
pub struct PendingTable {
    ops: DetHashMap<u64, PendingOp>,
    threads: u64,
}

impl PendingTable {
    /// Registers a suspended operation.
    ///
    /// # Panics
    ///
    /// Debug-panics if the op id is already registered (ids are unique
    /// by construction).
    pub fn insert(&mut self, op: OpId, state: PendingOp) {
        self.threads += u64::from(state.holds_thread());
        let prev = self.ops.insert(op.0, state);
        debug_assert!(prev.is_none(), "op id {op} registered twice");
    }

    /// Removes and returns a suspended operation.
    pub fn remove(&mut self, op: OpId) -> Option<PendingOp> {
        let state = self.ops.remove(&op.0)?;
        self.threads -= u64::from(state.holds_thread());
        Some(state)
    }

    /// Looks up a suspended operation.
    pub fn get(&self, op: OpId) -> Option<&PendingOp> {
        self.ops.get(&op.0)
    }

    /// Looks up a suspended operation mutably. Callers may update fields
    /// but must not change which phase is stored (the thread counter is
    /// keyed to the phase at insertion).
    pub fn get_mut(&mut self, op: OpId) -> Option<&mut PendingOp> {
        self.ops.get_mut(&op.0)
    }

    /// Number of suspended operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is suspended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operations currently holding a cooperative kernel thread (§4.2),
    /// maintained incrementally.
    pub fn threads_in_use(&self) -> u64 {
        self.threads
    }

    /// Iterates over `(op, state)` in unspecified (per-run
    /// deterministic) order. Sort the results before any
    /// protocol-visible use.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &PendingOp)> {
        self.ops.iter().map(|(id, p)| (OpId(*id), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::revoke::{Initiator, Phase, RevokeOp};
    use crate::ops::FanIn;
    use semper_base::{CapType, DdlKey, KernelId, PeId, VpeId};

    fn revoke_op(initiator: Initiator) -> PendingOp {
        PendingOp::Revoke(Phase::Run(RevokeOp {
            initiator,
            fanin: FanIn::new(),
            local_roots: Vec::new(),
            spanning: false,
        }))
    }

    #[test]
    fn specs_are_distinct_for_key_ops() {
        let a = revoke_op(Initiator::Internal);
        assert_eq!(a.spec().name, "revoke-run");
    }

    #[test]
    fn pending_table_tracks_threads_incrementally() {
        let mut t = PendingTable::default();
        assert_eq!(t.threads_in_use(), 0);
        // Syscall-initiated revokes hold a thread; kcall-initiated do not.
        t.insert(OpId(1), revoke_op(Initiator::Syscall { vpe: VpeId(0), tag: 0 }));
        t.insert(
            OpId(2),
            revoke_op(Initiator::Kcall {
                op: OpId(9),
                from: KernelId(1),
                cap_key: DdlKey::new(PeId(0), VpeId(0), CapType::Vpe, 0),
            }),
        );
        assert_eq!(t.threads_in_use(), 1);
        assert_eq!(t.len(), 2);
        assert!(t.remove(OpId(1)).is_some());
        assert_eq!(t.threads_in_use(), 0);
        assert_eq!(t.len(), 1);
        assert!(t.get(OpId(2)).is_some());
        assert!(t.get_mut(OpId(2)).is_some());
        assert!(t.remove(OpId(1)).is_none());
    }

    #[test]
    fn pending_table_iter_exposes_everything() {
        let mut t = PendingTable::default();
        for i in 0..5 {
            t.insert(OpId(i), revoke_op(Initiator::Internal));
        }
        let mut ids: Vec<u64> = t.iter().map(|(op, _)| op.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fanin_counts_and_tallies() {
        let mut f = FanIn::new();
        assert!(f.idle());
        f.arm_n(2);
        f.arm();
        assert_eq!(f.outstanding(), 3);
        f.add(5);
        assert!(!f.complete_one(1));
        assert!(!f.complete_one(2));
        assert!(f.complete_one(3));
        assert!(f.idle());
        assert_eq!(f.tally(), 11);
    }
}
