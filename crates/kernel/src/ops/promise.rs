//! Promise-capability IPC — pipelined asynchronous invocation
//! (`Feature::PromiseIpc`).
//!
//! A [`Syscall::SubmitAsync`] returns immediately with a *promise
//! capability*: a first-class selector standing in for the eventual
//! result of the submitted call. The client may pass that selector in
//! dependent calls before the callee has replied; the kernel parks those
//! calls in the promise's resolution queue and replays them — with the
//! resolved value substituted for the promise selector — in arrival
//! order once the promise resolves. Chains of asynchronous submissions
//! pipeline in program order: each submission gates on the submitter's
//! previous unresolved promise, so a 3-hop open→delegate→activate chain
//! costs one client round-trip instead of three.
//!
//! # Place in the capability system
//!
//! Promise keys come from a disjoint object-id range
//! ([`semper_caps::alloc::PROMISE_ID_BASE`]) and promise selectors from
//! a reserved selector range ([`PROMISE_SEL_BASE`]). Promises live
//! *outside* the capability tree: no mapdb record, no table slot, no
//! children — `Kernel::state_digest` is untouched by any amount of
//! promise traffic, which is what keeps every pre-existing golden and
//! trace fingerprint bit-identical with the feature off.
//!
//! # Protocol phases
//!
//! A purely local submission needs no new wire traffic: the inner call
//! executes through the ordinary handlers under a reserved reply tag
//! ([`ASYNC_TAG_BASE`]), and the kernel's reply funnel resolves the
//! promise instead of messaging the VPE. The one genuinely new wire
//! exchange is the *eager provide* for an asynchronous cross-kernel
//! delegate, which prefetches the receiver's consent while the operand
//! promise is still unresolved:
//!
//! | # | where | phase                  | awaits                     |
//! |---|-------|------------------------|----------------------------|
//! | 1 | A     | `ProvidePending`       | `KReply::Provide` + gate   |
//! | 2 | B     | `ConsentAtRecv`        | consent upcall reply       |
//! | 3 | B     | `AwaitResolve`         | `Kcall::Resolve`           |
//! | 4 | A     | `AwaitResolved`        | `KReply::Resolved`         |
//! | 5 | A     | `AwaitInsert`          | `KReply::DelegateDone`     |
//!
//! Leg 5 reuses the ordinary `Kcall::DelegateAck` commit handshake and
//! B's existing `DelegatePendingInsert` phase, preserving the
//! link-before-insert ordering of the classic delegate (§4.3): after
//! the operand gate opens, the transfer costs the same two round-trips
//! as a blocking delegate — the consent round-trip has already been
//! paid in the shadow of the operand's resolution.
//!
//! # Termination
//!
//! A promise always resolves to a real `Ok`/`Err` — never a silent
//! hang. VPE death tears down its promises ([`Kernel::teardown_promises`]),
//! revoking the promise selector severs the *handle* (the underlying
//! invocation still lands, into a dropped slot), and under
//! `Feature::FaultInjection` every parked phase above carries a per-op
//! deadline, so dropped `Resolve` legs or a crashed peer kernel abort
//! the promise with `Err(Timeout)` through the ordinary fault engine.

use semper_base::config::Feature;
use semper_base::msg::{CapDesc, KReply, Kcall, SysReplyData, Syscall, Upcall};
use semper_base::{CapSel, Code, DdlKey, Error, ExchangeKind, KernelId, OpId, Result, VpeId};
use semper_caps::alloc::PROMISE_ID_BASE;
use semper_caps::Capability;

use crate::kernel::Kernel;
use crate::ops::exchange::{self, key_type_for};
use crate::ops::{Awaits, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;

/// First selector of the per-VPE promise-selector range. Table-allocated
/// selectors grow from 0 and never reach this.
pub const PROMISE_SEL_BASE: u32 = 1 << 30;

/// First reply tag used for asynchronous inner executions. Client tags
/// and bulk item indices stay far below this, so the reply funnel can
/// route on the tag range alone.
pub const ASYNC_TAG_BASE: u64 = 1 << 62;

/// The selector bound to a promise key (derived, not allocated: promise
/// object ids are per-VPE monotone, so the mapping is bijective).
pub(crate) fn promise_sel(key: u64) -> CapSel {
    CapSel(PROMISE_SEL_BASE + (DdlKey::from_raw(key).object_id() - PROMISE_ID_BASE))
}

/// Kernel-internal state of one promise.
#[derive(Debug, Clone)]
pub struct PromiseState {
    /// The submitting VPE (also the only VPE that can wait on it).
    pub owner: VpeId,
    /// The promise selector handed to the owner.
    pub sel: CapSel,
    /// The result, once the submitted call completed. Non-consuming:
    /// every wait re-reads it.
    pub resolved: Option<Result<SysReplyData>>,
    /// Parked continuations, replayed in arrival order on resolution.
    pub waiters: Vec<PromiseWaiter>,
    /// The submitted call, taken when the pipeline gate opens.
    pub call: Option<Box<Syscall>>,
    /// The `ProvidePending` op id if an eager provide was launched at
    /// submission (asynchronous cross-kernel delegate).
    pub eager_op: Option<OpId>,
}

/// A continuation parked in a promise's resolution queue.
#[derive(Debug, Clone)]
pub enum PromiseWaiter {
    /// The owner's next asynchronous submission: its pipeline gate opens
    /// when this promise resolves (program order — each promise has at
    /// most one `Exec` waiter).
    Exec {
        /// Raw key of the gated promise.
        promise: u64,
    },
    /// A blocking [`Syscall::WaitPromise`]; replied with the resolution.
    Wait {
        /// The waiting VPE (always the owner).
        vpe: VpeId,
        /// The wait's reply tag.
        tag: u64,
    },
    /// A blocking dependent call naming this (then-unresolved) promise
    /// as an operand; replayed with the resolved value substituted.
    Call {
        /// The calling VPE (always the owner).
        vpe: VpeId,
        /// The call's reply tag.
        tag: u64,
        /// The parked call.
        call: Box<Syscall>,
    },
    /// The owner revoked the promise selector before resolution: the
    /// handle is already severed; drop the state once the in-flight
    /// invocation lands.
    Discard,
}

/// Whether an eager provide's operand gate has opened yet, and with
/// what parent validation verdict.
#[derive(Debug, Clone)]
pub enum Gate {
    /// The operand promise has not resolved yet.
    Waiting,
    /// The gate opened; the delegated parent validated to `Ok(key)` or
    /// failed (the promise already resolved to that error).
    Open(Result<DdlKey>),
}

/// A-side state of an eager provide (phase 1 of the table above).
#[derive(Debug, Clone)]
pub struct Provide {
    /// Raw key of the promise this delegate will resolve.
    pub promise: u64,
    /// The receiving VPE (owned by `peer_kernel`).
    pub recv_vpe: VpeId,
    /// The receiver's kernel.
    pub peer_kernel: KernelId,
    /// The receiver's consent verdict, once [`KReply::Provide`] arrived.
    pub consent: Option<Result<OpId>>,
    /// The operand gate.
    pub gate: Gate,
}

/// Promise-protocol phases parked in the pending-op ledger.
#[derive(Debug, Clone)]
pub enum Phase {
    /// A: eager `Kcall::Provide` sent at submission; resumes on consent
    /// arrival *and* operand-gate opening (in either order).
    ProvidePending(Box<Provide>),
    /// A: `Kcall::Resolve` sent; awaiting [`KReply::Resolved`].
    AwaitResolved {
        /// Raw key of the promise being resolved.
        promise: u64,
        /// The delegated parent capability.
        parent_key: DdlKey,
        /// The receiver's kernel.
        peer_kernel: KernelId,
    },
    /// A: `Kcall::DelegateAck` sent; awaiting [`KReply::DelegateDone`].
    AwaitInsert {
        /// Raw key of the promise being resolved.
        promise: u64,
        /// The delegated parent capability.
        parent_key: DdlKey,
        /// The receiver-side child key.
        child_key: DdlKey,
        /// The receiver's kernel.
        peer_kernel: KernelId,
        /// Whether the child was linked under the parent (unlinked again
        /// if the insert fails).
        linked: bool,
    },
    /// B: consent upcall in flight to the receiving VPE.
    ConsentAtRecv {
        /// A's correlation id (echoed in [`KReply::Provide`]).
        caller_op: OpId,
        /// A's kernel.
        caller_kernel: KernelId,
        /// The delegating VPE (consent prompt only).
        from_vpe: VpeId,
        /// The receiving VPE.
        recv: VpeId,
    },
    /// B: consent granted; awaiting the sender's [`Kcall::Resolve`].
    AwaitResolve {
        /// A's kernel.
        caller_kernel: KernelId,
        /// The receiving VPE.
        recv: VpeId,
    },
}

impl Phase {
    /// Scheduling/await metadata. All A-side phases run thread-free —
    /// the submitter is not blocked, so no cooperative kernel thread is
    /// held; only B's consent wait holds one (it is budgeted like any
    /// consumed-unanswered inter-kernel request, §4.2).
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::ProvidePending(_) => {
                &PhaseSpec { name: "promise-provide", awaits: Awaits::KReply, thread: Thread::Free }
            }
            Phase::AwaitResolved { .. } => &PhaseSpec {
                name: "promise-await-resolved",
                awaits: Awaits::KReply,
                thread: Thread::Free,
            },
            Phase::AwaitInsert { .. } => &PhaseSpec {
                name: "promise-await-insert",
                awaits: Awaits::KReply,
                thread: Thread::Free,
            },
            Phase::ConsentAtRecv { .. } => &PhaseSpec {
                name: "promise-consent",
                awaits: Awaits::UpcallReply,
                thread: Thread::Holds,
            },
            Phase::AwaitResolve { .. } => &PhaseSpec {
                name: "promise-await-resolve",
                awaits: Awaits::KReply,
                thread: Thread::Free,
            },
        }
    }

    /// The VPE whose upcall reply this phase awaits, if any.
    pub(crate) fn upcall_responder(&self) -> Option<VpeId> {
        match self {
            Phase::ConsentAtRecv { recv, .. } => Some(*recv),
            _ => None,
        }
    }

    /// True if this phase involves `vpe` (migration refusal check).
    pub(crate) fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::ProvidePending(p) => {
                DdlKey::from_raw(p.promise).vpe() == vpe || p.recv_vpe == vpe
            }
            Phase::AwaitResolved { promise, parent_key, .. } => {
                DdlKey::from_raw(*promise).vpe() == vpe || parent_key.vpe() == vpe
            }
            Phase::AwaitInsert { promise, parent_key, child_key, .. } => {
                DdlKey::from_raw(*promise).vpe() == vpe
                    || parent_key.vpe() == vpe
                    || child_key.vpe() == vpe
            }
            Phase::ConsentAtRecv { from_vpe, recv, .. } => *from_vpe == vpe || *recv == vpe,
            Phase::AwaitResolve { recv, .. } => *recv == vpe,
        }
    }
}

impl Kernel {
    // ----- submission and the program-order pipeline ------------------

    /// Handles [`Syscall::SubmitAsync`]: mints a promise capability,
    /// replies immediately, and either executes the inner call now or
    /// chains it behind the submitter's previous unresolved promise.
    pub(crate) fn sys_submit_async(
        &mut self,
        vpe: VpeId,
        tag: u64,
        inner: &Syscall,
        out: &mut Outbox,
    ) -> u64 {
        if !self.cfg.has_feature(Feature::PromiseIpc) {
            self.reply_sys(out, vpe, tag, Err(Error::new(Code::NotSupported)));
            return self.cfg.cost.syscall_exit;
        }
        if matches!(
            inner,
            Syscall::Exit
                | Syscall::Batch(_)
                | Syscall::SubmitAsync(_)
                | Syscall::WaitPromise { .. }
        ) {
            self.reply_sys(out, vpe, tag, Err(Error::new(Code::NotSupported)));
            return self.cfg.cost.syscall_exit;
        }
        let pe = self.pe_of_vpe(vpe).expect("submitter is local");
        let key = self.keys.alloc_promise(pe, vpe).raw();
        let sel = promise_sel(key);
        self.promise_binds.insert((vpe, sel), key);
        let mut state = PromiseState {
            owner: vpe,
            sel,
            resolved: None,
            waiters: Vec::new(),
            call: Some(Box::new(inner.clone())),
            eager_op: None,
        };
        self.stats.promises_created += 1;
        let mut cost = self.ref_cost() + self.cfg.cost.syscall_exit;

        // Eager provide: an asynchronous cross-kernel delegate prefetches
        // the receiver's consent while the operand gate is still shut.
        if let Syscall::Exchange { other, kind: ExchangeKind::Delegate, .. } = inner {
            if let Ok(peer) = self.kernel_of_vpe(*other) {
                if peer != self.id {
                    let op = self.alloc_op();
                    self.send_kcall(
                        out,
                        peer,
                        Kcall::Provide { op, from_vpe: vpe, recv_vpe: *other },
                    );
                    self.park(
                        op,
                        PendingOp::Promise(Phase::ProvidePending(Box::new(Provide {
                            promise: key,
                            recv_vpe: *other,
                            peer_kernel: peer,
                            consent: None,
                            gate: Gate::Waiting,
                        }))),
                    );
                    state.eager_op = Some(op);
                    cost += self.cfg.cost.kcall_exit;
                }
            }
        }

        // Program-order gate: chain behind the previous unresolved
        // promise of this VPE, or open the gate right away.
        let chained = match self.async_pipeline_tail.get(&vpe) {
            Some(prev) => match self.promises.get_mut(prev) {
                Some(p) if p.resolved.is_none() => {
                    p.waiters.push(PromiseWaiter::Exec { promise: key });
                    true
                }
                _ => false,
            },
            None => false,
        };
        self.async_pipeline_tail.insert(vpe, key);
        self.promises.insert(key, state);
        self.reply_sys(out, vpe, tag, Ok(SysReplyData::Promise { sel }));
        if chained {
            self.stats.calls_pipelined += 1;
        } else {
            cost += self.promise_gate_open(key, out);
        }
        cost
    }

    /// Opens a promise's pipeline gate: substitutes resolved operands
    /// and launches the inner call (or the eager-provide continuation).
    pub(crate) fn promise_gate_open(&mut self, key: u64, out: &mut Outbox) -> u64 {
        let Some(state) = self.promises.get_mut(&key) else {
            return 0; // discarded or torn down before the gate opened
        };
        let Some(call) = state.call.take() else {
            return 0;
        };
        let owner = state.owner;
        let eager = state.eager_op;
        if !self.vpe_alive(owner) {
            // Teardown normally drops the state first; belt and braces.
            return self.resolve_promise(key, Err(Error::new(Code::VpeGone)), out);
        }
        let call = match self.substitute_operands(owner, *call) {
            Ok(c) => c,
            Err(e) => return self.resolve_promise(key, Err(e), out),
        };
        if let Some(op) = eager {
            return self.promise_eager_gate(op, key, &call, out);
        }
        let tag = self.next_async_tag;
        self.next_async_tag += 1;
        self.async_execs.insert((owner, tag), key);
        self.cfg.cost.thread_switch + self.promise_exec_dispatch(owner, tag, call, out)
    }

    /// Dispatches an asynchronous inner execution through the ordinary
    /// standalone handlers; the reply funnel routes the completion back
    /// to [`Kernel::promise_exec_done`] by the reserved tag range.
    fn promise_exec_dispatch(
        &mut self,
        vpe: VpeId,
        tag: u64,
        call: Syscall,
        out: &mut Outbox,
    ) -> u64 {
        match call {
            Syscall::Noop => {
                self.reply_sys(out, vpe, tag, Ok(SysReplyData::None));
                self.cfg.cost.syscall_exit
            }
            Syscall::CreateMem { size, perms } => self.sys_create_mem(vpe, tag, size, perms, out),
            Syscall::DeriveMem { src, offset, size, perms } => {
                self.sys_derive_mem(vpe, tag, src, offset, size, perms, out)
            }
            Syscall::Exchange { other, own_sel, other_sel, kind } => {
                self.sys_exchange(vpe, tag, other, own_sel, other_sel, kind, out)
            }
            Syscall::Revoke { sel, own } => self.sys_revoke(vpe, tag, sel, own, out),
            Syscall::CreateSrv { name } => self.sys_create_srv(vpe, tag, name, out),
            Syscall::OpenSession { name } => self.sys_open_session(vpe, tag, name, out),
            Syscall::Activate { sel, ep } => self.sys_activate(vpe, tag, sel, ep, out),
            Syscall::Exit
            | Syscall::Batch(_)
            | Syscall::SubmitAsync(_)
            | Syscall::WaitPromise { .. } => unreachable!("rejected at submission"),
        }
    }

    /// Completion funnel for asynchronous inner executions (called from
    /// `reply_sys` when the tag is in the reserved range).
    pub(crate) fn promise_exec_done(
        &mut self,
        key: u64,
        result: Result<SysReplyData>,
        out: &mut Outbox,
    ) -> u64 {
        self.resolve_promise(key, result, out)
    }

    /// Resolves a promise and replays its parked continuations in
    /// arrival order.
    pub(crate) fn resolve_promise(
        &mut self,
        key: u64,
        result: Result<SysReplyData>,
        out: &mut Outbox,
    ) -> u64 {
        let Some(state) = self.promises.get_mut(&key) else {
            return 0; // torn down while the invocation was in flight
        };
        if state.resolved.is_some() {
            self.fault_anomaly("promise resolved twice");
            return 0;
        }
        state.resolved = Some(result.clone());
        self.stats.promises_resolved += 1;
        let waiters = std::mem::take(&mut state.waiters);
        let mut cost = 0;
        for w in waiters {
            match w {
                PromiseWaiter::Exec { promise } => {
                    cost += self.promise_gate_open(promise, out);
                }
                PromiseWaiter::Wait { vpe, tag } => {
                    if self.vpe_alive(vpe) {
                        self.reply_sys(out, vpe, tag, result.clone());
                        cost += self.cfg.cost.syscall_exit;
                    }
                }
                PromiseWaiter::Call { vpe, tag, call } => {
                    if self.vpe_alive(vpe) {
                        cost += self.cfg.cost.thread_switch;
                        cost += match self.sys_promise_dependent(vpe, tag, &call, out) {
                            Some(c) => c,
                            None => self.dispatch_syscall(vpe, tag, &call, out),
                        };
                    }
                }
                PromiseWaiter::Discard => {
                    self.promises.remove(&key);
                }
            }
        }
        cost
    }

    // ----- dependent calls and operand substitution -------------------

    /// Intercepts a blocking syscall that names a promise selector:
    /// severs the handle for `Revoke`, parks the call against the first
    /// unresolved operand, or dispatches it with resolved operands
    /// substituted. Returns `None` if the call has no promise operands.
    pub(crate) fn sys_promise_dependent(
        &mut self,
        vpe: VpeId,
        tag: u64,
        call: &Syscall,
        out: &mut Outbox,
    ) -> Option<u64> {
        if let Syscall::Revoke { sel, .. } = call {
            if self.promise_binds.contains_key(&(vpe, *sel)) {
                return Some(self.sys_revoke_promise(vpe, tag, *sel, out));
            }
        }
        if !self.has_promise_operand(vpe, call) {
            return None;
        }
        if let Some(key) = self.first_unresolved_operand(vpe, call) {
            self.promises
                .get_mut(&key)
                .expect("first_unresolved_operand checked the state")
                .waiters
                .push(PromiseWaiter::Call { vpe, tag, call: Box::new(call.clone()) });
            self.stats.calls_pipelined += 1;
            return Some(self.ref_cost());
        }
        Some(match self.substitute_operands(vpe, call.clone()) {
            Ok(subst) => self.dispatch_syscall(vpe, tag, &subst, out),
            Err(e) => {
                self.reply_sys(out, vpe, tag, Err(e));
                self.cfg.cost.syscall_exit
            }
        })
    }

    /// True if any selector operand of `call` names a promise of `vpe`.
    fn has_promise_operand(&self, vpe: VpeId, call: &Syscall) -> bool {
        let bound = |sel: &CapSel| self.promise_binds.contains_key(&(vpe, *sel));
        match call {
            Syscall::DeriveMem { src, .. } => bound(src),
            Syscall::Exchange { own_sel, other_sel, .. } => bound(own_sel) || bound(other_sel),
            Syscall::Activate { sel, .. } => bound(sel),
            _ => false,
        }
    }

    /// The first operand (in field order) naming an unresolved promise.
    fn first_unresolved_operand(&self, vpe: VpeId, call: &Syscall) -> Option<u64> {
        let check = |sel: &CapSel| -> Option<u64> {
            let key = *self.promise_binds.get(&(vpe, *sel))?;
            match self.promises.get(&key) {
                Some(p) if p.resolved.is_none() => Some(key),
                _ => None,
            }
        };
        match call {
            Syscall::DeriveMem { src, .. } => check(src),
            Syscall::Exchange { own_sel, other_sel, .. } => {
                check(own_sel).or_else(|| check(other_sel))
            }
            Syscall::Activate { sel, .. } => check(sel),
            _ => None,
        }
    }

    /// Replaces promise-selector operands with their resolved selector
    /// values. An operand promise that resolved to `Err` propagates that
    /// error; a non-selector-valued result is `InvalidArgs`.
    fn substitute_operands(&self, vpe: VpeId, mut call: Syscall) -> Result<Syscall> {
        let subst = |sel: &mut CapSel| -> Result<()> {
            let Some(&key) = self.promise_binds.get(&(vpe, *sel)) else {
                return Ok(());
            };
            let state = self.promises.get(&key).ok_or(Error::new(Code::NoSuchCap))?;
            match &state.resolved {
                None => Err(Error::new(Code::Unresolved)),
                Some(Err(e)) => Err(*e),
                Some(Ok(data)) => {
                    *sel = match data {
                        SysReplyData::Sel(s) => *s,
                        SysReplyData::Mem { sel, .. } => *sel,
                        SysReplyData::Delegated { recv_sel } => *recv_sel,
                        SysReplyData::Session { sel, .. } => *sel,
                        _ => return Err(Error::new(Code::InvalidArgs)),
                    };
                    Ok(())
                }
            }
        };
        match &mut call {
            Syscall::DeriveMem { src, .. } => subst(src)?,
            Syscall::Exchange { own_sel, other_sel, .. } => {
                subst(own_sel)?;
                subst(other_sel)?;
            }
            Syscall::Revoke { sel, .. } => subst(sel)?,
            Syscall::Activate { sel, .. } => subst(sel)?,
            _ => {}
        }
        Ok(call)
    }

    // ----- wait and revoke --------------------------------------------

    /// Handles [`Syscall::WaitPromise`].
    pub(crate) fn sys_wait_promise(
        &mut self,
        vpe: VpeId,
        tag: u64,
        sel: CapSel,
        block: bool,
        out: &mut Outbox,
    ) -> u64 {
        if !self.cfg.has_feature(Feature::PromiseIpc) {
            self.reply_sys(out, vpe, tag, Err(Error::new(Code::NotSupported)));
            return self.cfg.cost.syscall_exit;
        }
        let ref_c = self.ref_cost();
        let key = match self.promise_binds.get(&(vpe, sel)) {
            Some(&k) => k,
            None => {
                self.reply_sys(out, vpe, tag, Err(Error::new(Code::NoSuchCap)));
                return self.cfg.cost.syscall_exit;
            }
        };
        let stored = match self.promises.get_mut(&key) {
            None => {
                self.reply_sys(out, vpe, tag, Err(Error::new(Code::NoSuchCap)));
                return self.cfg.cost.syscall_exit;
            }
            Some(p) => match &p.resolved {
                Some(r) => r.clone(),
                None if block => {
                    p.waiters.push(PromiseWaiter::Wait { vpe, tag });
                    return ref_c;
                }
                None => Err(Error::new(Code::Unresolved)),
            },
        };
        self.reply_sys(out, vpe, tag, stored);
        ref_c + self.cfg.cost.syscall_exit
    }

    /// Revokes a promise *handle*: the binding disappears (dependent
    /// calls naming the selector now fail `NoSuchCap`) but the result
    /// object, if any, is never touched — promises are not part of the
    /// capability tree. Callers must have checked the binding exists.
    pub(crate) fn sys_revoke_promise(
        &mut self,
        vpe: VpeId,
        tag: u64,
        sel: CapSel,
        out: &mut Outbox,
    ) -> u64 {
        let key = self.promise_binds.remove(&(vpe, sel)).expect("caller checked the binding");
        match self.promises.get_mut(&key) {
            Some(p) if p.resolved.is_none() => {
                // In-flight: sever now, drop the state when it lands.
                p.waiters.push(PromiseWaiter::Discard);
            }
            _ => {
                self.promises.remove(&key);
            }
        }
        self.reply_sys(out, vpe, tag, Ok(SysReplyData::None));
        self.ref_cost() + self.cfg.cost.syscall_exit
    }

    // ----- eager provide: A side --------------------------------------

    /// Gate-open continuation of an eager provide: validates the (now
    /// substituted) delegated parent and proceeds if the receiver's
    /// consent already arrived.
    fn promise_eager_gate(&mut self, op: OpId, key: u64, call: &Syscall, out: &mut Outbox) -> u64 {
        let Some(PendingOp::Promise(Phase::ProvidePending(mut p))) = self.pending.remove(op) else {
            // The eager op was already aborted (deadline / dead peer);
            // the promise resolved to an error there.
            return 0;
        };
        let Syscall::Exchange { own_sel, .. } = call else {
            unreachable!("eager ops are delegates");
        };
        let owner = DdlKey::from_raw(key).vpe();
        let parent = self
            .tables
            .get(&owner)
            .ok_or(Error::new(Code::NoSuchVpe))
            .and_then(|t| t.get(*own_sel))
            .and_then(|pk| {
                let cap = self.mapdb.get(pk)?;
                if cap.revoking() {
                    return Err(Error::new(Code::RevokeInProgress));
                }
                Ok(pk)
            });
        match (p.consent.take(), parent) {
            (None, parent) => {
                let cost = match &parent {
                    Err(e) => self.resolve_promise(key, Err(*e), out),
                    Ok(_) => 0,
                };
                p.gate = Gate::Open(parent);
                self.pending.insert(op, PendingOp::Promise(Phase::ProvidePending(p)));
                self.ref_cost() + cost
            }
            (Some(Err(e)), _) => {
                // Receiver denied; B holds no pending state to release.
                self.ref_cost() + self.resolve_promise(key, Err(e), out)
            }
            (Some(Ok(b_op)), Ok(pkey)) => {
                self.promise_send_resolve(op, key, pkey, p.peer_kernel, b_op, out)
            }
            (Some(Ok(b_op)), Err(e)) => {
                self.send_resolve_abort(p.peer_kernel, b_op, e, out);
                self.cfg.cost.kcall_exit + self.resolve_promise(key, Err(e), out)
            }
        }
    }

    /// Resume handler for [`KReply::Provide`] (the consent verdict).
    pub(crate) fn promise_provide_reply(
        &mut self,
        op: OpId,
        mut p: Box<Provide>,
        result: &Result<OpId>,
        out: &mut Outbox,
    ) -> u64 {
        if !self.promises.contains_key(&p.promise) {
            // The submitter was torn down; release B's pending state.
            if let Ok(b_op) = result {
                self.send_resolve_abort(p.peer_kernel, *b_op, Error::new(Code::VpeGone), out);
                return self.cfg.cost.kcall_exit;
            }
            return 0;
        }
        match std::mem::replace(&mut p.gate, Gate::Waiting) {
            Gate::Waiting => {
                p.consent = Some(*result);
                self.pending.insert(op, PendingOp::Promise(Phase::ProvidePending(p)));
                self.cfg.cost.thread_switch
            }
            Gate::Open(Ok(pkey)) => match result {
                Ok(b_op) => {
                    self.promise_send_resolve(op, p.promise, pkey, p.peer_kernel, *b_op, out)
                }
                Err(e) => {
                    self.cfg.cost.syscall_exit + self.resolve_promise(p.promise, Err(*e), out)
                }
            },
            Gate::Open(Err(e)) => {
                // The promise already resolved to `e` at gate-open; just
                // release B's pending state if consent was granted.
                if let Ok(b_op) = result {
                    self.send_resolve_abort(p.peer_kernel, *b_op, e, out);
                    return self.cfg.cost.kcall_exit;
                }
                0
            }
        }
    }

    /// Sends the `Kcall::Resolve` transfer leg (re-validating the parent
    /// — consent arrival may postdate the gate) and parks `AwaitResolved`.
    fn promise_send_resolve(
        &mut self,
        op: OpId,
        promise: u64,
        parent_key: DdlKey,
        peer: KernelId,
        b_op: OpId,
        out: &mut Outbox,
    ) -> u64 {
        let kind = match self.mapdb.get(parent_key) {
            Ok(c) if !c.revoking() => c.kind,
            Ok(_) => {
                let e = Error::new(Code::RevokeInProgress);
                self.send_resolve_abort(peer, b_op, e, out);
                return self.cfg.cost.kcall_exit + self.resolve_promise(promise, Err(e), out);
            }
            Err(e) => {
                self.send_resolve_abort(peer, b_op, e, out);
                return self.cfg.cost.kcall_exit + self.resolve_promise(promise, Err(e), out);
            }
        };
        self.send_kcall(
            out,
            peer,
            Kcall::Resolve {
                op: b_op,
                reply_op: op,
                result: Ok(CapDesc { key: parent_key, kind }),
            },
        );
        self.park(
            op,
            PendingOp::Promise(Phase::AwaitResolved { promise, parent_key, peer_kernel: peer }),
        );
        self.ref_cost() + self.cfg.cost.xfer_desc + self.cfg.cost.kcall_exit
    }

    /// Aborts B's pending resolve state (fire-and-forget; B sends no
    /// reply to an `Err` resolve).
    pub(crate) fn send_resolve_abort(
        &mut self,
        peer: KernelId,
        b_op: OpId,
        e: Error,
        out: &mut Outbox,
    ) {
        if self.fault.dead_peers.contains(&peer) {
            return; // no point burning a send credit on a dead island
        }
        self.send_kcall(out, peer, Kcall::Resolve { op: b_op, reply_op: OpId(0), result: Err(e) });
    }

    /// Resume handler for [`KReply::Resolved`]: commits (or aborts) the
    /// insert through the ordinary `DelegateAck` handshake, preserving
    /// link-before-insert.
    pub(crate) fn promise_resolved_reply(
        &mut self,
        from: KernelId,
        op: OpId,
        promise: u64,
        parent_key: DdlKey,
        result: &Result<(DdlKey, OpId)>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Err(e) => self.cfg.cost.syscall_exit + self.resolve_promise(promise, Err(*e), out),
            Ok((child_key, insert_op)) => {
                let commit = self.promises.contains_key(&promise)
                    && self.mapdb.get(parent_key).map(|c| !c.revoking()).unwrap_or(false);
                if commit {
                    let _ = self.mapdb.link_child(parent_key, *child_key);
                }
                self.send_kcall(
                    out,
                    from,
                    Kcall::DelegateAck { op: *insert_op, reply_op: op, commit },
                );
                self.park(
                    op,
                    PendingOp::Promise(Phase::AwaitInsert {
                        promise,
                        parent_key,
                        child_key: *child_key,
                        peer_kernel: from,
                        linked: commit,
                    }),
                );
                if commit {
                    self.ref_cost() + self.cfg.cost.cap_insert + self.cfg.cost.kcall_exit
                } else {
                    self.ref_cost() + self.cfg.cost.kcall_exit
                }
            }
        }
    }

    /// Resume handler for [`KReply::DelegateDone`] on the promise path:
    /// the final leg — resolve the promise with the receiver-side
    /// selector (or unlink and resolve to the error).
    pub(crate) fn promise_insert_done(
        &mut self,
        promise: u64,
        parent_key: DdlKey,
        child_key: DdlKey,
        linked: bool,
        result: &Result<CapSel>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Ok(recv_sel) => {
                self.stats.exchanges_spanning += 1;
                self.cfg.cost.syscall_exit
                    + self.resolve_promise(
                        promise,
                        Ok(SysReplyData::Delegated { recv_sel: *recv_sel }),
                        out,
                    )
            }
            Err(e) => {
                if linked {
                    self.mapdb.unlink_child(parent_key, child_key);
                }
                self.cfg.cost.syscall_exit + self.resolve_promise(promise, Err(*e), out)
            }
        }
    }

    // ----- eager provide: B side --------------------------------------

    /// Handles [`Kcall::Provide`]: runs the consent upcall now so the
    /// verdict is ready by the time the sender's operand resolves.
    pub(crate) fn promise_provide_request(
        &mut self,
        from: KernelId,
        op: OpId,
        from_vpe: VpeId,
        recv_vpe: VpeId,
        out: &mut Outbox,
    ) -> u64 {
        if !self.vpe_alive(recv_vpe) {
            self.send_kreply(
                out,
                from,
                KReply::Provide { op, result: Err(Error::new(Code::VpeGone)) },
            );
            return self.cfg.cost.kcall_exit;
        }
        let pe = self.pe_of_vpe(recv_vpe).expect("recv vpe is local");
        let my_op = self.alloc_op();
        self.send_upcall(
            out,
            pe,
            Upcall::AcceptExchange {
                op: my_op,
                from_vpe,
                kind: ExchangeKind::Delegate,
                sel: CapSel::INVALID,
            },
        );
        self.park(
            my_op,
            PendingOp::Promise(Phase::ConsentAtRecv {
                caller_op: op,
                caller_kernel: from,
                from_vpe,
                recv: recv_vpe,
            }),
        );
        self.ref_cost() + self.cfg.cost.xfer_desc
    }

    /// Resume handler for the consent upcall reply: reports the verdict
    /// and, on acceptance, parks `AwaitResolve` for the transfer leg.
    pub(crate) fn promise_consent_accept(
        &mut self,
        caller_op: OpId,
        caller_kernel: KernelId,
        recv: VpeId,
        accept: bool,
        out: &mut Outbox,
    ) -> u64 {
        if !accept {
            self.send_kreply(
                out,
                caller_kernel,
                KReply::Provide { op: caller_op, result: Err(Error::new(Code::ExchangeDenied)) },
            );
            return self.cfg.cost.kcall_exit;
        }
        let b_op = self.alloc_op();
        self.park(b_op, PendingOp::Promise(Phase::AwaitResolve { caller_kernel, recv }));
        self.send_kreply(out, caller_kernel, KReply::Provide { op: caller_op, result: Ok(b_op) });
        self.cfg.cost.kcall_exit
    }

    /// Handles [`Kcall::Resolve`]: creates the pending child (the exact
    /// `delegate_recv_accept` discipline — uninserted until the sender's
    /// commit) or silently drops the pending state on an abort.
    pub(crate) fn promise_resolve_request(
        &mut self,
        from: KernelId,
        op: OpId,
        reply_op: OpId,
        result: &Result<CapDesc>,
        out: &mut Outbox,
    ) -> u64 {
        match self.pending.get(op) {
            Some(PendingOp::Promise(Phase::AwaitResolve { .. })) => {}
            _ => {
                self.fault_anomaly("Resolve for unknown or mismatched op");
                return 0;
            }
        }
        let Some(PendingOp::Promise(Phase::AwaitResolve { caller_kernel, recv })) =
            self.pending.remove(op)
        else {
            unreachable!("checked above");
        };
        debug_assert_eq!(from, caller_kernel, "Resolve from the wrong kernel");
        let desc = match result {
            Err(_) => return self.ref_cost(), // abort: drop, no reply
            Ok(d) => d,
        };
        if !self.vpe_alive(recv) {
            self.send_kreply(
                out,
                from,
                KReply::Resolved { op: reply_op, result: Err(Error::new(Code::VpeGone)) },
            );
            return self.cfg.cost.kcall_exit;
        }
        let pe = self.pe_of_vpe(recv).expect("recv vpe is local");
        let child_key = self.keys.alloc(pe, recv, key_type_for(&desc.kind));
        let cap = Capability::child(child_key, desc.kind, recv, CapSel::INVALID, desc.key);
        let insert_op = self.alloc_op();
        self.park(
            insert_op,
            PendingOp::Exchange(exchange::Phase::DelegatePendingInsert {
                caller_kernel: from,
                cap: Box::new(cap),
            }),
        );
        self.send_kreply(
            out,
            from,
            KReply::Resolved { op: reply_op, result: Ok((child_key, insert_op)) },
        );
        self.cfg.cost.cap_create + self.cfg.cost.kcall_exit
    }

    // ----- teardown and quiescence ------------------------------------

    /// Drops all promise state owned by a dying VPE. Parked eager ops
    /// whose consent verdict is still in flight are left to complete
    /// naturally (their resume handler notices the missing promise);
    /// ops whose verdict already arrived would otherwise never resume,
    /// so they are swept here, releasing B's pending state.
    pub(crate) fn teardown_promises(&mut self, vpe: VpeId, out: &mut Outbox) {
        self.async_pipeline_tail.remove(&vpe);
        if self.promises.is_empty() && self.async_execs.is_empty() {
            return;
        }
        let mut owned: Vec<u64> =
            self.promises.keys().copied().filter(|k| DdlKey::from_raw(*k).vpe() == vpe).collect();
        owned.sort_unstable();
        for key in &owned {
            self.promises.remove(key);
        }
        if !owned.is_empty() {
            self.promise_binds.retain(|(v, _), _| *v != vpe);
        }
        self.async_execs.retain(|(v, _), _| *v != vpe);
        let mut doomed: Vec<OpId> = self
            .pending
            .iter()
            .filter(|(_, state)| {
                matches!(state, PendingOp::Promise(Phase::ProvidePending(p))
                    if DdlKey::from_raw(p.promise).vpe() == vpe && p.consent.is_some())
            })
            .map(|(op, _)| op)
            .collect();
        doomed.sort_unstable_by_key(|op| op.0);
        for op in doomed {
            let Some(PendingOp::Promise(Phase::ProvidePending(p))) = self.pending.remove(op) else {
                unreachable!("collected above");
            };
            if let Some(Ok(b_op)) = p.consent {
                self.send_resolve_abort(p.peer_kernel, b_op, Error::new(Code::VpeGone), out);
            }
        }
    }

    /// True if `vpe` owns any promise (resolved or not). Promise state
    /// never migrates, so group migration refuses while this holds.
    pub(crate) fn vpe_has_promise_state(&self, vpe: VpeId) -> bool {
        !self.promises.is_empty() && self.promises.keys().any(|k| DdlKey::from_raw(*k).vpe() == vpe)
    }
}
