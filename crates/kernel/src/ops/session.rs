//! Service registration and session establishment on the op engine.
//!
//! Services register with `CreateSrv`; their kernel announces the
//! instance to every other kernel (inter-kernel call group 1/2, §4.1).
//! A client's `OpenSession` creates a **session capability as a child of
//! the service capability** — the paper's running example of a
//! cross-kernel capability relation (§3.4): the session capability is
//! owned by the *client's* kernel while its parent (the service
//! capability) may live at another kernel. Exactly one kernel owns each
//! resource; the child/parent link crosses the boundary via DDL keys.

use semper_base::msg::{CapKindDesc, KReply, Kcall, Payload, SysReplyData, Upcall};
use semper_base::{CapType, Code, DdlKey, Error, KernelId, Msg, OpId, Result, ServiceId, VpeId};
use semper_caps::Capability;

use crate::kernel::Kernel;
use crate::ops::{Awaits, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;
use crate::registry::ServiceInfo;

/// The session protocol's phase table.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Client side, remote service: awaiting `KReply::OpenSess`.
    OpenRemote {
        /// Tag of the initiating system call.
        tag: u64,
        /// The connecting client VPE.
        client: VpeId,
        /// Pre-allocated key of the session capability.
        child_key: DdlKey,
        /// The chosen service instance.
        srv: ServiceInfo,
    },
    /// Service side, on behalf of a remote client: awaiting the service
    /// VPE's upcall reply.
    AtService {
        /// The client kernel's correlation id (echo in reply).
        caller_op: OpId,
        /// The client's kernel.
        caller_kernel: KernelId,
        /// Key of the session capability (allocated by the caller).
        child_key: DdlKey,
        /// The service instance.
        srv: ServiceInfo,
    },
    /// Client and service in the same group: awaiting the service VPE's
    /// upcall reply.
    OpenLocal {
        /// Tag of the initiating system call.
        tag: u64,
        /// The connecting client VPE.
        client: VpeId,
        /// Pre-allocated key of the session capability.
        child_key: DdlKey,
        /// The service instance.
        srv: ServiceInfo,
    },
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::OpenRemote { .. } => &PhaseSpec {
                name: "open-sess-remote",
                awaits: Awaits::KReply,
                thread: Thread::Holds,
            },
            Phase::AtService { .. } => &PhaseSpec {
                name: "session-at-service",
                awaits: Awaits::UpcallReply,
                thread: Thread::Holds,
            },
            Phase::OpenLocal { .. } => &PhaseSpec {
                name: "session-local",
                awaits: Awaits::UpcallReply,
                thread: Thread::Holds,
            },
        }
    }

    /// True if resuming this phase would touch `vpe`'s capability
    /// group (see [`crate::ops::PendingOp::references_vpe`]).
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::OpenRemote { client, child_key, srv, .. }
            | Phase::OpenLocal { client, child_key, srv, .. } => {
                *client == vpe || child_key.vpe() == vpe || srv.srv_vpe == vpe
            }
            Phase::AtService { child_key, srv, .. } => child_key.vpe() == vpe || srv.srv_vpe == vpe,
        }
    }
}

impl Kernel {
    /// Request handler for [`Kcall::AnnounceService`]: records a remote
    /// service instance in the local registry.
    pub(crate) fn announce_service(&mut self, info: ServiceInfo) -> u64 {
        self.registry.add(info);
        0
    }

    /// Entry point for the `CreateSrv` system call.
    pub(crate) fn sys_create_srv(
        &mut self,
        vpe: VpeId,
        tag: u64,
        name: u64,
        out: &mut Outbox,
    ) -> u64 {
        let pe = self.pe_of_vpe(vpe).expect("caller is local");
        let srv_key = self.keys.alloc(pe, vpe, CapType::Service);
        // Service ids are globally unique without coordination: the
        // owning kernel's id in the high bits, a local count below.
        let local_count = self.registry.iter().filter(|s| s.owner == self.id).count() as u16;
        let id = ServiceId((self.id.0 << 8) | local_count);

        let table = self.tables.get_mut(&vpe).expect("caller is local");
        let sel = table.insert_new(srv_key);
        self.mapdb.insert(Capability::root(srv_key, CapKindDesc::Service { id }, vpe, sel));
        self.stats.caps_created += 1;
        if let Some(v) = self.vpes.get_mut(&vpe) {
            v.is_service = true;
        }

        let info = ServiceInfo { id, name, owner: self.id, srv_key, srv_pe: pe, srv_vpe: vpe };
        self.registry.add(info);

        // Announce to all other kernels. Announcements are startup
        // traffic with no reply; they bypass the request credit budget
        // (they use the boot channel, not the capability-protocol one).
        for k in 0..self.membership.kernel_count() {
            let k = KernelId(k as u16);
            if k == self.id {
                continue;
            }
            let dst = self.membership.kernel_pe(k);
            self.stats.kcalls_out += 1;
            out.push(Msg::new(
                self.pe,
                dst,
                Payload::kcall(Kcall::AnnounceService {
                    id,
                    name,
                    owner: self.id,
                    srv_key,
                    srv_pe: pe,
                    srv_vpe: vpe,
                }),
            ));
        }

        self.reply_sys(out, vpe, tag, Ok(SysReplyData::Sel(sel)));
        self.cfg.cost.cap_create + self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit
    }

    /// Entry point for the `OpenSession` system call (local start).
    pub(crate) fn sys_open_session(
        &mut self,
        vpe: VpeId,
        tag: u64,
        name: u64,
        out: &mut Outbox,
    ) -> u64 {
        let Some(srv) = self.registry.pick(name, self.id, vpe).copied() else {
            self.reply_sys(out, vpe, tag, Err(Error::new(Code::NoSuchService)));
            return self.cfg.cost.syscall_exit;
        };
        let client_pe = self.pe_of_vpe(vpe).expect("caller is local");
        // The session capability is created by the client's kernel; its
        // DDL key names the client as creator so ownership stays here.
        let child_key = self.keys.alloc(client_pe, vpe, CapType::Session);

        if srv.owner == self.id {
            // Service in our group: ask the service VPE directly.
            let op = self.alloc_op();
            self.send_upcall(
                out,
                srv.srv_pe,
                Upcall::SessionOpen { op, client_vpe: vpe, client_pe },
            );
            self.park(
                op,
                PendingOp::Session(Phase::OpenLocal { tag, client: vpe, child_key, srv }),
            );
            self.ref_cost()
        } else {
            let op = self.alloc_op();
            self.send_kcall(
                out,
                srv.owner,
                Kcall::OpenSessReq { op, child_key, service: srv.id, client_vpe: vpe },
            );
            self.park(
                op,
                PendingOp::Session(Phase::OpenRemote { tag, client: vpe, child_key, srv }),
            );
            self.ref_cost()
        }
    }

    /// Request handler for [`Kcall::OpenSessReq`]: validate the service
    /// instance, then fan out the notification upcall
    /// ([`Phase::AtService`]).
    pub(crate) fn open_sess_request(
        &mut self,
        from: KernelId,
        op: OpId,
        child_key: DdlKey,
        service: ServiceId,
        client_vpe: VpeId,
        out: &mut Outbox,
    ) -> u64 {
        let check = (|| -> Result<ServiceInfo> {
            let srv = *self.registry.get(service).ok_or(Error::new(Code::NoSuchService))?;
            if srv.owner != self.id || !self.vpe_alive(srv.srv_vpe) {
                return Err(Error::new(Code::NoSuchService));
            }
            if self.mapdb.get(srv.srv_key)?.revoking() {
                return Err(Error::new(Code::RevokeInProgress));
            }
            Ok(srv)
        })();
        match check {
            Err(e) => {
                self.send_kreply(out, from, KReply::OpenSess { op, result: Err(e) });
                self.cfg.cost.kcall_exit
            }
            Ok(srv) => {
                let my_op = self.alloc_op();
                let client_pe = self.pe_of_vpe(client_vpe).unwrap_or(semper_base::PeId(0));
                self.send_upcall(
                    out,
                    srv.srv_pe,
                    Upcall::SessionOpen { op: my_op, client_vpe, client_pe },
                );
                self.park(
                    my_op,
                    PendingOp::Session(Phase::AtService {
                        caller_op: op,
                        caller_kernel: from,
                        child_key,
                        srv,
                    }),
                );
                self.ref_cost()
            }
        }
    }

    /// Resumes [`Phase::OpenLocal`]: the service VPE answered the
    /// session-open upcall for a same-group client.
    pub(crate) fn session_local_accept(
        &mut self,
        tag: u64,
        client: VpeId,
        child_key: DdlKey,
        srv: ServiceInfo,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Err(e) => {
                self.reply_sys(out, client, tag, Err(e));
                self.cfg.cost.syscall_exit
            }
            Ok(ident) => {
                if !self.vpe_alive(client) {
                    // Client died while the service was deciding;
                    // nothing inserted yet.
                    return 0;
                }
                let sel = self.insert_session(client, child_key, srv, ident, true);
                self.stats.sessions_opened += 1;
                self.reply_sys(
                    out,
                    client,
                    tag,
                    Ok(SysReplyData::Session { sel, srv_pe: srv.srv_pe, ident }),
                );
                self.cfg.cost.cap_create
                    + self.cfg.cost.cap_insert
                    + self.cfg.cost.session_accept
                    + self.cfg.cost.syscall_exit
            }
        }
    }

    /// Resumes [`Phase::AtService`]: the service VPE answered the upcall
    /// for a remote client; link the session capability under the
    /// service capability before replying — the same ordering obtain
    /// uses.
    pub(crate) fn session_service_accept(
        &mut self,
        caller_op: OpId,
        caller_kernel: KernelId,
        child_key: DdlKey,
        srv: ServiceInfo,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        let reply = match result {
            Err(e) => Err(e),
            Ok(ident) => {
                self.mapdb
                    .link_child(srv.srv_key, child_key)
                    .expect("service capability checked at request time");
                Ok(ident)
            }
        };
        self.send_kreply(out, caller_kernel, KReply::OpenSess { op: caller_op, result: reply });
        self.ref_cost() + self.cfg.cost.cap_insert + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::OpenRemote`]: client-side completion of a remote
    /// session open.
    pub(crate) fn open_sess_reply(
        &mut self,
        tag: u64,
        client: VpeId,
        child_key: DdlKey,
        srv: ServiceInfo,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Err(e) => {
                self.reply_sys(out, client, tag, Err(e));
                self.cfg.cost.syscall_exit
            }
            Ok(ident) => {
                if !self.vpe_alive(client) {
                    // Orphaned session: unlink at the service's kernel.
                    self.send_kcall(
                        out,
                        srv.owner,
                        Kcall::OrphanNotice { parent_key: srv.srv_key, child_key },
                    );
                    return self.cfg.cost.kcall_exit;
                }
                let sel = self.insert_session(client, child_key, srv, ident, false);
                self.stats.sessions_opened += 1;
                self.stats.exchanges_spanning += 1;
                self.reply_sys(
                    out,
                    client,
                    tag,
                    Ok(SysReplyData::Session { sel, srv_pe: srv.srv_pe, ident }),
                );
                self.cfg.cost.cap_create + self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit
            }
        }
    }

    /// Builds and inserts a session capability for `client`. For local
    /// services the parent link is registered immediately; for remote
    /// services the owning kernel linked it before replying.
    fn insert_session(
        &mut self,
        client: VpeId,
        child_key: DdlKey,
        srv: ServiceInfo,
        ident: u64,
        link_local_parent: bool,
    ) -> semper_base::CapSel {
        let table = self.tables.get_mut(&client).expect("alive client has table");
        let sel = table.insert_new(child_key);
        self.mapdb.insert(Capability::child(
            child_key,
            CapKindDesc::Session { service: srv.id, ident },
            client,
            sel,
            srv.srv_key,
        ));
        self.stats.caps_created += 1;
        if link_local_parent {
            self.mapdb.link_child(srv.srv_key, child_key).expect("local service capability exists");
        }
        sel
    }
}
