//! Revocation on the op engine: two-phase mark-and-sweep (§4.3.3,
//! Algorithm 1).
//!
//! Phase 1 (*mark*) walks the local part of the capability subtree,
//! marking every capability `Revoking` and firing one inter-kernel
//! revoke request per remote child. Phase 2 (*sweep*) runs when the
//! operation's [`FanIn`] drains: the marked subtrees are deleted, and
//! only then is the initiator notified — a revoke is never acknowledged
//! while any part of its subtree survives (ruling out the *incomplete*
//! case of Table 2).
//!
//! Two kinds of completions are armed on the fan-in:
//!
//! * replies to inter-kernel revoke requests for remote children, and
//! * *dependencies* on concurrently running revocations: when the mark
//!   phase encounters a capability that is already `Revoking`, the
//!   running operation owns that subtree; the new operation registers as
//!   a waiter and completes only after the capability is actually
//!   deleted. This is how overlapping revokes serialize without ever
//!   acknowledging early. The dependency graph follows tree edges, so it
//!   is acyclic — no deadlock (the property the paper's multithreading
//!   design establishes; our event-driven kernel inherits it).
//!
//! Revocations triggered by applications can bounce between kernels (the
//! adversarial cross-kernel *chain* of §5.2); each bounce is a fresh
//! request handled without blocking, so kernels stay responsive — the
//! analogue of the paper's two-revocation-threads bound.

use semper_base::config::Feature;
use semper_base::msg::{KReply, Kcall, SysReplyData};
use semper_base::{
    CapSel, Code, DdlKey, DetHashSet, Error, KernelId, OpId, RawDdlKey, Result, VpeId,
};
use semper_caps::Capability;

use crate::kernel::Kernel;
use crate::ops::{sweep, Awaits, FanIn, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;

/// Reusable host-side work buffers for the revocation paths.
///
/// A dense teardown runs thousands of mark walks and sweeps back to
/// back; allocating a fresh stack, deletion list, and remote-child list
/// for each of them dominated the *host* wall clock of the
/// `dense_table_teardown` benchmark without changing any modeled cycle.
/// The buffers live on the kernel and are taken/restored around each
/// use (`std::mem::take`), so re-entrant completions — a revoke's
/// notification advancing a batch, which starts the next revoke — each
/// see an empty buffer and restores stay balanced.
#[derive(Debug, Default)]
pub(crate) struct RevokeScratch {
    /// DFS stack shared by mark and delete walks.
    pub(crate) stack: Vec<DdlKey>,
    /// Deleted capabilities of one sweep, processed in one batched pass.
    pub(crate) deleted: Vec<Capability>,
    /// Remote children collected by one mark phase.
    pub(crate) remote: Vec<(KernelId, DdlKey)>,
    /// Waiters woken by one sweep.
    pub(crate) woken: Vec<OpId>,
    /// Keys marked by the current operation (overlapping-root folding).
    pub(crate) marked: DetHashSet<RawDdlKey>,
}

/// An operation whose fan-in drained and is ready to run its completion
/// step. The shared worklist in [`Kernel::run_ready`] bounds the
/// cascade of wake-ups (a completed revoke wakes dependents, whose
/// completions wake more) that recursion would otherwise nest.
#[derive(Debug)]
pub(crate) enum ReadyOp {
    /// A classic revocation: sweep its marked subtrees and notify.
    Revoke(OpId, RevokeOp),
    /// A parallel-sweep coordinator whose mark phase finished: order
    /// the partition deletions ([`Kernel::sweep_begin_delete`]).
    SweepCoord(OpId),
    /// A sweep partition whose delete order arrived and whose
    /// dependencies drained ([`Kernel::sweep_part_finish`]).
    SweepPart(OpId),
}

/// Who started a revocation, and therefore who must be notified when it
/// completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Initiator {
    /// A local VPE's revoke system call.
    Syscall {
        /// The calling VPE.
        vpe: VpeId,
        /// Tag to echo in the reply.
        tag: u64,
    },
    /// Another kernel's [`Kcall::RevokeReq`].
    Kcall {
        /// The requester's correlation id, echoed in the reply.
        op: OpId,
        /// The requesting kernel.
        from: KernelId,
        /// The subtree root the request named.
        cap_key: DdlKey,
    },
    /// Kernel-internal cleanup (VPE exit); nobody to notify.
    Internal,
    /// One entry of a batched revoke request; completion is reported to
    /// the batch tracker op instead of a kernel.
    Batch {
        /// The local batch-tracker operation.
        batch: OpId,
    },
    /// A coalesced run of consecutive `Revoke` items of a local VPE's
    /// [`Syscall::Batch`](semper_base::msg::Syscall::Batch): one
    /// combined operation covering all the run's subtree roots, with
    /// cross-kernel requests grouped per destination kernel (see
    /// [`crate::ops::bulk`]). Completion reports to the batch op, which
    /// resolves the run's items.
    Bulk {
        /// The local batch operation.
        batch: OpId,
        /// First item index of the coalesced run.
        first_item: u32,
        /// Number of items in the run.
        items: u32,
    },
}

/// A revocation in progress (Algorithm 1 state).
#[derive(Debug, Clone)]
pub struct RevokeOp {
    /// Who to notify on completion.
    pub initiator: Initiator,
    /// Outstanding completions (inter-kernel revoke replies plus
    /// dependencies on concurrent revokes), tallying capabilities
    /// deleted on behalf of this operation.
    pub fanin: FanIn,
    /// Roots of locally marked subtrees to sweep in phase 2.
    pub local_roots: Vec<DdlKey>,
    /// True if any inter-kernel call was needed (statistics:
    /// local vs spanning revoke).
    pub spanning: bool,
}

/// The revocation protocol's phase table.
#[derive(Debug, Clone)]
pub enum Phase {
    /// A revocation awaiting its fan-in (remote completions and
    /// concurrent-revoke dependencies).
    Run(RevokeOp),
    /// Tracker for an incoming batched revoke request: replies to the
    /// requesting kernel once every key in the batch is fully revoked.
    Batch {
        /// The requester's correlation id.
        caller_op: OpId,
        /// The requesting kernel.
        caller_kernel: KernelId,
        /// Keys from the request (echoed in the reply).
        cap_keys: Vec<DdlKey>,
        /// Sub-revokes still running, tallying deletions across the
        /// batch.
        fanin: FanIn,
    },
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::Run(_) => &PhaseSpec {
                name: "revoke-run",
                awaits: Awaits::FanIn,
                thread: Thread::PerInitiator,
            },
            Phase::Batch { .. } => {
                &PhaseSpec { name: "revoke-batch", awaits: Awaits::FanIn, thread: Thread::Free }
            }
        }
    }

    /// True if resuming this phase would touch `vpe`'s capability
    /// group (see [`crate::ops::PendingOp::references_vpe`]). Roots
    /// already marked locally are also caught by the migration start's
    /// table validation (`revoking()`); this covers the initiator and
    /// the batch echo keys.
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::Run(op) => {
                let initiator = match op.initiator {
                    Initiator::Syscall { vpe: v, .. } => v == vpe,
                    Initiator::Kcall { cap_key, .. } => cap_key.vpe() == vpe,
                    Initiator::Internal | Initiator::Batch { .. } | Initiator::Bulk { .. } => false,
                };
                initiator || op.local_roots.iter().any(|k| k.vpe() == vpe)
            }
            Phase::Batch { cap_keys, .. } => cap_keys.iter().any(|k| k.vpe() == vpe),
        }
    }
}

impl Kernel {
    /// Entry point for the `Revoke` system call (local start).
    pub(crate) fn sys_revoke(
        &mut self,
        vpe: VpeId,
        tag: u64,
        sel: CapSel,
        own: bool,
        out: &mut Outbox,
    ) -> u64 {
        // Target resolution is folded into the per-capability reference
        // costs charged by the mark phase.
        let resolve = 0;
        let roots = match self.revoke_roots(vpe, sel, own) {
            Ok(r) => r,
            Err(e) => {
                self.reply_sys(out, vpe, tag, Err(e));
                return resolve + self.cfg.cost.syscall_exit;
            }
        };
        if roots.is_empty() {
            // Revoking the children of a childless capability: done.
            self.stats.revokes_local += 1;
            self.reply_sys(out, vpe, tag, Ok(SysReplyData::None));
            return resolve + self.cfg.cost.syscall_exit;
        }
        resolve + self.start_revoke(roots, Initiator::Syscall { vpe, tag }, out)
    }

    /// Resolves the subtree roots of a revoke call: the capability itself
    /// (`own = true`) or each of its children (`own = false`).
    pub(crate) fn revoke_roots(&self, vpe: VpeId, sel: CapSel, own: bool) -> Result<Vec<DdlKey>> {
        let key = self.tables.get(&vpe).ok_or(Error::new(Code::NoSuchVpe))?.get(sel)?;
        if own {
            return Ok(vec![key]);
        }
        Ok(self.mapdb.get(key)?.children().collect())
    }

    /// Revocation for VPE exit: one root at a time; the table entry may
    /// already be gone if an earlier root's subtree covered it.
    pub(crate) fn revoke_for_exit(&mut self, vpe: VpeId, sel: CapSel, out: &mut Outbox) -> u64 {
        let Some(table) = self.tables.get(&vpe) else { return 0 };
        let Ok(key) = table.get(sel) else { return 0 };
        if !self.mapdb.contains(key) {
            // Deleted by a previous root's sweep; drop the stale binding.
            if let Some(t) = self.tables.get_mut(&vpe) {
                t.remove(sel);
            }
            return 0;
        }
        self.start_revoke(vec![key], Initiator::Internal, out)
    }

    /// Phase 1 (mark) for a set of subtree roots; completes immediately
    /// if the fan-in stays idle (no remote children, no dependencies).
    pub(crate) fn start_revoke(
        &mut self,
        roots: Vec<DdlKey>,
        initiator: Initiator,
        out: &mut Outbox,
    ) -> u64 {
        let op_id = self.alloc_op();
        let mut op =
            RevokeOp { initiator, fanin: FanIn::new(), local_roots: Vec::new(), spanning: false };
        let mut cost = 0;
        // Remote children grouped by owning kernel, for optional batching.
        let mut remote = std::mem::take(&mut self.scratch.remote);
        debug_assert!(remote.is_empty());
        // A coalesced bulk run may name overlapping roots (duplicates,
        // or one root inside another root's subtree). Keys this call
        // marked itself are tracked so a later root that is already
        // `Revoking` *by us* folds into the earlier subtree instead of
        // registering a dependency on itself — which would deadlock.
        // Single-root operations (every non-bulk path) skip the
        // tracking — except under [`Feature::ParallelSweep`], where the
        // marked set is always kept: if the operation converts into a
        // partitioned sweep, the coordinator needs it to fold later
        // frontier keys that bounce back into its own marked region.
        // (For operations that never revisit a node — every single-root
        // walk — the set is dead weight with no modeled cost.)
        let parallel = self.cfg.has_feature(Feature::ParallelSweep);
        let mut marked: Option<DetHashSet<RawDdlKey>> = match (&initiator, roots.len(), parallel) {
            (Initiator::Bulk { .. }, n, _) if n > 1 => Some(Default::default()),
            (_, _, true) => {
                let mut m = std::mem::take(&mut self.scratch.marked);
                m.clear();
                Some(m)
            }
            _ => None,
        };

        for root in roots {
            if !self.mapdb.contains(root) {
                // Already revoked and deleted — vacuously complete.
                continue;
            }
            if self.mapdb.get(root).expect("checked").revoking() {
                if marked.as_ref().is_some_and(|m| m.contains(&root.raw())) {
                    // Covered by an earlier root of this same operation.
                    continue;
                }
                // A running revocation owns this subtree: wait for the
                // capability to be deleted.
                self.revoke_waiters.entry(root.raw()).or_default().push(op_id);
                op.fanin.arm();
                continue;
            }
            cost += self.mark_subtree(root, op_id, &mut op, &mut remote, marked.as_mut());
            op.local_roots.push(root);
        }

        if !remote.is_empty() {
            op.spanning = true;
            // A wide or multi-kernel fan-out is driven as a partitioned
            // parallel sweep when the feature is on: one grouped mark
            // request per owning kernel, swept concurrently.
            let first = remote[0].0;
            if parallel
                && (remote.len() >= sweep::SWEEP_MIN_FANOUT
                    || remote.iter().any(|(k, _)| *k != first))
            {
                let marked = marked.take().expect("tracked whenever the feature is on");
                let c = self.start_sweep(op_id, op, &mut remote, marked, out);
                self.scratch.remote = remote;
                return cost + c;
            }
            cost += self.send_revoke_requests(op_id, &mut op, &mut remote, out);
        }

        // Restore the scratch buffers before the completion path: the
        // initiator's notification can re-enter `start_revoke` (a batch
        // advancing to its next item).
        self.scratch.remote = remote;
        if let Some(m) = marked {
            self.scratch.marked = m;
        }

        if op.fanin.idle() {
            cost + self.complete_revoke(op_id, op, out)
        } else {
            self.park(op_id, PendingOp::Revoke(Phase::Run(op)));
            cost + self.cfg.cost.thread_switch
        }
    }

    /// Depth-first mark of the local subtree under `root` (which must be
    /// present and not yet revoking). Remote children are collected;
    /// already-revoking capabilities become dependencies — unless this
    /// same operation marked them (`marked`, coalesced bulk runs only),
    /// in which case they are already covered.
    fn mark_subtree(
        &mut self,
        root: DdlKey,
        op_id: OpId,
        op: &mut RevokeOp,
        remote: &mut Vec<(KernelId, DdlKey)>,
        mut marked: Option<&mut DetHashSet<RawDdlKey>>,
    ) -> u64 {
        let mut cost = 0;
        let mut stack = std::mem::take(&mut self.scratch.stack);
        debug_assert!(stack.is_empty());
        stack.push(root);
        while let Some(key) = stack.pop() {
            let Ok(cap) = self.mapdb.get(key) else {
                // Not ours: a remote child — one reference to classify it.
                cost += self.ref_cost();
                remote.push((self.membership.kernel_of_key(key), key));
                continue;
            };
            // Following the parent link and scanning the child list are
            // two capability references per visited local node.
            cost += 2 * self.ref_cost();
            if cap.revoking() {
                debug_assert_ne!(key, root, "caller checked the root");
                if marked.as_ref().is_some_and(|m| m.contains(&key.raw())) {
                    // Marked by an earlier root of this same operation
                    // (a bulk run revoking a child before its ancestor).
                    continue;
                }
                // Another operation owns this subtree; depend on it.
                self.revoke_waiters.entry(key.raw()).or_default().push(op_id);
                op.fanin.arm();
                continue;
            }
            for child in cap.children().rev() {
                stack.push(child);
            }
            self.mapdb.mark_revoking(key).expect("present");
            if let Some(m) = marked.as_deref_mut() {
                m.insert(key.raw());
            }
            cost += self.cfg.cost.revoke_mark;
        }
        self.scratch.stack = stack;
        cost
    }

    /// Sends revoke requests for remote children — one message per child,
    /// or one batch per kernel when [`Feature::RevokeBatching`] is on
    /// (the optimisation §5.2 proposes). Bulk-initiated operations
    /// ([`Initiator::Bulk`]) always group per kernel: coalescing the
    /// cross-kernel fan-out is the point of batching the system calls.
    fn send_revoke_requests(
        &mut self,
        op_id: OpId,
        op: &mut RevokeOp,
        remote: &mut Vec<(KernelId, DdlKey)>,
        out: &mut Outbox,
    ) -> u64 {
        let mut cost = 0;
        if self.cfg.has_feature(Feature::RevokeBatching)
            || matches!(op.initiator, Initiator::Bulk { .. })
        {
            let mut by_kernel: std::collections::BTreeMap<KernelId, Vec<DdlKey>> =
                std::collections::BTreeMap::new();
            for (k, key) in remote.drain(..) {
                by_kernel.entry(k).or_default().push(key);
            }
            for (k, cap_keys) in by_kernel {
                op.fanin.arm();
                cost += self.cfg.cost.kcall_exit;
                let call = Kcall::RevokeBatchReq { op: op_id, cap_keys };
                self.record_retry_leg(op_id, k, &call);
                self.send_kcall(out, k, call);
            }
        } else {
            for (k, cap_key) in remote.drain(..) {
                op.fanin.arm();
                // Marshalling one revoke request: compose the message,
                // inject it through the DTU, and record the outstanding
                // entry. Requests are pipelined: each leaves as the loop
                // reaches it, so remote kernels overlap with the rest of
                // the fan-out.
                cost +=
                    self.cfg.cost.kcall_exit + self.cfg.cost.revoke_mark + self.cfg.cost.dtu_send;
                let call = Kcall::RevokeReq { op: op_id, cap_key };
                self.record_retry_leg(op_id, k, &call);
                self.send_kcall_pipelined(out, k, call, cost);
            }
        }
        cost
    }

    /// Phase 2: sweep the marked local subtrees, fire waiters, notify the
    /// initiator. Completion of waiters can cascade; a worklist keeps the
    /// recursion bounded. Also the fault engine's forced-completion path
    /// for a revoke whose remote legs stopped answering.
    pub(crate) fn complete_revoke(&mut self, op_id: OpId, op: RevokeOp, out: &mut Outbox) -> u64 {
        self.run_ready(vec![ReadyOp::Revoke(op_id, op)], out)
    }

    /// Runs completion steps from a worklist until it drains: classic
    /// revokes sweep and notify; sweep coordinators order their
    /// partition deletions; sweep partitions delete and reply. Each step
    /// may push further ready operations (woken dependents). LIFO order
    /// matches the pre-sweep completion cascade exactly.
    pub(crate) fn run_ready(&mut self, mut ready: Vec<ReadyOp>, out: &mut Outbox) -> u64 {
        let mut cost = 0;
        while let Some(r) = ready.pop() {
            match r {
                ReadyOp::Revoke(id, op) => cost += self.finish_one_revoke(id, op, &mut ready, out),
                ReadyOp::SweepCoord(id) => cost += self.sweep_begin_delete(id, out),
                ReadyOp::SweepPart(id) => cost += self.sweep_part_finish(id, out),
            }
        }
        cost
    }

    /// Sweeps one classic revocation's marked subtrees in a single
    /// batched pass, notifies the initiator, and queues woken waiters.
    fn finish_one_revoke(
        &mut self,
        _id: OpId,
        mut op: RevokeOp,
        ready: &mut Vec<ReadyOp>,
        out: &mut Outbox,
    ) -> u64 {
        let mut cost = 0;
        let mut stack = std::mem::take(&mut self.scratch.stack);
        let mut deleted = std::mem::take(&mut self.scratch.deleted);
        let mut woken = std::mem::take(&mut self.scratch.woken);
        debug_assert!(deleted.is_empty() && woken.is_empty());
        for root in std::mem::take(&mut op.local_roots) {
            self.mapdb.delete_local_subtree_into(root, &mut stack, &mut deleted);
        }
        op.fanin.add(deleted.len() as u64);
        cost += self.sweep_deleted(&mut deleted, &mut woken);
        cost += self.cfg.cost.revoke_finish;
        self.notify_initiator(op.initiator, op.spanning, op.fanin.tally(), out);
        for waiter in woken.drain(..) {
            self.wake_waiter(waiter, ready);
        }
        self.scratch.stack = stack;
        self.scratch.deleted = deleted;
        self.scratch.woken = woken;
        cost
    }

    /// Processes a batch of deleted capabilities: per-capability cost
    /// and endpoint invalidation, waiter collection, and the owners'
    /// table bindings removed with **one table lookup per run of
    /// consecutive same-owner capabilities** — the batched host-side
    /// dispatch that a dense teardown (thousands of same-table
    /// capabilities) collapses into a handful of lookups. Clears
    /// `deleted`; waiters are appended to `woken` for the caller to
    /// fire (or defer, for partitioned sweeps).
    pub(crate) fn sweep_deleted(
        &mut self,
        deleted: &mut Vec<Capability>,
        woken: &mut Vec<OpId>,
    ) -> u64 {
        let mut cost = 0;
        for cap in deleted.iter() {
            self.stats.caps_deleted += 1;
            // Each deletion resolves the owner's table binding and the
            // parent unlink through DDL keys, and deconfigures any DTU
            // endpoint activated for the capability — the step that
            // severs hardware access.
            cost += self.cfg.cost.revoke_delete + 2 * self.ref_cost();
            cost += self.invalidate_eps_for(cap.key);
            // Wake operations waiting for this capability.
            if let Some(ws) = self.revoke_waiters.remove(&cap.key.raw()) {
                woken.extend(ws);
            }
        }
        // Remove the owners' table bindings, grouped by run.
        let mut i = 0;
        while i < deleted.len() {
            let owner = deleted[i].owner;
            let mut table = self.tables.get_mut(&owner);
            while i < deleted.len() && deleted[i].owner == owner {
                if let Some(t) = table.as_deref_mut() {
                    t.remove_key(deleted[i].key);
                }
                i += 1;
            }
        }
        deleted.clear();
        cost
    }

    /// Resolves one woken waiter: a classic revoke's fan-in completes;
    /// a sweep coordinator or partition drops a dependency. Operations
    /// whose last wait drained are pushed onto the ready worklist.
    pub(crate) fn wake_waiter(&mut self, waiter: OpId, ready: &mut Vec<ReadyOp>) {
        match self.pending.get_mut(waiter) {
            Some(PendingOp::Revoke(Phase::Run(wop))) => {
                if wop.fanin.complete_one(0) {
                    let Some(PendingOp::Revoke(Phase::Run(wop))) = self.pending.remove(waiter)
                    else {
                        unreachable!("checked above");
                    };
                    ready.push(ReadyOp::Revoke(waiter, wop));
                }
            }
            Some(PendingOp::Sweep(sweep::Phase::Coordinate(s))) => {
                // Saturating: a fault-forced coordinator abort zeroes
                // `deps` while registered wakes are still due.
                s.deps = s.deps.saturating_sub(1);
                if s.deps == 0 && s.marks_outstanding == 0 {
                    ready.push(ReadyOp::SweepCoord(waiter));
                }
            }
            Some(PendingOp::Sweep(sweep::Phase::Partition(p))) => {
                p.deps = p.deps.saturating_sub(1);
                if p.deps == 0 && p.delete_requested {
                    ready.push(ReadyOp::SweepPart(waiter));
                }
            }
            // Under fault injection: the waiter aborted (or was forced
            // to completion) before its wake arrived.
            _ => self.fault_anomaly(&format!("waiter {waiter} is not a pending revoke")),
        }
    }

    /// Notifies whoever started a revocation (Algorithm 1, lines
    /// 19-23) — shared by classic revokes and partitioned sweeps.
    pub(crate) fn notify_initiator(
        &mut self,
        initiator: Initiator,
        spanning: bool,
        deleted: u64,
        out: &mut Outbox,
    ) {
        // Only top-level revocations count as capability operations;
        // kcall- and batch-initiated sub-revokes are part of a revoke
        // already counted at the initiating kernel.
        match initiator {
            Initiator::Syscall { .. } | Initiator::Internal => {
                if spanning {
                    self.stats.revokes_spanning += 1;
                } else {
                    self.stats.revokes_local += 1;
                }
            }
            // Bulk runs count one revocation per *item*, recorded when
            // the items resolve (see `Kernel::bulk_revokes_done`).
            Initiator::Kcall { .. } | Initiator::Batch { .. } | Initiator::Bulk { .. } => {}
        }
        match initiator {
            Initiator::Syscall { vpe, tag } => {
                self.reply_sys(out, vpe, tag, Ok(SysReplyData::None));
            }
            Initiator::Kcall { op: caller_op, from, cap_key } => {
                self.send_kreply(
                    out,
                    from,
                    KReply::Revoke { op: caller_op, cap_key, deleted, result: Ok(()) },
                );
            }
            Initiator::Internal => {}
            Initiator::Batch { batch } => {
                self.batch_entry_done(batch, deleted, out);
            }
            Initiator::Bulk { batch, first_item, items } => {
                self.bulk_revokes_done(batch, first_item, items, spanning, out);
            }
        }
    }

    /// Accounts one completed entry of an incoming revoke batch; replies
    /// to the requesting kernel when the whole batch is done.
    fn batch_entry_done(&mut self, batch: OpId, deleted: u64, out: &mut Outbox) {
        let Some(PendingOp::Revoke(Phase::Batch { caller_op, caller_kernel, cap_keys, fanin })) =
            self.pending.get_mut(batch)
        else {
            // Under fault injection: the batch tracker already aborted
            // (replied with its partial tally); drop the late entry.
            self.fault_anomaly(&format!("batch tracker {batch} missing"));
            return;
        };
        if fanin.complete_one(deleted) {
            let (caller_op, caller_kernel, cap_keys, total) =
                (*caller_op, *caller_kernel, std::mem::take(cap_keys), fanin.tally());
            self.pending.remove(batch);
            self.send_kreply(
                out,
                caller_kernel,
                KReply::RevokeBatch { op: caller_op, cap_keys, deleted: total, result: Ok(()) },
            );
        }
    }

    // ----- incoming inter-kernel revokes ---------------------------------

    /// Request handler for [`Kcall::RevokeReq`]: one subtree root owned
    /// by this kernel (Algorithm 1, `receive_revoke_request`).
    pub(crate) fn revoke_request(
        &mut self,
        from: KernelId,
        op: OpId,
        cap_key: DdlKey,
        out: &mut Outbox,
    ) -> u64 {
        if !self.mapdb.contains(cap_key) {
            // Already gone (e.g. revoked by a concurrent operation that
            // completed): vacuously done.
            self.send_kreply(out, from, KReply::Revoke { op, cap_key, deleted: 0, result: Ok(()) });
            return self.cfg.cost.kcall_exit;
        }
        // Validating the foreign key against the membership table and
        // setting up the remote-initiated operation costs one descriptor
        // validation plus a reference.
        self.cfg.cost.xfer_desc
            + self.ref_cost()
            + self.start_revoke(vec![cap_key], Initiator::Kcall { op, from, cap_key }, out)
    }

    /// Request handler for [`Kcall::RevokeBatchReq`]: runs one
    /// sub-revocation per key and replies once all of them completed.
    pub(crate) fn revoke_batch_request(
        &mut self,
        from: KernelId,
        op: OpId,
        cap_keys: &[DdlKey],
        out: &mut Outbox,
    ) -> u64 {
        let batch = self.alloc_op();
        // Every key gets a sub-revoke; each reports exactly once.
        let mut fanin = FanIn::new();
        fanin.arm_n(cap_keys.len() as u32);
        self.park(
            batch,
            PendingOp::Revoke(Phase::Batch {
                caller_op: op,
                caller_kernel: from,
                cap_keys: cap_keys.to_vec(),
                fanin,
            }),
        );
        let mut cost = 0;
        for key in cap_keys {
            if !self.mapdb.contains(*key) {
                let owner = self.membership.kernel_of_key(*key);
                if owner != self.id {
                    // The key's group migrated away after the sender
                    // partitioned the batch: chain this entry to the
                    // current owner; its reply completes the entry.
                    let call = Kcall::RevokeReq { op: batch, cap_key: *key };
                    self.record_retry_leg(batch, owner, &call);
                    self.send_kcall(out, owner, call);
                    cost += self.cfg.cost.kcall_exit;
                    continue;
                }
                // Already gone (e.g. revoked by a concurrent operation
                // that completed): vacuously done.
                self.batch_entry_done(batch, 0, out);
                continue;
            }
            cost += self.start_revoke(vec![*key], Initiator::Batch { batch }, out);
        }
        cost
    }

    /// Completion handler for [`KReply::Revoke`] and
    /// [`KReply::RevokeBatch`]: decrements the operation's fan-in
    /// (Algorithm 1, `receive_revoke_reply`) and sweeps when it drains.
    pub(crate) fn revoke_reply_arrived(&mut self, op: OpId, deleted: u64, out: &mut Outbox) -> u64 {
        match self.pending.get_mut(op) {
            Some(PendingOp::Revoke(Phase::Run(rop))) => {
                if rop.fanin.complete_one(deleted) {
                    let Some(PendingOp::Revoke(Phase::Run(rop))) = self.pending.remove(op) else {
                        unreachable!("checked above");
                    };
                    self.complete_revoke(op, rop, out)
                } else {
                    // Decrementing the outstanding counter (Algorithm
                    // 1's `receive_revoke_reply` fast path) is
                    // essentially free.
                    0
                }
            }
            // A batch entry chained to another kernel (its key's group
            // migrated away) completed remotely.
            Some(PendingOp::Revoke(Phase::Batch { .. })) => {
                self.batch_entry_done(op, deleted, out);
                0
            }
            _ => {
                // Under fault injection: a duplicated reply, or a
                // straggler leg of an op that already aborted.
                self.fault_anomaly(&format!("revoke reply for unknown op {op}"));
                0
            }
        }
    }
}
