//! Fault tolerance for the ops engine
//! ([`Feature::FaultInjection`](semper_base::config::Feature::FaultInjection)).
//!
//! A lossy NoC (see `semper_sim::faults`) breaks the engine's core
//! assumption that every request eventually produces exactly one reply.
//! This module hardens the pending-op ledger so that under any
//! `FaultPlan` every operation still **terminates**: it either completes
//! normally or aborts with a real `Err` — never a silent hang, never a
//! leaked ledger entry.
//!
//! Three mechanisms, all inert unless [`Kernel::enable_fault_injection`]
//! was called (so the default configuration stays bit-identical):
//!
//! * **Deadlines.** Every parked phase (except the purely local batch
//!   tracker) is armed with an expiry on the harness-advanced fault
//!   clock. [`Kernel::poll_faults`] first re-sends recorded idempotent
//!   request legs (bounded retries — revoke and sweep-delete requests
//!   are safe to replay because re-revoking a deleted subtree is
//!   vacuous), then aborts the op: the ledger entry is reaped, held
//!   threads release, and whoever waits is woken with an error.
//! * **Peer death.** When the harness declares a kernel crashed
//!   ([`Kernel::peer_down`]), every in-flight op waiting on that peer
//!   aborts immediately, and queued requests towards it are dropped.
//! * **Anomaly absorption.** Duplicated messages produce replies for
//!   ops that already completed, duplicate fan-in completions, and
//!   duplicate delete orders. Outside fault mode these are hard bugs
//!   (debug asserts); under fault mode they are counted in
//!   `stats.fault_anomalies` and ignored.
//!
//! Abort is per-phase surgery, not a generic drop: a revocation that
//! already marked subtrees must still *sweep* them (leaving `Revoking`
//! marks behind would wedge every later operation that touches them),
//! a sweep coordinator force-runs its delete phase, and a migration
//! abort unwinds through the protocol's own failure path so held
//! operations replay.

use semper_base::msg::{KReply, Kcall};
use semper_base::{Code, DetHashMap, Error, KernelId, OpId};

use crate::kernel::Kernel;
use crate::ops::revoke::ReadyOp;
use crate::ops::{exchange, migrate, promise, revoke, session, sweep, PendingOp};
use crate::outbox::Outbox;

/// How many times an expired op re-sends its recorded request legs
/// before aborting.
const MAX_LEG_RETRIES: u32 = 2;

/// Recorded idempotent request legs of one pending op, re-sent when its
/// deadline expires.
#[derive(Debug, Default)]
pub(crate) struct RetryLegs {
    /// Deadline expiries spent on re-sending so far.
    attempts: u32,
    /// The legs: destination kernel and the exact request.
    legs: Vec<(KernelId, Kcall)>,
}

/// Per-kernel fault-tolerance state. Default-constructed (inert) unless
/// fault injection is enabled for the run.
#[derive(Debug, Default)]
pub struct FaultState {
    /// True once [`Kernel::enable_fault_injection`] ran.
    pub(crate) enabled: bool,
    /// Cycle/step budget granted to each parked phase (0 = no
    /// deadlines).
    pub(crate) deadline_budget: u64,
    /// The harness-advanced fault clock (last `poll_faults` time).
    pub(crate) now: u64,
    /// Scripted crash points: remaining parks per phase name; the
    /// kernel dies when one reaches zero.
    pub(crate) crash_script: Vec<(&'static str, u32)>,
    /// True once a scripted crash point fired; the harness checks this
    /// after every dispatch and discards the crashed handler's output.
    pub(crate) crashed: bool,
    /// Expiry tick per pending op.
    pub(crate) deadlines: DetHashMap<OpId, u64>,
    /// Re-sendable request legs per pending op.
    pub(crate) retry_legs: DetHashMap<OpId, RetryLegs>,
    /// Peer kernels declared dead by the harness.
    pub(crate) dead_peers: Vec<KernelId>,
}

impl Kernel {
    /// Switches this kernel into fault-tolerant operation: arms
    /// per-pending-op deadlines of `deadline_budget` fault-clock ticks
    /// and softens the duplicate-message asserts into counters. The
    /// harness must then advance the clock via [`Kernel::poll_faults`].
    pub fn enable_fault_injection(&mut self, deadline_budget: u64) {
        self.enable_feature_for_test(semper_base::Feature::FaultInjection);
        self.fault.enabled = true;
        self.fault.deadline_budget = deadline_budget;
    }

    /// Installs this kernel's scripted crash points (phase name and
    /// which park of that phase triggers the crash), from
    /// `FaultPlan::crash_points`.
    pub fn arm_crash_points(&mut self, points: Vec<(&'static str, u32)>) {
        self.fault.crash_script = points;
    }

    /// True once a scripted crash point fired. The harness treats the
    /// kernel as dead from the dispatch that tripped it: that handler's
    /// outbox is discarded and all later traffic to the island drops.
    pub fn crashed(&self) -> bool {
        self.fault.crashed
    }

    /// The earliest armed deadline, if any — the harness jumps the
    /// fault clock here when the network goes quiet, so starved ops
    /// abort instead of hanging the run.
    pub fn next_fault_deadline(&self) -> Option<u64> {
        self.fault.deadlines.values().copied().min()
    }

    /// Counts one absorbed protocol anomaly (duplicate or stray
    /// message). Outside fault mode the event is a hard bug.
    pub(crate) fn fault_anomaly(&mut self, what: &str) {
        if self.fault.enabled {
            self.stats.fault_anomalies += 1;
        } else {
            debug_assert!(false, "{what}");
        }
        let _ = what;
    }

    /// Bookkeeping hook of [`Kernel::park`]: checks the crash script
    /// and arms the phase's deadline. The batch tracker is exempt from
    /// deadlines — it is pure local bookkeeping whose sub-operations
    /// carry their own deadlines and abort paths.
    pub(crate) fn note_parked(&mut self, op: OpId, phase: &'static str) {
        if !self.fault.crashed {
            for entry in &mut self.fault.crash_script {
                if entry.0 == phase && entry.1 > 0 {
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        self.fault.crashed = true;
                    }
                    break;
                }
            }
        }
        if phase != "bulk-batch" && self.fault.deadline_budget > 0 {
            self.fault.deadlines.insert(op, self.fault.now + self.fault.deadline_budget);
        }
    }

    /// Records one idempotent request leg of `op` for deadline-driven
    /// re-sending. Only revoke requests and sweep delete orders are
    /// recorded: replaying them against an already-revoked subtree is
    /// vacuous at the receiver, so a retry recovers a *dropped request*
    /// without corrupting state (a duplicated *reply* is absorbed by
    /// the saturating fan-in).
    pub(crate) fn record_retry_leg(&mut self, op: OpId, peer: KernelId, call: &Kcall) {
        if !self.fault.enabled {
            return;
        }
        self.fault.retry_legs.entry(op).or_default().legs.push((peer, call.clone()));
    }

    /// Advances the fault clock and handles every expired deadline, in
    /// op-id order: ops with retry budget re-send their recorded legs
    /// (skipping dead peers) and re-arm; everything else aborts.
    /// Returns the modeled cost of the abort work.
    pub fn poll_faults(&mut self, now: u64, out: &mut Outbox) -> u64 {
        if !self.fault.enabled {
            return 0;
        }
        self.fault.now = now;
        if self.fault.deadlines.is_empty() {
            return 0;
        }
        let mut entries: Vec<(OpId, u64)> =
            self.fault.deadlines.iter().map(|(op, dl)| (*op, *dl)).collect();
        entries.sort_unstable();
        let mut cost = 0;
        for (op, dl) in entries {
            if self.pending.get(op).is_none() {
                // The op completed since its deadline was armed; reap
                // the stale entries lazily (op ids are never reused).
                self.fault.deadlines.remove(&op);
                self.fault.retry_legs.remove(&op);
                continue;
            }
            if dl > now {
                continue;
            }
            let legs = match self.fault.retry_legs.get_mut(&op) {
                Some(r) if r.attempts < MAX_LEG_RETRIES => {
                    r.attempts += 1;
                    Some(r.legs.clone())
                }
                _ => None,
            };
            if let Some(legs) = legs {
                self.fault.deadlines.insert(op, now + self.fault.deadline_budget.max(1));
                for (peer, call) in legs {
                    if self.fault.dead_peers.contains(&peer) {
                        continue;
                    }
                    self.stats.retries += 1;
                    self.send_kcall(out, peer, call);
                }
            } else {
                self.fault.deadlines.remove(&op);
                self.fault.retry_legs.remove(&op);
                if let Some(state) = self.pending.remove(op) {
                    cost += self.abort_op(op, state, out);
                }
            }
        }
        cost
    }

    /// Declares a peer kernel dead: drops queued requests towards it
    /// and aborts every pending op waiting on it (in op-id order, so
    /// the abort replies leave deterministically). The harness calls
    /// this on every surviving kernel when a scripted crash fires.
    pub fn peer_down(&mut self, dead: KernelId, out: &mut Outbox) -> u64 {
        if !self.fault.enabled || self.fault.dead_peers.contains(&dead) {
            return 0;
        }
        self.fault.dead_peers.push(dead);
        // Requests stalled behind the credit gate towards the dead
        // kernel would never be consumed; their ops abort below.
        self.kqueue.remove(&dead);
        let mut doomed: Vec<OpId> = self
            .pending
            .iter()
            .filter(|(_, state)| self.awaits_dead_peer(state, dead))
            .map(|(op, _)| op)
            .collect();
        doomed.sort_unstable();
        let mut cost = 0;
        for op in doomed {
            self.fault.deadlines.remove(&op);
            self.fault.retry_legs.remove(&op);
            // Aborting one op can complete others (waiter cascades);
            // re-check that this one is still parked.
            let Some(state) = self.pending.remove(op) else { continue };
            cost += self.abort_op(op, state, out);
        }
        cost
    }

    /// True if `state` cannot make progress once `dead` stopped
    /// responding. Conservative: multi-peer fan-ins that merely
    /// *include* the dead peer are matched too (their surviving legs'
    /// replies land on an absent op and are absorbed as anomalies);
    /// phases waiting on local VPEs or on nobody return false and are
    /// covered by their deadline instead.
    fn awaits_dead_peer(&self, state: &PendingOp, dead: KernelId) -> bool {
        match state {
            PendingOp::Exchange(p) => match p {
                exchange::Phase::ObtainRemote { peer_kernel, .. }
                | exchange::Phase::DelegateRemote { peer_kernel, .. } => *peer_kernel == dead,
                exchange::Phase::ObtainAtOwner { caller_kernel, .. }
                | exchange::Phase::DelegateAtRecv { caller_kernel, .. }
                | exchange::Phase::DelegatePendingInsert { caller_kernel, .. } => {
                    *caller_kernel == dead
                }
                exchange::Phase::DelegateWaitDone { child_key, .. } => {
                    self.membership.kernel_of_key(*child_key) == dead
                }
                exchange::Phase::LocalAccept { .. } | exchange::Phase::DelegateAborted { .. } => {
                    false
                }
            },
            PendingOp::Session(p) => match p {
                session::Phase::OpenRemote { srv, .. } => srv.owner == dead,
                session::Phase::AtService { caller_kernel, .. } => *caller_kernel == dead,
                session::Phase::OpenLocal { .. } => false,
            },
            PendingOp::Revoke(p) => match p {
                revoke::Phase::Batch { caller_kernel, .. } => *caller_kernel == dead,
                // A classic revoke fans out to many peers without
                // recording which legs are outstanding; its deadline
                // (with retries towards the survivors) covers it.
                revoke::Phase::Run(_) => false,
            },
            PendingOp::Sweep(p) => match p {
                sweep::Phase::Partition(part) => part.caller == dead,
                sweep::Phase::Coordinate(s) | sweep::Phase::Collect(s) => {
                    s.participants.contains(&dead)
                }
            },
            PendingOp::Migrate(p) => match p {
                migrate::Phase::AwaitInstall(i) => i.dst == dead,
                // Draining waits on every bystander; the deadline
                // force-completes it.
                migrate::Phase::Draining(_) => false,
            },
            PendingOp::Promise(p) => match p {
                // An eager provide without its consent verdict waits on
                // the receiver's kernel; once the verdict arrived it
                // waits only on the local operand gate.
                promise::Phase::ProvidePending(prov) => {
                    prov.consent.is_none() && prov.peer_kernel == dead
                }
                promise::Phase::AwaitResolved { peer_kernel, .. }
                | promise::Phase::AwaitInsert { peer_kernel, .. } => *peer_kernel == dead,
                promise::Phase::ConsentAtRecv { caller_kernel, .. }
                | promise::Phase::AwaitResolve { caller_kernel, .. } => *caller_kernel == dead,
            },
            PendingOp::Bulk(_) => false,
        }
    }

    /// Aborts one pending op with per-phase surgery so the system stays
    /// consistent: waiters are woken, marked subtrees are swept, reply
    /// obligations towards callers are met (with an error), and held
    /// operations replay. Returns the modeled cost.
    fn abort_op(&mut self, op: OpId, state: PendingOp, out: &mut Outbox) -> u64 {
        self.stats.ops_aborted += 1;
        let err = Error::new(Code::Timeout);
        let exit = self.cfg.cost.kcall_exit;
        match state {
            PendingOp::Exchange(phase) => match phase {
                // The upcall-cancellation sweep already knows how to
                // fail these three towards their initiators.
                p @ (exchange::Phase::LocalAccept { .. }
                | exchange::Phase::ObtainAtOwner { .. }
                | exchange::Phase::DelegateAtRecv { .. }) => {
                    self.cancel_exchange_phase(p, out);
                    exit
                }
                exchange::Phase::ObtainRemote { tag, requester, .. } => {
                    self.reply_sys(out, requester, tag, Err(err));
                    exit
                }
                exchange::Phase::DelegateRemote { tag, delegator, .. } => {
                    self.reply_sys(out, delegator, tag, Err(err));
                    exit
                }
                // The receiver inserted (or will insert) the child; we
                // can no longer learn which. Fail the syscall and leave
                // the child as an orphan for the §4.3.2 cleanup.
                exchange::Phase::DelegateWaitDone { tag, delegator, .. } => {
                    self.stats.orphans_cleaned += 1;
                    self.reply_sys(out, delegator, tag, Err(err));
                    exit
                }
                exchange::Phase::DelegateAborted { tag, delegator, reason } => {
                    self.reply_sys(out, delegator, tag, Err(reason));
                    exit
                }
                // Never inserted — §4.3.2's whole point: dropping the
                // pending capability is safe and complete.
                exchange::Phase::DelegatePendingInsert { .. } => 0,
            },
            PendingOp::Session(phase) => match phase {
                session::Phase::OpenRemote { tag, client, .. }
                | session::Phase::OpenLocal { tag, client, .. } => {
                    self.reply_sys(out, client, tag, Err(err));
                    exit
                }
                session::Phase::AtService { caller_op, caller_kernel, .. } => {
                    self.send_kreply(
                        out,
                        caller_kernel,
                        KReply::OpenSess { op: caller_op, result: Err(err) },
                    );
                    exit
                }
            },
            PendingOp::Revoke(phase) => match phase {
                // Completing with the legs that did answer is the only
                // consistent abort: marked subtrees must be swept
                // (stale `Revoking` marks would wedge every later
                // operation touching them) and dependents woken. The
                // unresponsive remote subtrees belong to a dead or
                // unreachable kernel — orphaned there, gone with it.
                revoke::Phase::Run(rop) => self.complete_revoke(op, rop, out),
                // Report what the completed sub-revokes deleted; the
                // caller's protocol treats revoke replies as always-Ok.
                revoke::Phase::Batch { caller_op, caller_kernel, cap_keys, fanin } => {
                    self.send_kreply(
                        out,
                        caller_kernel,
                        KReply::RevokeBatch {
                            op: caller_op,
                            cap_keys,
                            deleted: fanin.tally(),
                            result: Ok(()),
                        },
                    );
                    exit
                }
            },
            PendingOp::Sweep(phase) => match phase {
                // Give up on the missing mark replies and dependency
                // wakes: force the delete phase over what *was* marked.
                // `sweep_begin_delete` re-parks the op as `Collect`
                // with a fresh deadline.
                sweep::Phase::Coordinate(mut s) => {
                    s.marks_outstanding = 0;
                    s.deps = 0;
                    self.pending.insert(op, PendingOp::Sweep(sweep::Phase::Coordinate(s)));
                    self.run_ready(vec![ReadyOp::SweepCoord(op)], out)
                }
                // Some partitions never reported deletion. Close the
                // sweep with the counts that arrived: release every
                // surviving participant's deferred waiters and our own,
                // and notify the initiator.
                sweep::Phase::Collect(s) => {
                    let mut cost = self.cfg.cost.revoke_finish;
                    for &k in &s.participants {
                        if self.fault.dead_peers.contains(&k) {
                            continue;
                        }
                        cost += exit;
                        self.send_kcall(out, k, Kcall::SweepDoneNotice { op });
                    }
                    self.notify_initiator(s.initiator, true, s.fanin.tally(), out);
                    let mut ready: Vec<ReadyOp> = Vec::new();
                    for w in s.woken {
                        self.wake_waiter(w, &mut ready);
                    }
                    cost + self.run_ready(ready, out)
                }
                // The coordinator is gone (or unreachable): retire the
                // partition locally — delete what it marked so no
                // `Revoking` marks leak, and fire its deferred waiters.
                sweep::Phase::Partition(p) => {
                    self.sweep_parts.remove(&(p.caller, p.caller_op));
                    self.abort_sweep_partition(p, out)
                }
            },
            PendingOp::Migrate(phase) => match phase {
                // The protocol's own refusal path: the group never
                // left, membership stays, held operations replay.
                migrate::Phase::AwaitInstall(install) => {
                    self.migrate_installed(op, *install, Err(err), out)
                }
                // Records are handed over and the destination routes
                // the group; missing bystander acks only delay *their*
                // view. Close the window so held operations replay
                // (stragglers chase the group via the forward rule).
                migrate::Phase::Draining(drain) => {
                    let migrate::Drain { vpe, held, .. } = *drain;
                    self.migration_complete(vpe, held, out)
                }
            },
            PendingOp::Promise(phase) => match phase {
                // The consent verdict never arrived (or the operand gate
                // never opened before the deadline — conservatively the
                // same surgery): release B's pending state if consent
                // was granted, and fail the promise.
                promise::Phase::ProvidePending(p) => {
                    if let Some(Ok(b_op)) = p.consent {
                        self.send_resolve_abort(p.peer_kernel, b_op, err, out);
                    }
                    exit + self.resolve_promise(p.promise, Err(err), out)
                }
                promise::Phase::AwaitResolved { promise, .. } => {
                    exit + self.resolve_promise(promise, Err(err), out)
                }
                // The receiver inserted (or will insert) the child; we
                // can no longer learn which — same orphan discipline as
                // the classic delegate's `DelegateWaitDone` abort.
                promise::Phase::AwaitInsert { promise, parent_key, child_key, linked, .. } => {
                    if linked {
                        self.mapdb.unlink_child(parent_key, child_key);
                    }
                    self.stats.orphans_cleaned += 1;
                    exit + self.resolve_promise(promise, Err(err), out)
                }
                // The receiving VPE never answered the consent upcall:
                // meet the reply obligation towards A with the error.
                promise::Phase::ConsentAtRecv { caller_op, caller_kernel, .. } => {
                    if !self.fault.dead_peers.contains(&caller_kernel) {
                        self.send_kreply(
                            out,
                            caller_kernel,
                            KReply::Provide { op: caller_op, result: Err(err) },
                        );
                    }
                    exit
                }
                // Never inserted anything — dropping the pending state
                // is safe and complete (§4.3.2 discipline).
                promise::Phase::AwaitResolve { .. } => 0,
            },
            // Batch trackers never arm deadlines and wait on no peer;
            // defensive re-insert if one ever lands here.
            state @ PendingOp::Bulk(_) => {
                self.stats.ops_aborted -= 1;
                self.pending.insert(op, state);
                0
            }
        }
    }

    /// Force-retires one sweep partition without its coordinator:
    /// deletes the marked subtrees (the partition's territory) in one
    /// batched pass and wakes both its deferred waiters and anything
    /// waiting on the deleted capabilities. Shared by the partition
    /// abort path and the late-done-notice anomaly path.
    pub(crate) fn abort_sweep_partition(
        &mut self,
        mut p: sweep::SweepPart,
        out: &mut Outbox,
    ) -> u64 {
        let mut cost = 0;
        let mut stack = std::mem::take(&mut self.scratch.stack);
        let mut deleted = std::mem::take(&mut self.scratch.deleted);
        let mut woken = std::mem::take(&mut self.scratch.woken);
        debug_assert!(deleted.is_empty() && woken.is_empty());
        for root in std::mem::take(&mut p.roots) {
            self.mapdb.delete_local_subtree_into(root, &mut stack, &mut deleted);
        }
        cost += self.sweep_deleted(&mut deleted, &mut woken);
        cost += self.cfg.cost.revoke_finish;
        self.scratch.stack = stack;
        self.scratch.deleted = deleted;
        let mut to_wake = std::mem::take(&mut p.woken);
        to_wake.append(&mut woken);
        self.scratch.woken = woken;
        let mut ready: Vec<ReadyOp> = Vec::new();
        for w in to_wake {
            self.wake_waiter(w, &mut ready);
        }
        cost + self.run_ready(ready, out)
    }

    /// Asserts that the kernel reached true quiescence: no suspended
    /// operations, no open migration windows, no sweep partitions, no
    /// registered revoke waiters, no active batches, and no requests
    /// stalled behind the credit gate. The fault suites call this after
    /// every run — a leak here is exactly the silent hang the
    /// termination hardening exists to prevent.
    pub fn check_quiescent(&self) -> core::result::Result<(), String> {
        if !self.pending.is_empty() {
            let mut stuck: Vec<String> =
                self.pending.iter().map(|(op, s)| format!("{op}:{}", s.spec().name)).collect();
            stuck.sort_unstable();
            return Err(format!("kernel {}: pending ops at quiescence: {stuck:?}", self.id));
        }
        if !self.active_migrations.is_empty() {
            return Err(format!(
                "kernel {}: open migration windows: {:?}",
                self.id, self.active_migrations
            ));
        }
        if !self.sweep_parts.is_empty() {
            let mut keys: Vec<(KernelId, OpId)> = self.sweep_parts.keys().copied().collect();
            keys.sort_unstable();
            return Err(format!("kernel {}: live sweep partitions: {keys:?}", self.id));
        }
        if !self.revoke_waiters.is_empty() {
            return Err(format!(
                "kernel {}: {} revoke-waiter entries at quiescence",
                self.id,
                self.revoke_waiters.len()
            ));
        }
        if !self.bulk_by_vpe.is_empty() {
            return Err(format!("kernel {}: active batched syscalls at quiescence", self.id));
        }
        let mut unresolved: Vec<u64> = self
            .promises
            .iter()
            .filter(|(_, p)| p.resolved.is_none() || !p.waiters.is_empty())
            .map(|(k, _)| *k)
            .collect();
        if !unresolved.is_empty() {
            unresolved.sort_unstable();
            return Err(format!(
                "kernel {}: unresolved promises (or parked waiters) at quiescence: {unresolved:?}",
                self.id
            ));
        }
        if !self.async_execs.is_empty() {
            return Err(format!(
                "kernel {}: {} in-flight async executions at quiescence",
                self.id,
                self.async_execs.len()
            ));
        }
        let mut stalled: Vec<(KernelId, usize)> =
            self.kqueue.iter().filter(|(_, q)| !q.is_empty()).map(|(k, q)| (*k, q.len())).collect();
        if !stalled.is_empty() {
            stalled.sort_unstable();
            return Err(format!("kernel {}: credit-stalled requests: {stalled:?}", self.id));
        }
        Ok(())
    }
}
