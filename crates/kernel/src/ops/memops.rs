//! Group-local memory capability operations on the op engine.
//!
//! Create and derive are the engine's *degenerate* protocols: a single
//! local phase with no fan-out — the start handler completes the
//! operation synchronously, so nothing is ever parked in the ledger.
//! They live in `ops` so every capability operation dispatches through
//! the same engine surface.
//!
//! `CreateMem` allocates fresh global memory and returns a root memory
//! capability; `DeriveMem` creates a child capability covering a
//! sub-range with (possibly narrowed) permissions. Derivation is the
//! mechanism m3fs uses to hand out per-extent capabilities: the derived
//! child is then *delegated* to the client, and revoking the child on
//! close recursively removes the client's access (§2.2, "Services on
//! M3").

use semper_base::msg::{CapKindDesc, Perms, SysReplyData};
use semper_base::{CapSel, CapType, Code, Error, Result, VpeId};
use semper_caps::Capability;

use crate::kernel::Kernel;
use crate::outbox::Outbox;

impl Kernel {
    /// Entry point for the `CreateMem` system call.
    pub(crate) fn sys_create_mem(
        &mut self,
        vpe: VpeId,
        tag: u64,
        size: u64,
        perms: Perms,
        out: &mut Outbox,
    ) -> u64 {
        let result = (|| -> Result<SysReplyData> {
            let addr = self.mem.alloc(size)?;
            let pe = self.pe_of_vpe(vpe)?;
            let key = self.keys.alloc(pe, vpe, CapType::Memory);
            let table = self.tables.get_mut(&vpe).ok_or(Error::new(Code::NoSuchVpe))?;
            let sel = table.insert_new(key);
            self.mapdb.insert(Capability::root(
                key,
                CapKindDesc::Memory { addr, size, perms },
                vpe,
                sel,
            ));
            self.stats.caps_created += 1;
            Ok(SysReplyData::Mem { sel, addr })
        })();
        self.reply_sys(out, vpe, tag, result);
        self.cfg.cost.cap_create + self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit
    }

    /// Entry point for the `DeriveMem` system call.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sys_derive_mem(
        &mut self,
        vpe: VpeId,
        tag: u64,
        src: CapSel,
        offset: u64,
        size: u64,
        perms: Perms,
        out: &mut Outbox,
    ) -> u64 {
        let result = (|| -> Result<SysReplyData> {
            let parent_key = self.tables.get(&vpe).ok_or(Error::new(Code::NoSuchVpe))?.get(src)?;
            let parent = self.mapdb.get(parent_key)?;
            if parent.revoking() {
                return Err(Error::new(Code::RevokeInProgress));
            }
            let CapKindDesc::Memory { addr, size: psize, perms: pperms } = parent.kind else {
                return Err(Error::new(Code::InvalidArgs));
            };
            // A derived capability must stay within the parent's range
            // and permissions (monotone attenuation).
            let end = offset.checked_add(size).ok_or(Error::new(Code::InvalidArgs))?;
            if size == 0 || end > psize {
                return Err(Error::new(Code::InvalidArgs));
            }
            if !pperms.contains(perms) {
                return Err(Error::new(Code::NoPerm));
            }
            let pe = self.pe_of_vpe(vpe)?;
            let key = self.keys.alloc(pe, vpe, CapType::Memory);
            let table = self.tables.get_mut(&vpe).expect("checked above");
            let sel = table.insert_new(key);
            self.mapdb.insert(Capability::child(
                key,
                CapKindDesc::Memory { addr: addr + offset, size, perms },
                vpe,
                sel,
                parent_key,
            ));
            self.mapdb.link_child(parent_key, key)?;
            self.stats.caps_created += 1;
            Ok(SysReplyData::Sel(sel))
        })();
        if let Err(e) = &result {
            if e.code() == Code::RevokeInProgress {
                self.stats.pointless_denied += 1;
            }
        }
        self.reply_sys(out, vpe, tag, result);
        self.ref_cost()
            + self.cfg.cost.cap_create
            + self.cfg.cost.cap_insert
            + self.cfg.cost.syscall_exit
    }
}
