//! Capability exchange on the op engine: obtain and delegate (§4.3.2).
//!
//! Both operations start with an `Exchange` system call. The initiator's
//! kernel decides whether the peer VPE is group-local (single-kernel
//! handling, sequence A of Figure 3) or managed by another kernel
//! (inter-kernel handling, sequence B). In both cases the peer VPE is
//! asked for consent via an upcall before any capability changes hands.
//!
//! The asymmetry between obtain and delegate is deliberate and mirrors
//! the paper's analysis of interference (Table 2):
//!
//! * **Obtain** leaves the obtainer's tree untouched until the owner's
//!   kernel replied. If the obtainer died meanwhile, the owner is told to
//!   drop the *orphaned* child reference (the orphan-notice inter-kernel call).
//! * **Delegate** uses a **two-way handshake**: the receiver's kernel
//!   creates the capability but does not insert it until the delegator's
//!   kernel confirmed that the parent still exists. Without this, a
//!   revoke of the parent racing with the delegate could leave the
//!   receiver holding a capability that survives the revocation —
//!   the *invalid* case the paper rules out. The one-way variant can be
//!   enabled as an ablation ([`Feature::OneWayDelegate`]) to demonstrate
//!   exactly that window.

use semper_base::config::Feature;
use semper_base::msg::{CapDesc, CapKindDesc, KReply, Kcall, SysReplyData, Upcall};
use semper_base::{
    CapSel, CapType, Code, DdlKey, Error, ExchangeKind, KernelId, OpId, Result, VpeId,
};
use semper_caps::Capability;

use crate::kernel::Kernel;
use crate::ops::{Awaits, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;

/// The exchange protocol's phase table (Figure 3 sequences A and B,
/// plus the §4.3.2 delegate handshake legs).
#[derive(Debug, Clone)]
pub enum Phase {
    /// A.2: group-local exchange awaiting the peer VPE's consent.
    LocalAccept {
        /// Tag of the initiating system call.
        tag: u64,
        /// The initiating VPE.
        initiator: VpeId,
        /// The peer VPE (same group).
        peer: VpeId,
        /// Obtain or delegate.
        kind: ExchangeKind,
        /// Delegate: the initiator's capability selector.
        own_sel: CapSel,
        /// Obtain: the peer's capability selector.
        other_sel: CapSel,
    },
    /// B.2 (requester side): awaiting `KReply::Obtain` from the owner's
    /// kernel.
    ObtainRemote {
        /// Tag of the initiating system call.
        tag: u64,
        /// The obtaining VPE.
        requester: VpeId,
        /// Pre-allocated key of the new child capability.
        child_key: DdlKey,
        /// The owner's kernel.
        peer_kernel: KernelId,
    },
    /// B.3 (owner side): awaiting the owner VPE's consent upcall.
    ObtainAtOwner {
        /// The requester kernel's correlation id (echo in reply).
        caller_op: OpId,
        /// The requester's kernel.
        caller_kernel: KernelId,
        /// Key of the new child capability (allocated by the caller).
        child_key: DdlKey,
        /// Key of the parent capability (owned here).
        parent_key: DdlKey,
        /// The VPE owning the parent.
        owner: VpeId,
    },
    /// Handshake leg 1 (delegator side): awaiting `KReply::Delegate`.
    DelegateRemote {
        /// Tag of the initiating system call.
        tag: u64,
        /// The delegating VPE.
        delegator: VpeId,
        /// Key of the capability being delegated.
        parent_key: DdlKey,
        /// The receiver's kernel.
        peer_kernel: KernelId,
    },
    /// Handshake leg 2 (delegator side): commit ack sent, awaiting
    /// `KReply::DelegateDone`.
    DelegateWaitDone {
        /// Tag of the initiating system call.
        tag: u64,
        /// The delegating VPE.
        delegator: VpeId,
        /// Key of the parent capability.
        parent_key: DdlKey,
        /// Key of the child capability at the receiver.
        child_key: DdlKey,
    },
    /// Receiver side: awaiting the receiving VPE's consent upcall.
    DelegateAtRecv {
        /// The delegator kernel's correlation id (echo in reply).
        caller_op: OpId,
        /// The delegator's kernel.
        caller_kernel: KernelId,
        /// Key of the parent capability (owned by the caller).
        parent_key: DdlKey,
        /// Resource description for the new capability.
        desc: CapKindDesc,
        /// The receiving VPE.
        recv: VpeId,
    },
    /// Receiver side: capability created but *not inserted*, awaiting
    /// `Kcall::DelegateAck` (§4.3.2's two-way handshake; prevents
    /// *invalid* capabilities).
    DelegatePendingInsert {
        /// The delegator's kernel (to report insertion failure).
        caller_kernel: KernelId,
        /// The fully built but uninserted capability.
        cap: Box<Capability>,
    },
    /// Delegator side: parent turned out invalid after leg 1; abort ack
    /// sent, awaiting the `DelegateDone` confirmation before failing
    /// the system call.
    DelegateAborted {
        /// Tag of the initiating system call.
        tag: u64,
        /// The delegating VPE.
        delegator: VpeId,
        /// Why the delegate was aborted.
        reason: Error,
    },
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::LocalAccept { .. } => &PhaseSpec {
                name: "exchange-local",
                awaits: Awaits::UpcallReply,
                thread: Thread::Holds,
            },
            Phase::ObtainRemote { .. } => {
                &PhaseSpec { name: "obtain-remote", awaits: Awaits::KReply, thread: Thread::Holds }
            }
            Phase::ObtainAtOwner { .. } => &PhaseSpec {
                name: "obtain-at-owner",
                awaits: Awaits::UpcallReply,
                thread: Thread::Holds,
            },
            Phase::DelegateRemote { .. } => &PhaseSpec {
                name: "delegate-remote",
                awaits: Awaits::KReply,
                thread: Thread::Holds,
            },
            Phase::DelegateWaitDone { .. } => &PhaseSpec {
                name: "delegate-wait-done",
                awaits: Awaits::KReply,
                thread: Thread::Holds,
            },
            Phase::DelegateAtRecv { .. } => &PhaseSpec {
                name: "delegate-at-recv",
                awaits: Awaits::UpcallReply,
                thread: Thread::Holds,
            },
            Phase::DelegatePendingInsert { .. } => &PhaseSpec {
                name: "delegate-pending-insert",
                awaits: Awaits::KReply,
                thread: Thread::Free,
            },
            Phase::DelegateAborted { .. } => &PhaseSpec {
                name: "delegate-aborted",
                awaits: Awaits::KReply,
                thread: Thread::Holds,
            },
        }
    }

    /// The VPE whose consent upcall this phase awaits (its death
    /// cancels the operation; see [`PendingOp::upcall_responder`]).
    pub fn upcall_responder(&self) -> Option<VpeId> {
        match self {
            Phase::LocalAccept { peer, .. } => Some(*peer),
            Phase::ObtainAtOwner { owner, .. } => Some(*owner),
            Phase::DelegateAtRecv { recv, .. } => Some(*recv),
            _ => None,
        }
    }

    /// True if resuming this phase would touch `vpe`'s capability
    /// group (see [`crate::ops::PendingOp::references_vpe`]).
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::LocalAccept { initiator, peer, .. } => *initiator == vpe || *peer == vpe,
            Phase::ObtainRemote { requester, child_key, .. } => {
                *requester == vpe || child_key.vpe() == vpe
            }
            Phase::ObtainAtOwner { child_key, parent_key, owner, .. } => {
                *owner == vpe || child_key.vpe() == vpe || parent_key.vpe() == vpe
            }
            Phase::DelegateRemote { delegator, parent_key, .. } => {
                *delegator == vpe || parent_key.vpe() == vpe
            }
            Phase::DelegateWaitDone { delegator, parent_key, child_key, .. } => {
                *delegator == vpe || parent_key.vpe() == vpe || child_key.vpe() == vpe
            }
            Phase::DelegateAtRecv { parent_key, recv, .. } => {
                *recv == vpe || parent_key.vpe() == vpe
            }
            Phase::DelegatePendingInsert { cap, .. } => cap.owner == vpe,
            Phase::DelegateAborted { delegator, .. } => *delegator == vpe,
        }
    }
}

impl Kernel {
    /// Entry point for the `Exchange` system call (local start).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn sys_exchange(
        &mut self,
        vpe: VpeId,
        tag: u64,
        other: VpeId,
        own_sel: CapSel,
        other_sel: CapSel,
        kind: ExchangeKind,
        out: &mut Outbox,
    ) -> u64 {
        match self.exchange_start(vpe, tag, other, own_sel, other_sel, kind, out) {
            Ok(cost) => cost,
            Err(e) => {
                if e.code() == Code::RevokeInProgress {
                    self.stats.pointless_denied += 1;
                }
                self.reply_sys(out, vpe, tag, Err(e));
                self.cfg.cost.syscall_exit
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exchange_start(
        &mut self,
        vpe: VpeId,
        tag: u64,
        other: VpeId,
        own_sel: CapSel,
        other_sel: CapSel,
        kind: ExchangeKind,
        out: &mut Outbox,
    ) -> Result<u64> {
        if other == vpe {
            return Err(Error::new(Code::InvalidArgs));
        }
        let peer_kernel = self.kernel_of_vpe(other)?;

        // For a delegate, the initiator's capability must exist and must
        // not be under revocation (denying *pointless* exchanges).
        let parent_key = match kind {
            ExchangeKind::Delegate => {
                let key = self.tables.get(&vpe).ok_or(Error::new(Code::NoSuchVpe))?.get(own_sel)?;
                let cap = self.mapdb.get(key)?;
                if cap.revoking() {
                    return Err(Error::new(Code::RevokeInProgress));
                }
                Some(key)
            }
            ExchangeKind::Obtain => None,
        };

        if peer_kernel == self.id {
            // Group-local: the peer's capabilities are ours to inspect.
            if !self.vpe_alive(other) {
                return Err(Error::new(Code::VpeGone));
            }
            if kind == ExchangeKind::Obtain {
                let key =
                    self.tables.get(&other).ok_or(Error::new(Code::NoSuchVpe))?.get(other_sel)?;
                if self.mapdb.get(key)?.revoking() {
                    return Err(Error::new(Code::RevokeInProgress));
                }
            }
            let op = self.alloc_op();
            let peer_pe = self.pe_of_vpe(other)?;
            self.send_upcall(
                out,
                peer_pe,
                Upcall::AcceptExchange { op, from_vpe: vpe, kind, sel: other_sel },
            );
            self.park(
                op,
                PendingOp::Exchange(Phase::LocalAccept {
                    tag,
                    initiator: vpe,
                    peer: other,
                    kind,
                    own_sel,
                    other_sel,
                }),
            );
            Ok(2 * self.ref_cost())
        } else {
            // Group-spanning: involve the peer's kernel (sequence B).
            let op = self.alloc_op();
            match kind {
                ExchangeKind::Obtain => {
                    // Pre-allocate the child key; nothing is inserted
                    // until the owner's kernel replies.
                    let pe = self.pe_of_vpe(vpe)?;
                    let child_key = self.keys.alloc(pe, vpe, CapType::Memory);
                    self.send_kcall(
                        out,
                        peer_kernel,
                        Kcall::ObtainReq {
                            op,
                            child_key,
                            owner_vpe: other,
                            owner_sel: other_sel,
                            requester_vpe: vpe,
                        },
                    );
                    self.park(
                        op,
                        PendingOp::Exchange(Phase::ObtainRemote {
                            tag,
                            requester: vpe,
                            child_key,
                            peer_kernel,
                        }),
                    );
                }
                ExchangeKind::Delegate => {
                    let parent_key = parent_key.expect("checked above for delegate");
                    let desc = self.mapdb.get(parent_key)?.kind;
                    self.send_kcall(
                        out,
                        peer_kernel,
                        Kcall::DelegateReq { op, parent_key, desc, recv_vpe: other },
                    );
                    self.park(
                        op,
                        PendingOp::Exchange(Phase::DelegateRemote {
                            tag,
                            delegator: vpe,
                            parent_key,
                            peer_kernel,
                        }),
                    );
                }
            }
            Ok(2 * self.ref_cost())
        }
    }

    /// Resumes [`Phase::LocalAccept`]: the peer answered the consent
    /// upcall; complete the group-local exchange.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn local_exchange_accept(
        &mut self,
        tag: u64,
        initiator: VpeId,
        peer: VpeId,
        kind: ExchangeKind,
        own_sel: CapSel,
        other_sel: CapSel,
        accept: bool,
        out: &mut Outbox,
    ) -> u64 {
        if !accept {
            self.reply_sys(out, initiator, tag, Err(Error::new(Code::ExchangeDenied)));
            return self.cfg.cost.syscall_exit;
        }
        if !self.vpe_alive(initiator) {
            // The initiator died while the upcall was in flight; nothing
            // was inserted, so nothing to clean up.
            return 0;
        }
        let result = match kind {
            ExchangeKind::Obtain => {
                self.insert_child_for(peer, other_sel, initiator).map(SysReplyData::Sel)
            }
            ExchangeKind::Delegate => self
                .insert_child_for(initiator, own_sel, peer)
                .map(|recv_sel| SysReplyData::Delegated { recv_sel }),
        };
        if result.is_ok() {
            self.stats.exchanges_local += 1;
        } else if result.as_ref().err().map(|e| e.code()) == Some(Code::RevokeInProgress) {
            self.stats.pointless_denied += 1;
        }
        self.reply_sys(out, initiator, tag, result);
        self.cfg.cost.cap_create
            + self.cfg.cost.cap_insert
            + 2 * self.ref_cost()
            + self.cfg.cost.syscall_exit
    }

    /// Creates a child of `owner`'s capability at `sel` for `receiver`
    /// (both VPEs in this group). Returns the receiver-side selector.
    fn insert_child_for(&mut self, owner: VpeId, sel: CapSel, receiver: VpeId) -> Result<CapSel> {
        let parent_key = self.tables.get(&owner).ok_or(Error::new(Code::NoSuchVpe))?.get(sel)?;
        let parent = self.mapdb.get(parent_key)?;
        if parent.revoking() {
            return Err(Error::new(Code::RevokeInProgress));
        }
        let desc = parent.kind;
        let recv_pe = self.pe_of_vpe(receiver)?;
        let child_key = self.keys.alloc(recv_pe, receiver, key_type_for(&desc));
        let recv_table = self.tables.get_mut(&receiver).ok_or(Error::new(Code::NoSuchVpe))?;
        let recv_sel = recv_table.insert_new(child_key);
        self.mapdb.insert(Capability::child(child_key, desc, receiver, recv_sel, parent_key));
        self.mapdb.link_child(parent_key, child_key)?;
        self.stats.caps_created += 1;
        Ok(recv_sel)
    }

    // ----- obtain, group-spanning ---------------------------------------

    /// Owner-side request handler for [`Kcall::ObtainReq`]: validate,
    /// then fan out the consent upcall ([`Phase::ObtainAtOwner`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn obtain_request(
        &mut self,
        from: KernelId,
        op: OpId,
        child_key: DdlKey,
        owner_vpe: VpeId,
        owner_sel: CapSel,
        requester_vpe: VpeId,
        out: &mut Outbox,
    ) -> u64 {
        let check = (|| -> Result<DdlKey> {
            if !self.vpe_alive(owner_vpe) {
                return Err(Error::new(Code::VpeGone));
            }
            let key =
                self.tables.get(&owner_vpe).ok_or(Error::new(Code::NoSuchVpe))?.get(owner_sel)?;
            if self.mapdb.get(key)?.revoking() {
                return Err(Error::new(Code::RevokeInProgress));
            }
            Ok(key)
        })();
        match check {
            Err(e) => {
                if e.code() == Code::RevokeInProgress {
                    self.stats.pointless_denied += 1;
                }
                self.send_kreply(out, from, KReply::Obtain { op, result: Err(e) });
                self.cfg.cost.kcall_exit
            }
            Ok(parent_key) => {
                let my_op = self.alloc_op();
                let pe = self.pe_of_vpe(owner_vpe).expect("owner is local");
                self.send_upcall(
                    out,
                    pe,
                    Upcall::AcceptExchange {
                        op: my_op,
                        from_vpe: requester_vpe,
                        kind: ExchangeKind::Obtain,
                        sel: owner_sel,
                    },
                );
                self.park(
                    my_op,
                    PendingOp::Exchange(Phase::ObtainAtOwner {
                        caller_op: op,
                        caller_kernel: from,
                        child_key,
                        parent_key,
                        owner: owner_vpe,
                    }),
                );
                self.ref_cost() + self.cfg.cost.xfer_desc
            }
        }
    }

    /// Resumes [`Phase::ObtainAtOwner`]: the owner accepted (or denied)
    /// a remote obtain; link the child and reply with the capability
    /// description.
    pub(crate) fn obtain_owner_accept(
        &mut self,
        caller_op: OpId,
        caller_kernel: KernelId,
        child_key: DdlKey,
        parent_key: DdlKey,
        accept: bool,
        out: &mut Outbox,
    ) -> u64 {
        let result = (|| -> Result<CapDesc> {
            if !accept {
                return Err(Error::new(Code::ExchangeDenied));
            }
            let parent = self.mapdb.get(parent_key)?;
            if parent.revoking() {
                return Err(Error::new(Code::RevokeInProgress));
            }
            let kind = parent.kind;
            // C1 is added to C2's child list *before* the reply (§4.3.2);
            // if the requester died, it becomes an orphan the requester's
            // kernel tells us to remove.
            self.mapdb.link_child(parent_key, child_key)?;
            Ok(CapDesc { key: parent_key, kind })
        })();
        if let Err(e) = &result {
            if e.code() == Code::RevokeInProgress {
                self.stats.pointless_denied += 1;
            }
        }
        self.send_kreply(out, caller_kernel, KReply::Obtain { op: caller_op, result });
        self.ref_cost() + self.cfg.cost.cap_insert + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::ObtainRemote`]: requester-side completion of a
    /// group-spanning obtain.
    pub(crate) fn obtain_reply(
        &mut self,
        from: KernelId,
        tag: u64,
        requester: VpeId,
        child_key: DdlKey,
        result: &Result<CapDesc>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Err(e) => {
                self.reply_sys(out, requester, tag, Err(*e));
                self.cfg.cost.syscall_exit
            }
            Ok(desc) => {
                if !self.vpe_alive(requester) {
                    // Orphaned: tell the kernel that answered — the
                    // parent's current owner, which may differ from the
                    // kernel the request was first sent to if the
                    // owner's group migrated and the request was
                    // forwarded — to unlink the child reference it
                    // optimistically created.
                    self.send_kcall(
                        out,
                        from,
                        Kcall::OrphanNotice { parent_key: desc.key, child_key },
                    );
                    return self.cfg.cost.kcall_exit;
                }
                let table = self.tables.get_mut(&requester).expect("alive VPE has table");
                let sel = table.insert_new(child_key);
                self.mapdb
                    .insert(Capability::child(child_key, desc.kind, requester, sel, desc.key));
                self.stats.caps_created += 1;
                self.stats.exchanges_spanning += 1;
                self.reply_sys(out, requester, tag, Ok(SysReplyData::Sel(sel)));
                self.cfg.cost.xfer_desc
                    + self.cfg.cost.cap_create
                    + self.cfg.cost.cap_insert
                    + self.cfg.cost.syscall_exit
            }
        }
    }

    /// Owner-side cleanup of an orphaned child reference (the obtainer
    /// died before receiving the capability).
    pub(crate) fn orphan_notice(&mut self, parent_key: DdlKey, child_key: DdlKey) -> u64 {
        if self.mapdb.unlink_child(parent_key, child_key) {
            self.stats.orphans_cleaned += 1;
        }
        self.ref_cost()
    }

    // ----- delegate, group-spanning --------------------------------------

    /// Receiver-side request handler for [`Kcall::DelegateReq`] (first
    /// leg): fan out the consent upcall ([`Phase::DelegateAtRecv`]).
    pub(crate) fn delegate_request(
        &mut self,
        from: KernelId,
        op: OpId,
        parent_key: DdlKey,
        desc: CapKindDesc,
        recv_vpe: VpeId,
        out: &mut Outbox,
    ) -> u64 {
        if !self.vpe_alive(recv_vpe) {
            self.send_kreply(
                out,
                from,
                KReply::Delegate { op, result: Err(Error::new(Code::VpeGone)) },
            );
            return self.cfg.cost.kcall_exit;
        }
        let my_op = self.alloc_op();
        let pe = self.pe_of_vpe(recv_vpe).expect("recv is local");
        self.send_upcall(
            out,
            pe,
            Upcall::AcceptExchange {
                op: my_op,
                from_vpe: recv_vpe,
                kind: ExchangeKind::Delegate,
                sel: CapSel::INVALID,
            },
        );
        self.park(
            my_op,
            PendingOp::Exchange(Phase::DelegateAtRecv {
                caller_op: op,
                caller_kernel: from,
                parent_key,
                desc,
                recv: recv_vpe,
            }),
        );
        self.ref_cost() + self.cfg.cost.xfer_desc
    }

    /// Resumes [`Phase::DelegateAtRecv`]: the receiver accepted a remote
    /// delegate; create the capability.
    ///
    /// With the two-way handshake (default) the capability is parked
    /// uninserted until the delegator's kernel confirms the parent is
    /// still alive. With [`Feature::OneWayDelegate`] (ablation) it is
    /// inserted immediately — opening the *invalid-capability* window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn delegate_recv_accept(
        &mut self,
        caller_op: OpId,
        caller_kernel: KernelId,
        parent_key: DdlKey,
        desc: CapKindDesc,
        recv: VpeId,
        accept: bool,
        out: &mut Outbox,
    ) -> u64 {
        if !accept {
            self.send_kreply(
                out,
                caller_kernel,
                KReply::Delegate { op: caller_op, result: Err(Error::new(Code::ExchangeDenied)) },
            );
            return self.cfg.cost.kcall_exit;
        }
        let pe = self.pe_of_vpe(recv).expect("recv is local");
        let child_key = self.keys.alloc(pe, recv, key_type_for(&desc));
        let cap = Capability::child(child_key, desc, recv, CapSel::INVALID, parent_key);

        if self.cfg.has_feature(Feature::OneWayDelegate) {
            // Ablation: naive one-way protocol — insert immediately.
            let table = self.tables.get_mut(&recv).expect("alive VPE has table");
            let sel = table.insert_new(child_key);
            self.mapdb.insert(cap.with_sel(sel));
            self.stats.caps_created += 1;
            let my_op = self.alloc_op();
            self.send_kreply(
                out,
                caller_kernel,
                KReply::Delegate { op: caller_op, result: Ok((child_key, my_op)) },
            );
            return self.cfg.cost.cap_create + self.cfg.cost.cap_insert + self.cfg.cost.kcall_exit;
        }

        let my_op = self.alloc_op();
        self.park(
            my_op,
            PendingOp::Exchange(Phase::DelegatePendingInsert { caller_kernel, cap: Box::new(cap) }),
        );
        self.send_kreply(
            out,
            caller_kernel,
            KReply::Delegate { op: caller_op, result: Ok((child_key, my_op)) },
        );
        self.cfg.cost.cap_create + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::DelegateRemote`]: delegator-side handling of the
    /// first-leg reply — validate the parent is still alive, then
    /// commit or abort. The ack goes to `from`, the kernel that
    /// actually answered: if the receiver's group migrated mid-leg and
    /// the request was forwarded, that is the new owner, not the
    /// kernel the request was first sent to.
    pub(crate) fn delegate_reply(
        &mut self,
        from: KernelId,
        tag: u64,
        delegator: VpeId,
        parent_key: DdlKey,
        result: &Result<(DdlKey, OpId)>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Err(e) => {
                self.reply_sys(out, delegator, tag, Err(*e));
                self.cfg.cost.syscall_exit
            }
            Ok((child_key, peer_op)) => {
                if self.cfg.has_feature(Feature::OneWayDelegate) {
                    // Ablation: link blindly, no validation, no ack.
                    let _ = self.mapdb.link_child(parent_key, *child_key);
                    self.stats.exchanges_spanning += 1;
                    self.reply_sys(
                        out,
                        delegator,
                        tag,
                        Ok(SysReplyData::Delegated { recv_sel: CapSel::INVALID }),
                    );
                    return self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit;
                }

                // Validate: parent must still exist, not be in
                // revocation, and the delegator must still be alive.
                let valid = self.vpe_alive(delegator)
                    && self.mapdb.get(parent_key).map(|c| !c.revoking()).unwrap_or(false);
                let reply_op = self.alloc_op();
                if valid {
                    self.mapdb.link_child(parent_key, *child_key).expect("parent checked above");
                    self.send_kcall(
                        out,
                        from,
                        Kcall::DelegateAck { op: *peer_op, reply_op, commit: true },
                    );
                    self.park(
                        reply_op,
                        PendingOp::Exchange(Phase::DelegateWaitDone {
                            tag,
                            delegator,
                            parent_key,
                            child_key: *child_key,
                        }),
                    );
                    self.ref_cost() + self.cfg.cost.xfer_desc + self.cfg.cost.cap_insert
                } else {
                    let reason = if !self.vpe_alive(delegator) {
                        Error::new(Code::VpeGone)
                    } else if self.mapdb.contains(parent_key) {
                        self.stats.pointless_denied += 1;
                        Error::new(Code::RevokeInProgress)
                    } else {
                        Error::new(Code::NoSuchCap)
                    };
                    self.send_kcall(
                        out,
                        from,
                        Kcall::DelegateAck { op: *peer_op, reply_op, commit: false },
                    );
                    self.park(
                        reply_op,
                        PendingOp::Exchange(Phase::DelegateAborted { tag, delegator, reason }),
                    );
                    self.ref_cost()
                }
            }
        }
    }

    /// Receiver-side handler for [`Kcall::DelegateAck`] (second leg):
    /// resumes [`Phase::DelegatePendingInsert`] through the ledger.
    pub(crate) fn delegate_ack(
        &mut self,
        from: KernelId,
        op: OpId,
        reply_op: OpId,
        commit: bool,
        out: &mut Outbox,
    ) -> u64 {
        match self.pending.get(op) {
            Some(PendingOp::Exchange(Phase::DelegatePendingInsert { .. })) => {}
            _ => {
                // Under fault injection: a duplicated ack, or the
                // pending insert already aborted (its capability was
                // never inserted, so dropping the ack is safe).
                self.fault_anomaly(&format!("delegate ack {op} without pending insert"));
                return 0;
            }
        }
        let Some(PendingOp::Exchange(Phase::DelegatePendingInsert { caller_kernel, cap })) =
            self.pending.remove(op)
        else {
            unreachable!("checked above");
        };
        debug_assert_eq!(from, caller_kernel);
        let result = if !commit {
            Err(Error::new(Code::ExchangeDenied))
        } else if !self.vpe_alive(cap.owner) {
            // Receiver died during the handshake: the capability is an
            // orphan; report it so the delegator unlinks the child
            // reference quickly (§4.3.2).
            self.stats.orphans_cleaned += 1;
            Err(Error::new(Code::VpeGone))
        } else {
            let table = self.tables.get_mut(&cap.owner).expect("alive VPE has table");
            let sel = table.insert_new(cap.key);
            self.mapdb.insert((*cap).with_sel(sel));
            self.stats.caps_created += 1;
            Ok(sel)
        };
        self.send_kreply(out, from, KReply::DelegateDone { op: reply_op, result });
        self.cfg.cost.cap_insert + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::DelegateWaitDone`]: delegator-side completion of
    /// the handshake.
    pub(crate) fn delegate_done(
        &mut self,
        tag: u64,
        delegator: VpeId,
        parent_key: DdlKey,
        child_key: DdlKey,
        result: Result<CapSel>,
        out: &mut Outbox,
    ) -> u64 {
        match result {
            Ok(recv_sel) => {
                self.stats.exchanges_spanning += 1;
                self.reply_sys(out, delegator, tag, Ok(SysReplyData::Delegated { recv_sel }));
            }
            Err(e) => {
                // Insertion failed (receiver died): unlink the child
                // reference we optimistically added.
                self.mapdb.unlink_child(parent_key, child_key);
                self.reply_sys(out, delegator, tag, Err(e));
            }
        }
        self.ref_cost() + self.cfg.cost.syscall_exit
    }

    /// Resumes [`Phase::DelegateAborted`]: the receiver confirmed the
    /// abort; fail the system call with the recorded reason.
    pub(crate) fn delegate_done_aborted(
        &mut self,
        tag: u64,
        delegator: VpeId,
        reason: Error,
        out: &mut Outbox,
    ) -> u64 {
        self.reply_sys(out, delegator, tag, Err(reason));
        self.cfg.cost.syscall_exit
    }

    /// Cancellation for exchange phases awaiting a consent upcall whose
    /// responder VPE died (engine teardown sweep).
    pub(crate) fn cancel_exchange_phase(&mut self, phase: Phase, out: &mut Outbox) {
        match phase {
            Phase::LocalAccept { tag, initiator, .. } => {
                self.reply_sys(out, initiator, tag, Err(Error::new(Code::VpeGone)));
            }
            Phase::ObtainAtOwner { caller_op, caller_kernel, .. } => {
                self.send_kreply(
                    out,
                    caller_kernel,
                    KReply::Obtain { op: caller_op, result: Err(Error::new(Code::VpeGone)) },
                );
            }
            Phase::DelegateAtRecv { caller_op, caller_kernel, .. } => {
                self.send_kreply(
                    out,
                    caller_kernel,
                    KReply::Delegate { op: caller_op, result: Err(Error::new(Code::VpeGone)) },
                );
            }
            other => unreachable!("{} is not cancelled via upcall sweep", other.spec().name),
        }
    }
}

/// DDL key type matching a resource description.
pub(crate) fn key_type_for(desc: &CapKindDesc) -> CapType {
    match desc {
        CapKindDesc::Vpe { .. } => CapType::Vpe,
        CapKindDesc::Memory { .. } => CapType::Memory,
        CapKindDesc::SendGate { .. } => CapType::SendGate,
        CapKindDesc::RecvGate { .. } => CapType::RecvGate,
        CapKindDesc::Service { .. } => CapType::Service,
        CapKindDesc::Session { .. } => CapType::Session,
        CapKindDesc::Kernel => CapType::Kernel,
    }
}
