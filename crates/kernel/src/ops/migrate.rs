//! Capability-group migration: moving a VPE's DDL ownership between
//! kernels mid-run (§4.2).
//!
//! The paper's membership table maps PE-id partitions to kernels so any
//! kernel can route a DDL key without global agreement (§3.2). Because
//! every capability a VPE owns carries the VPE's PE in its key, the set
//! of DDL entries owned on behalf of one VPE *is* a partition of the
//! key space — a capability group. Migrating the group to another
//! kernel is therefore a pure ownership handover: the records move, the
//! keys (and with them every cross-kernel parent/child link) stay
//! valid, and the membership tables are updated so future routing finds
//! the new owner.
//!
//! The protocol is the engine's showcase for a *new* distributed
//! operation — two phases, built entirely from engine primitives:
//!
//! 1. **Start (source kernel)** — validate (the VPE is local, alive,
//!    not a service, no endpoint activations, nothing revoking),
//!    marshal the group's records in selector order, send
//!    [`Kcall::MigrateReq`] to the destination, park
//!    [`Phase::AwaitInstall`].
//! 2. **Install (destination)** — adopt the PE into the own group,
//!    rebuild the capability table and mapping-database records (same
//!    selectors, same child-list order), resume the VPE's DDL object-id
//!    counter, reply [`KReply::Migrate`].
//! 3. **Handover (source)** — on the install reply, delete the local
//!    records, update the own membership table, and fan out
//!    [`Kcall::MembershipUpdate`] to every bystander kernel, parking
//!    [`Phase::AwaitAcks`] on a [`FanIn`] (one ack per bystander).
//! 4. **Completion (source)** — when the fan-in drains, the migration
//!    is done: every kernel routes the group's keys to the new owner.
//!
//! Migration is machine-initiated control traffic (like boot): it
//! requires the group to be quiescent — no in-flight operation may
//! reference the moving VPE. The simulation's drivers migrate only at
//! quiet points, mirroring how the paper's design keeps state "where it
//! emerges" and hands it over wholesale.

use semper_base::msg::{KReply, Kcall, MigratedCap};
use semper_base::{Code, DdlKey, Error, KernelId, OpId, PeId, Result, VpeId};
use semper_caps::{CapTable, Capability};

use crate::kernel::{Kernel, FIRST_FREE_SEL};
use crate::ops::{Awaits, FanIn, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;
use crate::vpes::VpeState;

/// Continuation of a migration awaiting the destination's install
/// reply.
#[derive(Debug, Clone)]
pub struct Install {
    /// The migrating VPE.
    pub vpe: VpeId,
    /// Its PE (the partition being reassigned).
    pub pe: PeId,
    /// The adopting kernel.
    pub dst: KernelId,
    /// Keys of the transferred records, deleted locally once the
    /// destination confirmed the install.
    pub keys: Vec<DdlKey>,
}

/// The migration protocol's phase table.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Source side: awaiting [`KReply::Migrate`] from the destination.
    AwaitInstall(Box<Install>),
    /// Source side: records handed over; awaiting membership-update
    /// acks from every bystander kernel.
    AwaitAcks {
        /// The migrated VPE (for diagnostics).
        vpe: VpeId,
        /// One completion per bystander kernel.
        fanin: FanIn,
    },
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::AwaitInstall(_) => &PhaseSpec {
                name: "migrate-await-install",
                awaits: Awaits::KReply,
                thread: Thread::Holds,
            },
            Phase::AwaitAcks { .. } => &PhaseSpec {
                name: "migrate-await-acks",
                awaits: Awaits::FanIn,
                thread: Thread::Free,
            },
        }
    }
}

impl Kernel {
    /// Starts migrating `vpe`'s capability group to kernel `dst`
    /// (machine-initiated control operation; local start of the
    /// migration protocol). Returns the modeled cycle cost of the
    /// marshalling work.
    ///
    /// Fails if the VPE is not a quiescent, migratable member of this
    /// group: it must be alive and local, must not be a registered
    /// service (the registry pins service groups), must hold no DTU
    /// endpoint activations (endpoint state is per-PE hardware the
    /// protocol does not re-home), and none of its capabilities may be
    /// under revocation.
    pub fn start_group_migration(
        &mut self,
        vpe: VpeId,
        dst: KernelId,
        out: &mut Outbox,
    ) -> Result<u64> {
        if dst == self.id || dst.idx() >= self.membership.kernel_count() {
            return Err(Error::new(Code::InvalidArgs));
        }
        if !self.vpe_alive(vpe) {
            return Err(Error::new(Code::NoSuchVpe));
        }
        let pe = self.pe_of_vpe(vpe)?;
        if self.membership.kernel_of(pe) != self.id {
            return Err(Error::new(Code::NoSuchVpe));
        }
        if self.vpes.get(&vpe).map(|v| v.is_service).unwrap_or(false) {
            return Err(Error::new(Code::InvalidArgs));
        }
        if self.eps.vpe_bound(vpe) {
            return Err(Error::new(Code::InvalidArgs));
        }
        let table = self.tables.get(&vpe).ok_or(Error::new(Code::NoSuchVpe))?;

        // Marshal the group in selector order (the table's iteration
        // order is protocol-visible and deterministic). One reference
        // plus one descriptor transfer per record.
        let mut caps = Vec::with_capacity(table.len());
        let mut keys = Vec::with_capacity(table.len());
        let mut cost = 0u64;
        for (sel, key) in table.iter() {
            let cap = self.mapdb.get(key)?;
            if cap.revoking() || cap.outstanding > 0 {
                return Err(Error::new(Code::RevokeInProgress));
            }
            caps.push(MigratedCap {
                key,
                kind: cap.kind,
                sel,
                parent: cap.parent,
                children: cap.children().collect(),
            });
            keys.push(key);
            cost += self.ref_cost() + self.cfg.cost.xfer_desc;
        }
        let next_sel = table.selector_space();
        let next_object_id = self.keys.allocated(vpe);

        let op = self.alloc_op();
        self.send_kcall(
            out,
            dst,
            Kcall::MigrateReq { op, pe, vpe, next_object_id, next_sel, caps },
        );
        self.park(
            op,
            PendingOp::Migrate(Phase::AwaitInstall(Box::new(Install { vpe, pe, dst, keys }))),
        );
        Ok(cost + self.cfg.cost.kcall_exit)
    }

    /// Request handler for [`Kcall::MigrateReq`]: adopt the PE and
    /// install the group's records (destination side).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn migrate_request(
        &mut self,
        from: KernelId,
        op: OpId,
        pe: PeId,
        vpe: VpeId,
        next_object_id: u32,
        next_sel: u32,
        caps: &[MigratedCap],
        out: &mut Outbox,
    ) -> u64 {
        debug_assert_eq!(self.membership.kernel_of(pe), from, "source must own the PE");
        debug_assert!(!self.pe2vpe.contains_key(&pe), "PE already hosts a VPE here");
        // Adopt the partition: one membership write.
        self.membership.set_kernel_of(pe, self.id);
        let mut cost = self.ref_cost();

        // Rebuild the capability table with the source's selector
        // bindings and selector-space high-water mark, and the mapping
        // database records with their child lists in original order.
        let table =
            CapTable::rehydrate(FIRST_FREE_SEL, next_sel, caps.iter().map(|c| (c.sel, c.key)));
        for rec in caps {
            let mut cap = match rec.parent {
                Some(parent) => Capability::child(rec.key, rec.kind, vpe, rec.sel, parent),
                None => Capability::root(rec.key, rec.kind, vpe, rec.sel),
            };
            for child in &rec.children {
                cap.add_child(*child);
            }
            self.mapdb.insert(cap);
            cost += self.cfg.cost.cap_insert + self.ref_cost();
        }
        self.tables.insert(vpe, table);
        self.vpes.insert(vpe, VpeState::new(vpe, pe));
        self.pe2vpe.insert(pe, vpe);
        self.keys.resume(vpe, next_object_id);
        self.stats.migrations_in += 1;

        self.send_kreply(out, from, KReply::Migrate { op, result: Ok(caps.len() as u64) });
        cost + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::AwaitInstall`]: the destination confirmed the
    /// install; delete the local records and fan out the membership
    /// update to every bystander kernel.
    pub(crate) fn migrate_installed(
        &mut self,
        op: OpId,
        install: Install,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        let Install { vpe, pe, dst, keys } = install;
        if let Err(e) = result {
            // The destination rejected atomically; the group never left.
            debug_assert!(false, "migration install failed: {e}");
            return self.cfg.cost.kcall_exit;
        }
        debug_assert_eq!(result, Ok(keys.len() as u64));

        // Hand over: drop every transferred record plus the VPE's local
        // bookkeeping, then route the partition to its new owner.
        let mut cost = 0u64;
        for key in keys {
            let removed = self.mapdb.remove(key);
            debug_assert!(removed.is_some(), "transferred record vanished");
            cost += self.cfg.cost.revoke_delete + self.ref_cost();
        }
        self.tables.remove(&vpe);
        self.vpes.remove(&vpe);
        self.pe2vpe.remove(&pe);
        self.keys.forget(vpe);
        self.membership.set_kernel_of(pe, dst);
        cost += self.ref_cost();

        // Fan out the membership update; one ack per bystander.
        let mut fanin = FanIn::new();
        for k in 0..self.membership.kernel_count() {
            let k = KernelId(k as u16);
            if k == self.id || k == dst {
                continue;
            }
            fanin.arm();
            cost += self.cfg.cost.kcall_exit;
            self.send_kcall(out, k, Kcall::MembershipUpdate { op, pe, new_kernel: dst });
        }
        if fanin.idle() {
            // Two-kernel machine: nobody else to tell.
            self.stats.migrations_out += 1;
            cost
        } else {
            self.pending.insert(op, PendingOp::Migrate(Phase::AwaitAcks { vpe, fanin }));
            cost + self.cfg.cost.thread_switch
        }
    }

    /// Request handler for [`Kcall::MembershipUpdate`] (bystander side):
    /// reroute the partition and acknowledge.
    pub(crate) fn membership_update(
        &mut self,
        from: KernelId,
        op: OpId,
        pe: PeId,
        new_kernel: KernelId,
        out: &mut Outbox,
    ) -> u64 {
        self.membership.set_kernel_of(pe, new_kernel);
        self.send_kreply(out, from, KReply::MembershipAck { op });
        self.ref_cost() + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::AwaitAcks`]: one bystander acknowledged; the
    /// migration completes when the fan-in drains.
    pub(crate) fn migrate_ack(
        &mut self,
        op: OpId,
        vpe: VpeId,
        mut fanin: FanIn,
        _out: &mut Outbox,
    ) -> u64 {
        if fanin.complete_one(0) {
            self.stats.migrations_out += 1;
            self.cfg.cost.thread_switch
        } else {
            self.pending.insert(op, PendingOp::Migrate(Phase::AwaitAcks { vpe, fanin }));
            0
        }
    }
}
