//! Capability-group migration: moving a VPE's DDL ownership between
//! kernels mid-run (§4.2) — without quiescing the group.
//!
//! The paper's membership table maps PE-id partitions to kernels so any
//! kernel can route a DDL key without global agreement (§3.2). Because
//! every capability a VPE owns carries the VPE's PE in its key, the set
//! of DDL entries owned on behalf of one VPE *is* a partition of the
//! key space — a capability group. Migrating the group to another
//! kernel is therefore a pure ownership handover: the records move, the
//! keys (and with them every cross-kernel parent/child link) stay
//! valid, and the membership tables are updated so future routing finds
//! the new owner.
//!
//! The protocol is the engine's showcase for a *new* distributed
//! operation — two phases, built entirely from engine primitives:
//!
//! 1. **Start (source kernel)** — validate (the VPE is local, alive,
//!    not a service, no endpoint activations, nothing revoking, no
//!    parked operation referencing the group), marshal the group's
//!    records in selector order, send [`Kcall::MigrateReq`] to the
//!    destination, park [`Phase::AwaitInstall`]. Validation completes
//!    before any side effect: a refused start allocates no op id,
//!    sends nothing, and charges nothing.
//! 2. **Install (destination)** — validate (the sender owns the PE per
//!    the local membership table, the PE hosts no VPE here, the VPE id
//!    is unknown), then adopt the PE into the own group, rebuild the
//!    capability table and mapping-database records (same selectors,
//!    same child-list order), resume the VPE's DDL object-id counter,
//!    reply [`KReply::Migrate`]. A validation failure replies `Err`
//!    *before* any mutation — the install is atomic.
//! 3. **Handover (source)** — on a successful install reply, delete
//!    the local records, update the own membership table, and fan out
//!    [`Kcall::MembershipUpdate`] to every bystander kernel, parking
//!    [`Phase::Draining`] on a [`FanIn`] (one ack per bystander). On
//!    an `Err` reply the group never left: the hold queue replays
//!    locally, membership stays untouched, and the failure surfaces to
//!    the initiating driver via [`Kernel::take_migration_failure`].
//! 4. **Completion (source)** — when the fan-in drains, the migration
//!    is done: every kernel routes the group's keys to the new owner,
//!    and the hold queue replays in arrival order.
//!
//! # The forward-or-hold window
//!
//! Migration no longer requires quiescence. From `start_group_migration`
//! until the bystander fan-in drains, the source kernel is a
//! **forward-or-hold proxy** for the moving group:
//!
//! * Every system call and inter-kernel request that resolves into the
//!   moving group — the moving VPE's own calls, exchanges naming it as
//!   the peer, revokes and sweep marks whose subtree touches its
//!   capabilities, kill requests — is **held** in the migration's
//!   per-op queue ([`Held`]), in arrival order. Holding (rather than
//!   forwarding mid-window) keeps the arrival order of a peer's
//!   requests intact: a forwarded op could overtake an earlier held
//!   one.
//! * When the window closes, the queue **replays in arrival order**
//!   through the ordinary dispatch entry points. Replayed traffic that
//!   now resolves to the new owner is transparently **forwarded**: a
//!   kcall travels wrapped in [`Kcall::Forwarded`] carrying the
//!   original caller, so the handler at the new owner replies straight
//!   to the originator; a stale syscall is re-emitted verbatim with
//!   its original source PE, so the reply path re-homes to the calling
//!   VPE without an extra hop back through the old owner.
//! * Bystanders that raced the membership update and still route to
//!   the old owner hit the same forward rule and are relayed instead
//!   of erroring — this also covers the (accepted) staleness window
//!   where a group migrates twice in quick succession and a bystander
//!   only saw the first move: forwards chase the membership chain,
//!   which always terminates at the current owner.
//!
//! Classic quiescent migrations take the exact same code path with an
//! empty hold queue: the window checks are host-cost-only no-ops and
//! the modeled cycle costs are bit-identical to the quiescent-only
//! protocol (pinned by `tests/determinism.rs`).

use semper_base::msg::{KReply, Kcall, MigratedCap, Payload, Syscall};
use semper_base::{Code, DdlKey, Error, KernelId, Msg, OpId, PeId, Result, VpeId};
use semper_caps::{CapTable, Capability};

use crate::kernel::{Kernel, FIRST_FREE_SEL};
use crate::ops::{Awaits, FanIn, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;
use crate::vpes::VpeState;

/// One operation intercepted during the handover window, parked in the
/// migration's hold queue and replayed in arrival order once the
/// window closes (or the migration fails and the group stays put).
#[derive(Debug, Clone)]
pub enum Held {
    /// A system call resolving into the moving group.
    Syscall {
        /// Source PE of the call (identifies the calling VPE).
        src: PeId,
        /// Reply tag.
        tag: u64,
        /// The call itself.
        call: Syscall,
    },
    /// An inter-kernel request resolving into the moving group.
    Kcall {
        /// The requesting kernel (reply target).
        from: KernelId,
        /// The request itself.
        call: Kcall,
    },
    /// A machine-initiated kill whose teardown would touch the moving
    /// group.
    Kill {
        /// The VPE to kill.
        vpe: VpeId,
    },
}

/// Continuation of a migration awaiting the destination's install
/// reply.
#[derive(Debug, Clone)]
pub struct Install {
    /// The migrating VPE.
    pub vpe: VpeId,
    /// Its PE (the partition being reassigned).
    pub pe: PeId,
    /// The adopting kernel.
    pub dst: KernelId,
    /// Keys of the transferred records, deleted locally once the
    /// destination confirmed the install.
    pub keys: Vec<DdlKey>,
    /// Operations intercepted while awaiting the install.
    pub held: Vec<Held>,
}

/// Continuation of a migration whose records are handed over, draining
/// the bystander fan-in before the hold queue replays.
#[derive(Debug, Clone)]
pub struct Drain {
    /// The migrated VPE.
    pub vpe: VpeId,
    /// Its PE (now routed to the new owner).
    pub pe: PeId,
    /// The new owner.
    pub dst: KernelId,
    /// One completion per bystander kernel.
    pub fanin: FanIn,
    /// Operations intercepted during the window, in arrival order.
    pub held: Vec<Held>,
}

/// The migration protocol's phase table.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Source side: awaiting [`KReply::Migrate`] from the destination.
    AwaitInstall(Box<Install>),
    /// Source side: records handed over; draining membership-update
    /// acks from every bystander kernel before the hold queue replays.
    Draining(Box<Drain>),
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::AwaitInstall(_) => &PhaseSpec {
                name: "migrate-await-install",
                awaits: Awaits::KReply,
                thread: Thread::Holds,
            },
            Phase::Draining(_) => {
                &PhaseSpec { name: "migrate-draining", awaits: Awaits::FanIn, thread: Thread::Free }
            }
        }
    }

    /// True if this phase references `vpe`'s group (it always does —
    /// the group cannot migrate twice concurrently).
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::AwaitInstall(i) => i.vpe == vpe,
            Phase::Draining(d) => d.vpe == vpe,
        }
    }
}

impl Kernel {
    /// Starts migrating `vpe`'s capability group to kernel `dst`
    /// (machine-initiated control operation; local start of the
    /// migration protocol). Returns the modeled cycle cost of the
    /// marshalling work.
    ///
    /// Fails if the VPE is not a migratable member of this group: it
    /// must be alive and local, must not be a registered service (the
    /// registry pins service groups), must hold no DTU endpoint
    /// activations (endpoint state is per-PE hardware the protocol does
    /// not re-home), none of its capabilities may be under revocation,
    /// and no parked operation may reference the group (in-flight ops
    /// started *before* the window would mutate the marshalled
    /// snapshot on resume; ops arriving *after* the start are held and
    /// replayed instead). Validation is side-effect-free: a refused
    /// start allocates no op id and sends nothing.
    pub fn start_group_migration(
        &mut self,
        vpe: VpeId,
        dst: KernelId,
        out: &mut Outbox,
    ) -> Result<u64> {
        if dst == self.id || dst.idx() >= self.membership.kernel_count() {
            return Err(Error::new(Code::InvalidArgs));
        }
        if !self.vpe_alive(vpe) {
            return Err(Error::new(Code::NoSuchVpe));
        }
        let pe = self.pe_of_vpe(vpe)?;
        if self.membership.kernel_of(pe) != self.id {
            return Err(Error::new(Code::NoSuchVpe));
        }
        if self.vpes.get(&vpe).map(|v| v.is_service).unwrap_or(false) {
            return Err(Error::new(Code::InvalidArgs));
        }
        if self.eps.vpe_bound(vpe) {
            return Err(Error::new(Code::InvalidArgs));
        }
        let table = self.tables.get(&vpe).ok_or(Error::new(Code::NoSuchVpe))?;

        // Validate the whole table before committing to anything: a
        // failed start must have no side effects (no op id, no
        // message, no cost).
        for (_, key) in table.iter() {
            let cap = self.mapdb.get(key)?;
            if cap.revoking() || cap.outstanding > 0 {
                return Err(Error::new(Code::RevokeInProgress));
            }
        }
        if self.pending.iter().any(|(_, p)| p.references_vpe(vpe)) {
            return Err(Error::new(Code::RevokeInProgress));
        }
        // Promise state never migrates (keys index kernel-local
        // resolution queues); refuse while the VPE owns any.
        if self.vpe_has_promise_state(vpe) {
            return Err(Error::new(Code::RevokeInProgress));
        }

        // Marshal the group in selector order (the table's iteration
        // order is protocol-visible and deterministic). One reference
        // plus one descriptor transfer per record.
        let table = self.tables.get(&vpe).expect("validated above");
        let mut caps = Vec::with_capacity(table.len());
        let mut keys = Vec::with_capacity(table.len());
        let mut cost = 0u64;
        for (sel, key) in table.iter() {
            let cap = self.mapdb.get(key).expect("validated above");
            caps.push(MigratedCap {
                key,
                kind: cap.kind,
                sel,
                parent: cap.parent,
                children: cap.children().collect(),
            });
            keys.push(key);
            cost += self.ref_cost() + self.cfg.cost.xfer_desc;
        }
        let next_sel = table.selector_space();
        let next_object_id = self.keys.allocated(vpe);

        let op = self.alloc_op();
        self.send_kcall(
            out,
            dst,
            Kcall::MigrateReq { op, pe, vpe, next_object_id, next_sel, caps },
        );
        self.park(
            op,
            PendingOp::Migrate(Phase::AwaitInstall(Box::new(Install {
                vpe,
                pe,
                dst,
                keys,
                held: Vec::new(),
            }))),
        );
        self.active_migrations.push((vpe, pe, op));
        Ok(cost + self.cfg.cost.kcall_exit)
    }

    /// Request handler for [`Kcall::MigrateReq`]: adopt the PE and
    /// install the group's records (destination side). Validation
    /// failures reply `Err` before any mutation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn migrate_request(
        &mut self,
        from: KernelId,
        op: OpId,
        pe: PeId,
        vpe: VpeId,
        next_object_id: u32,
        next_sel: u32,
        caps: &[MigratedCap],
        out: &mut Outbox,
    ) -> u64 {
        // The sender must own the PE per the local membership table
        // (anything else means the tables diverged), the PE must not
        // host a VPE here, and the VPE id must be unknown — a
        // duplicate id would silently merge two groups.
        let err = if self.membership.kernel_of(pe) != from {
            Some(Error::new(Code::InvalidArgs))
        } else if self.pe2vpe.contains_key(&pe)
            || self.vpes.contains_key(&vpe)
            || self.tables.contains_key(&vpe)
        {
            Some(Error::new(Code::Exists))
        } else {
            None
        };
        if let Some(e) = err {
            self.send_kreply(out, from, KReply::Migrate { op, result: Err(e) });
            return self.cfg.cost.kcall_exit;
        }
        // Adopt the partition: one membership write.
        self.membership.set_kernel_of(pe, self.id);
        let mut cost = self.ref_cost();

        // Rebuild the capability table with the source's selector
        // bindings and selector-space high-water mark, and the mapping
        // database records with their child lists in original order.
        let table =
            CapTable::rehydrate(FIRST_FREE_SEL, next_sel, caps.iter().map(|c| (c.sel, c.key)));
        for rec in caps {
            let mut cap = match rec.parent {
                Some(parent) => Capability::child(rec.key, rec.kind, vpe, rec.sel, parent),
                None => Capability::root(rec.key, rec.kind, vpe, rec.sel),
            };
            for child in &rec.children {
                cap.add_child(*child);
            }
            self.mapdb.insert(cap);
            cost += self.cfg.cost.cap_insert + self.ref_cost();
        }
        self.tables.insert(vpe, table);
        self.vpes.insert(vpe, VpeState::new(vpe, pe));
        self.pe2vpe.insert(pe, vpe);
        self.keys.resume(vpe, next_object_id);
        self.stats.migrations_in += 1;

        self.send_kreply(out, from, KReply::Migrate { op, result: Ok(caps.len() as u64) });
        cost + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::AwaitInstall`]: the destination confirmed (or
    /// refused) the install. On success, delete the local records and
    /// fan out the membership update to every bystander kernel. On
    /// failure the group never left: membership stays untouched, the
    /// hold queue replays locally, and the error is recorded for the
    /// initiating driver.
    pub(crate) fn migrate_installed(
        &mut self,
        op: OpId,
        install: Install,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        let Install { vpe, pe, dst, keys, held } = install;
        if let Err(e) = result {
            // The destination rejected atomically; the group never
            // left. Unwind the window and surface the error.
            self.active_migrations.retain(|&(v, _, _)| v != vpe);
            self.migration_failures.push((vpe, e));
            self.stats.migrations_failed += 1;
            return self.cfg.cost.kcall_exit + self.replay_held(held, out);
        }
        debug_assert_eq!(result, Ok(keys.len() as u64));

        // Hand over: drop every transferred record plus the VPE's local
        // bookkeeping, then route the partition to its new owner.
        let mut cost = 0u64;
        for key in keys {
            let removed = self.mapdb.remove(key);
            debug_assert!(removed.is_some(), "transferred record vanished");
            cost += self.cfg.cost.revoke_delete + self.ref_cost();
        }
        self.tables.remove(&vpe);
        self.vpes.remove(&vpe);
        self.pe2vpe.remove(&pe);
        self.keys.forget(vpe);
        self.membership.set_kernel_of(pe, dst);
        cost += self.ref_cost();

        // Fan out the membership update; one ack per bystander.
        let mut fanin = FanIn::new();
        for k in 0..self.membership.kernel_count() {
            let k = KernelId(k as u16);
            if k == self.id || k == dst {
                continue;
            }
            fanin.arm();
            cost += self.cfg.cost.kcall_exit;
            self.send_kcall(out, k, Kcall::MembershipUpdate { op, pe, new_kernel: dst });
        }
        if fanin.idle() {
            // Two-kernel machine: nobody else to tell.
            cost + self.migration_complete(vpe, held, out)
        } else {
            self.pending.insert(
                op,
                PendingOp::Migrate(Phase::Draining(Box::new(Drain { vpe, pe, dst, fanin, held }))),
            );
            cost + self.cfg.cost.thread_switch
        }
    }

    /// Request handler for [`Kcall::MembershipUpdate`] (bystander side):
    /// reroute the partition and acknowledge.
    pub(crate) fn membership_update(
        &mut self,
        from: KernelId,
        op: OpId,
        pe: PeId,
        new_kernel: KernelId,
        out: &mut Outbox,
    ) -> u64 {
        self.membership.set_kernel_of(pe, new_kernel);
        self.send_kreply(out, from, KReply::MembershipAck { op });
        self.ref_cost() + self.cfg.cost.kcall_exit
    }

    /// Resumes [`Phase::Draining`]: one bystander acknowledged; the
    /// migration completes (and the hold queue replays) when the
    /// fan-in drains.
    pub(crate) fn migrate_ack(&mut self, op: OpId, mut drain: Box<Drain>, out: &mut Outbox) -> u64 {
        if drain.fanin.complete_one(0) {
            let Drain { vpe, held, .. } = *drain;
            self.cfg.cost.thread_switch + self.migration_complete(vpe, held, out)
        } else {
            self.pending.insert(op, PendingOp::Migrate(Phase::Draining(drain)));
            0
        }
    }

    /// Closes the handover window: the group is fully routed to the new
    /// owner everywhere. Replays the hold queue in arrival order;
    /// replayed traffic that resolves to the new owner takes the
    /// forward rule. Returns the modeled cost of the replayed work
    /// (zero for a quiescent migration).
    pub(crate) fn migration_complete(
        &mut self,
        vpe: VpeId,
        held: Vec<Held>,
        out: &mut Outbox,
    ) -> u64 {
        self.stats.migrations_out += 1;
        self.active_migrations.retain(|&(v, _, _)| v != vpe);
        self.replay_held(held, out)
    }

    /// Re-dispatches held operations in arrival order through the
    /// ordinary entry points (so they hit the same resolution, hold,
    /// and forward rules as fresh traffic).
    fn replay_held(&mut self, held: Vec<Held>, out: &mut Outbox) -> u64 {
        let mut cost = 0;
        for h in held {
            match h {
                Held::Syscall { src, tag, call } => {
                    cost += self.handle_syscall(src, tag, &call, out);
                }
                Held::Kcall { from, call } => {
                    cost += self.cfg.cost.kcall_entry + self.dispatch_kcall(from, &call, out);
                }
                Held::Kill { vpe } => {
                    if self.vpe_alive(vpe) {
                        cost += self.kill_vpe_request(vpe, out);
                    } else if let Ok(owner) = self.kernel_of_vpe(vpe) {
                        if owner != self.id {
                            self.send_kcall(out, owner, Kcall::KillVpe { vpe });
                            cost += self.cfg.cost.kcall_exit;
                        }
                    }
                }
            }
        }
        cost
    }

    // ----- the forward-or-hold window -----------------------------------

    /// The driver-facing failure channel: takes (and clears) the
    /// recorded error of a failed migration of `vpe`, if any.
    pub fn take_migration_failure(&mut self, vpe: VpeId) -> Option<Error> {
        let idx = self.migration_failures.iter().position(|(v, _)| *v == vpe)?;
        Some(self.migration_failures.remove(idx).1)
    }

    /// The active migration moving `vpe`, if any.
    pub(crate) fn migration_of_vpe(&self, vpe: VpeId) -> Option<OpId> {
        self.active_migrations.iter().find(|&&(v, _, _)| v == vpe).map(|&(_, _, op)| op)
    }

    /// The active migration moving the VPE on `pe`, if any.
    pub(crate) fn migration_of_pe(&self, pe: PeId) -> Option<OpId> {
        self.active_migrations.iter().find(|&&(_, p, _)| p == pe).map(|&(_, _, op)| op)
    }

    /// Walks the capability subtree under `root` (local records only)
    /// and returns the migration the subtree resolves into, if any: a
    /// revoke or sweep starting here would mark records mid-marshal.
    /// Keys owned elsewhere are skipped — the remote owner applies its
    /// own window when the fan-out reaches it.
    pub(crate) fn subtree_touches_migrating(&self, root: DdlKey) -> Option<OpId> {
        let mut stack = vec![root];
        while let Some(key) = stack.pop() {
            if let Some(op) = self.migration_of_vpe(key.vpe()) {
                return Some(op);
            }
            if let Ok(cap) = self.mapdb.get(key) {
                stack.extend(cap.children());
            }
        }
        None
    }

    /// The migration a system call from `vpe` resolves into, if any
    /// (the caller itself is checked via [`Kernel::migration_of_pe`]
    /// before PE resolution).
    pub(crate) fn syscall_touches_migrating(&self, vpe: VpeId, call: &Syscall) -> Option<OpId> {
        match call {
            Syscall::Exchange { other, .. } => self.migration_of_vpe(*other),
            Syscall::Revoke { sel, .. } => {
                let key = self.tables.get(&vpe)?.get(*sel).ok()?;
                self.subtree_touches_migrating(key)
            }
            Syscall::Exit => {
                let table = self.tables.get(&vpe)?;
                table.iter().find_map(|(_, key)| self.subtree_touches_migrating(key))
            }
            Syscall::Batch(items) => {
                items.iter().find_map(|item| self.syscall_touches_migrating(vpe, item))
            }
            Syscall::SubmitAsync(inner) => self.syscall_touches_migrating(vpe, inner),
            _ => None,
        }
    }

    /// The migration an inter-kernel request resolves into, if any.
    /// Requests correlated to an op parked *at the sender* before the
    /// window opened cannot reference the group (the start validation
    /// refuses to open the window over them), so op-correlated
    /// continuations (`DelegateAck`, sweep delete/done) are never held.
    pub(crate) fn migration_holding_kcall(&self, call: &Kcall) -> Option<OpId> {
        match call {
            Kcall::ObtainReq { owner_vpe, .. } => self.migration_of_vpe(*owner_vpe),
            Kcall::DelegateReq { recv_vpe, .. } => self.migration_of_vpe(*recv_vpe),
            Kcall::RevokeReq { cap_key, .. } => self.subtree_touches_migrating(*cap_key),
            Kcall::OrphanNotice { parent_key, .. } => self.migration_of_vpe(parent_key.vpe()),
            Kcall::RevokeBatchReq { cap_keys, .. } | Kcall::SweepMarkReq { cap_keys, .. } => {
                cap_keys.iter().find_map(|k| self.subtree_touches_migrating(*k))
            }
            Kcall::KillVpe { vpe } => self.migration_of_vpe(*vpe),
            Kcall::Provide { recv_vpe, .. } => self.migration_of_vpe(*recv_vpe),
            _ => None,
        }
    }

    /// The migration a machine-initiated kill of `vpe` resolves into,
    /// if any: the VPE itself is moving, or its exit-revocation would
    /// sweep into a moving subtree.
    pub(crate) fn migration_holding_kill(&self, vpe: VpeId) -> Option<OpId> {
        if let Some(op) = self.migration_of_vpe(vpe) {
            return Some(op);
        }
        let table = self.tables.get(&vpe)?;
        table.iter().find_map(|(_, key)| self.subtree_touches_migrating(key))
    }

    /// Parks an intercepted operation in its migration's hold queue.
    pub(crate) fn hold_op(&mut self, op: OpId, held: Held) {
        self.stats.ops_held += 1;
        match self.pending.get_mut(op) {
            Some(PendingOp::Migrate(Phase::AwaitInstall(i))) => i.held.push(held),
            Some(PendingOp::Migrate(Phase::Draining(d))) => d.held.push(held),
            _ => debug_assert!(false, "hold target {op:?} is not an active migration"),
        }
    }

    /// The kernel an incoming request should be relayed to when the
    /// group it names is owned elsewhere (a bystander raced the
    /// membership update, or a held op replays after the handover).
    /// `None` on every classic path: requests that arrive at their
    /// owner dispatch locally, and op-correlated continuations are
    /// never relayed whole (batched revokes and sweep marks relocate
    /// per key inside their handlers instead).
    pub(crate) fn kcall_forward_target(&self, call: &Kcall) -> Option<KernelId> {
        let owner = match call {
            Kcall::ObtainReq { owner_vpe, .. } => self.kernel_of_vpe(*owner_vpe).ok()?,
            Kcall::DelegateReq { recv_vpe, .. } => self.kernel_of_vpe(*recv_vpe).ok()?,
            Kcall::RevokeReq { cap_key, .. } => self.membership.kernel_of_key(*cap_key),
            Kcall::OrphanNotice { parent_key, .. } => self.membership.kernel_of_key(*parent_key),
            Kcall::KillVpe { vpe } => self.kernel_of_vpe(*vpe).ok()?,
            Kcall::Provide { recv_vpe, .. } => self.kernel_of_vpe(*recv_vpe).ok()?,
            _ => return None,
        };
        (owner != self.id).then_some(owner)
    }

    /// Relays a stale system call to the group's current owner: the
    /// message is re-emitted verbatim with its original source PE, so
    /// the owner resolves the calling VPE normally and replies to it
    /// directly (the re-homed reply path).
    pub(crate) fn forward_syscall(
        &mut self,
        src: PeId,
        tag: u64,
        call: &Syscall,
        owner: KernelId,
        out: &mut Outbox,
    ) -> u64 {
        self.stats.syscalls_forwarded += 1;
        let dst = self.membership.kernel_pe(owner);
        out.push(Msg::new(src, dst, Payload::Sys { tag, call: call.clone() }));
        self.cfg.cost.syscall_exit
    }
}
