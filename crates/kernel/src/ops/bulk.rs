//! Batched system calls on the op engine ([`Syscall::Batch`]).
//!
//! The paper's headline scalability lever is treating capability
//! operations *in bulk*: grouping them so the per-message costs — DTU
//! headers, syscall round trips, cross-kernel requests — are paid once
//! per group instead of once per operation (§5.2 proposes exactly this
//! for revocation messages). This module is the application-facing half
//! of that lever: one [`Syscall::Batch`] carries N capability
//! operations in one message, the kernel executes them and replies once
//! with per-item results ([`SysReplyData::Batch`]).
//!
//! # Execution model
//!
//! Items execute **in order**, one sub-operation at a time, so a batch
//! is observably equivalent to issuing the same calls sequentially
//! (property-tested in `tests/proptests.rs`) — with one deliberate
//! exception: a run of **consecutive `Revoke` items** is coalesced into
//! a *single* revocation fan-out. All roots of the run are resolved and
//! marked together, and the cross-kernel revoke requests for their
//! remote children are grouped into one
//! [`Kcall::RevokeBatchReq`](semper_base::msg::Kcall::RevokeBatchReq)
//! per destination kernel — the "single fan-out phase" that makes a batched
//! revoke of N spanning capabilities cost one round trip per peer
//! kernel instead of N. The shared [`FanIn`](crate::ops::FanIn) counts
//! the grouped completions; every item of the run completes when the
//! combined sweep finishes (a revoke is never acknowledged while part
//! of its subtree survives, per Algorithm 1).
//!
//! Coalescing changes one edge case relative to sequential issue:
//! revokes in one run whose subtrees *overlap* (duplicate selectors, or
//! a root inside another root's subtree) all complete with `Ok` —
//! sequentially, the later one would find its capability already gone
//! and fail with `NoSuchCap`. Both orders leave the same final state
//! (everything revoked); the batch reports the conservative outcome.
//!
//! # How items reuse the single-call handlers
//!
//! Each non-revoke item is started through the *same* `sys_*` entry
//! handler the standalone call uses, with the item index as its
//! (kernel-internal) reply tag. The single dispatch point every handler
//! funnels completions through — [`Kernel::reply_sys`] — checks whether
//! the destination VPE has an active batch: if so, the "reply" is
//! recorded as that item's result instead of leaving as a message, and
//! the batch advances to the next item. The standalone handlers are
//! therefore literally the N=1 case of this path; nothing about their
//! execution, costs, or messages changes when no batch is active.
//!
//! # Thread accounting
//!
//! The batch occupies the calling VPE's one blocking system call, so
//! it is worth exactly one cooperative kernel thread (§4.2). Ordered
//! execution means at most one sub-operation is suspended at a time,
//! and that sub-operation's parked phase already carries the thread
//! (exchange and session phases declare `Thread::Holds`; the coalesced
//! revoke declares it via [`Initiator::Bulk`]). The batch op itself is
//! therefore accounted `Thread::Free` — counting it too would bill two
//! threads for one blocked VPE.

use semper_base::msg::{SysReplyData, Syscall};
use semper_base::{CapSel, Code, Error, OpId, Result, VpeId};

use crate::kernel::Kernel;
use crate::ops::revoke::Initiator;
use crate::ops::{Awaits, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;

/// A batched system call in progress.
#[derive(Debug, Clone)]
pub struct BulkOp {
    /// The calling VPE (blocked on the batch).
    pub vpe: VpeId,
    /// Tag of the batch system call, echoed in the combined reply.
    pub tag: u64,
    /// The items, in submission order.
    pub items: Box<[Syscall]>,
    /// Index of the next item to start.
    pub next: usize,
    /// Per-item results; `None` while an item has not completed.
    pub results: Vec<Option<Result<SysReplyData>>>,
    /// Items started but not yet completed (0 or, during a coalesced
    /// revoke run, the run length).
    pub outstanding: u32,
    /// True while [`Kernel::bulk_advance`] is executing — synchronous
    /// item completions must record their result without re-entering
    /// the advance loop (which would recurse once per item).
    pub advancing: bool,
}

/// The batch protocol's phase table: one phase — the batch itself,
/// awaiting the fan-in of its current sub-operation.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Executing items; parked whenever a sub-operation is in flight.
    Run(Box<BulkOp>),
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::Run(_) => {
                &PhaseSpec { name: "bulk-batch", awaits: Awaits::FanIn, thread: Thread::Free }
            }
        }
    }

    /// True if resuming this phase would touch `vpe`'s capability
    /// group (see [`crate::ops::PendingOp::references_vpe`]).
    /// Conservative: open items' selectors cannot be resolved without
    /// kernel context, so any open revoke or exit item counts as
    /// referencing every group.
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::Run(b) => {
                b.vpe == vpe
                    || b.items.iter().enumerate().any(|(i, item)| {
                        b.results[i].is_none()
                            && match item {
                                Syscall::Exchange { other, .. } => *other == vpe,
                                Syscall::Revoke { .. } | Syscall::Exit => true,
                                _ => false,
                            }
                    })
            }
        }
    }
}

/// What the advance loop decided to do next (computed under the ledger
/// borrow, acted on after releasing it).
enum Step {
    /// A sub-operation is in flight; park until it completes.
    Parked,
    /// Every item has a result; send the combined reply.
    Finalize,
    /// Start a coalesced run of consecutive revoke items.
    Revokes(VpeId, Vec<(usize, CapSel, bool)>),
    /// Start one non-revoke item.
    One(VpeId, usize, Syscall),
}

impl Kernel {
    /// Entry point for the `Batch` system call.
    pub(crate) fn sys_batch(
        &mut self,
        vpe: VpeId,
        tag: u64,
        items: &[Syscall],
        out: &mut Outbox,
    ) -> u64 {
        if items.is_empty() {
            self.reply_sys(out, vpe, tag, Ok(SysReplyData::Batch(Box::default())));
            return self.cfg.cost.syscall_exit;
        }
        // Syscalls from a VPE with an active batch — including a second
        // batch — are refused by `handle_syscall` before any handler
        // runs, so the interception funnel below cannot misfire.
        debug_assert!(!self.bulk_by_vpe.contains_key(&vpe), "{vpe} batch-while-batch not refused");
        let op = self.alloc_op();
        let bulk = BulkOp {
            vpe,
            tag,
            items: items.to_vec().into_boxed_slice(),
            next: 0,
            results: vec![None; items.len()],
            outstanding: 0,
            advancing: false,
        };
        self.park(op, PendingOp::Bulk(Phase::Run(Box::new(bulk))));
        self.bulk_by_vpe.insert(vpe, op);
        self.bulk_advance(op, out)
    }

    /// Runs batch items until one parks, the batch completes, or the
    /// batch was torn down. Returns the modeled cost of the work done
    /// in this invocation.
    pub(crate) fn bulk_advance(&mut self, op: OpId, out: &mut Outbox) -> u64 {
        let mut cost = 0;
        loop {
            // Decide the next step under a short ledger borrow.
            let step = {
                let Some(PendingOp::Bulk(Phase::Run(b))) = self.pending.get_mut(op) else {
                    // Torn down (the VPE died mid-batch).
                    return cost;
                };
                if b.outstanding > 0 {
                    b.advancing = false;
                    Step::Parked
                } else if b.next >= b.items.len() {
                    Step::Finalize
                } else {
                    b.advancing = true;
                    let idx = b.next;
                    let vpe = b.vpe;
                    match b.items[idx] {
                        Syscall::Revoke { .. } => {
                            let mut run = Vec::new();
                            let mut end = idx;
                            while let Some(Syscall::Revoke { sel, own }) = b.items.get(end) {
                                run.push((end, *sel, *own));
                                end += 1;
                            }
                            b.next = end;
                            b.outstanding = run.len() as u32;
                            Step::Revokes(vpe, run)
                        }
                        ref item => {
                            b.next = idx + 1;
                            b.outstanding = 1;
                            Step::One(vpe, idx, item.clone())
                        }
                    }
                }
            };
            match step {
                Step::Parked => return cost,
                Step::Finalize => {
                    let Some(PendingOp::Bulk(Phase::Run(b))) = self.pending.remove(op) else {
                        unreachable!("checked above");
                    };
                    self.bulk_by_vpe.remove(&b.vpe);
                    let results: Vec<Result<SysReplyData>> =
                        b.results.into_iter().map(|r| r.expect("every item completed")).collect();
                    // The batch entry is gone, so this reply leaves as a
                    // real message.
                    self.reply_sys(out, b.vpe, b.tag, Ok(SysReplyData::Batch(Box::new(results))));
                    return cost + self.cfg.cost.syscall_exit;
                }
                Step::Revokes(vpe, run) => {
                    cost += run.len() as u64 * self.cfg.cost.batch_item;
                    cost += self.bulk_start_revokes(op, vpe, run, out);
                }
                Step::One(vpe, idx, item) => {
                    cost += self.cfg.cost.batch_item;
                    cost += self.bulk_start_item(vpe, idx, item, out);
                }
            }
            // Loop: if the step completed synchronously (its reply was
            // intercepted and `outstanding` is back to 0), continue with
            // the next item; otherwise the top of the loop parks.
        }
    }

    /// Starts one non-revoke item through the standalone entry handler,
    /// with the item index as its internal reply tag. Whatever path the
    /// handler completes on — synchronously here, or via the reply
    /// router rounds later — its `reply_sys` is intercepted and becomes
    /// the item's result.
    fn bulk_start_item(&mut self, vpe: VpeId, idx: usize, item: Syscall, out: &mut Outbox) -> u64 {
        let tag = idx as u64;
        match item {
            Syscall::Noop => {
                self.reply_sys(out, vpe, tag, Ok(SysReplyData::None));
                self.cfg.cost.syscall_exit
            }
            Syscall::CreateMem { size, perms } => self.sys_create_mem(vpe, tag, size, perms, out),
            Syscall::DeriveMem { src, offset, size, perms } => {
                self.sys_derive_mem(vpe, tag, src, offset, size, perms, out)
            }
            Syscall::Exchange { other, own_sel, other_sel, kind } => {
                self.sys_exchange(vpe, tag, other, own_sel, other_sel, kind, out)
            }
            Syscall::CreateSrv { name } => self.sys_create_srv(vpe, tag, name, out),
            Syscall::OpenSession { name } => self.sys_open_session(vpe, tag, name, out),
            Syscall::Activate { sel, ep } => self.sys_activate(vpe, tag, sel, ep, out),
            Syscall::Exit
            | Syscall::Batch(_)
            | Syscall::SubmitAsync(_)
            | Syscall::WaitPromise { .. } => {
                // Exit has no reply to batch; nested batches would nest
                // the one-blocking-syscall invariant; the promise calls
                // have their own pipelining and would tangle the batch's
                // reply funnel. All are rejected per item so the rest of
                // the batch still runs.
                self.reply_sys(out, vpe, tag, Err(Error::new(Code::NotSupported)));
                0
            }
            Syscall::Revoke { .. } => unreachable!("revokes take the coalesced path"),
        }
    }

    /// Resolves and starts a coalesced run of consecutive revoke items:
    /// per-item root resolution (failures and childless `own = false`
    /// targets complete immediately, exactly as standalone calls
    /// would), then **one** combined revocation over all remaining
    /// roots. Duplicate and nested roots fold into the first
    /// occurrence's marked subtree; the combined fan-out groups its
    /// cross-kernel requests per destination kernel.
    fn bulk_start_revokes(
        &mut self,
        op: OpId,
        vpe: VpeId,
        run: Vec<(usize, CapSel, bool)>,
        out: &mut Outbox,
    ) -> u64 {
        let first_item = run[0].0 as u32;
        let items = run.len() as u32;
        let mut roots = Vec::new();
        let mut cost = 0;
        for (idx, sel, own) in run {
            match self.revoke_roots(vpe, sel, own) {
                Err(e) => {
                    self.reply_sys(out, vpe, idx as u64, Err(e));
                    cost += self.cfg.cost.syscall_exit;
                }
                Ok(r) if r.is_empty() => {
                    // Revoking the children of a childless capability.
                    self.stats.revokes_local += 1;
                    self.reply_sys(out, vpe, idx as u64, Ok(SysReplyData::None));
                    cost += self.cfg.cost.syscall_exit;
                }
                Ok(r) => roots.extend(r),
            }
        }
        if roots.is_empty() {
            return cost;
        }
        cost + self.start_revoke(roots, Initiator::Bulk { batch: op, first_item, items }, out)
    }

    /// Completion of a coalesced revoke run: every item of the run that
    /// did not already complete at resolution time completes now — the
    /// combined sweep covered all their subtrees. Counted as one
    /// revocation per item (the batch is N operations, not one),
    /// classified by the *combined* operation's locality: if any item
    /// of the run reached another kernel, the whole run counts as
    /// spanning. Sequential issue would classify each item separately;
    /// per-item attribution is unknowable here because the coalesced
    /// mark phase pools all roots' remote children into one fan-out.
    pub(crate) fn bulk_revokes_done(
        &mut self,
        batch: OpId,
        first_item: u32,
        items: u32,
        spanning: bool,
        out: &mut Outbox,
    ) {
        for idx in first_item..first_item + items {
            let open = match self.pending.get(batch) {
                Some(PendingOp::Bulk(Phase::Run(b))) => b.results[idx as usize].is_none(),
                // The batch was torn down (its VPE died mid-run).
                _ => return,
            };
            if !open {
                continue;
            }
            if spanning {
                self.stats.revokes_spanning += 1;
            } else {
                self.stats.revokes_local += 1;
            }
            self.bulk_item_done(batch, idx as usize, Ok(SysReplyData::None), out);
        }
    }

    /// Records one item's result. When this was the batch's in-flight
    /// sub-operation and the advance loop is not already on the stack,
    /// execution continues with the next item (the cost of that
    /// continuation is accounted to the current handler through the
    /// kernel's bulk-cost accumulator).
    pub(crate) fn bulk_item_done(
        &mut self,
        op: OpId,
        idx: usize,
        result: Result<SysReplyData>,
        out: &mut Outbox,
    ) {
        let advance = {
            let Some(PendingOp::Bulk(Phase::Run(b))) = self.pending.get_mut(op) else {
                // Torn down; drop the late result.
                return;
            };
            debug_assert!(idx < b.results.len(), "batch item index {idx} out of range");
            if b.results[idx].is_some() {
                debug_assert!(false, "batch item {idx} completed twice");
                return;
            }
            b.results[idx] = Some(result);
            b.outstanding -= 1;
            b.outstanding == 0 && !b.advancing
        };
        if advance {
            let cost = self.bulk_advance(op, out);
            self.bulk_extra_cost += cost;
        }
    }
}
