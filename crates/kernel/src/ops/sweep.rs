//! Partitioned parallel revocation sweeps
//! ([`Feature::ParallelSweep`](semper_base::config::Feature::ParallelSweep)).
//!
//! The classic protocol ([`super::revoke`]) drives a spanning
//! revocation as a chain of per-subtree requests: each remote child
//! becomes one `RevokeReq`, whose handler recursively fans out again.
//! A *dense* subtree spanning many kernels therefore pays one request
//! round trip per remote edge, serialised through the initiating
//! kernel's credit window — the adversarial chain of §5.2.
//!
//! This module is the GC-style alternative the paper's revocation
//! design invites (two cooperating phases over a partitioned heap): the
//! initiating kernel becomes the **coordinator** and drives the whole
//! revocation as a two-phase **mark → delete** protocol:
//!
//! 1. **Mark.** The coordinator marks its local region, then partitions
//!    the remote children *by owning kernel* and sends each owner one
//!    [`Kcall::SweepMarkReq`] covering its whole partition. Each
//!    participant marks its partition in one handler dispatch and
//!    replies with the *frontier* — remote children it encountered —
//!    which the coordinator regroups and forwards as the next round.
//!    Rounds touch only the kernels on the subtree's ownership
//!    boundary, so the partitions mark concurrently in sim time.
//! 2. **Delete.** When every mark round has completed and the
//!    coordinator's dependencies on concurrent revocations drained, it
//!    orders each participant to delete its partition
//!    ([`Kcall::SweepDeleteReq`]) — again one message and one batched
//!    deletion pass per partition — and deletes its own region. The
//!    shared [`FanIn`] collects the per-partition deletion counts.
//!
//! # Completeness (Table 2) and dependency deferral
//!
//! A revoke must never be acknowledged while part of its subtree
//! survives. The sweep preserves this the same way the classic
//! protocol does — the initiator is notified only after every
//! partition reported deletion — but *dependencies* need one extra
//! rule: an operation that found a sweep-marked capability waits in
//! `revoke_waiters` like before, yet a participant deleting its
//! partition must **not** fire those waiters locally. The capability's
//! descendants may live in other partitions that are still being
//! deleted; releasing a dependent early would let it acknowledge an
//! incomplete revocation. Participants therefore collect woken waiters
//! into their partition state and fire them only on the coordinator's
//! [`Kcall::SweepDoneNotice`], sent after the whole sweep completed.
//!
//! # Deadlock freedom
//!
//! Dependencies are only created when a mark walk finds a capability
//! another operation already marked. For single-root operations the
//! marked regions are contiguous subtree territories entered at their
//! topmost node, which gives the same acyclic ordering as the classic
//! protocol: an operation can depend only on operations rooted inside
//! its own subtree, which cannot depend back (their walks never reach
//! the outer root). Multi-root bulk runs fold their own overlaps via
//! the per-operation marked set, exactly as the classic coalesced path
//! does.

use std::collections::BTreeMap;

use semper_base::msg::{KReply, Kcall};
use semper_base::{DdlKey, DetHashSet, KernelId, OpId, RawDdlKey, VpeId};

use crate::kernel::Kernel;
use crate::ops::revoke::{Initiator, ReadyOp, RevokeOp};
use crate::ops::{Awaits, FanIn, PendingOp, PhaseSpec, Thread};
use crate::outbox::Outbox;

/// Minimum fan-out (remote children) at which a single-kernel-bound
/// revocation is still worth partitioning; any fan-out that spans two
/// or more kernels converts unconditionally.
pub(crate) const SWEEP_MIN_FANOUT: usize = 8;

/// Coordinator state of a partitioned sweep.
#[derive(Debug, Clone)]
pub struct SweepOp {
    /// Who to notify when the whole sweep completed.
    pub initiator: Initiator,
    /// Dependencies on concurrent revocations found by the
    /// coordinator's own mark walks; deletion is ordered only once they
    /// drained.
    pub deps: u32,
    /// Mark requests (rounds × partitions) without a reply yet.
    pub marks_outstanding: u32,
    /// Delete-phase fan-in: one arm per participant, tallying deleted
    /// capabilities (including the coordinator's own region).
    pub fanin: FanIn,
    /// Roots of the coordinator's marked local region.
    pub local_roots: Vec<DdlKey>,
    /// Participant kernels in first-contact order (delete orders and
    /// the completion notice walk this list).
    pub participants: Vec<KernelId>,
    /// Waiters on coordinator-deleted capabilities, deferred to sweep
    /// completion.
    pub woken: Vec<OpId>,
    /// Keys the coordinator marked (folds frontier keys that bounce
    /// back into the coordinator's own region).
    pub marked: DetHashSet<RawDdlKey>,
    /// Frontier-expansion rounds run so far (statistics: sweep depth).
    pub rounds: u64,
}

/// Participant state: one kernel's partition of a remote sweep.
#[derive(Debug, Clone)]
pub struct SweepPart {
    /// The coordinating kernel.
    pub caller: KernelId,
    /// The coordinator's correlation id (identifies the sweep).
    pub caller_op: OpId,
    /// Roots of the partition's marked subtrees.
    pub roots: Vec<DdlKey>,
    /// Keys this partition marked (folds later-round keys that land
    /// inside an already marked region — and keeps them from becoming
    /// self-dependencies).
    pub marked: DetHashSet<RawDdlKey>,
    /// Dependencies on concurrent revocations; the delete reply waits
    /// for them.
    pub deps: u32,
    /// True once the coordinator ordered deletion.
    pub delete_requested: bool,
    /// True once the partition was deleted (awaiting the done notice).
    pub swept: bool,
    /// Waiters on partition-deleted capabilities, deferred to the
    /// coordinator's done notice.
    pub woken: Vec<OpId>,
}

/// The sweep protocol's phase table.
#[derive(Debug, Clone)]
pub enum Phase {
    /// Coordinator, mark phase: awaiting mark replies and dependency
    /// drains.
    Coordinate(SweepOp),
    /// Coordinator, delete phase: awaiting per-partition delete
    /// replies.
    Collect(SweepOp),
    /// Participant: one partition, alive from the first mark request
    /// until the done notice.
    Partition(SweepPart),
}

impl Phase {
    /// The declared spec of each phase.
    pub fn spec(&self) -> &'static PhaseSpec {
        match self {
            Phase::Coordinate(_) => &PhaseSpec {
                name: "sweep-mark",
                awaits: Awaits::FanIn,
                thread: Thread::PerInitiator,
            },
            Phase::Collect(_) => &PhaseSpec {
                name: "sweep-delete",
                awaits: Awaits::FanIn,
                thread: Thread::PerInitiator,
            },
            Phase::Partition(_) => {
                &PhaseSpec { name: "sweep-part", awaits: Awaits::FanIn, thread: Thread::Free }
            }
        }
    }

    /// True if resuming this phase would touch `vpe`'s capability
    /// group (see [`crate::ops::PendingOp::references_vpe`]). Marked
    /// subtree members are also caught by the migration start's table
    /// validation (`revoking()`); this covers the initiator and the
    /// recorded roots.
    pub fn references_vpe(&self, vpe: VpeId) -> bool {
        match self {
            Phase::Coordinate(s) | Phase::Collect(s) => {
                let initiator = match s.initiator {
                    Initiator::Syscall { vpe: v, .. } => v == vpe,
                    Initiator::Kcall { cap_key, .. } => cap_key.vpe() == vpe,
                    Initiator::Internal | Initiator::Batch { .. } | Initiator::Bulk { .. } => false,
                };
                initiator || s.local_roots.iter().any(|k| k.vpe() == vpe)
            }
            Phase::Partition(p) => p.roots.iter().any(|k| k.vpe() == vpe),
        }
    }
}

impl Kernel {
    /// Converts a freshly marked revocation into a partitioned sweep:
    /// the local mark is done, `remote` holds the round-0 frontier, and
    /// the revoke's fan-in carries only dependency arms (no requests
    /// were sent). Groups the frontier by owning kernel, fires one mark
    /// request per partition, and parks as coordinator.
    pub(crate) fn start_sweep(
        &mut self,
        op_id: OpId,
        rop: RevokeOp,
        remote: &mut Vec<(KernelId, DdlKey)>,
        marked: DetHashSet<RawDdlKey>,
        out: &mut Outbox,
    ) -> u64 {
        debug_assert_eq!(rop.fanin.tally(), 0, "no completions before conversion");
        self.stats.sweeps += 1;
        let mut s = SweepOp {
            initiator: rop.initiator,
            deps: rop.fanin.outstanding(),
            marks_outstanding: 0,
            fanin: FanIn::new(),
            local_roots: rop.local_roots,
            participants: Vec::new(),
            woken: Vec::new(),
            marked,
            rounds: 0,
        };
        let mut by_kernel: BTreeMap<KernelId, Vec<DdlKey>> = BTreeMap::new();
        for (k, key) in remote.drain(..) {
            debug_assert_ne!(k, self.id, "local children are marked, not partitioned");
            by_kernel.entry(k).or_default().push(key);
        }
        let cost = self.sweep_send_marks(op_id, &mut s, by_kernel, out);
        self.park(op_id, PendingOp::Sweep(Phase::Coordinate(s)));
        cost + self.cfg.cost.thread_switch
    }

    /// Sends one grouped mark request per partition of `by_kernel`,
    /// arming the coordinator's mark counter and recording first-time
    /// participants.
    fn sweep_send_marks(
        &mut self,
        op_id: OpId,
        s: &mut SweepOp,
        by_kernel: BTreeMap<KernelId, Vec<DdlKey>>,
        out: &mut Outbox,
    ) -> u64 {
        let mut cost = 0;
        for (k, cap_keys) in by_kernel {
            self.stats.sweep_fanout += cap_keys.len() as u64;
            s.marks_outstanding += 1;
            if !s.participants.contains(&k) {
                s.participants.push(k);
                self.stats.sweep_partitions += 1;
            }
            cost += self.cfg.cost.kcall_exit + self.cfg.cost.sweep_key * cap_keys.len() as u64;
            self.send_kcall(out, k, Kcall::SweepMarkReq { op: op_id, cap_keys });
        }
        cost
    }

    /// Request handler for [`Kcall::SweepMarkReq`]: marks the partition
    /// extension rooted at `cap_keys` in one dispatch and replies with
    /// the frontier of remote children. The partition op is created on
    /// first contact and lives until the done notice.
    pub(crate) fn sweep_mark_request(
        &mut self,
        from: KernelId,
        caller_op: OpId,
        cap_keys: &[DdlKey],
        out: &mut Outbox,
    ) -> u64 {
        let local = match self.sweep_parts.get(&(from, caller_op)) {
            Some(&id) => id,
            None => {
                let id = self.alloc_op();
                self.sweep_parts.insert((from, caller_op), id);
                self.park(
                    id,
                    PendingOp::Sweep(Phase::Partition(SweepPart {
                        caller: from,
                        caller_op,
                        roots: Vec::new(),
                        marked: Default::default(),
                        deps: 0,
                        delete_requested: false,
                        swept: false,
                        woken: Vec::new(),
                    })),
                );
                id
            }
        };
        // Take the partition out of the ledger for the walk (the walk
        // borrows the mapping database mutably); reinserted below.
        let Some(PendingOp::Sweep(Phase::Partition(mut part))) = self.pending.remove(local) else {
            unreachable!("sweep_parts points at a partition");
        };
        let mut cost = self.cfg.cost.sweep_key * cap_keys.len() as u64;
        let mut frontier: Vec<DdlKey> = Vec::new();
        let mut marked_count: u64 = 0;
        let mut stack = std::mem::take(&mut self.scratch.stack);
        debug_assert!(stack.is_empty());
        for &root in cap_keys {
            if !self.mapdb.contains(root) {
                cost += self.ref_cost();
                if self.membership.kernel_of_key(root) != self.id {
                    // The root's group migrated away after the
                    // coordinator partitioned its frontier: report it
                    // back as next-round frontier so the coordinator
                    // regroups it to the current owner.
                    frontier.push(root);
                }
                // Otherwise already deleted by a concurrent operation
                // that completed: vacuous.
                continue;
            }
            if self.mapdb.get(root).expect("checked").revoking() {
                cost += self.ref_cost();
                if part.marked.contains(&root.raw()) {
                    // A later round landed inside an already marked
                    // region of this same partition.
                    continue;
                }
                // A concurrent revocation owns this subtree: the delete
                // reply waits for the capability to be deleted.
                self.revoke_waiters.entry(root.raw()).or_default().push(local);
                part.deps += 1;
                continue;
            }
            stack.push(root);
            while let Some(key) = stack.pop() {
                let Ok(cap) = self.mapdb.get(key) else {
                    // Not ours: the next frontier, reported back to the
                    // coordinator.
                    cost += self.ref_cost();
                    frontier.push(key);
                    continue;
                };
                cost += 2 * self.ref_cost();
                if cap.revoking() {
                    if part.marked.contains(&key.raw()) {
                        continue;
                    }
                    self.revoke_waiters.entry(key.raw()).or_default().push(local);
                    part.deps += 1;
                    continue;
                }
                for child in cap.children().rev() {
                    stack.push(child);
                }
                self.mapdb.mark_revoking(key).expect("present");
                part.marked.insert(key.raw());
                marked_count += 1;
                cost += self.cfg.cost.revoke_mark;
            }
            part.roots.push(root);
        }
        self.scratch.stack = stack;
        self.pending.insert(local, PendingOp::Sweep(Phase::Partition(part)));
        self.send_kreply(
            out,
            from,
            KReply::SweepMark { op: caller_op, marked: marked_count, frontier },
        );
        cost + self.cfg.cost.kcall_exit
    }

    /// Completion handler for [`KReply::SweepMark`]: regroups the
    /// reported frontier into the next mark round; when the last mark
    /// reply arrived and no dependencies are pending, deletion begins.
    pub(crate) fn sweep_mark_reply(
        &mut self,
        op: OpId,
        frontier: &[DdlKey],
        out: &mut Outbox,
    ) -> u64 {
        // Check before removing: a duplicated or straggler mark reply
        // must not knock out an op parked in another phase.
        match self.pending.get(op) {
            Some(PendingOp::Sweep(Phase::Coordinate(_))) => {}
            _ => {
                self.fault_anomaly(&format!("mark reply for unknown sweep {op}"));
                return 0;
            }
        }
        let Some(PendingOp::Sweep(Phase::Coordinate(mut s))) = self.pending.remove(op) else {
            unreachable!("checked above");
        };
        // Saturating: a fault-forced abort zeroes the counter while
        // straggler replies are still in flight.
        s.marks_outstanding = s.marks_outstanding.saturating_sub(1);
        let mut cost = 0;
        if !frontier.is_empty() {
            s.rounds += 1;
            cost += self.cfg.cost.sweep_round;
            cost += self.sweep_expand(op, &mut s, frontier.to_vec(), out);
        }
        let mark_done = s.marks_outstanding == 0 && s.deps == 0;
        self.pending.insert(op, PendingOp::Sweep(Phase::Coordinate(s)));
        if mark_done {
            cost += self.run_ready(vec![ReadyOp::SweepCoord(op)], out);
        }
        cost
    }

    /// Expands one frontier: keys owned by other kernels extend their
    /// partitions (one grouped request each); keys that bounced back to
    /// the coordinator are marked locally, and any remote children
    /// *they* expose feed the next iteration.
    fn sweep_expand(
        &mut self,
        op: OpId,
        s: &mut SweepOp,
        mut work: Vec<DdlKey>,
        out: &mut Outbox,
    ) -> u64 {
        let mut cost = 0;
        loop {
            let mut by_kernel: BTreeMap<KernelId, Vec<DdlKey>> = BTreeMap::new();
            let mut local_keys: Vec<DdlKey> = Vec::new();
            for key in work.drain(..) {
                let k = self.membership.kernel_of_key(key);
                if k == self.id {
                    local_keys.push(key);
                } else {
                    by_kernel.entry(k).or_default().push(key);
                }
            }
            cost += self.sweep_send_marks(op, s, by_kernel, out);
            if local_keys.is_empty() {
                return cost;
            }
            let mut stack = std::mem::take(&mut self.scratch.stack);
            debug_assert!(stack.is_empty());
            for root in local_keys {
                if !self.mapdb.contains(root) {
                    cost += self.ref_cost();
                    continue;
                }
                if self.mapdb.get(root).expect("checked").revoking() {
                    cost += self.ref_cost();
                    if s.marked.contains(&root.raw()) {
                        continue;
                    }
                    self.revoke_waiters.entry(root.raw()).or_default().push(op);
                    s.deps += 1;
                    continue;
                }
                stack.push(root);
                while let Some(key) = stack.pop() {
                    let Ok(cap) = self.mapdb.get(key) else {
                        cost += self.ref_cost();
                        work.push(key);
                        continue;
                    };
                    cost += 2 * self.ref_cost();
                    if cap.revoking() {
                        if s.marked.contains(&key.raw()) {
                            continue;
                        }
                        self.revoke_waiters.entry(key.raw()).or_default().push(op);
                        s.deps += 1;
                        continue;
                    }
                    for child in cap.children().rev() {
                        stack.push(child);
                    }
                    self.mapdb.mark_revoking(key).expect("present");
                    s.marked.insert(key.raw());
                    cost += self.cfg.cost.revoke_mark;
                }
                s.local_roots.push(root);
            }
            self.scratch.stack = stack;
            if work.is_empty() {
                return cost;
            }
            // The local walk exposed further remote children: another
            // regrouping round.
            s.rounds += 1;
            cost += self.cfg.cost.sweep_round;
        }
    }

    /// The coordinator's delete step (runs off the ready worklist once
    /// marking finished and dependencies drained): deletes the local
    /// region in one batched pass and orders every participant to
    /// delete its partition.
    pub(crate) fn sweep_begin_delete(&mut self, op: OpId, out: &mut Outbox) -> u64 {
        match self.pending.get(op) {
            Some(PendingOp::Sweep(Phase::Coordinate(_))) => {}
            _ => {
                self.fault_anomaly(&format!("delete step for unknown sweep {op}"));
                return 0;
            }
        }
        let Some(PendingOp::Sweep(Phase::Coordinate(mut s))) = self.pending.remove(op) else {
            unreachable!("checked above");
        };
        debug_assert!(s.marks_outstanding == 0 && s.deps == 0);
        if s.rounds > self.stats.sweep_depth {
            self.stats.sweep_depth = s.rounds;
        }
        let mut cost = 0;
        let mut stack = std::mem::take(&mut self.scratch.stack);
        let mut deleted = std::mem::take(&mut self.scratch.deleted);
        debug_assert!(deleted.is_empty());
        for root in std::mem::take(&mut s.local_roots) {
            self.mapdb.delete_local_subtree_into(root, &mut stack, &mut deleted);
        }
        s.fanin.add(deleted.len() as u64);
        // Waiters on the coordinator's region defer to sweep completion
        // like everyone else's: parts of their subtrees may live in
        // partitions that are still being deleted.
        let mut woken = std::mem::take(&mut s.woken);
        cost += self.sweep_deleted(&mut deleted, &mut woken);
        s.woken = woken;
        s.marked.clear();
        self.scratch.stack = stack;
        self.scratch.deleted = deleted;
        for i in 0..s.participants.len() {
            let k = s.participants[i];
            s.fanin.arm();
            cost += self.cfg.cost.kcall_exit;
            let call = Kcall::SweepDeleteReq { op };
            self.record_retry_leg(op, k, &call);
            self.send_kcall(out, k, call);
        }
        debug_assert!(!s.fanin.idle(), "a sweep always has participants");
        self.park(op, PendingOp::Sweep(Phase::Collect(s)));
        cost
    }

    /// Request handler for [`Kcall::SweepDeleteReq`]: deletes the
    /// partition immediately, or once its dependencies drain.
    pub(crate) fn sweep_delete_request(
        &mut self,
        from: KernelId,
        caller_op: OpId,
        out: &mut Outbox,
    ) -> u64 {
        let Some(&local) = self.sweep_parts.get(&(from, caller_op)) else {
            // Under fault injection: the partition already retired (or
            // aborted) and this order is a straggler or duplicate.
            self.fault_anomaly(&format!("delete order for unknown sweep ({from}, {caller_op})"));
            return 0;
        };
        let (dup, swept, ready_now) = {
            let Some(PendingOp::Sweep(Phase::Partition(p))) = self.pending.get_mut(local) else {
                unreachable!("sweep_parts points at a partition");
            };
            let dup = p.delete_requested;
            p.delete_requested = true;
            (dup, p.swept, p.deps == 0)
        };
        if dup {
            // A re-sent delete order (coordinator deadline retry, or a
            // NoC duplicate). If the partition already swept, the
            // original reply was lost: resend it — the deletion count
            // travelled with the first reply, so this one reports 0.
            // Otherwise the first order is still working; ignore.
            self.fault_anomaly(&format!("duplicate delete order for sweep ({from}, {caller_op})"));
            if swept {
                self.send_kreply(out, from, KReply::SweepDelete { op: caller_op, deleted: 0 });
                return self.cfg.cost.kcall_exit;
            }
            return 0;
        }
        if ready_now {
            self.run_ready(vec![ReadyOp::SweepPart(local)], out)
        } else {
            0
        }
    }

    /// Deletes one partition in a single batched pass and reports the
    /// count to the coordinator. Woken waiters are deferred into the
    /// partition (fired on the done notice); the partition op stays
    /// parked until then.
    pub(crate) fn sweep_part_finish(&mut self, local: OpId, out: &mut Outbox) -> u64 {
        let (caller, caller_op, roots, stray) = {
            let Some(PendingOp::Sweep(Phase::Partition(p))) = self.pending.get_mut(local) else {
                self.fault_anomaly(&format!("partition delete for unknown op {local}"));
                return 0;
            };
            debug_assert!(p.delete_requested && p.deps == 0);
            let stray = p.swept;
            let roots = if stray { Vec::new() } else { std::mem::take(&mut p.roots) };
            (p.caller, p.caller_op, roots, stray)
        };
        if stray {
            // A second trigger after sweeping (only reachable with
            // fault-forced wakes); the first pass did the work.
            self.fault_anomaly(&format!("partition {local} deleted twice"));
            return 0;
        }
        let mut cost = 0;
        let mut stack = std::mem::take(&mut self.scratch.stack);
        let mut deleted = std::mem::take(&mut self.scratch.deleted);
        let mut woken = std::mem::take(&mut self.scratch.woken);
        debug_assert!(deleted.is_empty() && woken.is_empty());
        for root in roots {
            self.mapdb.delete_local_subtree_into(root, &mut stack, &mut deleted);
        }
        let count = deleted.len() as u64;
        cost += self.sweep_deleted(&mut deleted, &mut woken);
        self.scratch.stack = stack;
        self.scratch.deleted = deleted;
        if let Some(PendingOp::Sweep(Phase::Partition(p))) = self.pending.get_mut(local) {
            p.swept = true;
            p.marked.clear();
            p.woken.append(&mut woken);
        }
        self.scratch.woken = woken;
        self.send_kreply(out, caller, KReply::SweepDelete { op: caller_op, deleted: count });
        cost + self.cfg.cost.kcall_exit + self.cfg.cost.revoke_finish
    }

    /// Completion handler for [`KReply::SweepDelete`]: collects the
    /// per-partition counts; when the last partition reported, the
    /// subtree is gone — notify the initiator, tell every participant
    /// to release its deferred waiters, and fire our own.
    pub(crate) fn sweep_delete_reply(&mut self, op: OpId, deleted: u64, out: &mut Outbox) -> u64 {
        let drained = {
            let Some(PendingOp::Sweep(Phase::Collect(s))) = self.pending.get_mut(op) else {
                // Under fault injection: a duplicated reply, or a
                // straggler for a sweep that already closed.
                self.fault_anomaly(&format!("delete reply for unknown sweep {op}"));
                return 0;
            };
            s.fanin.complete_one(deleted)
        };
        if !drained {
            return 0;
        }
        let Some(PendingOp::Sweep(Phase::Collect(s))) = self.pending.remove(op) else {
            unreachable!("checked above");
        };
        let mut cost = self.cfg.cost.revoke_finish;
        for i in 0..s.participants.len() {
            let k = s.participants[i];
            cost += self.cfg.cost.kcall_exit;
            self.send_kcall(out, k, Kcall::SweepDoneNotice { op });
        }
        self.notify_initiator(s.initiator, true, s.fanin.tally(), out);
        let mut ready: Vec<ReadyOp> = Vec::new();
        for w in s.woken {
            self.wake_waiter(w, &mut ready);
        }
        cost + self.run_ready(ready, out)
    }

    /// Request handler for [`Kcall::SweepDoneNotice`]: the whole sweep
    /// completed; retire the partition and fire its deferred waiters.
    pub(crate) fn sweep_done_notice(
        &mut self,
        from: KernelId,
        caller_op: OpId,
        out: &mut Outbox,
    ) -> u64 {
        let Some(local) = self.sweep_parts.remove(&(from, caller_op)) else {
            // Under fault injection: the partition already retired (or
            // aborted), and this notice is a straggler or duplicate.
            self.fault_anomaly(&format!("done notice for unknown sweep ({from}, {caller_op})"));
            return 0;
        };
        let Some(PendingOp::Sweep(Phase::Partition(p))) = self.pending.remove(local) else {
            unreachable!("sweep_parts points at a partition");
        };
        if !p.swept {
            // Fault mode: the coordinator gave up on this partition's
            // delete reply (abort broadcast its done notices early).
            // Force-retire the partition so its marks don't leak.
            self.fault_anomaly(&format!(
                "done notice before partition ({from}, {caller_op}) was deleted"
            ));
            return self.abort_sweep_partition(p, out);
        }
        let mut ready: Vec<ReadyOp> = Vec::new();
        for w in p.woken {
            self.wake_waiter(w, &mut ready);
        }
        self.run_ready(ready, out)
    }
}
