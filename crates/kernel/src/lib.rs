//! The SemperOS multikernel.
//!
//! Each kernel instance manages one PE group (§3.1): it owns the
//! capabilities of all VPEs on its PEs, handles their system calls, and
//! coordinates with other kernels through inter-kernel calls (§4.1) to
//! implement the distributed capability protocol (§4.3).
//!
//! Every distributed operation runs on the [`ops`] engine — one shared
//! pending-op ledger, one reply router, one outbox discipline — with
//! the individual protocols declared as typed phases:
//!
//! * [`ops::exchange`] — obtain and delegate, including the two-way
//!   delegate handshake that closes the *invalid-capability* window,
//!   and orphan cleanup when a party dies mid-exchange.
//! * [`ops::revoke`] — the two-phase mark-and-sweep revocation
//!   (Algorithm 1) with fan-in reply counting, waiter queues for
//!   concurrent overlapping revokes (no *incomplete* acks), and denial
//!   of exchanges on marked capabilities (no *pointless* exchanges).
//! * [`ops::session`] — service registration and session establishment
//!   across PE groups.
//! * [`ops::memops`] — group-local memory capability operations (create
//!   and derive; the engine's single-phase degenerate case).
//! * [`ops::migrate`] — capability-group migration: a VPE's DDL
//!   ownership handed to another kernel mid-run.
//!
//! The kernel is written as an event-driven actor: [`Kernel::handle`]
//! consumes one message and returns the modeled cycle cost, pushing any
//! outgoing messages into an [`Outbox`]. The paper implements the same
//! logic with cooperative kernel threads and explicit preemption points
//! (§4.2) and notes the two formulations are equivalent; we keep the
//! thread-pool *accounting* (pool sized `V_group + K_max · M_inflight`,
//! never exceeded) as a checked invariant, derived from each phase's
//! declared spec.

pub mod epbind;
pub mod gates;
pub mod harness;
pub mod kernel;
pub mod ops;
pub mod outbox;
pub mod registry;
pub mod stats;
pub mod vpes;

pub use epbind::EpBindings;
pub use kernel::Kernel;
pub use outbox::Outbox;
pub use registry::ServiceInfo;
pub use stats::KernelStats;
pub use vpes::VpeState;
