//! The SemperOS multikernel.
//!
//! Each kernel instance manages one PE group (§3.1): it owns the
//! capabilities of all VPEs on its PEs, handles their system calls, and
//! coordinates with other kernels through inter-kernel calls (§4.1) to
//! implement the distributed capability protocol (§4.3):
//!
//! * [`exchange`] — obtain and delegate, including the two-way delegate
//!   handshake that closes the *invalid-capability* window, and orphan
//!   cleanup when a party dies mid-exchange.
//! * [`revoke`] — the two-phase mark-and-sweep revocation (Algorithm 1)
//!   with per-operation outstanding-reply counters, waiter queues for
//!   concurrent overlapping revokes (no *incomplete* acks), and denial of
//!   exchanges on marked capabilities (no *pointless* exchanges).
//! * [`session`] — service registration and session establishment across
//!   PE groups.
//! * [`memops`] — group-local memory capability operations (create and
//!   derive).
//!
//! The kernel is written as an event-driven actor: [`Kernel::handle`]
//! consumes one message and returns the modeled cycle cost, pushing any
//! outgoing messages into an [`Outbox`]. The paper implements the same
//! logic with cooperative kernel threads and explicit preemption points
//! (§4.2) and notes the two formulations are equivalent; we keep the
//! thread-pool *accounting* (pool sized `V_group + K_max · M_inflight`,
//! never exceeded) as a checked invariant.

pub mod epbind;
pub mod exchange;
pub mod gates;
pub mod harness;
pub mod kernel;
pub mod memops;
pub mod outbox;
pub mod pending;
pub mod registry;
pub mod revoke;
pub mod session;
pub mod stats;
pub mod vpes;

pub use epbind::EpBindings;
pub use kernel::Kernel;
pub use outbox::Outbox;
pub use registry::ServiceInfo;
pub use stats::KernelStats;
pub use vpes::VpeState;
