//! A synchronous multi-kernel test harness.
//!
//! [`TestCluster`] wires several kernels with stub VPEs and a FIFO
//! message queue — no timing, no NoC model — so protocol logic can be
//! unit- and property-tested in isolation. The FIFO queue preserves the
//! per-channel ordering precondition (§4.3.1). Timing-accurate execution
//! lives in the `semperos` crate's machine.
//!
//! The stubs auto-accept exchanges and sessions unless told otherwise,
//! and the queue can be stepped one message at a time to construct the
//! exact interleavings of Table 2.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use semper_base::config::MachineConfig;
use semper_base::msg::{Payload, SysReply, Syscall, Upcall, UpcallReply};
use semper_base::{Error, KernelId, Msg, PeId, VpeId};
use semper_caps::MembershipTable;
use semper_noc::GlobalMemory;

use crate::kernel::Kernel;
use crate::outbox::Outbox;

/// A deterministic, untimed cluster of kernels and stub VPEs.
pub struct TestCluster {
    /// The kernels, indexed by kernel id.
    pub kernels: Vec<Kernel>,
    queue: VecDeque<Msg>,
    vpe_of_pe: BTreeMap<PeId, VpeId>,
    pe_of_vpe: Vec<PeId>,
    /// VPEs that deny capability exchanges.
    deny: BTreeSet<VpeId>,
    /// VPEs that have been killed (their stub no longer responds).
    dead: BTreeSet<VpeId>,
    /// Collected system-call replies, per VPE.
    replies: BTreeMap<VpeId, Vec<SysReply>>,
    next_session_ident: u64,
    tag_counter: u64,
    /// When armed, every dispatched message is recorded (delivery order,
    /// full payload) — the protocol-trace fingerprint used by the
    /// trace-equivalence tests.
    trace: Option<Vec<String>>,
}

impl TestCluster {
    /// Builds a cluster of `kernels` kernels with `vpes_per_group` stub
    /// VPEs each. PE layout: each group occupies a contiguous PE range;
    /// the group's first PE hosts the kernel, the rest host VPEs.
    pub fn new(kernels: u16, vpes_per_group: u16) -> TestCluster {
        let group = 1 + vpes_per_group;
        let num_pes = kernels * group;
        let mut cfg = MachineConfig::small();
        cfg.num_pes = num_pes;
        cfg.mesh_width = semper_base::config::mesh_width_for(num_pes);
        cfg.kernels = kernels;
        cfg.mode = semper_base::KernelMode::SemperOS;

        let membership = MembershipTable::contiguous(num_pes, kernels);
        let mut ks = Vec::new();
        let mut vpe_of_pe = BTreeMap::new();
        let mut pe_of_vpe = Vec::new();

        for k in 0..kernels {
            let mem = GlobalMemory::new((k as u64 + 1) << 32, 1 << 30);
            ks.push(Kernel::new(KernelId(k), cfg.clone(), membership.clone(), mem));
        }
        let mut next_vpe = 0u16;
        for k in 0..kernels {
            for p in 1..group {
                let pe = PeId(k * group + p);
                let vpe = VpeId(next_vpe);
                next_vpe += 1;
                ks[k as usize].add_vpe(vpe, pe);
                vpe_of_pe.insert(pe, vpe);
                pe_of_vpe.push(pe);
            }
        }
        let dir: Vec<PeId> = pe_of_vpe.clone();
        for k in &mut ks {
            k.set_vpe_dir(dir.clone());
        }
        TestCluster {
            kernels: ks,
            queue: VecDeque::new(),
            vpe_of_pe,
            pe_of_vpe,
            deny: BTreeSet::new(),
            dead: BTreeSet::new(),
            replies: BTreeMap::new(),
            next_session_ident: 1,
            tag_counter: 0,
            trace: None,
        }
    }

    /// Starts recording every dispatched message (delivery order plus
    /// full payload). The resulting trace is the protocol's observable
    /// behaviour: two implementations that produce the same trace are
    /// indistinguishable to VPEs and to other kernels.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<String> {
        self.trace.take().unwrap_or_default()
    }

    /// The PE of a VPE.
    pub fn pe_of(&self, vpe: VpeId) -> PeId {
        self.pe_of_vpe[vpe.idx()]
    }

    /// The kernel managing a VPE.
    pub fn kernel_of(&self, vpe: VpeId) -> KernelId {
        for k in &self.kernels {
            if k.vpe_alive(vpe) || k.table(vpe).is_some() {
                return k.id();
            }
        }
        panic!("{vpe} not found in any kernel");
    }

    /// Makes `vpe` deny future exchange upcalls.
    pub fn deny_exchanges(&mut self, vpe: VpeId) {
        self.deny.insert(vpe);
    }

    /// Kills `vpe`: its kernel revokes everything; its stub stops
    /// responding to in-flight upcalls.
    pub fn kill(&mut self, vpe: VpeId) {
        self.dead.insert(vpe);
        let k = self.kernel_of(vpe);
        let mut out = Outbox::new();
        self.kernels[k.idx()].kill_vpe(vpe, &mut out);
        for (m, _) in out.drain() {
            self.queue.push_back(m);
        }
    }

    /// Starts migrating `vpe`'s capability group to kernel `dst`
    /// without pumping, so racing traffic can be interleaved with the
    /// handover window (see `crate::ops::migrate`). Returns the source
    /// kernel id — poll `take_migration_failure` there after pumping.
    pub fn start_migration(&mut self, vpe: VpeId, dst: KernelId) -> Result<KernelId, Error> {
        let src = self.kernel_of(vpe);
        let mut out = Outbox::new();
        self.kernels[src.idx()].start_group_migration(vpe, dst, &mut out)?;
        for (m, _) in out.drain() {
            self.queue.push_back(m);
        }
        Ok(src)
    }

    /// Migrates `vpe`'s capability group to kernel `dst` and pumps the
    /// migration protocol to quiescence (install, handover, membership
    /// acks — see `crate::ops::migrate`). Errors if the source kernel
    /// refuses the start or the destination refuses the install.
    pub fn migrate(&mut self, vpe: VpeId, dst: KernelId) -> Result<(), Error> {
        let src = self.start_migration(vpe, dst)?;
        self.pump_all();
        match self.kernels[src.idx()].take_migration_failure(vpe) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Issues a system call from `vpe` without pumping; returns the tag.
    pub fn syscall_async(&mut self, vpe: VpeId, call: Syscall) -> u64 {
        self.tag_counter += 1;
        let tag = self.tag_counter;
        let k = self.kernel_of(vpe);
        let dst = self.kernels[k.idx()].pe();
        self.queue.push_back(Msg::new(self.pe_of(vpe), dst, Payload::sys(tag, call)));
        tag
    }

    /// Issues a system call from `vpe` addressed to kernel `k`'s PE even
    /// when the cluster knows the group lives elsewhere — models a DTU
    /// still programmed with the pre-migration kernel. The stale kernel
    /// holds the call during its handover window or relays it to the
    /// current owner afterwards.
    pub fn syscall_async_via(&mut self, vpe: VpeId, k: KernelId, call: Syscall) -> u64 {
        self.tag_counter += 1;
        let tag = self.tag_counter;
        let dst = self.kernels[k.idx()].pe();
        self.queue.push_back(Msg::new(self.pe_of(vpe), dst, Payload::sys(tag, call)));
        tag
    }

    /// Issues a system call that jumps the message queue (delivered
    /// before anything already queued). Syscalls travel on a different
    /// channel than inter-kernel traffic, so this reordering is legal
    /// under the per-channel FIFO precondition — it is exactly how the
    /// Table 2 races arise on real hardware.
    pub fn syscall_front(&mut self, vpe: VpeId, call: Syscall) -> u64 {
        self.tag_counter += 1;
        let tag = self.tag_counter;
        let k = self.kernel_of(vpe);
        let dst = self.kernels[k.idx()].pe();
        self.queue.push_front(Msg::new(self.pe_of(vpe), dst, Payload::sys(tag, call)));
        tag
    }

    /// Issues a system call and pumps to quiescence; returns the reply.
    pub fn syscall(&mut self, vpe: VpeId, call: Syscall) -> SysReply {
        let tag = self.syscall_async(vpe, call);
        self.pump_all();
        self.take_reply(vpe, tag).expect("syscall must produce a reply")
    }

    /// Removes and returns the reply with the given tag, if present.
    pub fn take_reply(&mut self, vpe: VpeId, tag: u64) -> Option<SysReply> {
        let list = self.replies.get_mut(&vpe)?;
        let idx = list.iter().position(|r| r.tag == tag)?;
        Some(list.remove(idx))
    }

    /// Processes a single queued message; returns false when idle.
    pub fn step(&mut self) -> bool {
        let Some(msg) = self.queue.pop_front() else {
            return false;
        };
        self.dispatch(msg);
        true
    }

    /// Pumps until no messages remain.
    pub fn pump_all(&mut self) {
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            assert!(steps < 1_000_000, "message storm: protocol does not quiesce");
        }
    }

    /// Pumps at most `n` messages (for constructing interleavings).
    pub fn pump_n(&mut self, n: usize) {
        for _ in 0..n {
            if !self.step() {
                break;
            }
        }
    }

    /// Number of queued messages.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Checks invariants on every kernel.
    pub fn check_invariants(&self) {
        for k in &self.kernels {
            k.check_invariants().unwrap_or_else(|e| panic!("kernel {}: {e}", k.id()));
        }
    }

    /// Total capabilities across all mapping databases.
    pub fn total_caps(&self) -> usize {
        self.kernels.iter().map(|k| k.mapdb().len()).sum()
    }

    fn dispatch(&mut self, msg: Msg) {
        if let Some(trace) = &mut self.trace {
            trace.push(format!("{}->{} {:?}", msg.src, msg.dst, msg.payload));
        }
        // Kernel PE?
        if let Some(kidx) = self.kernels.iter().position(|k| k.pe() == msg.dst) {
            let mut out = Outbox::new();
            self.kernels[kidx].handle(&msg, &mut out);
            // DTU slot tracking: consuming an inter-kernel request frees
            // the sender's credit (see Kernel::return_credit).
            if matches!(msg.payload, Payload::Kcall(_)) {
                let dst_kernel = self.kernels[kidx].id();
                if let Some(src_idx) = self.kernels.iter().position(|k| k.pe() == msg.src) {
                    self.kernels[src_idx].return_credit(&mut out, dst_kernel);
                }
            }
            for (m, _) in out.drain() {
                self.queue.push_back(m);
            }
            return;
        }
        // VPE stub.
        let Some(vpe) = self.vpe_of_pe.get(&msg.dst).copied() else {
            panic!("message to unknown PE {}", msg.dst);
        };
        if self.dead.contains(&vpe) {
            // Dead PEs drop traffic.
            return;
        }
        match msg.payload {
            Payload::SysReply(reply) => {
                self.replies.entry(vpe).or_default().push(reply);
            }
            Payload::Upcall(Upcall::AcceptExchange { op, .. }) => {
                let accept = !self.deny.contains(&vpe);
                self.queue.push_back(Msg::new(
                    msg.dst,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::AcceptExchange { op, accept }),
                ));
            }
            Payload::Upcall(Upcall::SessionOpen { op, .. }) => {
                let ident = self.next_session_ident;
                self.next_session_ident += 1;
                self.queue.push_back(Msg::new(
                    msg.dst,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::SessionOpen { op, result: Ok(ident) }),
                ));
            }
            other => panic!("stub VPE {vpe} got unexpected payload {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::{ExchangeKind, Perms, SysReplyData};
    use semper_base::CapSel;

    #[test]
    fn cluster_boots() {
        let c = TestCluster::new(2, 2);
        assert_eq!(c.kernels.len(), 2);
        // Each VPE has its self-capability.
        assert_eq!(c.total_caps(), 4);
        c.check_invariants();
    }

    #[test]
    fn create_mem_gives_selector() {
        let mut c = TestCluster::new(1, 2);
        let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
        match r.result {
            Ok(SysReplyData::Mem { sel, .. }) => assert_ne!(sel, CapSel::INVALID),
            other => panic!("unexpected reply {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn local_obtain_roundtrip() {
        let mut c = TestCluster::new(1, 2);
        let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 64, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!() };
        let r = c.syscall(
            VpeId(1),
            Syscall::Exchange {
                other: VpeId(0),
                own_sel: CapSel::INVALID,
                other_sel: sel,
                kind: ExchangeKind::Obtain,
            },
        );
        assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{:?}", r.result);
        c.check_invariants();
        assert_eq!(c.kernels[0].stats().exchanges_local, 1);
    }

    #[test]
    fn spanning_obtain_roundtrip() {
        let mut c = TestCluster::new(2, 1);
        // VPE0 in group 0, VPE1 in group 1.
        let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 64, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!() };
        let r = c.syscall(
            VpeId(1),
            Syscall::Exchange {
                other: VpeId(0),
                own_sel: CapSel::INVALID,
                other_sel: sel,
                kind: ExchangeKind::Obtain,
            },
        );
        assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{:?}", r.result);
        c.check_invariants();
        assert_eq!(c.kernels[1].stats().exchanges_spanning, 1);
    }
}
