//! A synchronous multi-kernel test harness.
//!
//! [`TestCluster`] wires several kernels with stub VPEs and a FIFO
//! message queue — no timing, no NoC model — so protocol logic can be
//! unit- and property-tested in isolation. The FIFO queue preserves the
//! per-channel ordering precondition (§4.3.1). Timing-accurate execution
//! lives in the `semperos` crate's machine.
//!
//! The stubs auto-accept exchanges and sessions unless told otherwise,
//! and the queue can be stepped one message at a time to construct the
//! exact interleavings of Table 2.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use semper_base::config::MachineConfig;
use semper_base::msg::{Payload, SysReply, Syscall, Upcall, UpcallReply};
use semper_base::{Error, KernelId, Msg, PeId, VpeId};
use semper_caps::MembershipTable;
use semper_noc::GlobalMemory;
use semper_sim::{FaultPlan, NetVerdict};

use crate::kernel::Kernel;
use crate::outbox::Outbox;

/// A deterministic, untimed cluster of kernels and stub VPEs.
pub struct TestCluster {
    /// The kernels, indexed by kernel id.
    pub kernels: Vec<Kernel>,
    queue: VecDeque<Msg>,
    vpe_of_pe: BTreeMap<PeId, VpeId>,
    pe_of_vpe: Vec<PeId>,
    /// VPEs that deny capability exchanges.
    deny: BTreeSet<VpeId>,
    /// VPEs that have been killed (their stub no longer responds).
    dead: BTreeSet<VpeId>,
    /// Collected system-call replies, per VPE.
    replies: BTreeMap<VpeId, Vec<SysReply>>,
    next_session_ident: u64,
    tag_counter: u64,
    /// When armed, every dispatched message is recorded (delivery order,
    /// full payload) — the protocol-trace fingerprint used by the
    /// trace-equivalence tests.
    trace: Option<Vec<String>>,
    /// The scripted fault plan, when this cluster runs under fault
    /// injection (see [`TestCluster::set_fault_plan`]).
    fault_plan: Option<FaultPlan>,
    /// Delayed messages as `(release_step, seq, msg)`; `seq` preserves
    /// submission order among messages released at the same step.
    delayed: Vec<(u64, u64, Msg)>,
    delay_seq: u64,
    /// The fault clock: one tick per [`TestCluster::step`] in fault
    /// mode (plus quiet-network jumps to the next deadline).
    fault_step: u64,
    /// Kernels taken down by a scripted crash; all traffic to their
    /// island drops.
    dead_islands: BTreeSet<KernelId>,
}

impl TestCluster {
    /// Builds a cluster of `kernels` kernels with `vpes_per_group` stub
    /// VPEs each. PE layout: each group occupies a contiguous PE range;
    /// the group's first PE hosts the kernel, the rest host VPEs.
    pub fn new(kernels: u16, vpes_per_group: u16) -> TestCluster {
        let group = 1 + vpes_per_group;
        let num_pes = kernels * group;
        let mut cfg = MachineConfig::small();
        cfg.num_pes = num_pes;
        cfg.mesh_width = semper_base::config::mesh_width_for(num_pes);
        cfg.kernels = kernels;
        cfg.mode = semper_base::KernelMode::SemperOS;

        let membership = MembershipTable::contiguous(num_pes, kernels);
        let mut ks = Vec::new();
        let mut vpe_of_pe = BTreeMap::new();
        let mut pe_of_vpe = Vec::new();

        for k in 0..kernels {
            let mem = GlobalMemory::new((k as u64 + 1) << 32, 1 << 30);
            ks.push(Kernel::new(KernelId(k), cfg.clone(), membership.clone(), mem));
        }
        let mut next_vpe = 0u16;
        for k in 0..kernels {
            for p in 1..group {
                let pe = PeId(k * group + p);
                let vpe = VpeId(next_vpe);
                next_vpe += 1;
                ks[k as usize].add_vpe(vpe, pe);
                vpe_of_pe.insert(pe, vpe);
                pe_of_vpe.push(pe);
            }
        }
        let dir: Vec<PeId> = pe_of_vpe.clone();
        for k in &mut ks {
            k.set_vpe_dir(dir.clone());
        }
        TestCluster {
            kernels: ks,
            queue: VecDeque::new(),
            vpe_of_pe,
            pe_of_vpe,
            deny: BTreeSet::new(),
            dead: BTreeSet::new(),
            replies: BTreeMap::new(),
            next_session_ident: 1,
            tag_counter: 0,
            trace: None,
            fault_plan: None,
            delayed: Vec::new(),
            delay_seq: 0,
            fault_step: 0,
            dead_islands: BTreeSet::new(),
        }
    }

    /// Starts recording every dispatched message (delivery order plus
    /// full payload). The resulting trace is the protocol's observable
    /// behaviour: two implementations that produce the same trace are
    /// indistinguishable to VPEs and to other kernels.
    pub fn enable_tracing(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the recorded trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<String> {
        self.trace.take().unwrap_or_default()
    }

    /// The PE of a VPE.
    pub fn pe_of(&self, vpe: VpeId) -> PeId {
        self.pe_of_vpe[vpe.idx()]
    }

    /// The kernel managing a VPE.
    pub fn kernel_of(&self, vpe: VpeId) -> KernelId {
        for k in &self.kernels {
            if k.vpe_alive(vpe) || k.table(vpe).is_some() {
                return k.id();
            }
        }
        panic!("{vpe} not found in any kernel");
    }

    /// Makes `vpe` deny future exchange upcalls.
    pub fn deny_exchanges(&mut self, vpe: VpeId) {
        self.deny.insert(vpe);
    }

    /// Kills `vpe`: its kernel revokes everything; its stub stops
    /// responding to in-flight upcalls.
    pub fn kill(&mut self, vpe: VpeId) {
        self.dead.insert(vpe);
        let k = self.kernel_of(vpe);
        let mut out = Outbox::new();
        self.kernels[k.idx()].kill_vpe(vpe, &mut out);
        for (m, _) in out.drain() {
            self.queue.push_back(m);
        }
    }

    /// Starts migrating `vpe`'s capability group to kernel `dst`
    /// without pumping, so racing traffic can be interleaved with the
    /// handover window (see `crate::ops::migrate`). Returns the source
    /// kernel id — poll `take_migration_failure` there after pumping.
    pub fn start_migration(&mut self, vpe: VpeId, dst: KernelId) -> Result<KernelId, Error> {
        let src = self.kernel_of(vpe);
        let mut out = Outbox::new();
        self.kernels[src.idx()].start_group_migration(vpe, dst, &mut out)?;
        for (m, _) in out.drain() {
            self.queue.push_back(m);
        }
        Ok(src)
    }

    /// Migrates `vpe`'s capability group to kernel `dst` and pumps the
    /// migration protocol to quiescence (install, handover, membership
    /// acks — see `crate::ops::migrate`). Errors if the source kernel
    /// refuses the start or the destination refuses the install.
    pub fn migrate(&mut self, vpe: VpeId, dst: KernelId) -> Result<(), Error> {
        let src = self.start_migration(vpe, dst)?;
        self.pump_all();
        match self.kernels[src.idx()].take_migration_failure(vpe) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Issues a system call from `vpe` without pumping; returns the tag.
    pub fn syscall_async(&mut self, vpe: VpeId, call: Syscall) -> u64 {
        self.tag_counter += 1;
        let tag = self.tag_counter;
        let k = self.kernel_of(vpe);
        let dst = self.kernels[k.idx()].pe();
        self.queue.push_back(Msg::new(self.pe_of(vpe), dst, Payload::sys(tag, call)));
        tag
    }

    /// Issues a system call from `vpe` addressed to kernel `k`'s PE even
    /// when the cluster knows the group lives elsewhere — models a DTU
    /// still programmed with the pre-migration kernel. The stale kernel
    /// holds the call during its handover window or relays it to the
    /// current owner afterwards.
    pub fn syscall_async_via(&mut self, vpe: VpeId, k: KernelId, call: Syscall) -> u64 {
        self.tag_counter += 1;
        let tag = self.tag_counter;
        let dst = self.kernels[k.idx()].pe();
        self.queue.push_back(Msg::new(self.pe_of(vpe), dst, Payload::sys(tag, call)));
        tag
    }

    /// Issues a system call that jumps the message queue (delivered
    /// before anything already queued). Syscalls travel on a different
    /// channel than inter-kernel traffic, so this reordering is legal
    /// under the per-channel FIFO precondition — it is exactly how the
    /// Table 2 races arise on real hardware.
    pub fn syscall_front(&mut self, vpe: VpeId, call: Syscall) -> u64 {
        self.tag_counter += 1;
        let tag = self.tag_counter;
        let k = self.kernel_of(vpe);
        let dst = self.kernels[k.idx()].pe();
        self.queue.push_front(Msg::new(self.pe_of(vpe), dst, Payload::sys(tag, call)));
        tag
    }

    /// Issues a system call and pumps to quiescence; returns the reply.
    pub fn syscall(&mut self, vpe: VpeId, call: Syscall) -> SysReply {
        let tag = self.syscall_async(vpe, call);
        self.pump_all();
        self.take_reply(vpe, tag).expect("syscall must produce a reply")
    }

    /// Removes and returns the reply with the given tag, if present.
    pub fn take_reply(&mut self, vpe: VpeId, tag: u64) -> Option<SysReply> {
        let list = self.replies.get_mut(&vpe)?;
        let idx = list.iter().position(|r| r.tag == tag)?;
        Some(list.remove(idx))
    }

    /// Processes a single queued message; returns false when idle. In
    /// fault mode (a plan is set) idleness additionally requires the
    /// delay buffer to be empty and no pending-op deadline to be armed:
    /// a fault run is only over once every op completed or aborted.
    pub fn step(&mut self) -> bool {
        if self.fault_plan.is_some() {
            return self.step_faulted();
        }
        let Some(msg) = self.queue.pop_front() else {
            return false;
        };
        self.dispatch(msg);
        true
    }

    /// Pumps until no messages remain.
    pub fn pump_all(&mut self) {
        let mut steps = 0u64;
        while self.step() {
            steps += 1;
            assert!(steps < 1_000_000, "message storm: protocol does not quiesce");
        }
    }

    /// Pumps at most `n` messages (for constructing interleavings).
    pub fn pump_n(&mut self, n: usize) {
        for _ in 0..n {
            if !self.step() {
                break;
            }
        }
    }

    /// Number of queued messages.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Checks invariants on every kernel (crashed islands excluded —
    /// their state froze mid-operation by design).
    pub fn check_invariants(&self) {
        for k in &self.kernels {
            if self.dead_islands.contains(&k.id()) {
                continue;
            }
            k.check_invariants().unwrap_or_else(|e| panic!("kernel {}: {e}", k.id()));
        }
    }

    // ----- fault injection ----------------------------------------------

    /// Arms a fault plan: NoC verdicts apply to every inter-kernel
    /// message, scripted crash points are installed, and each kernel
    /// runs fault-tolerant with per-pending-op deadlines of
    /// `deadline_budget` steps. Must be set before the workload starts.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, deadline_budget: u64) {
        for k in &mut self.kernels {
            k.enable_fault_injection(deadline_budget);
            let points = plan.crash_points(k.id().0);
            if !points.is_empty() {
                k.arm_crash_points(points);
            }
        }
        self.fault_plan = Some(plan);
    }

    /// The armed plan's NoC-level fault counters, if a plan is set.
    pub fn fault_stats(&self) -> Option<&semper_sim::FaultStats> {
        self.fault_plan.as_ref().map(|p| p.stats())
    }

    /// Kernels taken down by scripted crashes.
    pub fn dead_kernels(&self) -> &BTreeSet<KernelId> {
        &self.dead_islands
    }

    /// True if this kernel is still up.
    pub fn kernel_alive(&self, k: KernelId) -> bool {
        !self.dead_islands.contains(&k)
    }

    /// Asserts that the cluster reached true quiescence: no queued or
    /// delayed messages, and every surviving kernel passes
    /// [`Kernel::check_quiescent`] (empty ledger, no open windows, no
    /// leaked waiters). The termination property of the fault engine.
    pub fn assert_quiescent(&self) {
        assert!(self.queue.is_empty(), "{} messages still queued", self.queue.len());
        assert!(self.delayed.is_empty(), "{} messages still delayed", self.delayed.len());
        for k in &self.kernels {
            if self.dead_islands.contains(&k.id()) {
                continue;
            }
            k.check_quiescent().unwrap_or_else(|e| panic!("not quiescent: {e}"));
        }
    }

    /// One step of the faulted cluster: advance the fault clock, release
    /// due delayed messages, deliver one message through the plan's
    /// verdict, then poll every surviving kernel's deadlines. With the
    /// network quiet, the clock jumps to the next armed deadline so
    /// starved operations abort instead of hanging the run.
    fn step_faulted(&mut self) -> bool {
        self.fault_step += 1;
        self.release_delayed();
        let Some(msg) = self.queue.pop_front() else {
            // Quiet network: jump the clock forward. First to the next
            // delayed release, otherwise to the earliest deadline.
            if let Some(release) = self.delayed.iter().map(|(r, _, _)| *r).min() {
                self.fault_step = self.fault_step.max(release);
                self.release_delayed();
                return true;
            }
            let next = self
                .kernels
                .iter()
                .filter(|k| !self.dead_islands.contains(&k.id()))
                .filter_map(|k| k.next_fault_deadline())
                .min();
            let Some(deadline) = next else {
                return false;
            };
            self.fault_step = self.fault_step.max(deadline);
            self.poll_fault_deadlines();
            return true;
        };
        self.deliver_faulted(msg);
        self.poll_fault_deadlines();
        true
    }

    /// Moves every delayed message whose release step arrived back into
    /// the queue, in (release, submission) order.
    fn release_delayed(&mut self) {
        if self.delayed.is_empty() {
            return;
        }
        let now = self.fault_step;
        let mut due: Vec<(u64, u64, Msg)> = Vec::new();
        self.delayed.retain_mut(|entry| {
            if entry.0 <= now {
                due.push((entry.0, entry.1, entry.2.clone()));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|(release, seq, _)| (*release, *seq));
        for (_, _, msg) in due {
            self.queue.push_back(msg);
        }
    }

    /// Runs every surviving kernel's deadline poll (in kernel-id order)
    /// and injects whatever the aborts produced.
    fn poll_fault_deadlines(&mut self) {
        for kidx in 0..self.kernels.len() {
            if self.dead_islands.contains(&self.kernels[kidx].id()) {
                continue;
            }
            let mut out = Outbox::new();
            self.kernels[kidx].poll_faults(self.fault_step, &mut out);
            for (m, _) in out.drain() {
                self.queue.push_back(m);
            }
            if self.kernels[kidx].crashed() {
                // A crash point on an abort path (e.g. a re-park).
                self.kernel_down(kidx);
            }
        }
    }

    /// Delivers one message under the fault plan: traffic to dead
    /// islands drops (with the sender's DTU credit released), and
    /// inter-kernel messages take the plan's verdict. Everything else
    /// behaves exactly like the fault-free dispatch.
    fn deliver_faulted(&mut self, msg: Msg) {
        let src_kidx = self.kernels.iter().position(|k| k.pe() == msg.src);
        let dst_kidx = self.kernels.iter().position(|k| k.pe() == msg.dst);
        // Traffic addressed to a crashed island vanishes. A request's
        // DTU slot at the dead end is gone with it; release the
        // sender's credit so its queue towards the corpse keeps
        // draining (those requests abort via peer-death or deadline).
        if let Some(didx) = dst_kidx {
            let dead_dst = self.dead_islands.contains(&self.kernels[didx].id());
            if dead_dst {
                if matches!(msg.payload, Payload::Kcall(_)) {
                    if let Some(sidx) = src_kidx {
                        if !self.dead_islands.contains(&self.kernels[sidx].id()) {
                            let dst_kernel = self.kernels[didx].id();
                            let mut out = Outbox::new();
                            self.kernels[sidx].return_credit(&mut out, dst_kernel);
                            for (m, _) in out.drain() {
                                self.queue.push_back(m);
                            }
                        }
                    }
                }
                return;
            }
        }
        // The plan's verdict applies to the inter-kernel NoC boundary
        // only: requests and replies between two kernel islands.
        if let (Some(sidx), Some(didx)) = (src_kidx, dst_kidx) {
            if matches!(msg.payload, Payload::Kcall(_) | Payload::KReply(_)) {
                let from = self.kernels[sidx].id().0;
                let to = self.kernels[didx].id().0;
                let now = self.fault_step;
                let verdict = self
                    .fault_plan
                    .as_mut()
                    .map(|p| p.verdict(from, to, now))
                    .unwrap_or(NetVerdict::Deliver);
                match verdict {
                    NetVerdict::Deliver => {}
                    NetVerdict::Drop => {
                        // The message is lost *after* the wire: treat
                        // the slot as consumed so credit accounting
                        // cannot deadlock the sender.
                        if matches!(msg.payload, Payload::Kcall(_)) {
                            let dst_kernel = self.kernels[didx].id();
                            let mut out = Outbox::new();
                            self.kernels[sidx].return_credit(&mut out, dst_kernel);
                            for (m, _) in out.drain() {
                                self.queue.push_back(m);
                            }
                        }
                        return;
                    }
                    NetVerdict::Duplicate => {
                        // Deliver now and once more later; the copy
                        // takes its own verdict when it surfaces.
                        self.queue.push_back(msg.clone());
                    }
                    NetVerdict::Delay(d) => {
                        let seq = self.delay_seq;
                        self.delay_seq += 1;
                        self.delayed.push((self.fault_step + d, seq, msg));
                        return;
                    }
                }
            }
        }
        if let Some(didx) = dst_kidx {
            if let Some(trace) = &mut self.trace {
                trace.push(format!("{}->{} {:?}", msg.src, msg.dst, msg.payload));
            }
            let mut out = Outbox::new();
            self.kernels[didx].handle(&msg, &mut out);
            if self.kernels[didx].crashed() {
                // The scripted crash point fired *inside* this handler:
                // the island dies with the handler's output unsent.
                drop(out);
                self.kernel_down(didx);
                return;
            }
            if matches!(msg.payload, Payload::Kcall(_)) {
                let dst_kernel = self.kernels[didx].id();
                if let Some(sidx) = src_kidx {
                    if !self.dead_islands.contains(&self.kernels[sidx].id()) {
                        self.kernels[sidx].return_credit(&mut out, dst_kernel);
                    }
                }
            }
            for (m, _) in out.drain() {
                self.queue.push_back(m);
            }
            return;
        }
        self.dispatch(msg);
    }

    /// Takes a crashed kernel's island down: marks it dead and runs
    /// peer-death detection on every survivor (in kernel-id order), so
    /// their in-flight operations towards the corpse abort.
    fn kernel_down(&mut self, kidx: usize) {
        let dead = self.kernels[kidx].id();
        self.dead_islands.insert(dead);
        for i in 0..self.kernels.len() {
            if i == kidx || self.dead_islands.contains(&self.kernels[i].id()) {
                continue;
            }
            let mut out = Outbox::new();
            self.kernels[i].peer_down(dead, &mut out);
            for (m, _) in out.drain() {
                self.queue.push_back(m);
            }
        }
    }

    /// Total capabilities across all mapping databases.
    pub fn total_caps(&self) -> usize {
        self.kernels.iter().map(|k| k.mapdb().len()).sum()
    }

    fn dispatch(&mut self, msg: Msg) {
        if let Some(trace) = &mut self.trace {
            trace.push(format!("{}->{} {:?}", msg.src, msg.dst, msg.payload));
        }
        // Kernel PE?
        if let Some(kidx) = self.kernels.iter().position(|k| k.pe() == msg.dst) {
            let mut out = Outbox::new();
            self.kernels[kidx].handle(&msg, &mut out);
            // DTU slot tracking: consuming an inter-kernel request frees
            // the sender's credit (see Kernel::return_credit).
            if matches!(msg.payload, Payload::Kcall(_)) {
                let dst_kernel = self.kernels[kidx].id();
                if let Some(src_idx) = self.kernels.iter().position(|k| k.pe() == msg.src) {
                    self.kernels[src_idx].return_credit(&mut out, dst_kernel);
                }
            }
            for (m, _) in out.drain() {
                self.queue.push_back(m);
            }
            return;
        }
        // VPE stub.
        let Some(vpe) = self.vpe_of_pe.get(&msg.dst).copied() else {
            panic!("message to unknown PE {}", msg.dst);
        };
        if self.dead.contains(&vpe) {
            // Dead PEs drop traffic.
            return;
        }
        match msg.payload {
            Payload::SysReply(reply) => {
                self.replies.entry(vpe).or_default().push(reply);
            }
            Payload::Upcall(Upcall::AcceptExchange { op, .. }) => {
                let accept = !self.deny.contains(&vpe);
                self.queue.push_back(Msg::new(
                    msg.dst,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::AcceptExchange { op, accept }),
                ));
            }
            Payload::Upcall(Upcall::SessionOpen { op, .. }) => {
                let ident = self.next_session_ident;
                self.next_session_ident += 1;
                self.queue.push_back(Msg::new(
                    msg.dst,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::SessionOpen { op, result: Ok(ident) }),
                ));
            }
            other => panic!("stub VPE {vpe} got unexpected payload {other:?}"),
        }
    }
}

impl Drop for TestCluster {
    /// Every fault-injected cluster must be driven to true quiescence
    /// before it goes away — a test that forgets to pump is exactly the
    /// silent hang the termination hardening exists to catch. Fault-free
    /// clusters are exempt (constructing racy intermediate states and
    /// abandoning them is the harness's whole job), as is teardown
    /// during an unwind from an unrelated failure.
    fn drop(&mut self) {
        if self.fault_plan.is_some() && !std::thread::panicking() {
            self.assert_quiescent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::{ExchangeKind, Perms, SysReplyData};
    use semper_base::CapSel;

    #[test]
    fn cluster_boots() {
        let c = TestCluster::new(2, 2);
        assert_eq!(c.kernels.len(), 2);
        // Each VPE has its self-capability.
        assert_eq!(c.total_caps(), 4);
        c.check_invariants();
    }

    #[test]
    fn create_mem_gives_selector() {
        let mut c = TestCluster::new(1, 2);
        let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
        match r.result {
            Ok(SysReplyData::Mem { sel, .. }) => assert_ne!(sel, CapSel::INVALID),
            other => panic!("unexpected reply {other:?}"),
        }
        c.check_invariants();
    }

    #[test]
    fn local_obtain_roundtrip() {
        let mut c = TestCluster::new(1, 2);
        let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 64, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!() };
        let r = c.syscall(
            VpeId(1),
            Syscall::Exchange {
                other: VpeId(0),
                own_sel: CapSel::INVALID,
                other_sel: sel,
                kind: ExchangeKind::Obtain,
            },
        );
        assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{:?}", r.result);
        c.check_invariants();
        assert_eq!(c.kernels[0].stats().exchanges_local, 1);
    }

    #[test]
    fn spanning_obtain_roundtrip() {
        let mut c = TestCluster::new(2, 1);
        // VPE0 in group 0, VPE1 in group 1.
        let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 64, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!() };
        let r = c.syscall(
            VpeId(1),
            Syscall::Exchange {
                other: VpeId(0),
                own_sel: CapSel::INVALID,
                other_sel: sel,
                kind: ExchangeKind::Obtain,
            },
        );
        assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{:?}", r.result);
        c.check_invariants();
        assert_eq!(c.kernels[1].stats().exchanges_spanning, 1);
    }
}
