//! In-flight operation state.
//!
//! The paper's kernel suspends cooperative threads at preemption points
//! while waiting for other kernels or VPEs (§4.2). Our event-driven
//! kernel stores the suspended continuation explicitly as a
//! [`PendingOp`]; each occupies one logical kernel thread, and the
//! thread-pool invariant (`pending ≤ V_group + K_max · M_inflight`) is
//! asserted by the kernel.

use semper_base::msg::CapKindDesc;
use semper_base::{CapSel, DdlKey, DetHashMap, ExchangeKind, KernelId, OpId, VpeId};
use semper_caps::Capability;

use crate::registry::ServiceInfo;

/// Who started a revocation, and therefore who must be notified when it
/// completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeInitiator {
    /// A local VPE's revoke system call.
    Syscall {
        /// The calling VPE.
        vpe: VpeId,
        /// Tag to echo in the reply.
        tag: u64,
    },
    /// Another kernel's [`semper_base::msg::Kcall::RevokeReq`].
    Kcall {
        /// The requester's correlation id, echoed in the reply.
        op: OpId,
        /// The requesting kernel.
        from: KernelId,
        /// The subtree root the request named.
        cap_key: DdlKey,
    },
    /// Kernel-internal cleanup (VPE exit); nobody to notify.
    Internal,
    /// One entry of a batched revoke request; completion is reported to
    /// the batch tracker op instead of a kernel.
    Batch {
        /// The local batch-tracker operation.
        batch: OpId,
    },
}

/// A revocation in progress (Algorithm 1 state).
#[derive(Debug, Clone)]
pub struct RevokeOp {
    /// Who to notify on completion.
    pub initiator: RevokeInitiator,
    /// Outstanding completions: inter-kernel revoke replies plus
    /// dependencies on concurrently running revokes we wait for.
    pub outstanding: u32,
    /// Roots of locally marked subtrees to sweep in phase 2.
    pub local_roots: Vec<DdlKey>,
    /// Capabilities deleted so far on behalf of this operation
    /// (local sweep + reported by remote kernels).
    pub deleted: u64,
    /// True if any inter-kernel call was needed (statistics:
    /// local vs spanning revoke).
    pub spanning: bool,
}

/// A suspended kernel operation waiting for a message.
#[derive(Debug, Clone)]
pub enum PendingOp {
    /// Group-local exchange: waiting for the peer VPE's accept upcall.
    ExchangeLocalAccept {
        /// Tag of the initiating system call.
        tag: u64,
        /// The initiating VPE.
        initiator: VpeId,
        /// The peer VPE (same group).
        peer: VpeId,
        /// Obtain or delegate.
        kind: ExchangeKind,
        /// Delegate: the initiator's capability selector.
        own_sel: CapSel,
        /// Obtain: the peer's capability selector.
        other_sel: CapSel,
    },
    /// Cross-kernel obtain at the requester's kernel: waiting for
    /// `KReply::Obtain`.
    ObtainRemote {
        /// Tag of the initiating system call.
        tag: u64,
        /// The obtaining VPE.
        requester: VpeId,
        /// Pre-allocated key of the new child capability.
        child_key: DdlKey,
        /// The owner's kernel.
        peer_kernel: KernelId,
    },
    /// Cross-kernel obtain at the owner's kernel: waiting for the owner
    /// VPE's accept upcall.
    ObtainAtOwnerAccept {
        /// The requester kernel's correlation id (echo in reply).
        caller_op: OpId,
        /// The requester's kernel.
        caller_kernel: KernelId,
        /// Key of the new child capability (allocated by the caller).
        child_key: DdlKey,
        /// Key of the parent capability (owned here).
        parent_key: DdlKey,
        /// The VPE owning the parent.
        owner: VpeId,
    },
    /// Cross-kernel delegate at the delegator's kernel: waiting for
    /// `KReply::Delegate` (first leg of the handshake).
    DelegateRemote {
        /// Tag of the initiating system call.
        tag: u64,
        /// The delegating VPE.
        delegator: VpeId,
        /// Key of the capability being delegated.
        parent_key: DdlKey,
        /// The receiver's kernel.
        peer_kernel: KernelId,
    },
    /// Cross-kernel delegate at the delegator's kernel: ack sent, waiting
    /// for `KReply::DelegateDone` (second leg).
    DelegateWaitDone {
        /// Tag of the initiating system call.
        tag: u64,
        /// The delegating VPE.
        delegator: VpeId,
        /// Key of the parent capability.
        parent_key: DdlKey,
        /// Key of the child capability at the receiver.
        child_key: DdlKey,
    },
    /// Cross-kernel delegate at the receiver's kernel: waiting for the
    /// receiving VPE's accept upcall.
    DelegateAtRecvAccept {
        /// The delegator kernel's correlation id (echo in reply).
        caller_op: OpId,
        /// The delegator's kernel.
        caller_kernel: KernelId,
        /// Key of the parent capability (owned by the caller).
        parent_key: DdlKey,
        /// Resource description for the new capability.
        desc: CapKindDesc,
        /// The receiving VPE.
        recv: VpeId,
    },
    /// Cross-kernel delegate at the receiver's kernel: capability created
    /// but *not inserted*, waiting for `Kcall::DelegateAck` (§4.3.2's
    /// two-way handshake; prevents *invalid* capabilities).
    DelegatePendingInsert {
        /// The delegator's kernel (to report insertion failure).
        caller_kernel: KernelId,
        /// The fully built but uninserted capability.
        cap: Box<Capability>,
    },
    /// Session open at the client's kernel for a remote service: waiting
    /// for `KReply::OpenSess`.
    OpenSessRemote {
        /// Tag of the initiating system call.
        tag: u64,
        /// The connecting client VPE.
        client: VpeId,
        /// Pre-allocated key of the session capability.
        child_key: DdlKey,
        /// The chosen service instance.
        srv: ServiceInfo,
    },
    /// Session open at the service's kernel on behalf of a remote
    /// client: waiting for the service VPE's upcall reply.
    SessionAtService {
        /// The client kernel's correlation id (echo in reply).
        caller_op: OpId,
        /// The client's kernel.
        caller_kernel: KernelId,
        /// Key of the session capability (allocated by the caller).
        child_key: DdlKey,
        /// The service instance.
        srv: ServiceInfo,
    },
    /// Session open, client and service in the same group: waiting for
    /// the service VPE's upcall reply.
    SessionLocalAccept {
        /// Tag of the initiating system call.
        tag: u64,
        /// The connecting client VPE.
        client: VpeId,
        /// Pre-allocated key of the session capability.
        child_key: DdlKey,
        /// The service instance.
        srv: ServiceInfo,
    },
    /// Cross-kernel delegate at the delegator's kernel: parent turned out
    /// invalid after the first leg; abort ack sent, waiting for the
    /// `DelegateDone` confirmation before failing the system call.
    DelegateAborted {
        /// Tag of the initiating system call.
        tag: u64,
        /// The delegating VPE.
        delegator: VpeId,
        /// Why the delegate was aborted.
        reason: semper_base::Error,
    },
    /// A revocation (Algorithm 1) awaiting remote completions.
    Revoke(RevokeOp),
    /// Tracker for an incoming batched revoke request: replies to the
    /// requesting kernel once every key in the batch is fully revoked.
    RevokeBatch {
        /// The requester's correlation id.
        caller_op: OpId,
        /// The requesting kernel.
        caller_kernel: KernelId,
        /// Keys from the request (echoed in the reply).
        cap_keys: Vec<DdlKey>,
        /// Sub-revokes still running.
        outstanding: u32,
        /// Capabilities deleted so far across the batch.
        deleted: u64,
    },
}

impl PendingOp {
    /// True if this suspended operation parks a cooperative kernel
    /// thread (§4.2). Syscall-initiated waits and upcall waits do;
    /// revocation bookkeeping for incoming requests does not (the
    /// paper's revoke handlers return without pausing).
    pub fn holds_thread(&self) -> bool {
        match self {
            PendingOp::ExchangeLocalAccept { .. }
            | PendingOp::ObtainRemote { .. }
            | PendingOp::DelegateRemote { .. }
            | PendingOp::DelegateWaitDone { .. }
            | PendingOp::DelegateAborted { .. }
            | PendingOp::OpenSessRemote { .. }
            | PendingOp::SessionLocalAccept { .. }
            | PendingOp::ObtainAtOwnerAccept { .. }
            | PendingOp::DelegateAtRecvAccept { .. }
            | PendingOp::SessionAtService { .. } => true,
            PendingOp::DelegatePendingInsert { .. } | PendingOp::RevokeBatch { .. } => false,
            PendingOp::Revoke(op) => {
                matches!(op.initiator, RevokeInitiator::Syscall { .. } | RevokeInitiator::Internal)
            }
        }
    }

    /// Short operation-class label for logs and statistics.
    pub fn class(&self) -> &'static str {
        match self {
            PendingOp::ExchangeLocalAccept { .. } => "exchange-local",
            PendingOp::ObtainRemote { .. } => "obtain-remote",
            PendingOp::ObtainAtOwnerAccept { .. } => "obtain-at-owner",
            PendingOp::DelegateRemote { .. } => "delegate-remote",
            PendingOp::DelegateWaitDone { .. } => "delegate-wait-done",
            PendingOp::DelegateAtRecvAccept { .. } => "delegate-at-recv",
            PendingOp::DelegatePendingInsert { .. } => "delegate-pending-insert",
            PendingOp::OpenSessRemote { .. } => "open-sess-remote",
            PendingOp::SessionAtService { .. } => "session-at-service",
            PendingOp::SessionLocalAccept { .. } => "session-local",
            PendingOp::DelegateAborted { .. } => "delegate-aborted",
            PendingOp::Revoke(_) => "revoke",
            PendingOp::RevokeBatch { .. } => "revoke-batch",
        }
    }
}

/// O(1) storage for suspended operations, keyed by [`OpId`].
///
/// Op ids are allocated from a per-kernel monotone counter, so they are
/// stable handles: an id on the wire resolves to the same operation for
/// the operation's whole lifetime. The table also maintains the count of
/// thread-holding operations incrementally — the pre-refactor kernel
/// recounted the whole map on every park, which put an O(pending) scan
/// on every suspension.
///
/// Determinism: the map is never iterated on protocol paths; the only
/// iteration ([`PendingTable::iter`]) feeds VPE teardown, which sorts
/// the collected op ids before acting on them (matching the id-ordered
/// iteration of the old `BTreeMap`).
#[derive(Debug, Default)]
pub struct PendingTable {
    ops: DetHashMap<u64, PendingOp>,
    threads: u64,
}

impl PendingTable {
    /// Registers a suspended operation.
    ///
    /// # Panics
    ///
    /// Debug-panics if the op id is already registered (ids are unique
    /// by construction).
    pub fn insert(&mut self, op: OpId, state: PendingOp) {
        self.threads += u64::from(state.holds_thread());
        let prev = self.ops.insert(op.0, state);
        debug_assert!(prev.is_none(), "op id {op} registered twice");
    }

    /// Removes and returns a suspended operation.
    pub fn remove(&mut self, op: OpId) -> Option<PendingOp> {
        let state = self.ops.remove(&op.0)?;
        self.threads -= u64::from(state.holds_thread());
        Some(state)
    }

    /// Looks up a suspended operation.
    pub fn get(&self, op: OpId) -> Option<&PendingOp> {
        self.ops.get(&op.0)
    }

    /// Looks up a suspended operation mutably. Callers may update fields
    /// but must not change which variant is stored (the thread counter
    /// is keyed to the variant at insertion).
    pub fn get_mut(&mut self, op: OpId) -> Option<&mut PendingOp> {
        self.ops.get_mut(&op.0)
    }

    /// Number of suspended operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is suspended.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operations currently holding a cooperative kernel thread (§4.2),
    /// maintained incrementally.
    pub fn threads_in_use(&self) -> u64 {
        self.threads
    }

    /// Iterates over `(op, state)` in unspecified (per-run
    /// deterministic) order. Sort the results before any
    /// protocol-visible use.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &PendingOp)> {
        self.ops.iter().map(|(id, p)| (OpId(*id), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_distinct_for_key_ops() {
        let a = PendingOp::Revoke(RevokeOp {
            initiator: RevokeInitiator::Internal,
            outstanding: 0,
            local_roots: Vec::new(),
            deleted: 0,
            spanning: false,
        });
        assert_eq!(a.class(), "revoke");
    }

    fn revoke_op(initiator: RevokeInitiator) -> PendingOp {
        PendingOp::Revoke(RevokeOp {
            initiator,
            outstanding: 0,
            local_roots: Vec::new(),
            deleted: 0,
            spanning: false,
        })
    }

    #[test]
    fn pending_table_tracks_threads_incrementally() {
        let mut t = PendingTable::default();
        assert_eq!(t.threads_in_use(), 0);
        // Syscall-initiated revokes hold a thread; kcall-initiated do not.
        t.insert(OpId(1), revoke_op(RevokeInitiator::Syscall { vpe: VpeId(0), tag: 0 }));
        t.insert(
            OpId(2),
            revoke_op(RevokeInitiator::Kcall {
                op: OpId(9),
                from: KernelId(1),
                cap_key: DdlKey::new(semper_base::PeId(0), VpeId(0), semper_base::CapType::Vpe, 0),
            }),
        );
        assert_eq!(t.threads_in_use(), 1);
        assert_eq!(t.len(), 2);
        assert!(t.remove(OpId(1)).is_some());
        assert_eq!(t.threads_in_use(), 0);
        assert_eq!(t.len(), 1);
        assert!(t.get(OpId(2)).is_some());
        assert!(t.get_mut(OpId(2)).is_some());
        assert!(t.remove(OpId(1)).is_none());
    }

    #[test]
    fn pending_table_iter_exposes_everything() {
        let mut t = PendingTable::default();
        for i in 0..5 {
            t.insert(OpId(i), revoke_op(RevokeInitiator::Internal));
        }
        let mut ids: Vec<u64> = t.iter().map(|(op, _)| op.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }
}
