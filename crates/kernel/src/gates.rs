//! DTU endpoint activation (M3's `activate` system call).
//!
//! Capabilities *authorise*; DTU endpoints *enforce*. Before a VPE can
//! touch the memory behind a memory capability (or send through a send
//! gate), it asks its kernel to configure one of its DTU endpoints for
//! the capability (§2.2: "The client can instruct the kernel to
//! configure a memory endpoint for the memory capability"). The kernel
//! is the only privileged party, so it also *deconfigures* endpoints
//! when the backing capability is revoked — this is the moment a revoke
//! actually severs the hardware access path, and why revocation speed
//! matters for designs like copy-on-write filesystems (§3).

use semper_base::config::EP_COUNT;
use semper_base::msg::SysReplyData;
use semper_base::{CapSel, Code, DdlKey, EpId, Error, Result, VpeId};

use crate::kernel::Kernel;
use crate::outbox::Outbox;

impl Kernel {
    /// Entry point for the `Activate` system call.
    pub(crate) fn sys_activate(
        &mut self,
        vpe: VpeId,
        tag: u64,
        sel: CapSel,
        ep: EpId,
        out: &mut Outbox,
    ) -> u64 {
        let result = (|| -> Result<SysReplyData> {
            if ep.0 >= EP_COUNT {
                return Err(Error::new(Code::InvalidArgs));
            }
            let key = self.tables.get(&vpe).ok_or(Error::new(Code::NoSuchVpe))?.get(sel)?;
            let cap = self.mapdb.get(key)?;
            if cap.revoking() {
                return Err(Error::new(Code::RevokeInProgress));
            }
            use semper_base::msg::CapKindDesc;
            match cap.kind {
                CapKindDesc::Memory { .. } | CapKindDesc::SendGate { .. } => {}
                _ => return Err(Error::new(Code::InvalidArgs)),
            }
            // (Re)configure: an endpoint holds at most one binding;
            // EpBindings drops a previous binding from the reverse
            // index internally.
            self.eps.bind(vpe, ep, key);
            Ok(SysReplyData::None)
        })();
        if let Err(e) = &result {
            if e.code() == Code::RevokeInProgress {
                self.stats.pointless_denied += 1;
            }
        }
        self.reply_sys(out, vpe, tag, result);
        self.ref_cost() + self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit
    }

    /// The capability currently activated on `(vpe, ep)`, if any
    /// (tests and verification).
    pub fn ep_binding(&self, vpe: VpeId, ep: EpId) -> Option<DdlKey> {
        self.eps.get(vpe, ep)
    }

    /// Invalidates every endpoint configured for a deleted capability.
    /// Called from the revocation sweep; returns the modeled cost (one
    /// DTU reconfiguration per invalidated endpoint). O(1) per deleted
    /// capability via the reverse index — the pre-refactor version
    /// scanned every configured endpoint of the group per deletion.
    pub(crate) fn invalidate_eps_for(&mut self, key: DdlKey) -> u64 {
        let victims = self.eps.unbind_key(key);
        self.stats.eps_invalidated += victims.len() as u64;
        victims.len() as u64 * self.cfg.cost.cap_insert
    }
}
