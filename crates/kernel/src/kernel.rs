//! The kernel actor: state, boot, and message dispatch.
//!
//! # Bookkeeping determinism contract
//!
//! All per-capability bookkeeping (mapping database, table reverse
//! indices, pending operations, revoke waiters, endpoint bindings) lives
//! in fixed-seed hash maps ([`semper_base::hash`]) so the hot paths are
//! O(1). Protocol-visible ordering never comes from map iteration: the
//! `semper_sim::EventQueue`'s FIFO tie-break stays the sole ordering
//! authority, subtree walks follow creation-ordered child lists, and the
//! one teardown path that collects from a map sorts by op id before
//! acting (see [`Kernel::kill_vpe`]'s cancellation sweep).

use std::collections::VecDeque;

use semper_base::config::{KernelMode, MachineConfig};
use semper_base::msg::{KReply, Kcall, Payload, SysReplyData, Syscall, Upcall};
use semper_base::{Code, DetHashMap, Error, KernelId, Msg, OpId, PeId, RawDdlKey, Result, VpeId};
use semper_caps::{CapTable, Capability, KeyAllocator, MappingDb, MembershipTable};
use semper_noc::GlobalMemory;

use crate::ops::ledger::PendingTable;
use crate::ops::PendingOp;
use crate::outbox::Outbox;
use crate::registry::Registry;
use crate::stats::KernelStats;
use crate::vpes::{VpeLife, VpeState};

/// Selector 0 of every VPE holds its own VPE capability.
pub const SEL_VPE: u32 = 0;
/// First selector available for general allocation.
pub const FIRST_FREE_SEL: u32 = 2;

/// One SemperOS kernel instance, managing one PE group.
pub struct Kernel {
    pub(crate) id: KernelId,
    pub(crate) pe: PeId,
    pub(crate) cfg: MachineConfig,
    pub(crate) membership: MembershipTable,
    /// Global VPE → PE directory (static; set up at boot by the machine).
    pub(crate) vpe_dir: Vec<PeId>,

    pub(crate) mapdb: MappingDb,
    pub(crate) tables: DetHashMap<VpeId, CapTable>,
    pub(crate) vpes: DetHashMap<VpeId, VpeState>,
    pub(crate) pe2vpe: DetHashMap<PeId, VpeId>,
    pub(crate) keys: KeyAllocator,
    pub(crate) registry: Registry,
    pub(crate) mem: GlobalMemory,

    pub(crate) pending: PendingTable,
    pub(crate) next_op: u64,
    /// Revokes waiting for a capability another operation is already
    /// revoking: packed key → waiting op ids, in registration order.
    pub(crate) revoke_waiters: DetHashMap<RawDdlKey, Vec<OpId>>,
    /// Partitions of remote parallel sweeps this kernel participates
    /// in: (coordinator, coordinator's op) → local partition op. Later
    /// mark rounds and the delete order resolve through this index.
    pub(crate) sweep_parts: DetHashMap<(KernelId, OpId), OpId>,
    /// Reusable work buffers for the revocation paths (host-side
    /// allocation reuse; no modeled cost).
    pub(crate) scratch: crate::ops::revoke::RevokeScratch,
    /// Active batched system call per VPE (at most one: a batch *is*
    /// the VPE's blocking syscall). While an entry exists, every
    /// syscall reply addressed to that VPE is a batch-item completion
    /// and is folded into the batch instead of leaving as a message
    /// (see [`Kernel::reply_sys`] and [`crate::ops::bulk`]).
    pub(crate) bulk_by_vpe: DetHashMap<VpeId, OpId>,
    /// Modeled cycles of batch continuations executed from within reply
    /// handlers (a resumed item completes and the batch advances to the
    /// next one). Drained into the surrounding handler's cost by
    /// [`Kernel::handle`] / [`Kernel::kill_vpe`].
    pub(crate) bulk_extra_cost: u64,

    /// Send credits towards each peer kernel (bounds in-flight requests
    /// to `M_inflight`, §4.1).
    pub(crate) kcredits: DetHashMap<KernelId, u32>,
    /// Requests waiting for a credit, per peer kernel.
    pub(crate) kqueue: DetHashMap<KernelId, VecDeque<Kcall>>,
    /// DTU endpoint configurations of the group's VPEs: which capability
    /// each endpoint is activated for, with the reverse index that makes
    /// the revocation sweep's per-deletion endpoint invalidation O(1).
    /// Forward and reverse maps are encapsulated so they cannot drift
    /// (see [`crate::epbind::EpBindings`] and the `gates` module).
    pub(crate) eps: crate::epbind::EpBindings,

    /// Outbound group migrations in their handover window, as
    /// `(vpe, pe, op)`: from `start_group_migration` until the
    /// bystander fan-in drains (or the install is refused). While
    /// non-empty, the dispatch paths apply the forward-or-hold rules
    /// (see [`crate::ops::migrate`]); the common `is_empty()` fast
    /// path keeps the classic paths cost-free.
    pub(crate) active_migrations: Vec<(VpeId, PeId, OpId)>,
    /// Failed migrations not yet collected by the initiating driver
    /// (see [`Kernel::take_migration_failure`]).
    pub(crate) migration_failures: Vec<(VpeId, Error)>,

    /// Fault-tolerance state (deadlines, retry legs, crash script);
    /// inert unless [`Kernel::enable_fault_injection`] ran (see
    /// [`crate::ops::faults`]).
    pub(crate) fault: crate::ops::faults::FaultState,

    /// Promise resolution state, by raw promise key
    /// (`Feature::PromiseIpc`; see [`crate::ops::promise`]). Never
    /// iterated on protocol paths without sorting first.
    pub(crate) promises: DetHashMap<u64, crate::ops::promise::PromiseState>,
    /// Promise-selector bindings: `(owner, selector)` → raw promise key.
    /// Kept separate from the capability tables so the classic selector
    /// paths never see promise selectors.
    pub(crate) promise_binds: DetHashMap<(VpeId, semper_base::CapSel), u64>,
    /// The most recently submitted promise per VPE — the gate the next
    /// `SubmitAsync` chains behind (program-order pipelining).
    pub(crate) async_pipeline_tail: DetHashMap<VpeId, u64>,
    /// In-flight asynchronous inner executions: `(owner, reserved tag)`
    /// → raw promise key. The reply funnel resolves through this index;
    /// a missing entry means the owner died and the late result drops.
    pub(crate) async_execs: DetHashMap<(VpeId, u64), u64>,
    /// Next reserved reply tag for asynchronous inner executions.
    pub(crate) next_async_tag: u64,

    pub(crate) stats: KernelStats,
}

impl Kernel {
    /// Creates a kernel for group `id` running on PE `pe`.
    ///
    /// `mem` is this kernel's partition of the global address space
    /// (kernels allocate memory independently — state is kept where it
    /// emerges, §3.1).
    pub fn new(
        id: KernelId,
        cfg: MachineConfig,
        membership: MembershipTable,
        mem: GlobalMemory,
    ) -> Kernel {
        let pe = membership.kernel_pe(id);
        let mut kcredits = DetHashMap::default();
        for k in 0..membership.kernel_count() {
            let k = KernelId(k as u16);
            if k != id {
                kcredits.insert(k, cfg.max_inflight);
            }
        }
        Kernel {
            id,
            pe,
            cfg,
            membership,
            vpe_dir: Vec::new(),
            mapdb: MappingDb::new(),
            tables: DetHashMap::default(),
            vpes: DetHashMap::default(),
            pe2vpe: DetHashMap::default(),
            keys: KeyAllocator::new(),
            registry: Registry::new(),
            mem,
            pending: PendingTable::default(),
            next_op: 1,
            revoke_waiters: DetHashMap::default(),
            sweep_parts: DetHashMap::default(),
            scratch: Default::default(),
            bulk_by_vpe: DetHashMap::default(),
            bulk_extra_cost: 0,
            kcredits,
            kqueue: DetHashMap::default(),
            eps: crate::epbind::EpBindings::new(),
            active_migrations: Vec::new(),
            migration_failures: Vec::new(),
            fault: Default::default(),
            promises: DetHashMap::default(),
            promise_binds: DetHashMap::default(),
            async_pipeline_tail: DetHashMap::default(),
            async_execs: DetHashMap::default(),
            next_async_tag: crate::ops::promise::ASYNC_TAG_BASE,
            stats: KernelStats::default(),
        }
    }

    /// This kernel's id.
    pub fn id(&self) -> KernelId {
        self.id
    }

    /// The PE this kernel runs on.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Statistics counters.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// The mapping database (read access for tests and verification).
    pub fn mapdb(&self) -> &MappingDb {
        &self.mapdb
    }

    /// The service registry (read access).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Number of in-flight (suspended) operations — logical kernel
    /// threads in use (§4.2).
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Installs the global VPE → PE directory (boot).
    pub fn set_vpe_dir(&mut self, dir: Vec<PeId>) {
        self.vpe_dir = dir;
    }

    /// Enables an optional protocol feature at runtime (ablation tests
    /// and benchmarks).
    pub fn enable_feature_for_test(&mut self, f: semper_base::Feature) {
        if !self.cfg.features.contains(&f) {
            self.cfg.features.push(f);
        }
    }

    /// Registers a VPE running on `pe` in this kernel's group, giving it
    /// a fresh capability table with its self-capability at selector 0.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in this kernel's group or already hosts a
    /// VPE.
    pub fn add_vpe(&mut self, vpe: VpeId, pe: PeId) {
        assert_eq!(self.membership.kernel_of(pe), self.id, "PE not in this group");
        assert!(!self.pe2vpe.contains_key(&pe), "PE already hosts a VPE");
        let mut table = CapTable::new(FIRST_FREE_SEL);
        let key = self.keys.alloc(pe, vpe, semper_base::CapType::Vpe);
        table.insert(semper_base::CapSel(SEL_VPE), key).expect("fresh table has free selector 0");
        self.mapdb.insert(Capability::root(
            key,
            semper_base::msg::CapKindDesc::Vpe { vpe },
            vpe,
            semper_base::CapSel(SEL_VPE),
        ));
        self.stats.caps_created += 1;
        self.tables.insert(vpe, table);
        self.vpes.insert(vpe, VpeState::new(vpe, pe));
        self.pe2vpe.insert(pe, vpe);
    }

    /// The capability table of a VPE (tests and verification).
    pub fn table(&self, vpe: VpeId) -> Option<&CapTable> {
        self.tables.get(&vpe)
    }

    /// True if the VPE is registered here and alive.
    pub fn vpe_alive(&self, vpe: VpeId) -> bool {
        self.vpes.get(&vpe).map(|v| v.alive()).unwrap_or(false)
    }

    // ----- id helpers -------------------------------------------------

    /// Allocates a fresh correlation id.
    pub(crate) fn alloc_op(&mut self) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        op
    }

    /// The kernel managing `vpe` (via the global directory and the
    /// membership table).
    pub(crate) fn kernel_of_vpe(&self, vpe: VpeId) -> Result<KernelId> {
        let pe = self.vpe_dir.get(vpe.idx()).copied().ok_or_else(|| Error::new(Code::NoSuchVpe))?;
        Ok(self.membership.kernel_of(pe))
    }

    /// The PE of a VPE (any group).
    pub(crate) fn pe_of_vpe(&self, vpe: VpeId) -> Result<PeId> {
        self.vpe_dir.get(vpe.idx()).copied().ok_or_else(|| Error::new(Code::NoSuchVpe))
    }

    /// The VPE on a PE of this group.
    pub(crate) fn vpe_on_pe(&self, pe: PeId) -> Result<VpeId> {
        self.pe2vpe.get(&pe).copied().ok_or_else(|| Error::new(Code::NoSuchVpe))
    }

    /// Cost of following one capability reference: plain lookup in M3
    /// mode, plus a DDL decode in SemperOS mode (the source of the
    /// 10-40% local overhead in Table 3).
    pub(crate) fn ref_cost(&self) -> u64 {
        match self.cfg.mode {
            KernelMode::M3 => self.cfg.cost.cap_lookup,
            KernelMode::SemperOS => self.cfg.cost.cap_lookup + self.cfg.cost.ddl_decode,
        }
    }

    /// Registers a pending operation, enforcing the thread-pool bound
    /// (§4.2).
    ///
    /// Only operations that *park a cooperative thread* count against
    /// the pool: syscall-initiated operations waiting for remote kernels
    /// or upcall answers (at most one per VPE — each VPE has one
    /// blocking syscall) and incoming requests waiting on a local VPE's
    /// upcall (bounded by `K_max · M_inflight` consumed-but-unanswered
    /// requests). Revocation state for *incoming* revoke requests is
    /// explicitly thread-free in the paper's design (Algorithm 1's
    /// handlers return without pausing; at most two threads process the
    /// queue), so it is exempt.
    pub(crate) fn park(&mut self, op: OpId, state: PendingOp) {
        if self.fault.enabled {
            self.note_parked(op, state.spec().name);
        }
        self.pending.insert(op, state);
        let in_use = self.pending.threads_in_use();
        if in_use > self.stats.max_pending_ops {
            self.stats.max_pending_ops = in_use;
        }
        let pool = self.cfg.thread_pool_size(self.vpes.len() as u32) as u64;
        debug_assert!(
            in_use <= pool,
            "kernel {id}: {in_use} thread-holding ops exceed pool {pool}",
            id = self.id
        );
    }

    // ----- messaging helpers -------------------------------------------

    /// Sends an upcall to the VPE on `dst_pe` (consent requests and
    /// session notifications — the kernel → VPE leg of the op engine's
    /// fan-out).
    pub(crate) fn send_upcall(&mut self, out: &mut Outbox, dst_pe: PeId, up: Upcall) {
        out.push(Msg::new(self.pe, dst_pe, Payload::Upcall(up)));
    }

    /// Sends a system-call reply to a VPE — the single completion
    /// funnel of every syscall path. If the VPE is blocked on a
    /// [`Syscall::Batch`](semper_base::msg::Syscall::Batch), the
    /// "reply" is one item's completion: it is recorded in the batch
    /// (whose combined reply leaves when all items are done) instead of
    /// leaving as a message. With no batch active this is the plain
    /// single-call path, byte-for-byte as before.
    pub(crate) fn reply_sys(
        &mut self,
        out: &mut Outbox,
        vpe: VpeId,
        tag: u64,
        result: Result<SysReplyData>,
    ) {
        if tag >= crate::ops::promise::ASYNC_TAG_BASE {
            // Completion of an asynchronous inner execution: resolve the
            // promise instead of messaging the VPE. A missing index entry
            // means the owner died mid-flight; the late result drops.
            if let Some(key) = self.async_execs.remove(&(vpe, tag)) {
                let c = self.promise_exec_done(key, result, out);
                self.bulk_extra_cost += c;
            }
            return;
        }
        if let Some(&op) = self.bulk_by_vpe.get(&vpe) {
            self.bulk_item_done(op, tag as usize, result, out);
            return;
        }
        if let Ok(pe) = self.pe_of_vpe(vpe) {
            out.push(Msg::new(self.pe, pe, Payload::sys_reply(tag, result)));
        }
    }

    /// Sends an inter-kernel request, honouring the credit budget: if no
    /// credit is available towards `peer`, the request queues until a
    /// reply returns a credit (prevents DTU message-slot overruns, §4.1).
    pub(crate) fn send_kcall(&mut self, out: &mut Outbox, peer: KernelId, call: Kcall) {
        debug_assert_ne!(peer, self.id, "kcall to self");
        let credits = self.kcredits.entry(peer).or_insert(self.cfg.max_inflight);
        if *credits > 0 {
            *credits -= 1;
            self.stats.kcalls_out += 1;
            let dst = self.membership.kernel_pe(peer);
            out.push(Msg::new(self.pe, dst, Payload::kcall(call)));
        } else {
            self.stats.kcalls_credit_stalled += 1;
            self.kqueue.entry(peer).or_default().push_back(call);
        }
    }

    /// Like [`Kernel::send_kcall`], but if a credit is available the
    /// message is injected `offset` cycles after the handler started
    /// (pipelined send from within a loop).
    pub(crate) fn send_kcall_pipelined(
        &mut self,
        out: &mut Outbox,
        peer: KernelId,
        call: Kcall,
        offset: u64,
    ) {
        debug_assert_ne!(peer, self.id, "kcall to self");
        let credits = self.kcredits.entry(peer).or_insert(self.cfg.max_inflight);
        if *credits > 0 {
            *credits -= 1;
            self.stats.kcalls_out += 1;
            let dst = self.membership.kernel_pe(peer);
            out.push_after(Msg::new(self.pe, dst, Payload::kcall(call)), offset);
        } else {
            self.stats.kcalls_credit_stalled += 1;
            self.kqueue.entry(peer).or_default().push_back(call);
        }
    }

    /// Sends an inter-kernel reply (replies are not credit-gated; they
    /// use the dedicated reply slots of the request message).
    pub(crate) fn send_kreply(&mut self, out: &mut Outbox, peer: KernelId, reply: KReply) {
        let dst = self.membership.kernel_pe(peer);
        out.push(Msg::new(self.pe, dst, Payload::kreply(reply)));
    }

    /// Returns one credit for `peer` and drains its queue if possible.
    ///
    /// Called by the machine layer when the peer's DTU *consumed* our
    /// request (freeing its message slot) — the paper's slot tracking
    /// (§4.1). Note credits return on consumption, not on the protocol
    /// reply: replies can be arbitrarily delayed (e.g. deep revocation
    /// chains), and the thread-pool formula `K_max · M_inflight`
    /// accounts for requests that are consumed but not yet answered.
    pub fn return_credit(&mut self, out: &mut Outbox, peer: KernelId) {
        let credits = self.kcredits.entry(peer).or_insert(0);
        // Capped at the configured window: a duplicated request under
        // fault injection is consumed twice at the peer and would
        // otherwise mint a credit out of thin air.
        if *credits < self.cfg.max_inflight {
            *credits += 1;
        }
        let queued = self.kqueue.get_mut(&peer).and_then(|q| q.pop_front());
        if let Some(call) = queued {
            // Re-send through the credit gate (a credit is available now).
            self.send_kcall(out, peer, call);
        }
    }

    // ----- dispatch -----------------------------------------------------

    /// Handles one incoming message; returns the modeled cycle cost of
    /// the handler. Outgoing messages are pushed to `out` and should be
    /// injected into the NoC when the handler completes.
    ///
    /// Every `Kcall`/`KReply`/`UpcallReply` goes through the op
    /// engine's routers (see [`crate::ops`]): requests dispatch to the
    /// owning protocol's request handler, replies resume the phase
    /// parked in the shared ledger.
    pub fn handle(&mut self, msg: &Msg, out: &mut Outbox) -> u64 {
        self.stats.handler_dispatches += 1;
        let cost = match &msg.payload {
            Payload::Sys { tag, call } => {
                self.stats.syscalls += 1;
                self.handle_syscall(msg.src, *tag, call, out)
            }
            Payload::Kcall(call) => {
                self.stats.kcalls_in += 1;
                self.route_kcall(msg.src, call, out)
            }
            Payload::KReply(reply) => self.route_kreply(msg.src, reply, out),
            Payload::UpcallReply(reply) => self.route_upcall_reply(msg.src, reply, out),
            other => {
                debug_assert!(false, "kernel received unexpected payload {other:?}");
                0
            }
        };
        // Batch continuations triggered by this handler (a resumed item
        // completed and the next items ran) execute within the same
        // handler window; fold their cost in.
        let cost = cost + std::mem::take(&mut self.bulk_extra_cost);
        self.stats.busy_cycles += cost;
        cost
    }

    pub(crate) fn handle_syscall(
        &mut self,
        src: PeId,
        tag: u64,
        call: &Syscall,
        out: &mut Outbox,
    ) -> u64 {
        let entry = self.cfg.cost.syscall_entry;
        // A call from a PE whose group is mid-handover is held before
        // resolution: during the drain the VPE's local bookkeeping is
        // already gone, but the call belongs to the moving group and
        // must replay (possibly forwarded) in arrival order.
        if !self.active_migrations.is_empty() {
            if let Some(mig) = self.migration_of_pe(src) {
                self.hold_op(
                    mig,
                    crate::ops::migrate::Held::Syscall { src, tag, call: call.clone() },
                );
                return entry;
            }
        }
        let vpe = match self.vpe_on_pe(src) {
            Ok(v) if self.vpe_alive(v) => v,
            Ok(v) => {
                self.reply_sys(out, v, tag, Err(Error::new(Code::NoSuchVpe)));
                return entry + self.cfg.cost.syscall_exit;
            }
            Err(e) => {
                // Unknown PE. If the membership table routes it to
                // another kernel, the VPE's group migrated away and
                // this is a stale endpoint racing the update: relay
                // the call to the current owner (the reply re-homes to
                // the VPE directly).
                let owner = self.membership.kernel_of(src);
                if owner != self.id {
                    return entry + self.forward_syscall(src, tag, call, owner, out);
                }
                debug_assert!(false, "syscall from unknown PE {src}: {e}");
                return entry;
            }
        };
        if self.bulk_by_vpe.contains_key(&vpe) {
            // The VPE is blocked on an active batch; any further system
            // call from it is a protocol violation. Refuse it directly:
            // running a handler here would funnel its completion through
            // `reply_sys`, which — seeing the active batch — would
            // misroute the reply into the batch as a (possibly
            // out-of-range) item completion.
            if let Ok(pe) = self.pe_of_vpe(vpe) {
                let reply = Payload::sys_reply(tag, Err(Error::new(Code::InvalidArgs)));
                out.push(Msg::new(self.pe, pe, reply));
            }
            return entry + self.cfg.cost.syscall_exit;
        }
        // A call from a bystander VPE that resolves into a moving group
        // (exchange peer, revoke subtree, exit teardown) is held for
        // replay once the handover window closes.
        if !self.active_migrations.is_empty() {
            if let Some(mig) = self.syscall_touches_migrating(vpe, call) {
                self.hold_op(
                    mig,
                    crate::ops::migrate::Held::Syscall { src, tag, call: call.clone() },
                );
                return entry;
            }
        }
        // A call naming a promise selector is a dependent call: it
        // severs, parks, or replays through the promise engine instead
        // of the classic handlers (`Feature::PromiseIpc` only; the
        // bindings map is empty otherwise, so the classic path is
        // untouched).
        if !self.promise_binds.is_empty() {
            if let Some(cost) = self.sys_promise_dependent(vpe, tag, call, out) {
                return entry + cost;
            }
        }
        entry + self.dispatch_syscall(vpe, tag, call, out)
    }

    /// Dispatches one syscall to its handler (the tail of
    /// [`Kernel::handle_syscall`], shared with promise-dependent call
    /// replay).
    pub(crate) fn dispatch_syscall(
        &mut self,
        vpe: VpeId,
        tag: u64,
        call: &Syscall,
        out: &mut Outbox,
    ) -> u64 {
        match call {
            Syscall::Noop => {
                self.reply_sys(out, vpe, tag, Ok(SysReplyData::None));
                self.cfg.cost.syscall_exit
            }
            Syscall::CreateMem { size, perms } => self.sys_create_mem(vpe, tag, *size, *perms, out),
            Syscall::DeriveMem { src, offset, size, perms } => {
                self.sys_derive_mem(vpe, tag, *src, *offset, *size, *perms, out)
            }
            Syscall::Exchange { other, own_sel, other_sel, kind } => {
                self.sys_exchange(vpe, tag, *other, *own_sel, *other_sel, *kind, out)
            }
            Syscall::Revoke { sel, own } => self.sys_revoke(vpe, tag, *sel, *own, out),
            Syscall::CreateSrv { name } => self.sys_create_srv(vpe, tag, *name, out),
            Syscall::OpenSession { name } => self.sys_open_session(vpe, tag, *name, out),
            Syscall::Activate { sel, ep } => self.sys_activate(vpe, tag, *sel, *ep, out),
            Syscall::Exit => self.sys_exit(vpe, out),
            Syscall::Batch(items) => self.sys_batch(vpe, tag, items, out),
            Syscall::SubmitAsync(inner) => self.sys_submit_async(vpe, tag, inner, out),
            Syscall::WaitPromise { sel, block } => {
                self.sys_wait_promise(vpe, tag, *sel, *block, out)
            }
        }
    }

    // ----- VPE lifecycle ------------------------------------------------

    /// Voluntary exit: revoke everything, mark dead. No reply (the VPE is
    /// gone).
    pub(crate) fn sys_exit(&mut self, vpe: VpeId, out: &mut Outbox) -> u64 {
        self.terminate_vpe(vpe, out)
    }

    /// Kills a VPE (failure injection / machine control). Safe to call
    /// for VPEs of other groups (no-op) or dead VPEs (no-op). A kill
    /// that resolves into a group mid-handover is held and replayed
    /// when the window closes — at the destination if the VPE moved.
    pub fn kill_vpe(&mut self, vpe: VpeId, out: &mut Outbox) -> u64 {
        if !self.vpe_alive(vpe) {
            return 0;
        }
        if !self.active_migrations.is_empty() {
            if let Some(mig) = self.migration_holding_kill(vpe) {
                self.hold_op(mig, crate::ops::migrate::Held::Kill { vpe });
                return 0;
            }
        }
        let cost = self.terminate_vpe(vpe, out) + std::mem::take(&mut self.bulk_extra_cost);
        self.stats.busy_cycles += cost;
        cost
    }

    /// Request handler for [`Kcall::KillVpe`]: a kill that chased a
    /// migrated group to this kernel (either relayed directly or
    /// replayed from a source kernel's hold queue). Re-applies the
    /// hold rule — the group may be mid-handover *again*.
    pub(crate) fn kill_vpe_request(&mut self, vpe: VpeId, out: &mut Outbox) -> u64 {
        if !self.vpe_alive(vpe) {
            return 0;
        }
        if !self.active_migrations.is_empty() {
            if let Some(mig) = self.migration_holding_kill(vpe) {
                self.hold_op(mig, crate::ops::migrate::Held::Kill { vpe });
                return 0;
            }
        }
        self.terminate_vpe(vpe, out)
    }

    pub(crate) fn terminate_vpe(&mut self, vpe: VpeId, out: &mut Outbox) -> u64 {
        if let Some(v) = self.vpes.get_mut(&vpe) {
            v.life = VpeLife::Dead;
        } else {
            return 0;
        }
        // A batch the dying VPE was blocked on has nobody left to reply
        // to: tear it down. Items still suspended in other protocols
        // resolve through their own dead-VPE paths; their late results
        // are dropped.
        if let Some(op) = self.bulk_by_vpe.remove(&vpe) {
            self.pending.remove(op);
        }
        // Cancel pending operations waiting on this VPE's upcalls (the
        // engine's sweep); other protocol stages detect death via
        // `vpe_alive` when their replies arrive (producing orphan
        // cleanups per §4.3.2).
        self.cancel_upcall_waiters(vpe, out);
        // Drop the dying VPE's promise state; in-flight invocations
        // land in dropped slots via the reserved-tag reply funnel.
        if !self.promise_binds.is_empty()
            || !self.promises.is_empty()
            || !self.async_pipeline_tail.is_empty()
        {
            self.teardown_promises(vpe, out);
        }
        // Revoke all capabilities still in the VPE's table, starting at
        // the roots we own. Children in other groups are reached by the
        // revocation protocol itself.
        let roots: Vec<semper_base::CapSel> =
            self.tables.get(&vpe).map(|t| t.iter().map(|(s, _)| s).collect()).unwrap_or_default();
        let mut cost = 0;
        for sel in roots {
            cost += self.revoke_for_exit(vpe, sel, out);
        }
        cost + self.cfg.cost.revoke_finish
    }

    /// Deterministic digest of the protocol-visible capability state:
    /// one line per capability record (key, resource, owner, selector,
    /// parent, children in creation order) and per table binding,
    /// sorted. Two kernels with equal digests are indistinguishable to
    /// the capability protocol — the equivalence the batched-vs-
    /// sequential property tests compare (`tests/proptests.rs`).
    pub fn state_digest(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .mapdb
            .iter()
            .map(|c| {
                let children: Vec<semper_base::DdlKey> = c.children().collect();
                format!(
                    "cap {:?} kind={:?} owner={} sel={:?} parent={:?} children={children:?}",
                    c.key, c.kind, c.owner, c.sel, c.parent
                )
            })
            .collect();
        for (vpe, table) in &self.tables {
            for (sel, key) in table.iter() {
                lines.push(format!("bind {vpe} {sel:?} -> {key:?}"));
            }
        }
        lines.sort_unstable();
        lines
    }

    /// Structural self-check used by tests: mapping-database invariants,
    /// endpoint-binding forward/reverse agreement, plus agreement
    /// between capability tables and the database.
    pub fn check_invariants(&self) -> core::result::Result<(), String> {
        self.mapdb.check_invariants()?;
        self.eps.check_sync()?;
        let mut by_vpe: Vec<(&VpeId, &CapTable)> = self.tables.iter().collect();
        by_vpe.sort_by_key(|(vpe, _)| **vpe);
        for (vpe, table) in by_vpe {
            for (sel, key) in table.iter() {
                let cap = self
                    .mapdb
                    .get(key)
                    .map_err(|_| format!("{vpe} {sel:?} points at missing cap {key:?}"))?;
                if cap.owner != *vpe {
                    return Err(format!("{key:?} owner mismatch: {} vs {vpe}", cap.owner));
                }
            }
        }
        Ok(())
    }
}
