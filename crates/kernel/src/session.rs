//! Service registration and session establishment.
//!
//! Services register with `CreateSrv`; their kernel announces the
//! instance to every other kernel (inter-kernel call group 1/2, §4.1).
//! A client's `OpenSession` creates a **session capability as a child of
//! the service capability** — the paper's running example of a
//! cross-kernel capability relation (§3.4): the session capability is
//! owned by the *client's* kernel while its parent (the service
//! capability) may live at another kernel. Exactly one kernel owns each
//! resource; the child/parent link crosses the boundary via DDL keys.

use semper_base::msg::{CapKindDesc, KReply, Kcall, Payload, SysReplyData, Upcall};
use semper_base::{
    CapType, Code, DdlKey, Error, KernelId, Msg, OpId, PeId, Result, ServiceId, VpeId,
};
use semper_caps::Capability;

use crate::kernel::Kernel;
use crate::outbox::Outbox;
use crate::pending::PendingOp;
use crate::registry::ServiceInfo;

impl Kernel {
    /// Entry point for the `CreateSrv` system call.
    pub(crate) fn sys_create_srv(
        &mut self,
        vpe: VpeId,
        tag: u64,
        name: u64,
        out: &mut Outbox,
    ) -> u64 {
        let pe = self.pe_of_vpe(vpe).expect("caller is local");
        let srv_key = self.keys.alloc(pe, vpe, CapType::Service);
        // Service ids are globally unique without coordination: the
        // owning kernel's id in the high bits, a local count below.
        let local_count = self.registry.iter().filter(|s| s.owner == self.id).count() as u16;
        let id = ServiceId((self.id.0 << 8) | local_count);

        let table = self.tables.get_mut(&vpe).expect("caller is local");
        let sel = table.insert_new(srv_key);
        self.mapdb.insert(Capability::root(srv_key, CapKindDesc::Service { id }, vpe, sel));
        self.stats.caps_created += 1;
        if let Some(v) = self.vpes.get_mut(&vpe) {
            v.is_service = true;
        }

        let info = ServiceInfo { id, name, owner: self.id, srv_key, srv_pe: pe, srv_vpe: vpe };
        self.registry.add(info);

        // Announce to all other kernels. Announcements are startup
        // traffic with no reply; they bypass the request credit budget
        // (they use the boot channel, not the capability-protocol one).
        for k in 0..self.membership.kernel_count() {
            let k = KernelId(k as u16);
            if k == self.id {
                continue;
            }
            let dst = self.membership.kernel_pe(k);
            self.stats.kcalls_out += 1;
            out.push(Msg::new(
                self.pe,
                dst,
                Payload::kcall(Kcall::AnnounceService {
                    id,
                    name,
                    owner: self.id,
                    srv_key,
                    srv_pe: pe,
                    srv_vpe: vpe,
                }),
            ));
        }

        self.reply_sys(out, vpe, tag, Ok(SysReplyData::Sel(sel)));
        self.cfg.cost.cap_create + self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit
    }

    /// Entry point for the `OpenSession` system call.
    pub(crate) fn sys_open_session(
        &mut self,
        vpe: VpeId,
        tag: u64,
        name: u64,
        out: &mut Outbox,
    ) -> u64 {
        let Some(srv) = self.registry.pick(name, self.id, vpe).copied() else {
            self.reply_sys(out, vpe, tag, Err(Error::new(Code::NoSuchService)));
            return self.cfg.cost.syscall_exit;
        };
        let client_pe = self.pe_of_vpe(vpe).expect("caller is local");
        // The session capability is created by the client's kernel; its
        // DDL key names the client as creator so ownership stays here.
        let child_key = self.keys.alloc(client_pe, vpe, CapType::Session);

        if srv.owner == self.id {
            // Service in our group: ask the service VPE directly.
            let op = self.alloc_op();
            out.push(Msg::new(
                self.pe,
                srv.srv_pe,
                Payload::Upcall(Upcall::SessionOpen { op, client_vpe: vpe, client_pe }),
            ));
            self.park(op, PendingOp::SessionLocalAccept { tag, client: vpe, child_key, srv });
            self.ref_cost()
        } else {
            let op = self.alloc_op();
            self.send_kcall(
                out,
                srv.owner,
                Kcall::OpenSessReq { op, child_key, service: srv.id, client_vpe: vpe },
            );
            self.park(op, PendingOp::OpenSessRemote { tag, client: vpe, child_key, srv });
            self.ref_cost()
        }
    }

    /// Service-side handling of a remote client's session request.
    pub(crate) fn kcall_open_sess_req(
        &mut self,
        from: KernelId,
        op: OpId,
        child_key: DdlKey,
        service: ServiceId,
        client_vpe: VpeId,
        out: &mut Outbox,
    ) -> u64 {
        let check = (|| -> Result<ServiceInfo> {
            let srv = *self.registry.get(service).ok_or(Error::new(Code::NoSuchService))?;
            if srv.owner != self.id || !self.vpe_alive(srv.srv_vpe) {
                return Err(Error::new(Code::NoSuchService));
            }
            if self.mapdb.get(srv.srv_key)?.revoking() {
                return Err(Error::new(Code::RevokeInProgress));
            }
            Ok(srv)
        })();
        match check {
            Err(e) => {
                self.send_kreply(out, from, KReply::OpenSess { op, result: Err(e) });
                self.cfg.cost.kcall_exit
            }
            Ok(srv) => {
                let my_op = self.alloc_op();
                let client_pe = self.pe_of_vpe(client_vpe).unwrap_or(PeId(0));
                out.push(Msg::new(
                    self.pe,
                    srv.srv_pe,
                    Payload::Upcall(Upcall::SessionOpen { op: my_op, client_vpe, client_pe }),
                ));
                self.park(
                    my_op,
                    PendingOp::SessionAtService {
                        caller_op: op,
                        caller_kernel: from,
                        child_key,
                        srv,
                    },
                );
                self.ref_cost()
            }
        }
    }

    /// A service VPE answered a session-open upcall.
    pub(crate) fn upcall_session_open(
        &mut self,
        _src: PeId,
        op: OpId,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        let Some(state) = self.pending.remove(op) else {
            return 0;
        };
        match state {
            PendingOp::SessionLocalAccept { tag, client, child_key, srv } => match result {
                Err(e) => {
                    self.reply_sys(out, client, tag, Err(e));
                    self.cfg.cost.syscall_exit
                }
                Ok(ident) => {
                    if !self.vpe_alive(client) {
                        // Client died while the service was deciding;
                        // nothing inserted yet.
                        return 0;
                    }
                    let sel = self.insert_session(client, child_key, srv, ident, true);
                    self.stats.sessions_opened += 1;
                    self.reply_sys(
                        out,
                        client,
                        tag,
                        Ok(SysReplyData::Session { sel, srv_pe: srv.srv_pe, ident }),
                    );
                    self.cfg.cost.cap_create
                        + self.cfg.cost.cap_insert
                        + self.cfg.cost.session_accept
                        + self.cfg.cost.syscall_exit
                }
            },
            PendingOp::SessionAtService { caller_op, caller_kernel, child_key, srv } => {
                let reply = match result {
                    Err(e) => Err(e),
                    Ok(ident) => {
                        // Link the (remote) session capability under the
                        // service capability before replying — the same
                        // ordering obtain uses.
                        self.mapdb
                            .link_child(srv.srv_key, child_key)
                            .expect("service capability checked at request time");
                        Ok(ident)
                    }
                };
                self.send_kreply(
                    out,
                    caller_kernel,
                    KReply::OpenSess { op: caller_op, result: reply },
                );
                self.ref_cost() + self.cfg.cost.cap_insert + self.cfg.cost.kcall_exit
            }
            other => {
                debug_assert!(false, "session-open reply for {:?}", other.class());
                self.pending.insert(op, other);
                0
            }
        }
    }

    /// Client-side completion of a remote session open.
    pub(crate) fn kreply_open_sess(
        &mut self,
        op: OpId,
        result: Result<u64>,
        out: &mut Outbox,
    ) -> u64 {
        let Some(PendingOp::OpenSessRemote { tag, client, child_key, srv }) =
            self.pending.remove(op)
        else {
            debug_assert!(false, "open-sess reply without pending op");
            return 0;
        };
        match result {
            Err(e) => {
                self.reply_sys(out, client, tag, Err(e));
                self.cfg.cost.syscall_exit
            }
            Ok(ident) => {
                if !self.vpe_alive(client) {
                    // Orphaned session: unlink at the service's kernel.
                    self.send_kcall(
                        out,
                        srv.owner,
                        Kcall::OrphanNotice { parent_key: srv.srv_key, child_key },
                    );
                    return self.cfg.cost.kcall_exit;
                }
                let sel = self.insert_session(client, child_key, srv, ident, false);
                self.stats.sessions_opened += 1;
                self.stats.exchanges_spanning += 1;
                self.reply_sys(
                    out,
                    client,
                    tag,
                    Ok(SysReplyData::Session { sel, srv_pe: srv.srv_pe, ident }),
                );
                self.cfg.cost.cap_create + self.cfg.cost.cap_insert + self.cfg.cost.syscall_exit
            }
        }
    }

    /// Builds and inserts a session capability for `client`. For local
    /// services the parent link is registered immediately; for remote
    /// services the owning kernel linked it before replying.
    fn insert_session(
        &mut self,
        client: VpeId,
        child_key: DdlKey,
        srv: ServiceInfo,
        ident: u64,
        link_local_parent: bool,
    ) -> semper_base::CapSel {
        let table = self.tables.get_mut(&client).expect("alive client has table");
        let sel = table.insert_new(child_key);
        self.mapdb.insert(Capability::child(
            child_key,
            CapKindDesc::Session { service: srv.id, ident },
            client,
            sel,
            srv.srv_key,
        ));
        self.stats.caps_created += 1;
        if link_local_parent {
            self.mapdb.link_child(srv.srv_key, child_key).expect("local service capability exists");
        }
        sel
    }
}
