//! VPE bookkeeping.
//!
//! A VPE (virtual PE) is the unit of execution — comparable to a
//! single-threaded process (§2.2). Each VPE runs on exactly one PE of the
//! kernel's group and has its own capability table.

use semper_base::{PeId, VpeId};

/// Lifecycle of a VPE as seen by its kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VpeLife {
    /// Running normally.
    Alive,
    /// Exited or killed; capabilities are being (or have been) revoked.
    /// The id is never recycled within a simulation run.
    Dead,
}

/// Per-VPE kernel state.
#[derive(Debug, Clone)]
pub struct VpeState {
    /// The VPE's id.
    pub id: VpeId,
    /// The PE it runs on.
    pub pe: PeId,
    /// Lifecycle state.
    pub life: VpeLife,
    /// True if this VPE registered itself as a service.
    pub is_service: bool,
}

impl VpeState {
    /// Creates a fresh, alive VPE.
    pub fn new(id: VpeId, pe: PeId) -> VpeState {
        VpeState { id, pe, life: VpeLife::Alive, is_service: false }
    }

    /// True if the VPE is alive.
    pub fn alive(&self) -> bool {
        self.life == VpeLife::Alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vpe_is_alive() {
        let v = VpeState::new(VpeId(3), PeId(7));
        assert!(v.alive());
        assert!(!v.is_service);
        assert_eq!(v.pe, PeId(7));
    }

    #[test]
    fn dead_vpe_reports_dead() {
        let mut v = VpeState::new(VpeId(3), PeId(7));
        v.life = VpeLife::Dead;
        assert!(!v.alive());
    }
}
