//! The service registry.
//!
//! Services (like m3fs instances) register at their group's kernel, which
//! announces them to all other kernels (inter-kernel call group 1, §4.1).
//! Every kernel thus holds the full registry and can connect clients to
//! services in any group — preferring instances in its *own* group, as
//! the paper's evaluation setup does (§5.3.2: "Kernels which host a
//! service in their PE group prefer to connect their applications to the
//! service in their PE group").

use semper_base::hash::splitmix64;
use semper_base::{DdlKey, KernelId, PeId, ServiceId, VpeId};
use std::collections::BTreeMap;

/// Registry entry for one service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceInfo {
    /// Global service id.
    pub id: ServiceId,
    /// Registered name (shared by all instances of the same service).
    pub name: u64,
    /// Kernel managing the service's group.
    pub owner: KernelId,
    /// DDL key of the service capability (parent of all session caps).
    pub srv_key: DdlKey,
    /// PE the service VPE runs on.
    pub srv_pe: PeId,
    /// The service VPE.
    pub srv_vpe: VpeId,
}

/// All service instances known to a kernel.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    services: BTreeMap<ServiceId, ServiceInfo>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds (or refreshes) a service entry.
    pub fn add(&mut self, info: ServiceInfo) {
        self.services.insert(info.id, info);
    }

    /// Looks up a service by id.
    pub fn get(&self, id: ServiceId) -> Option<&ServiceInfo> {
        self.services.get(&id)
    }

    /// Number of registered instances.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// True if no services are registered.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Picks an instance of service `name` for a client managed by
    /// kernel `local`, preferring instances in the local group and
    /// spreading choices deterministically by a hash of the client's id.
    ///
    /// Hashing matters: client VPE ids are strided by the group layout,
    /// so `idx % len` would alias whole groups onto one instance.
    ///
    /// Allocation-free: every session open runs through here, and the
    /// previous implementation collected the filtered candidates into
    /// one or two `Vec`s per call. Two passes over the (small, id-
    /// ordered) registry — count, then index — select the exact same
    /// instance without touching the heap.
    pub fn pick(&self, name: u64, local: KernelId, client: VpeId) -> Option<&ServiceInfo> {
        let h = splitmix64(client.idx() as u64) as usize;
        let select = |is_local: bool| -> Option<&ServiceInfo> {
            let matches = |s: &&ServiceInfo| s.name == name && (!is_local || s.owner == local);
            let n = self.services.values().filter(matches).count();
            if n == 0 {
                return None;
            }
            self.services.values().filter(matches).nth(h % n)
        };
        select(true).or_else(|| select(false))
    }

    /// Iterates over all instances in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceInfo> {
        self.services.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::CapType;

    fn info(id: u16, name: u64, owner: u16) -> ServiceInfo {
        ServiceInfo {
            id: ServiceId(id),
            name,
            owner: KernelId(owner),
            srv_key: DdlKey::new(PeId(id), VpeId(id), CapType::Service, 0),
            srv_pe: PeId(id),
            srv_vpe: VpeId(id),
        }
    }

    #[test]
    fn prefers_local_instances() {
        let mut r = Registry::new();
        r.add(info(0, 1, 0));
        r.add(info(1, 1, 1));
        let picked = r.pick(1, KernelId(1), VpeId(10)).unwrap();
        assert_eq!(picked.owner, KernelId(1));
    }

    #[test]
    fn falls_back_to_remote() {
        let mut r = Registry::new();
        r.add(info(0, 1, 0));
        let picked = r.pick(1, KernelId(3), VpeId(10)).unwrap();
        assert_eq!(picked.id, ServiceId(0));
    }

    #[test]
    fn spreads_by_client_id() {
        let mut r = Registry::new();
        r.add(info(0, 1, 0));
        r.add(info(1, 1, 0));
        // Over many clients, both instances are used — including clients
        // whose ids share a residue class (the stride-aliasing case).
        let mut seen = std::collections::BTreeSet::new();
        for c in (0..64u16).step_by(8) {
            seen.insert(r.pick(1, KernelId(5), VpeId(c)).unwrap().id);
        }
        assert_eq!(seen.len(), 2, "strided clients must spread over both instances");
    }

    #[test]
    fn unknown_name_is_none() {
        let mut r = Registry::new();
        r.add(info(0, 1, 0));
        assert!(r.pick(2, KernelId(0), VpeId(0)).is_none());
    }

    #[test]
    fn name_filtering() {
        let mut r = Registry::new();
        r.add(info(0, 1, 0));
        r.add(info(1, 2, 0));
        assert_eq!(r.pick(2, KernelId(0), VpeId(0)).unwrap().id, ServiceId(1));
        assert_eq!(r.len(), 2);
    }
}
