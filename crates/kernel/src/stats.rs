//! Per-kernel statistics.
//!
//! Experiments read these counters to produce the paper's tables: the
//! number of capability operations per second (Table 4) and the load
//! distribution across kernels.

/// Counters maintained by each kernel instance.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// System calls received.
    pub syscalls: u64,
    /// Inter-kernel requests received.
    pub kcalls_in: u64,
    /// Inter-kernel requests sent.
    pub kcalls_out: u64,
    /// Capability exchanges completed with both parties in this group.
    pub exchanges_local: u64,
    /// Capability exchanges completed spanning another kernel.
    pub exchanges_spanning: u64,
    /// Revocations completed entirely within this group.
    pub revokes_local: u64,
    /// Revocations that required inter-kernel calls.
    pub revokes_spanning: u64,
    /// Capabilities created (all kinds).
    pub caps_created: u64,
    /// Capabilities deleted by revocation sweeps.
    pub caps_deleted: u64,
    /// Orphaned capabilities cleaned up after a party died mid-exchange.
    pub orphans_cleaned: u64,
    /// Exchanges denied because the capability was marked for revocation
    /// (prevented *pointless* exchanges, Table 2).
    pub pointless_denied: u64,
    /// Sessions opened for clients of this group.
    pub sessions_opened: u64,
    /// Capability groups migrated out (ownership handed to another
    /// kernel and acknowledged by every bystander).
    pub migrations_out: u64,
    /// Capability groups installed by an incoming migration.
    pub migrations_in: u64,
    /// Migrations refused by the destination's install validation (the
    /// group stayed at the source; see
    /// [`Kernel::take_migration_failure`](crate::Kernel::take_migration_failure)).
    pub migrations_failed: u64,
    /// Operations intercepted during a handover window and parked in a
    /// migration's hold queue (each replays exactly once).
    pub ops_held: u64,
    /// System calls relayed to a group's current owner because the
    /// calling endpoint raced a membership update.
    pub syscalls_forwarded: u64,
    /// Inter-kernel requests relayed to a group's current owner
    /// (wrapped in `Kcall::Forwarded`, replies re-home to the original
    /// caller).
    pub kcalls_forwarded: u64,
    /// Cycles this kernel spent executing handlers.
    pub busy_cycles: u64,
    /// High-water mark of simultaneously pending operations (threads in
    /// use, §4.2).
    pub max_pending_ops: u64,
    /// Inter-kernel requests that had to wait for a send credit.
    pub kcalls_credit_stalled: u64,
    /// DTU endpoints deconfigured because their backing capability was
    /// revoked (the enforcement action of a revoke).
    pub eps_invalidated: u64,
    /// Host-side handler dispatches: one per message handled by this
    /// kernel (syscalls, kcalls, replies, upcall answers). The batched
    /// sweep's host-cost metric — a partitioned sweep processes a whole
    /// partition per dispatch instead of one capability per dispatch.
    pub handler_dispatches: u64,
    /// Partitioned parallel sweeps coordinated by this kernel.
    pub sweeps: u64,
    /// Partitions (per-kernel mark requests, counting each participant
    /// once per sweep) fanned out by sweeps this kernel coordinated.
    pub sweep_partitions: u64,
    /// Total subtree-root keys partitioned out by sweeps this kernel
    /// coordinated (fan-out width).
    pub sweep_fanout: u64,
    /// High-water mark of frontier-expansion rounds in one sweep — the
    /// cross-kernel depth of the deepest swept subtree.
    pub sweep_depth: u64,
    /// Idempotent request legs re-sent after a deadline expired
    /// (`Feature::FaultInjection` only).
    pub retries: u64,
    /// Pending operations aborted with `Err` — deadline expiry with no
    /// retry budget left, or a peer kernel declared dead
    /// (`Feature::FaultInjection` only).
    pub ops_aborted: u64,
    /// Protocol anomalies absorbed under fault injection: replies for
    /// unknown ops, duplicate fan-in completions, duplicate delete
    /// orders — events that are hard errors outside fault mode.
    pub fault_anomalies: u64,
    /// Promise capabilities handed out by `Syscall::SubmitAsync`
    /// (`Feature::PromiseIpc` only).
    pub promises_created: u64,
    /// Promises resolved — to a value or an error (`Feature::PromiseIpc`
    /// only).
    pub promises_resolved: u64,
    /// Dependent calls that were pipelined: parked against an unresolved
    /// promise and replayed on resolution instead of blocking the client
    /// (`Feature::PromiseIpc` only).
    pub calls_pipelined: u64,
}

impl KernelStats {
    /// Total capability-modifying operations completed (exchanges and
    /// revokes, the paper's "cap ops").
    pub fn cap_ops(&self) -> u64 {
        self.exchanges_local + self.exchanges_spanning + self.revokes_local + self.revokes_spanning
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_ops_sums_cmos() {
        let s = KernelStats {
            exchanges_local: 1,
            exchanges_spanning: 2,
            revokes_local: 3,
            revokes_spanning: 4,
            ..KernelStats::default()
        };
        assert_eq!(s.cap_ops(), 10);
    }
}
