//! The wire protocol of the simulated machine.
//!
//! Every interaction between PEs travels as a [`Msg`] through the NoC:
//!
//! * **System calls** ([`Syscall`] / [`SysReply`]) — a VPE to its group's
//!   kernel. Each VPE has exactly one blocking system call in flight at a
//!   time (the paper relies on this for serialization and thread-pool
//!   sizing).
//! * **Inter-kernel calls** ([`Kcall`] / [`KReply`]) — kernel to kernel;
//!   the distributed capability protocol of §4.3. Channels are
//!   credit-limited to `M_inflight` messages and FIFO-ordered.
//! * **Upcalls** ([`Upcall`] / [`UpcallReply`]) — kernel to VPE, e.g.
//!   asking a VPE whether it accepts a capability exchange (steps A.2/A.3
//!   in Figure 3).
//! * **Service IPC** ([`FsReq`] / [`FsReply`]) — client VPE to an m3fs
//!   instance over an established session.
//! * **Application traffic** ([`HttpReq`] / [`HttpResp`]) — the Nginx
//!   experiment's load-generator protocol (§5.3.3).

use crate::ddl::DdlKey;
use crate::error::Result;
use crate::ids::{CapSel, EpId, OpId, PeId, ServiceId, VpeId};
use serde::{Deserialize, Serialize};

/// Memory permissions for memory capabilities (subset semantics: a derived
/// capability can only narrow permissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Perms(u8);

impl Perms {
    /// Read permission.
    pub const R: Perms = Perms(0b001);
    /// Write permission.
    pub const W: Perms = Perms(0b010);
    /// Execute permission.
    pub const X: Perms = Perms(0b100);
    /// Read + write.
    pub const RW: Perms = Perms(0b011);
    /// All permissions.
    pub const RWX: Perms = Perms(0b111);
    /// No permissions (useful for revoked placeholders in tests).
    pub const NONE: Perms = Perms(0);

    /// Creates a permission set from raw bits (low three bits used).
    pub fn from_bits(bits: u8) -> Perms {
        Perms(bits & 0b111)
    }

    /// Returns the raw bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// True if `self` includes all permissions in `other`.
    pub fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Intersection of two permission sets.
    pub fn intersect(self, other: Perms) -> Perms {
        Perms(self.0 & other.0)
    }
}

impl core::fmt::Display for Perms {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut s = String::new();
        s.push(if self.contains(Perms::R) { 'r' } else { '-' });
        s.push(if self.contains(Perms::W) { 'w' } else { '-' });
        s.push(if self.contains(Perms::X) { 'x' } else { '-' });
        f.write_str(&s)
    }
}

/// Wire-level description of the resource behind a capability.
///
/// This is what travels in exchange messages; the receiving kernel builds
/// a real capability object (in `semper-caps`) around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapKindDesc {
    /// Control over a VPE.
    Vpe {
        /// The controlled VPE.
        vpe: VpeId,
    },
    /// A byte-granular region of global memory.
    Memory {
        /// Start address in the global physical address space.
        addr: u64,
        /// Size in bytes.
        size: u64,
        /// Access permissions.
        perms: Perms,
    },
    /// The right to send messages to a receive gate.
    SendGate {
        /// VPE owning the receive side.
        dst_vpe: VpeId,
        /// PE of the receive side.
        dst_pe: PeId,
        /// Label delivered with each message (identifies the channel).
        label: u64,
    },
    /// A configured receive endpoint.
    RecvGate {
        /// PE the receive endpoint lives on.
        pe: PeId,
        /// The endpoint number.
        ep: EpId,
    },
    /// A registered OS service.
    Service {
        /// Global service id.
        id: ServiceId,
    },
    /// A session between a client and a service.
    Session {
        /// The service this session belongs to.
        service: ServiceId,
        /// Service-chosen identifier for the session.
        ident: u64,
    },
    /// The kernel's root capability.
    Kernel,
}

/// A full wire capability descriptor: global key plus resource description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapDesc {
    /// Global DDL key of the capability.
    pub key: DdlKey,
    /// Resource description.
    pub kind: CapKindDesc,
}

/// Direction of a capability exchange (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExchangeKind {
    /// The caller obtains a capability *from* the other VPE.
    Obtain,
    /// The caller delegates one of its capabilities *to* the other VPE.
    Delegate,
}

/// System calls a VPE can issue to its group's kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Syscall {
    /// Measures bare syscall round-trip cost; the kernel replies
    /// immediately.
    Noop,
    /// Allocates a fresh region of global memory and returns a root
    /// memory capability for it.
    CreateMem {
        /// Region size in bytes.
        size: u64,
        /// Permissions of the new capability.
        perms: Perms,
    },
    /// Creates a child memory capability covering a sub-range of an
    /// existing memory capability (a group-local CMO).
    DeriveMem {
        /// Selector of the parent memory capability.
        src: CapSel,
        /// Offset of the child range within the parent region.
        offset: u64,
        /// Size of the child range.
        size: u64,
        /// Permissions (must be a subset of the parent's).
        perms: Perms,
    },
    /// Exchanges a capability with another VPE (obtain or delegate).
    Exchange {
        /// The peer VPE.
        other: VpeId,
        /// For delegate: the caller's capability to hand out.
        /// For obtain: ignored.
        own_sel: CapSel,
        /// For obtain: the peer's capability to obtain.
        /// For delegate: ignored (the peer's kernel picks a selector).
        other_sel: CapSel,
        /// Obtain or delegate.
        kind: ExchangeKind,
    },
    /// Recursively revokes the capability subtree rooted at `sel`.
    Revoke {
        /// Selector of the capability to revoke.
        sel: CapSel,
        /// If true the capability itself is revoked too; if false only
        /// its children are.
        own: bool,
    },
    /// Registers the calling VPE as a service under `name`.
    CreateSrv {
        /// Human-readable service name (e.g. `"m3fs"`), used by clients
        /// to connect. Multiple instances may share a name; kernels
        /// prefer instances in their own PE group.
        name: u64,
    },
    /// Opens a session to a service. The kernel picks the closest
    /// instance registered under `name` (own group first).
    OpenSession {
        /// Service name to connect to.
        name: u64,
    },
    /// Configures one of the calling VPE's DTU endpoints for the
    /// capability at `sel` (M3's `activate`): a memory capability maps
    /// the endpoint to its region; a send-gate capability points it at
    /// the peer's receive endpoint. Only the kernel can configure DTUs
    /// (NoC-level isolation, §2.2) — and when the capability is later
    /// revoked, the kernel deconfigures the endpoint, which is what
    /// actually cuts off the hardware access path.
    Activate {
        /// The capability to activate.
        sel: CapSel,
        /// The endpoint to configure.
        ep: EpId,
    },
    /// Voluntary exit; the kernel revokes all capabilities of the VPE.
    Exit,
    /// Several capability operations in one message (the paper's bulk
    /// treatment of capability operations, §5.2): the kernel executes
    /// the items in order and replies once with per-item results
    /// ([`SysReplyData::Batch`]). Still one blocking system call from
    /// the VPE's point of view — one request message, one reply message,
    /// however many items. Runs of consecutive `Revoke` items are
    /// coalesced into a single revocation fan-out whose cross-kernel
    /// requests are grouped per destination kernel (see
    /// `semper_kernel::ops::bulk`). `Batch` and `Exit` may not appear
    /// as items.
    Batch(Box<[Syscall]>),
    /// Submits the inner call asynchronously (`Feature::PromiseIpc`):
    /// the kernel replies immediately with a *promise capability*
    /// ([`SysReplyData::Promise`]) standing in for the eventual result.
    /// Selector-valued operands of later calls may name an unresolved
    /// promise; the kernel parks those calls in the promise's resolution
    /// queue and replays them — with the resolved value substituted — in
    /// arrival order once the promise resolves. Boxed so this variant
    /// does not widen [`Syscall`]. `Exit`, `Batch`, and the promise
    /// calls themselves may not be submitted asynchronously.
    SubmitAsync(Box<Syscall>),
    /// Queries a promise capability (`Feature::PromiseIpc`). If the
    /// promise is resolved the kernel replies with the stored result
    /// (non-consuming: waiting again re-reads it). Otherwise, with
    /// `block` set the caller's reply is deferred until resolution;
    /// without it the kernel replies [`crate::Code::Unresolved`]
    /// immediately — a poll.
    WaitPromise {
        /// Selector of the promise capability.
        sel: CapSel,
        /// Block until resolution instead of polling.
        block: bool,
    },
}

/// Payload of a successful system-call reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SysReplyData {
    /// No data (Noop, Revoke, Exit, CreateSrv acknowledgements).
    None,
    /// A newly allocated capability selector (DeriveMem,
    /// Exchange-obtain, CreateSrv).
    Sel(CapSel),
    /// A new root memory capability (CreateMem): selector plus the
    /// allocated region's global address (the owner needs the address to
    /// compute extent placements).
    Mem {
        /// Selector of the new memory capability.
        sel: CapSel,
        /// Global base address of the allocated region.
        addr: u64,
    },
    /// A delegate completed; the receiver-side selector is reported back
    /// so services can tell clients which selector to use.
    Delegated {
        /// Selector in the receiving VPE's capability table.
        recv_sel: CapSel,
    },
    /// A session was opened.
    Session {
        /// Selector of the new session capability.
        sel: CapSel,
        /// PE of the service VPE, for subsequent direct IPC.
        srv_pe: PeId,
        /// Service-assigned session identifier (carried in every
        /// subsequent request on this session).
        ident: u64,
    },
    /// Per-item outcomes of a [`Syscall::Batch`], in item order: entry
    /// `i` is exactly the reply item `i` would have produced as a
    /// standalone system call. Boxed *thin* (`Box<Vec<..>>`, one
    /// pointer) so this variant does not widen `SysReplyData` — and
    /// thereby every `Msg` — past the slim-layout budget.
    Batch(Box<Vec<Result<SysReplyData>>>),
    /// A [`Syscall::SubmitAsync`] was accepted; `sel` is the promise
    /// capability standing in for the eventual result.
    Promise {
        /// Selector of the new promise capability.
        sel: CapSel,
    },
}

/// Reply to a system call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SysReply {
    /// Echoed caller-chosen tag (correlates replies in trace replay).
    pub tag: u64,
    /// Outcome.
    pub result: Result<SysReplyData>,
}

/// One capability record in a capability-group migration transfer
/// (§4.2 ownership handover): everything the adopting kernel needs to
/// rebuild the record — the globally valid key, resource description,
/// owner-table selector, and the tree links (which stay valid across
/// the move because they are DDL keys, not pointers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigratedCap {
    /// Global DDL key of the capability.
    pub key: DdlKey,
    /// Resource description.
    pub kind: CapKindDesc,
    /// Selector in the owner's capability table.
    pub sel: CapSel,
    /// Parent in the capability tree (may be owned by any kernel).
    pub parent: Option<DdlKey>,
    /// Children in creation order (may be owned by any kernel).
    pub children: Vec<DdlKey>,
}

/// Inter-kernel calls (§4.1) — the distributed capability protocol plus
/// startup/registry traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Kcall {
    /// Announces a newly registered service instance to all kernels.
    AnnounceService {
        /// Global service id (allocated by the registering kernel).
        id: ServiceId,
        /// Service name.
        name: u64,
        /// Kernel owning the service's group.
        owner: crate::ids::KernelId,
        /// DDL key of the service capability.
        srv_key: DdlKey,
        /// PE the service VPE runs on.
        srv_pe: PeId,
        /// The service VPE.
        srv_vpe: VpeId,
    },
    /// Obtain request: the sender's kernel wants to attach `child_key`
    /// (pre-allocated by the sender) as a child of the capability at
    /// `owner_sel` in `owner_vpe`'s table, on behalf of `requester_vpe`.
    ObtainReq {
        /// Correlation id (sender-local).
        op: OpId,
        /// Pre-allocated DDL key of the would-be child capability.
        child_key: DdlKey,
        /// VPE owning the parent capability.
        owner_vpe: VpeId,
        /// Selector of the parent capability in `owner_vpe`'s table.
        owner_sel: CapSel,
        /// The VPE that will receive the new capability.
        requester_vpe: VpeId,
    },
    /// Notifies the parent's kernel that the obtainer died while the
    /// obtain was in flight; the orphaned child reference is removed.
    OrphanNotice {
        /// DDL key of the parent capability.
        parent_key: DdlKey,
        /// DDL key of the orphaned child reference to drop.
        child_key: DdlKey,
    },
    /// Delegate request (first leg of the two-way handshake, §4.3.2):
    /// create — but do not insert — a capability for `recv_vpe` described
    /// by `desc`, with `parent_key` as its parent.
    DelegateReq {
        /// Correlation id (sender-local).
        op: OpId,
        /// DDL key of the parent capability (owned by the sender).
        parent_key: DdlKey,
        /// Resource description for the new child capability.
        desc: CapKindDesc,
        /// The VPE receiving the delegated capability.
        recv_vpe: VpeId,
    },
    /// Second leg of the delegate handshake: commit or abort insertion of
    /// the pending capability created by a previous [`Kcall::DelegateReq`].
    DelegateAck {
        /// Correlation id of the *receiving* kernel's pending insert
        /// (from the [`KReply::Delegate`] reply).
        op: OpId,
        /// Correlation id of the *sending* kernel, echoed in
        /// [`KReply::DelegateDone`].
        reply_op: OpId,
        /// True to insert the pending capability, false to drop it
        /// (e.g. the parent was revoked in the meantime).
        commit: bool,
    },
    /// Revoke the capability subtree rooted at `cap_key` (owned by the
    /// receiving kernel). Sent once per remote child during revocation.
    RevokeReq {
        /// Correlation id (sender-local).
        op: OpId,
        /// DDL key of the subtree root to revoke.
        cap_key: DdlKey,
    },
    /// Batched revoke: revoke several subtrees owned by the receiving
    /// kernel in one message (the paper's suggested message-batching
    /// optimisation; used by the ablation benchmark).
    RevokeBatchReq {
        /// Correlation id (sender-local).
        op: OpId,
        /// DDL keys of the subtree roots to revoke.
        cap_keys: Vec<DdlKey>,
    },
    /// Mark phase of a partitioned parallel sweep
    /// ([`crate::config::Feature::ParallelSweep`]): mark the subtrees
    /// rooted at `cap_keys` (all owned by the receiving kernel) as
    /// revoking, and report the remote children encountered — the next
    /// frontier — back to the coordinating kernel. One message per
    /// owning kernel covers a whole partition; a later frontier round
    /// may extend an existing partition.
    SweepMarkReq {
        /// The coordinator's correlation id (identifies the sweep).
        op: OpId,
        /// Partition subtree roots owned by the receiving kernel.
        cap_keys: Vec<DdlKey>,
    },
    /// Delete phase of a partitioned parallel sweep: every capability
    /// the receiving kernel marked for sweep `op` is deleted, in one
    /// batched handler dispatch. Answered with [`KReply::SweepDelete`]
    /// only once the partition is gone *and* all of its dependencies on
    /// concurrent revocations have drained.
    SweepDeleteReq {
        /// The coordinator's correlation id.
        op: OpId,
    },
    /// Completion notice of a partitioned parallel sweep: every
    /// partition of sweep `op` reported deletion, so the whole subtree
    /// is gone. Participants fire their deferred waiters (operations
    /// that depended on capabilities this sweep marked) only now —
    /// a dependency never resolves while any part of the subtree
    /// survives elsewhere. Fire-and-forget: no reply.
    SweepDoneNotice {
        /// The coordinator's correlation id.
        op: OpId,
    },
    /// Open a session: attach `child_key` (a session capability created by
    /// the sender's kernel) as a child of service `service`'s capability.
    OpenSessReq {
        /// Correlation id (sender-local).
        op: OpId,
        /// Pre-allocated DDL key of the session capability.
        child_key: DdlKey,
        /// The service to connect to (owned by the receiving kernel).
        service: ServiceId,
        /// The connecting client VPE.
        client_vpe: VpeId,
    },
    /// Migrate a capability group: the sender hands ownership of `pe`'s
    /// DDL partition — VPE `vpe` and every capability record it owns —
    /// to the receiving kernel (§4.2). The receiver rebuilds the
    /// records verbatim and adopts the PE into its group.
    MigrateReq {
        /// Correlation id (sender-local).
        op: OpId,
        /// The PE whose partition moves.
        pe: PeId,
        /// The VPE hosted on that PE.
        vpe: VpeId,
        /// The VPE's next DDL object id (resumes the per-creator
        /// counter so post-migration allocations stay globally unique).
        next_object_id: u32,
        /// The VPE's selector-space high-water mark.
        next_sel: u32,
        /// The capability records, in selector order.
        caps: Vec<MigratedCap>,
    },
    /// Announces a completed migration to a bystander kernel: DDL keys
    /// in `pe`'s partition now route to `new_kernel`. Acknowledged with
    /// [`KReply::MembershipAck`] so the migration only completes once
    /// every kernel routes consistently.
    MembershipUpdate {
        /// Correlation id (sender-local).
        op: OpId,
        /// The reassigned PE.
        pe: PeId,
        /// Its new owning kernel.
        new_kernel: crate::ids::KernelId,
    },
    /// A request relayed by a kernel that no longer owns the target
    /// group (§4.2 live migration): the group migrated away, so the old
    /// owner forwards the request to the new owner instead of erroring.
    /// `from` is the *original* caller kernel — the receiver handles the
    /// inner call on its behalf and replies directly to it (the
    /// re-homed reply path), carrying the original correlation id.
    Forwarded {
        /// The kernel that originally issued the inner call.
        from: crate::ids::KernelId,
        /// The relayed request.
        call: Box<Kcall>,
    },
    /// First leg of an eager cross-kernel delegate against an
    /// unresolved promise (`Feature::PromiseIpc`): the sender's kernel
    /// *will* delegate a capability — not yet describable because an
    /// operand promise is unresolved — to `recv_vpe`. The receiving
    /// kernel runs the consent upcall now, so by the time the operand
    /// resolves only the transfer legs remain. Answered with
    /// [`KReply::Provide`]; the actual capability follows in a
    /// [`Kcall::Resolve`].
    Provide {
        /// Correlation id (sender-local).
        op: OpId,
        /// The delegating VPE.
        from_vpe: VpeId,
        /// The VPE that will receive the capability.
        recv_vpe: VpeId,
    },
    /// Second leg of an eager delegate: the operand promise resolved,
    /// so the sender now names the capability to transfer (or aborts
    /// with an `Err`, e.g. the promise resolved to a failure or the
    /// submitter died — then the receiver just drops its pending state
    /// and no reply is sent). Answered with [`KReply::Resolved`] on the
    /// `Ok` path.
    Resolve {
        /// The *receiver's* correlation id (from [`KReply::Provide`]).
        op: OpId,
        /// The sender's correlation id, echoed in [`KReply::Resolved`].
        reply_op: OpId,
        /// The parent capability to delegate from, or the abort reason.
        result: Result<CapDesc>,
    },
    /// Terminate a VPE hosted by the receiving kernel. Sent by a
    /// migration source replaying a kill that arrived while the VPE's
    /// group was mid-handover (the group — and with it the kill — now
    /// belongs to the destination). Fire-and-forget: teardown completes
    /// through the ordinary revocation protocol.
    KillVpe {
        /// The VPE to terminate.
        vpe: VpeId,
    },
}

/// Replies to inter-kernel calls.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KReply {
    /// Reply to [`Kcall::ObtainReq`].
    Obtain {
        /// Correlation id echoed from the request.
        op: OpId,
        /// On success: the parent key and the resource description the
        /// new child capability shall carry.
        result: Result<CapDesc>,
    },
    /// Reply to [`Kcall::DelegateReq`] (first leg).
    Delegate {
        /// Correlation id echoed from the request.
        op: OpId,
        /// On success: the DDL key of the pending (not yet inserted)
        /// child capability, plus the receiver kernel's correlation id to
        /// address the ack.
        result: Result<(DdlKey, OpId)>,
    },
    /// Reply to [`Kcall::DelegateAck`] — reports whether insertion
    /// succeeded (fails with `VpeGone` if the receiver died while the
    /// handshake was in flight, letting the sender clean up quickly).
    DelegateDone {
        /// The ack's `reply_op` echoed back.
        op: OpId,
        /// On success, the selector the capability was inserted at in
        /// the receiving VPE's table.
        result: Result<CapSel>,
    },
    /// Reply to [`Kcall::RevokeReq`] — sent only when the remote subtree
    /// is completely gone (never acknowledges an incomplete revoke).
    Revoke {
        /// Correlation id echoed from the request.
        op: OpId,
        /// DDL key the request named (identifies which child finished).
        cap_key: DdlKey,
        /// Number of capabilities deleted in the remote subtree
        /// (statistics only).
        deleted: u64,
        /// Outcome (errors only for unknown keys, which count as done).
        result: Result<()>,
    },
    /// Reply to [`Kcall::RevokeBatchReq`].
    RevokeBatch {
        /// Correlation id echoed from the request.
        op: OpId,
        /// Keys from the request that are now fully revoked.
        cap_keys: Vec<DdlKey>,
        /// Total number of capabilities deleted.
        deleted: u64,
        /// Outcome.
        result: Result<()>,
    },
    /// Reply to [`Kcall::SweepMarkReq`]: the partition (or partition
    /// extension) is marked; `frontier` lists the remote children
    /// encountered — the coordinator groups them by owning kernel for
    /// the next mark round.
    SweepMark {
        /// Correlation id echoed from the request.
        op: OpId,
        /// Capabilities marked by this request (statistics only).
        marked: u64,
        /// Remote children encountered during the mark walk.
        frontier: Vec<DdlKey>,
    },
    /// Reply to [`Kcall::SweepDeleteReq`] — sent only when the
    /// partition is completely deleted and its dependencies on
    /// concurrent revocations have drained.
    SweepDelete {
        /// Correlation id echoed from the request.
        op: OpId,
        /// Number of capabilities deleted in the partition.
        deleted: u64,
    },
    /// Reply to [`Kcall::OpenSessReq`].
    OpenSess {
        /// Correlation id echoed from the request.
        op: OpId,
        /// On success: the session identifier chosen by the service.
        result: Result<u64>,
    },
    /// Reply to [`Kcall::MigrateReq`] — the receiving kernel installed
    /// the group.
    Migrate {
        /// Correlation id echoed from the request.
        op: OpId,
        /// On success: the number of capability records installed.
        result: Result<u64>,
    },
    /// Reply to [`Kcall::MembershipUpdate`].
    MembershipAck {
        /// Correlation id echoed from the update.
        op: OpId,
    },
    /// Reply to [`Kcall::Provide`]: the receiving VPE's consent verdict.
    /// On success, the receiver kernel's correlation id addressing the
    /// follow-up [`Kcall::Resolve`].
    Provide {
        /// Correlation id echoed from the request.
        op: OpId,
        /// On success: the receiver kernel's pending-op id.
        result: Result<OpId>,
    },
    /// Reply to an `Ok` [`Kcall::Resolve`]: the receiver created the
    /// pending child capability. On success, the child's DDL key plus
    /// the receiver's insert correlation id — the sender commits with
    /// the ordinary [`Kcall::DelegateAck`] handshake.
    Resolved {
        /// The resolve's `reply_op` echoed back.
        op: OpId,
        /// On success: pending child key and the receiver's insert op.
        result: Result<(DdlKey, OpId)>,
    },
}

impl KReply {
    /// The correlation id this reply resumes — the ledger key the
    /// engine's reply router looks up.
    pub fn op(&self) -> OpId {
        match self {
            KReply::Obtain { op, .. }
            | KReply::Delegate { op, .. }
            | KReply::DelegateDone { op, .. }
            | KReply::Revoke { op, .. }
            | KReply::RevokeBatch { op, .. }
            | KReply::SweepMark { op, .. }
            | KReply::SweepDelete { op, .. }
            | KReply::OpenSess { op, .. }
            | KReply::Migrate { op, .. }
            | KReply::MembershipAck { op }
            | KReply::Provide { op, .. }
            | KReply::Resolved { op, .. } => *op,
        }
    }
}

/// Kernel-to-VPE requests ("upcalls").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Upcall {
    /// Asks the VPE whether it accepts a capability exchange initiated by
    /// `from_vpe` (steps A.2 / B.3 in Figure 3).
    AcceptExchange {
        /// Correlation id (kernel-local).
        op: OpId,
        /// The initiating VPE.
        from_vpe: VpeId,
        /// Obtain or delegate, from the initiator's point of view.
        kind: ExchangeKind,
        /// For obtain: which of the receiver's capabilities is requested.
        sel: CapSel,
    },
    /// Notifies a service VPE that a client opened a session.
    SessionOpen {
        /// Correlation id (kernel-local).
        op: OpId,
        /// The connecting client.
        client_vpe: VpeId,
        /// PE of the client (for direct replies).
        client_pe: PeId,
    },
}

/// VPE-to-kernel responses to upcalls.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpcallReply {
    /// Response to [`Upcall::AcceptExchange`].
    AcceptExchange {
        /// Correlation id echoed from the upcall.
        op: OpId,
        /// Whether the exchange may proceed.
        accept: bool,
    },
    /// Response to [`Upcall::SessionOpen`].
    SessionOpen {
        /// Correlation id echoed from the upcall.
        op: OpId,
        /// On success, the service-chosen session identifier.
        result: Result<u64>,
    },
}

/// Filesystem operations (client → m3fs over a session).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsOp {
    /// Opens a file; returns a file id.
    Open {
        /// Path, relative to the FS root.
        path: String,
        /// Open for writing/appending.
        write: bool,
        /// Create the file if missing.
        create: bool,
    },
    /// Requests a memory capability for the next extent of the file
    /// starting at `offset`. The service delegates a memory capability to
    /// the client and replies with the covered range.
    NextExtent {
        /// Open-file id.
        fid: u64,
        /// Byte offset the client wants to access.
        offset: u64,
        /// True if the client intends to write (append allocates).
        write: bool,
    },
    /// Returns metadata for a path.
    Stat {
        /// Path to inspect.
        path: String,
    },
    /// Lists the names in a directory (used by the `find` workload).
    ReadDir {
        /// Directory path.
        path: String,
    },
    /// Creates a directory.
    Mkdir {
        /// Path of the new directory.
        path: String,
    },
    /// Removes a file.
    Unlink {
        /// Path of the file to remove.
        path: String,
    },
    /// Closes an open file; the service revokes all memory capabilities
    /// it delegated for this file.
    Close {
        /// Open-file id.
        fid: u64,
    },
}

/// A filesystem request carried over an open session.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsReq {
    /// Session identifier (from [`SysReplyData::Session`]).
    pub session: u64,
    /// Caller-chosen tag echoed in the reply.
    pub tag: u64,
    /// The operation.
    pub op: FsOp,
}

/// Metadata returned by `Stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStat {
    /// File size in bytes.
    pub size: u64,
    /// True for directories.
    pub is_dir: bool,
    /// Number of extents backing the file.
    pub extents: u32,
}

/// Successful filesystem reply payloads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsReplyData {
    /// Open succeeded.
    Opened {
        /// File id for subsequent operations.
        fid: u64,
        /// Current file size.
        size: u64,
    },
    /// NextExtent succeeded; the client now owns a memory capability.
    Extent {
        /// Selector of the delegated memory capability in the *client's*
        /// capability table.
        sel: CapSel,
        /// Global address the capability covers.
        addr: u64,
        /// File offset the extent starts at.
        offset: u64,
        /// Length of the extent in bytes.
        len: u64,
    },
    /// Stat result.
    Stat(FileStat),
    /// Directory listing (names only).
    Dir {
        /// Entry names.
        names: Vec<String>,
    },
    /// Generic acknowledgement (mkdir, unlink, close).
    Ok,
}

/// Reply to a filesystem request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsReply {
    /// Echoed tag.
    pub tag: u64,
    /// Outcome.
    pub result: Result<FsReplyData>,
}

/// A load-generator HTTP request (Nginx experiment, §5.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpReq {
    /// Request id, echoed in the response.
    pub id: u64,
    /// Index of the static file to serve (picks a file from the docroot).
    pub uri: u32,
}

/// The server's response to an [`HttpReq`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpResp {
    /// Echoed request id.
    pub id: u64,
    /// Number of payload bytes served.
    pub bytes: u64,
}

/// Union of everything that can travel through the NoC.
///
/// The large variants are boxed: the enum would otherwise be as large
/// as its fattest member (56 bytes, dominated by the inter-kernel
/// calls and the `String`-carrying filesystem requests), and every
/// event-queue insertion, heap sift, and stall-lane park would move
/// that much. Boxing `Kcall`/`KReply`/`Fs`/`FsReply` brings a [`Msg`]
/// down to 40 bytes. The mid-size variants (`Sys`, `SysReply`, the
/// upcalls, HTTP) deliberately stay inline: they ride the group-local
/// syscall path that every benchmark hammers, where one allocation per
/// message costs more than the smaller heap moves save — the
/// inter-kernel and filesystem messages are both the fattest and the
/// least frequent, so they carry the boxes. Use the lower-case helper
/// constructors ([`Payload::sys`], [`Payload::kcall`], …) instead of
/// spelling the representation out at each send site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Payload {
    /// VPE → kernel.
    Sys {
        /// Caller-chosen tag echoed in the reply.
        tag: u64,
        /// The call.
        call: Syscall,
    },
    /// Kernel → VPE.
    SysReply(SysReply),
    /// Kernel → kernel request.
    Kcall(Box<Kcall>),
    /// Kernel → kernel reply.
    KReply(Box<KReply>),
    /// Kernel → VPE request.
    Upcall(Upcall),
    /// VPE → kernel response.
    UpcallReply(UpcallReply),
    /// Client VPE → service VPE.
    Fs(Box<FsReq>),
    /// Service VPE → client VPE.
    FsReply(Box<FsReply>),
    /// Load generator → server VPE.
    Http(HttpReq),
    /// Server VPE → load generator.
    HttpReply(HttpResp),
}

impl Payload {
    /// A system call.
    pub fn sys(tag: u64, call: Syscall) -> Payload {
        Payload::Sys { tag, call }
    }

    /// A system-call reply.
    pub fn sys_reply(tag: u64, result: Result<SysReplyData>) -> Payload {
        Payload::SysReply(SysReply { tag, result })
    }

    /// An inter-kernel request.
    pub fn kcall(call: Kcall) -> Payload {
        Payload::Kcall(Box::new(call))
    }

    /// An inter-kernel reply.
    pub fn kreply(reply: KReply) -> Payload {
        Payload::KReply(Box::new(reply))
    }

    /// A VPE's response to an upcall.
    pub fn upcall_reply(reply: UpcallReply) -> Payload {
        Payload::UpcallReply(reply)
    }

    /// A filesystem request.
    pub fn fs(req: FsReq) -> Payload {
        Payload::Fs(Box::new(req))
    }

    /// A filesystem reply.
    pub fn fs_reply(tag: u64, result: Result<FsReplyData>) -> Payload {
        Payload::FsReply(Box::new(FsReply { tag, result }))
    }
    /// Estimated wire size in bytes, used by the NoC latency model.
    ///
    /// Sizes approximate the real M3 message formats: a 16-byte DTU header
    /// plus the architectural payload. Strings count their length;
    /// batched revokes count 8 bytes per key.
    pub fn wire_size(&self) -> u32 {
        const HDR: u32 = 16;
        HDR + match self {
            Payload::Sys { call, .. } => syscall_size(call),
            Payload::SysReply(r) => sys_reply_size(&r.result),
            Payload::Kcall(k) => kcall_size(k),
            Payload::KReply(r) => match r.as_ref() {
                KReply::Obtain { .. } => 40,
                KReply::Delegate { .. } => 32,
                KReply::DelegateDone { .. } => 16,
                KReply::Revoke { .. } => 32,
                KReply::RevokeBatch { cap_keys, .. } => 24 + 8 * cap_keys.len() as u32,
                KReply::SweepMark { frontier, .. } => 24 + 8 * frontier.len() as u32,
                KReply::SweepDelete { .. } => 24,
                KReply::OpenSess { .. } => 24,
                KReply::Migrate { .. } => 24,
                KReply::MembershipAck { .. } => 8,
                KReply::Provide { .. } => 16,
                KReply::Resolved { .. } => 24,
            },
            Payload::Upcall(_) | Payload::UpcallReply(_) => 24,
            Payload::Fs(req) => {
                16 + match &req.op {
                    FsOp::Open { path, .. }
                    | FsOp::Stat { path }
                    | FsOp::ReadDir { path }
                    | FsOp::Mkdir { path }
                    | FsOp::Unlink { path } => path.len() as u32,
                    FsOp::NextExtent { .. } => 24,
                    FsOp::Close { .. } => 8,
                }
            }
            Payload::FsReply(r) => match &r.result {
                Ok(FsReplyData::Dir { names }) => {
                    16 + names.iter().map(|n| n.len() as u32 + 2).sum::<u32>()
                }
                Ok(FsReplyData::Extent { .. }) => 40,
                _ => 24,
            },
            Payload::Http(_) => 64,
            Payload::HttpReply(_) => 128,
        }
    }
}

/// Architectural payload bytes of one inter-kernel call (excluding the
/// DTU header). Batched revokes and sweep marks count 8 bytes per key;
/// a forwarded request pays an 8-byte relay header (original caller id)
/// plus the inner call's payload.
fn kcall_size(call: &Kcall) -> u32 {
    match call {
        Kcall::AnnounceService { .. } => 48,
        Kcall::ObtainReq { .. } => 40,
        Kcall::OrphanNotice { .. } => 24,
        Kcall::DelegateReq { .. } => 48,
        Kcall::DelegateAck { .. } => 16,
        Kcall::RevokeReq { .. } => 24,
        Kcall::RevokeBatchReq { cap_keys, .. } => 16 + 8 * cap_keys.len() as u32,
        Kcall::SweepMarkReq { cap_keys, .. } => 16 + 8 * cap_keys.len() as u32,
        Kcall::SweepDeleteReq { .. } => 16,
        Kcall::SweepDoneNotice { .. } => 16,
        Kcall::OpenSessReq { .. } => 32,
        // Per record: key + kind + selector + parent (32 bytes)
        // plus one key per child reference.
        Kcall::MigrateReq { caps, .. } => {
            32 + caps.iter().map(|c| 32 + 8 * c.children.len() as u32).sum::<u32>()
        }
        Kcall::MembershipUpdate { .. } => 16,
        Kcall::Forwarded { call, .. } => 8 + kcall_size(call),
        Kcall::KillVpe { .. } => 8,
        Kcall::Provide { .. } => 24,
        Kcall::Resolve { .. } => 48,
    }
}

/// Architectural payload bytes of one system call (excluding the DTU
/// header). A [`Syscall::Batch`] pays one 8-byte batch header plus the
/// item payloads — the per-message DTU header is what batching
/// amortizes.
fn syscall_size(call: &Syscall) -> u32 {
    match call {
        Syscall::Noop => 8,
        Syscall::CreateMem { .. } => 24,
        Syscall::DeriveMem { .. } => 32,
        Syscall::Exchange { .. } => 24,
        Syscall::Revoke { .. } => 16,
        Syscall::CreateSrv { .. } => 16,
        Syscall::OpenSession { .. } => 16,
        Syscall::Activate { .. } => 16,
        Syscall::Exit => 8,
        Syscall::Batch(items) => 8 + items.iter().map(syscall_size).sum::<u32>(),
        // An async submission pays an 8-byte promise header on top of
        // the inner call's payload.
        Syscall::SubmitAsync(inner) => 8 + syscall_size(inner),
        Syscall::WaitPromise { .. } => 16,
    }
}

/// Architectural payload bytes of one system-call reply (excluding the
/// DTU header). A batch reply carries one 8-byte item count plus the
/// per-item reply payloads.
fn sys_reply_size(result: &Result<SysReplyData>) -> u32 {
    match result {
        Ok(SysReplyData::Session { .. }) => 32,
        Ok(SysReplyData::Batch(items)) => 8 + items.iter().map(sys_reply_size).sum::<u32>(),
        _ => 16,
    }
}

/// A message in flight between two PEs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Msg {
    /// Sending PE.
    pub src: PeId,
    /// Destination PE.
    pub dst: PeId,
    /// The content.
    pub payload: Payload,
}

impl Msg {
    /// Creates a message.
    pub fn new(src: PeId, dst: PeId, payload: Payload) -> Msg {
        Msg { src, dst, payload }
    }

    /// Wire size of the message in bytes.
    pub fn wire_size(&self) -> u32 {
        self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddl::CapType;

    #[test]
    fn perms_subset_logic() {
        assert!(Perms::RWX.contains(Perms::RW));
        assert!(!Perms::R.contains(Perms::W));
        assert_eq!(Perms::RW.intersect(Perms::W), Perms::W);
        assert_eq!(Perms::RWX.to_string(), "rwx");
        assert_eq!(Perms::R.to_string(), "r--");
    }

    #[test]
    fn perms_from_bits_masks_high_bits() {
        assert_eq!(Perms::from_bits(0xFF), Perms::RWX);
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = Payload::kcall(Kcall::RevokeReq {
            op: OpId(1),
            cap_key: DdlKey::new(PeId(0), VpeId(0), CapType::Memory, 1),
        });
        let keys =
            (0..10).map(|i| DdlKey::new(PeId(0), VpeId(0), CapType::Memory, i)).collect::<Vec<_>>();
        let big = Payload::kcall(Kcall::RevokeBatchReq { op: OpId(1), cap_keys: keys });
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn fs_paths_count_into_wire_size() {
        let short = Payload::fs(FsReq { session: 0, tag: 0, op: FsOp::Stat { path: "a".into() } });
        let long = Payload::fs(FsReq {
            session: 0,
            tag: 0,
            op: FsOp::Stat { path: "a/very/long/path/name".into() },
        });
        assert!(long.wire_size() > short.wire_size());
    }

    /// One batch of N calls must ride a single DTU header: cheaper on
    /// the wire than N separate messages, but still charged for every
    /// item's payload.
    #[test]
    fn batch_amortizes_the_message_header() {
        let items: Box<[Syscall]> =
            (0..4).map(|_| Syscall::Revoke { sel: crate::CapSel(3), own: true }).collect();
        let batched = Payload::sys(0, Syscall::Batch(items));
        let single = Payload::sys(0, Syscall::Revoke { sel: crate::CapSel(3), own: true });
        assert!(batched.wire_size() < 4 * single.wire_size());
        assert!(batched.wire_size() > single.wire_size());

        let results: Vec<Result<SysReplyData>> = (0..4).map(|_| Ok(SysReplyData::None)).collect();
        let breply = Payload::sys_reply(0, Ok(SysReplyData::Batch(Box::new(results))));
        let sreply = Payload::sys_reply(0, Ok(SysReplyData::None));
        assert!(breply.wire_size() < 4 * sreply.wire_size());
        assert!(breply.wire_size() > sreply.wire_size());
    }

    #[test]
    fn msg_roundtrip_fields() {
        let m = Msg::new(PeId(1), PeId(2), Payload::sys(7, Syscall::Noop));
        assert_eq!(m.src, PeId(1));
        assert_eq!(m.dst, PeId(2));
        assert_eq!(m.wire_size(), 16 + 8);
    }

    /// The protocol-bearing payload variants are boxed so messages move
    /// through the event queue (and its stall lanes) as little more
    /// than a pointer. Guard the size so a new fat inline variant
    /// cannot silently re-bloat every queue operation.
    #[test]
    fn msg_stays_slim() {
        assert!(
            std::mem::size_of::<Msg>() <= 40,
            "Msg grew to {} bytes; box large Payload variants",
            std::mem::size_of::<Msg>()
        );
        assert!(std::mem::size_of::<Payload>() <= 32);
    }
}

/// Outgoing-message collection shared by all actors (kernels, services,
/// application VPEs).
///
/// Actors never touch the event queue directly; they push messages into
/// an `Outbox` and the machine layer injects them into the NoC when the
/// handler's modeled execution completes.
#[derive(Debug, Default)]
pub struct Outbox {
    msgs: Vec<(Msg, Option<u64>)>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queues a message, injected when the handler's modeled execution
    /// completes (the handler composes the message as part of its work).
    pub fn push(&mut self, msg: Msg) {
        self.msgs.push((msg, None));
    }

    /// Queues a message injected `offset` cycles after the handler
    /// *started* — used by loops that send as they iterate (e.g. the
    /// revocation fan-out), so remote kernels overlap with the rest of
    /// the loop instead of waiting for it to finish.
    pub fn push_after(&mut self, msg: Msg, offset: u64) {
        self.msgs.push((msg, Some(offset)));
    }

    /// Drains the collected messages in push order, with their optional
    /// pipelined-injection offsets. Takes the backing buffer; prefer
    /// [`Outbox::drain_iter`] on hot paths so a long-lived outbox keeps
    /// its capacity.
    pub fn drain(&mut self) -> Vec<(Msg, Option<u64>)> {
        std::mem::take(&mut self.msgs)
    }

    /// Drains the collected messages in push order without giving up the
    /// backing buffer — a long-lived outbox reused across handler
    /// invocations stops allocating once warm (the machine's event loop
    /// ran one allocation/free per delivered message before this).
    pub fn drain_iter(&mut self) -> impl Iterator<Item = (Msg, Option<u64>)> + '_ {
        self.msgs.drain(..)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Read-only view of the queued messages (tests).
    pub fn peek(&self) -> impl Iterator<Item = &Msg> {
        self.msgs.iter().map(|(m, _)| m)
    }
}
