//! Distributed Data Lookup (DDL) keys — §3.2 of the paper.
//!
//! Every kernel object that must be referable by *other* kernels (VPEs,
//! capabilities, services, sessions) gets a DDL key acting as its global
//! id. The key packs four fields:
//!
//! ```text
//!  63           48 47           32 31      24 23                 0
//! +---------------+---------------+----------+--------------------+
//! |     PE id     |    VPE id     |   type   |     object id      |
//! +---------------+---------------+----------+--------------------+
//! ```
//!
//! The *PE id* names the creator's PE and partitions the key space: the
//! membership table (in `semper-caps`) maps PE-id partitions to kernels,
//! so any kernel can route a key to its owning kernel without global
//! agreement. *VPE id* names the creating VPE, *type* the object class,
//! and *object id* a per-creator sequence number.

use crate::ids::{PeId, VpeId};
use serde::{Deserialize, Serialize};

/// Object classes distinguishable by a DDL key's type field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CapType {
    /// A VPE (process) object.
    Vpe = 1,
    /// A byte-granular memory region (memory gate).
    Memory = 2,
    /// A send gate: the right to send messages to a receive gate.
    SendGate = 3,
    /// A receive gate: a configured receive endpoint.
    RecvGate = 4,
    /// A registered OS service.
    Service = 5,
    /// A session between a client VPE and a service.
    Session = 6,
    /// The kernel object itself (used for kernel-owned root capabilities).
    Kernel = 7,
    /// A promise: a placeholder for the result of an asynchronous
    /// invocation (`Feature::PromiseIpc`). Promise keys live outside the
    /// capability tree — they name kernel-internal resolution state, not
    /// a mapdb record.
    Promise = 8,
}

impl CapType {
    /// Decodes a type field value; returns `None` for unknown values.
    pub fn from_u8(v: u8) -> Option<CapType> {
        Some(match v {
            1 => CapType::Vpe,
            2 => CapType::Memory,
            3 => CapType::SendGate,
            4 => CapType::RecvGate,
            5 => CapType::Service,
            6 => CapType::Session,
            7 => CapType::Kernel,
            8 => CapType::Promise,
            _ => return None,
        })
    }
}

/// A globally valid capability address (64-bit packed DDL key).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DdlKey(u64);

/// Maximum value of the per-creator object id field (24 bits).
pub const MAX_OBJECT_ID: u32 = (1 << 24) - 1;

impl DdlKey {
    /// Packs the four fields into a key.
    ///
    /// # Panics
    ///
    /// Panics if `object_id` exceeds [`MAX_OBJECT_ID`]; object-id
    /// allocation in the kernel wraps far below that bound.
    pub fn new(pe: PeId, vpe: VpeId, ty: CapType, object_id: u32) -> DdlKey {
        assert!(object_id <= MAX_OBJECT_ID, "object id overflows DDL key field");
        DdlKey(
            ((pe.0 as u64) << 48) | ((vpe.0 as u64) << 32) | ((ty as u64) << 24) | object_id as u64,
        )
    }

    /// Creates a key from its raw 64-bit representation.
    ///
    /// The type field is *not* validated here; use [`DdlKey::cap_type`] to
    /// decode it fallibly.
    pub fn from_raw(raw: u64) -> DdlKey {
        DdlKey(raw)
    }

    /// Returns the raw 64-bit representation.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The creator PE id — the partition used for kernel routing.
    pub fn pe(self) -> PeId {
        PeId((self.0 >> 48) as u16)
    }

    /// The creator VPE id.
    pub fn vpe(self) -> VpeId {
        VpeId((self.0 >> 32) as u16)
    }

    /// The object class, if the type field holds a known value.
    pub fn cap_type(self) -> Option<CapType> {
        CapType::from_u8((self.0 >> 24) as u8)
    }

    /// The per-creator object id.
    pub fn object_id(self) -> u32 {
        (self.0 & MAX_OBJECT_ID as u64) as u32
    }
}

impl core::fmt::Debug for DdlKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DdlKey({}/{}/{:?}/{})", self.pe(), self.vpe(), self.cap_type(), self.object_id())
    }
}

impl core::fmt::Display for DdlKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let k = DdlKey::new(PeId(513), VpeId(42), CapType::Session, 123_456);
        assert_eq!(k.pe(), PeId(513));
        assert_eq!(k.vpe(), VpeId(42));
        assert_eq!(k.cap_type(), Some(CapType::Session));
        assert_eq!(k.object_id(), 123_456);
    }

    #[test]
    fn raw_roundtrip() {
        let k = DdlKey::new(PeId(1), VpeId(2), CapType::Memory, 3);
        assert_eq!(DdlKey::from_raw(k.raw()), k);
    }

    #[test]
    fn max_fields() {
        let k = DdlKey::new(PeId(u16::MAX), VpeId(u16::MAX), CapType::Kernel, MAX_OBJECT_ID);
        assert_eq!(k.pe(), PeId(u16::MAX));
        assert_eq!(k.vpe(), VpeId(u16::MAX));
        assert_eq!(k.object_id(), MAX_OBJECT_ID);
    }

    #[test]
    #[should_panic(expected = "object id overflows")]
    fn object_id_overflow_panics() {
        let _ = DdlKey::new(PeId(0), VpeId(0), CapType::Vpe, MAX_OBJECT_ID + 1);
    }

    #[test]
    fn unknown_type_decodes_none() {
        let k = DdlKey::from_raw(0xFF << 24);
        assert_eq!(k.cap_type(), None);
    }

    #[test]
    fn keys_differing_only_in_pe_are_distinct() {
        let a = DdlKey::new(PeId(1), VpeId(0), CapType::Vpe, 0);
        let b = DdlKey::new(PeId(2), VpeId(0), CapType::Vpe, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn cap_type_from_u8_exhaustive() {
        for v in 1..=8u8 {
            let ty = CapType::from_u8(v).expect("known type");
            assert_eq!(ty as u8, v);
        }
        assert_eq!(CapType::from_u8(0), None);
        assert_eq!(CapType::from_u8(9), None);
    }
}
