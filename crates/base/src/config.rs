//! Machine- and experiment-level configuration.
//!
//! A [`MachineConfig`] describes the simulated hardware (PE count, mesh
//! shape, DTU limits) and the OS deployment (how many kernels and service
//! instances, which protocol features are enabled). The defaults mirror
//! the paper's testbed (§5.1): 640 PEs, DTUs with 16 endpoints × 32
//! message slots, at most 4 in-flight inter-kernel messages per kernel
//! pair, and at most 64 kernels.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};

/// Number of endpoints per DTU (paper §5.1).
pub const EP_COUNT: u8 = 16;
/// Message slots per receive endpoint (paper §5.1).
pub const MSG_SLOTS: u32 = 32;
/// Maximum number of kernels the system supports (paper §5.1: 8 receive
/// endpoints for kernels × 8 kernels each... bounded at 64).
pub const MAX_KERNELS: u16 = 64;
/// Maximum PEs one kernel can handle (paper §5.1: 6 syscall receive
/// endpoints × 32 slots = 192 VPEs, one blocking syscall each).
pub const MAX_PES_PER_KERNEL: u16 = 192;
/// Default maximum in-flight inter-kernel messages per kernel pair
/// (paper §5.1).
pub const DEFAULT_MAX_INFLIGHT: u32 = 4;

/// Whether the system runs as the SemperOS multikernel or as the M3
/// single-kernel baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelMode {
    /// M3 baseline: exactly one kernel, plain-pointer capability
    /// references (no DDL decode overhead).
    M3,
    /// SemperOS: multiple kernels, DDL-keyed capability references.
    SemperOS,
}

/// Optional protocol features (for ablation experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// Batch revoke requests to the same remote kernel into one message
    /// (the paper's proposed message-batching optimisation, §5.2).
    RevokeBatching,
    /// *Disable* the two-way delegate handshake (ablation: demonstrates
    /// the invalid-capability window of the naive protocol; never enable
    /// outside the ablation benchmark).
    OneWayDelegate,
    /// Services issue their capability operations through
    /// `Syscall::Batch` where the workload allows it (m3fs batches the
    /// close-time revokes of a file's delegated extents into one
    /// message). Off by default so the sequential scenarios stay
    /// bit-identical; the `*_batched` bench scenarios enable it.
    SyscallBatching,
    /// Partitioned parallel revocation sweeps: a revoke whose subtree
    /// spans several kernels (or exceeds a fan-out threshold) is driven
    /// as a two-phase mark → delete protocol with one grouped request
    /// per owning kernel, so the partitions are swept concurrently in
    /// sim time (the GC-style parallel sweep of ROADMAP item 2). Off by
    /// default so every pre-existing scenario and golden stays
    /// bit-identical; the `*_parallel` bench scenarios enable it.
    ParallelSweep,
    /// Fault-tolerant operation under a `semper_sim::FaultPlan`: the
    /// ops engine arms per-pending-op deadlines, retries idempotent
    /// legs a bounded number of times, aborts everything else with a
    /// real `Err`, and tolerates the duplicate/missing replies a lossy
    /// NoC produces (debug asserts on those paths soften to counters).
    /// Off by default so every golden and trace fingerprint stays
    /// bit-identical; the fault suites and fault bench scenarios
    /// enable it together with a non-empty plan.
    FaultInjection,
    /// Promise-capability IPC (ROADMAP item 4): `Syscall::SubmitAsync`
    /// returns a first-class *promise capability* immediately; the
    /// kernel pipelines dependent calls naming an unresolved promise
    /// (parked in the promise's resolution queue, replayed in arrival
    /// order on resolve) and routes the `Provide`/`Resolve` legs of
    /// cross-kernel promises through the ops engine. Off by default so
    /// every pre-existing golden, trace fingerprint, and bench cycle
    /// count stays bit-identical; the `*_pipelined` scenarios and the
    /// promise suites enable it.
    PromiseIpc,
}

/// Full description of a simulated machine and its OS deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Total number of PEs (kernel + service + application + idle).
    pub num_pes: u16,
    /// Width of the square-ish mesh used for hop-count computation.
    pub mesh_width: u16,
    /// Number of kernel PEs (= number of PE groups).
    pub kernels: u16,
    /// Number of m3fs service instances.
    pub services: u16,
    /// Kernel mode (M3 baseline or SemperOS multikernel).
    pub mode: KernelMode,
    /// Maximum in-flight inter-kernel messages per kernel pair.
    pub max_inflight: u32,
    /// Enabled optional features.
    pub features: Vec<Feature>,
    /// The cycle-cost model.
    pub cost: CostModel,
    /// RNG seed for workload generation (simulation itself is
    /// deterministic regardless).
    pub seed: u64,
}

impl MachineConfig {
    /// A small default machine: 1 kernel, 1 service, SemperOS mode.
    pub fn small() -> MachineConfig {
        MachineConfig {
            num_pes: 16,
            mesh_width: 4,
            kernels: 1,
            services: 1,
            mode: KernelMode::SemperOS,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            features: Vec::new(),
            cost: CostModel::calibrated(),
            seed: DEFAULT_SEED,
        }
    }

    /// The paper's full testbed: 640 PEs in a 32×20 mesh.
    pub fn paper_testbed(kernels: u16, services: u16) -> MachineConfig {
        MachineConfig {
            num_pes: 640,
            mesh_width: 32,
            kernels,
            services,
            mode: KernelMode::SemperOS,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            features: Vec::new(),
            cost: CostModel::calibrated(),
            seed: DEFAULT_SEED,
        }
    }

    /// M3 baseline on the same hardware: one kernel, plain references.
    pub fn m3_baseline(num_pes: u16) -> MachineConfig {
        MachineConfig {
            num_pes,
            mesh_width: mesh_width_for(num_pes),
            kernels: 1,
            services: 1,
            mode: KernelMode::M3,
            max_inflight: DEFAULT_MAX_INFLIGHT,
            features: Vec::new(),
            cost: CostModel::calibrated(),
            seed: DEFAULT_SEED,
        }
    }

    /// True if the given feature is enabled.
    pub fn has_feature(&self, f: Feature) -> bool {
        self.features.contains(&f)
    }

    /// Enables a feature (builder style).
    pub fn with_feature(mut self, f: Feature) -> MachineConfig {
        if !self.features.contains(&f) {
            self.features.push(f);
        }
        self
    }

    /// Kernel thread-pool size per the paper's formula (§4.2):
    /// `V_group + K_max * M_inflight`, where `V_group` is the number of
    /// VPEs in this kernel's group. With `Feature::PromiseIpc` the VPE
    /// term doubles: an asynchronous inner execution can hold a thread
    /// concurrently with the same VPE's blocking syscall.
    pub fn thread_pool_size(&self, vpes_in_group: u32) -> u32 {
        let vpe_term =
            if self.has_feature(Feature::PromiseIpc) { 2 * vpes_in_group } else { vpes_in_group };
        vpe_term + self.kernels as u32 * self.max_inflight
    }

    /// Validates structural constraints; returns a human-readable reason
    /// on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.kernels == 0 {
            return Err("at least one kernel required".into());
        }
        if self.kernels > MAX_KERNELS {
            return Err(format!("at most {MAX_KERNELS} kernels supported"));
        }
        if self.mode == KernelMode::M3 && self.kernels != 1 {
            return Err("M3 mode uses exactly one kernel".into());
        }
        if self.num_pes < self.kernels + self.services {
            return Err("not enough PEs for kernels and services".into());
        }
        let per_kernel = self.num_pes / self.kernels;
        if per_kernel > MAX_PES_PER_KERNEL {
            return Err(format!(
                "a kernel would manage {per_kernel} PEs, max is {MAX_PES_PER_KERNEL}"
            ));
        }
        if self.mesh_width == 0
            || (self.mesh_width as u32 * self.mesh_width as u32) < self.num_pes as u32 / 2
        {
            return Err("mesh too small for PE count".into());
        }
        Ok(())
    }
}

/// Picks a reasonable mesh width for a PE count (roughly square).
pub fn mesh_width_for(num_pes: u16) -> u16 {
    let mut w = 1u16;
    while (w as u32) * (w as u32) < num_pes as u32 {
        w += 1;
    }
    w
}

/// Default RNG seed shared by all experiments.
pub const DEFAULT_SEED: u64 = 0x5E3D_BA5E_0000_0001;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_validates() {
        assert_eq!(MachineConfig::small().validate(), Ok(()));
    }

    #[test]
    fn paper_testbed_validates() {
        assert_eq!(MachineConfig::paper_testbed(32, 32).validate(), Ok(()));
        assert_eq!(MachineConfig::paper_testbed(64, 64).validate(), Ok(()));
    }

    #[test]
    fn m3_mode_requires_single_kernel() {
        let mut c = MachineConfig::m3_baseline(64);
        assert_eq!(c.validate(), Ok(()));
        c.kernels = 2;
        assert!(c.validate().is_err());
    }

    #[test]
    fn kernel_capacity_enforced() {
        let mut c = MachineConfig::paper_testbed(2, 1);
        c.num_pes = 640; // 320 PEs per kernel > 192
        assert!(c.validate().is_err());
    }

    #[test]
    fn thread_pool_formula() {
        let c = MachineConfig::paper_testbed(64, 32);
        assert_eq!(c.thread_pool_size(9), 9 + 64 * 4);
    }

    #[test]
    fn mesh_width_covers() {
        assert_eq!(mesh_width_for(640), 26);
        assert_eq!(mesh_width_for(16), 4);
        assert_eq!(mesh_width_for(1), 1);
    }

    #[test]
    fn features_builder() {
        let c = MachineConfig::small().with_feature(Feature::RevokeBatching);
        assert!(c.has_feature(Feature::RevokeBatching));
        assert!(!c.has_feature(Feature::OneWayDelegate));
    }
}
