//! Deterministic, fast hashing for the kernel hot paths.
//!
//! The kernels keep their bookkeeping (mapping database, per-VPE tables'
//! reverse indices, pending operations, revoke waiters, endpoint
//! bindings) in hash maps so that every per-capability step of the
//! protocol is O(1). Two properties matter and both rule out
//! `std::collections::HashMap`'s default state:
//!
//! 1. **Determinism.** `RandomState` seeds per process, so map iteration
//!    order — and therefore anything accidentally derived from it —
//!    would differ between two runs of the same experiment. [`DetState`]
//!    is a fixed-key hasher: the same operation sequence always produces
//!    the same map state.
//! 2. **Speed.** The hot keys are small integers (packed 64-bit DDL
//!    keys, op ids, VPE ids); SipHash is an order of magnitude slower
//!    than the SplitMix64-style finalizer used here, which is enough to
//!    decorrelate the structured bit patterns of packed keys (creator PE
//!    in the high bits, sequential object ids in the low bits).
//!
//! # Determinism contract
//!
//! Iteration order of a [`DetHashMap`] is deterministic for a fixed
//! binary and operation sequence, but it is **not** stable across
//! rustc/std versions and it is **not** sorted. Protocol-visible
//! ordering (message emission, sweep order, wakeup order) must therefore
//! never be taken from map iteration — it always comes from explicitly
//! ordered structures: the `EventQueue`'s FIFO tie-break, `Vec`s in
//! insertion order (e.g. capability child lists in creation order), or
//! explicit sorts. The only map iterations in the kernel are
//! diagnostics (`check_invariants`) and VPE teardown, which sorts the
//! collected operations before acting on them.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// A `HashMap` with the deterministic fixed-key hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetState>;

/// A `HashSet` with the deterministic fixed-key hasher.
pub type DetHashSet<K> = HashSet<K, DetState>;

/// Fixed-key `BuildHasher`; every instance produces identical hashers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetState;

impl BuildHasher for DetState {
    type Hasher = DetHasher;

    fn build_hasher(&self) -> DetHasher {
        DetHasher { state: SEED }
    }
}

/// Word-at-a-time multiply-xor hasher with a SplitMix64 finalizer.
#[derive(Debug, Clone)]
pub struct DetHasher {
    state: u64,
}

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const MULT: u64 = 0xFF51_AFD7_ED55_8CCD;

impl DetHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(29) ^ word).wrapping_mul(MULT);
    }
}

/// The SplitMix64 finalizer: a full-avalanche mix of a 64-bit value.
/// Shared by the hasher below and by deterministic spreading logic
/// elsewhere (e.g. service-instance selection).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(word) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_one(v: u64) -> u64 {
        let mut h = DetState.build_hasher();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_one(42), hash_one(42));
        assert_ne!(hash_one(42), hash_one(43));
    }

    #[test]
    fn sequential_keys_spread() {
        // Packed DDL keys have sequential low bits; buckets use the low
        // bits of the hash, so sequential inputs must not collide there.
        let mask = 0xFFF;
        let mut buckets = std::collections::BTreeSet::new();
        for i in 0..1024u64 {
            buckets.insert(hash_one(i) & mask);
        }
        assert!(buckets.len() > 900, "low bits too clustered: {}", buckets.len());
    }

    #[test]
    fn byte_stream_matches_itself_only() {
        let mut a = DetState.build_hasher();
        a.write(b"hello world, this is a hash test");
        let mut b = DetState.build_hasher();
        b.write(b"hello world, this is a hash test");
        assert_eq!(a.finish(), b.finish());
        let mut c = DetState.build_hasher();
        c.write(b"hello world, this is a hash tesu");
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn map_is_usable_and_deterministic() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7, i);
            }
            m.remove(&21);
            m.iter().map(|(k, v)| k.wrapping_mul(31).wrapping_add(*v)).collect::<Vec<_>>()
        };
        // Same sequence, same binary -> identical iteration order.
        assert_eq!(build(), build());
    }
}
