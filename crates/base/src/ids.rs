//! Strongly-typed identifiers used across the whole system.
//!
//! Every identifier is a thin newtype over an integer so that mixing up,
//! say, a PE number and a VPE number is a compile error rather than a
//! silent protocol bug. All of them are `Copy`, ordered, and hashable so
//! they can key `BTreeMap`s in the deterministic simulation paths.

use serde::{Deserialize, Serialize};

/// Identifier of a processing element (PE) — a tile on the NoC.
///
/// PEs are numbered globally across the machine; the DDL uses the PE id to
/// partition the capability key space (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeId(pub u16);

/// Identifier of a virtual PE (VPE) — the unit of execution, comparable to
/// a single-threaded process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VpeId(pub u16);

/// Identifier of a kernel instance (one per PE group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KernelId(pub u16);

/// A DTU endpoint number. Each DTU provides [`crate::config::EP_COUNT`]
/// endpoints that can be configured as send, receive, or memory endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EpId(pub u8);

/// A capability selector: the index of a capability within one VPE's
/// capability table (the VPE-local name of a capability).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CapSel(pub u32);

/// Correlation id for in-flight operations (system calls and inter-kernel
/// calls). Allocated by the initiating kernel; unique per kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u64);

/// Identifier of a registered OS service (e.g. one m3fs instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceId(pub u16);

/// The packed 64-bit representation of a [`crate::ddl::DdlKey`].
///
/// This is the form DDL keys take on the wire and — since the O(1)
/// bookkeeping refactor — the form the kernel's hash maps key on: one
/// `u64` holding `(PE id, VPE id, type, object id)` exactly as laid out
/// in [`crate::ddl`]. Obtained via [`crate::ddl::DdlKey::raw`] and
/// turned back with [`crate::ddl::DdlKey::from_raw`].
pub type RawDdlKey = u64;

macro_rules! impl_display {
    ($($ty:ident => $prefix:literal),* $(,)?) => {
        $(impl core::fmt::Display for $ty {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        })*
    };
}

impl_display! {
    PeId => "PE",
    VpeId => "VPE",
    KernelId => "K",
    EpId => "EP",
    CapSel => "sel",
    OpId => "op",
    ServiceId => "svc",
}

impl PeId {
    /// Returns the PE id as a usable array index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl VpeId {
    /// Returns the VPE id as a usable array index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl KernelId {
    /// Returns the kernel id as a usable array index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl CapSel {
    /// The invalid selector, used by protocols to mean "none".
    pub const INVALID: CapSel = CapSel(u32::MAX);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(PeId(3).to_string(), "PE3");
        assert_eq!(VpeId(7).to_string(), "VPE7");
        assert_eq!(KernelId(1).to_string(), "K1");
        assert_eq!(EpId(15).to_string(), "EP15");
        assert_eq!(CapSel(42).to_string(), "sel42");
        assert_eq!(OpId(9).to_string(), "op9");
        assert_eq!(ServiceId(2).to_string(), "svc2");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(PeId(1) < PeId(2));
        assert!(VpeId(1) < VpeId(2));
        assert!(OpId(1) < OpId(2));
    }

    #[test]
    fn idx_helpers() {
        assert_eq!(PeId(5).idx(), 5);
        assert_eq!(VpeId(6).idx(), 6);
        assert_eq!(KernelId(2).idx(), 2);
    }

    #[test]
    fn invalid_selector_is_max() {
        assert_eq!(CapSel::INVALID.0, u32::MAX);
    }
}
