//! System-wide error handling.
//!
//! SemperOS inherits M3's convention of small error codes carried in
//! message replies. We mirror that with a compact [`Code`] enum wrapped in
//! an [`Error`] struct so call sites can use `Result<T>` idiomatically
//! while the wire protocol stays a single byte.

use serde::{Deserialize, Serialize};

/// Error codes returned by system calls, inter-kernel calls, and services.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Code {
    /// The referenced capability selector is empty or out of range.
    NoSuchCap,
    /// The capability exists but does not grant the required permission.
    NoPerm,
    /// Arguments of a call were malformed (bad range, bad selector, ...).
    InvalidArgs,
    /// The target selector is already occupied.
    Exists,
    /// The capability is currently being revoked; capability-modifying
    /// operations on it are denied (prevents *pointless* exchanges,
    /// Table 2 of the paper).
    RevokeInProgress,
    /// The peer VPE exited or was killed while the operation was in flight
    /// (produces *orphaned* capabilities that the protocol cleans up).
    VpeGone,
    /// The peer VPE rejected a capability exchange.
    ExchangeDenied,
    /// No free capability slots / message slots / table space.
    NoSpace,
    /// No service with the requested name is registered anywhere.
    NoSuchService,
    /// Filesystem: path does not exist.
    NoSuchFile,
    /// Filesystem: directory entry already exists.
    FileExists,
    /// Filesystem: operation on a directory where a file was expected (or
    /// vice versa).
    IsDir,
    /// Filesystem: read/write past the end of the file without append mode.
    EndOfFile,
    /// The session / send gate is not (or no longer) established.
    InvalidSession,
    /// Message could not be sent because the channel's credit/slot budget
    /// is exhausted. Kernels retry; applications see it as backpressure.
    ChannelFull,
    /// The operation is recognised but not implemented by this build.
    NotSupported,
    /// Generic internal inconsistency; indicates a bug in the kernel.
    InternalError,
    /// The VPE referenced by the call does not exist (never created or
    /// already destroyed).
    NoSuchVpe,
    /// Timeout while waiting for a remote party (only used by tests and
    /// watchdogs; the protocols themselves are timeout-free).
    Timeout,
    /// A promise capability has not resolved yet (non-blocking
    /// `WaitPromise` polls report this; it is informational, not a
    /// failure of the promised operation).
    Unresolved,
}

impl Code {
    /// Short stable mnemonic, useful in logs and traces.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Code::NoSuchCap => "ENOCAP",
            Code::NoPerm => "EPERM",
            Code::InvalidArgs => "EINVAL",
            Code::Exists => "EEXIST",
            Code::RevokeInProgress => "EREVOKE",
            Code::VpeGone => "EVPEGONE",
            Code::ExchangeDenied => "EDENIED",
            Code::NoSpace => "ENOSPC",
            Code::NoSuchService => "ENOSVC",
            Code::NoSuchFile => "ENOENT",
            Code::FileExists => "EFEXIST",
            Code::IsDir => "EISDIR",
            Code::EndOfFile => "EEOF",
            Code::InvalidSession => "ESESS",
            Code::ChannelFull => "EFULL",
            Code::NotSupported => "ENOTSUP",
            Code::InternalError => "EINTERNAL",
            Code::NoSuchVpe => "ENOVPE",
            Code::Timeout => "ETIMEOUT",
            Code::Unresolved => "EUNRES",
        }
    }
}

/// The error type used throughout the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Error {
    code: Code,
}

impl Error {
    /// Creates a new error with the given code.
    pub fn new(code: Code) -> Self {
        Error { code }
    }

    /// Returns the error code.
    pub fn code(&self) -> Code {
        self.code
    }
}

impl From<Code> for Error {
    fn from(code: Code) -> Self {
        Error::new(code)
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} ({:?})", self.code.mnemonic(), self.code)
    }
}

impl std::error::Error for Error {}

/// Convenience alias used by all crates.
pub type Result<T> = core::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_mnemonic() {
        let e = Error::new(Code::NoSuchCap);
        assert!(e.to_string().contains("ENOCAP"));
    }

    #[test]
    fn from_code() {
        let e: Error = Code::NoPerm.into();
        assert_eq!(e.code(), Code::NoPerm);
    }

    #[test]
    fn mnemonics_are_unique() {
        let codes = [
            Code::NoSuchCap,
            Code::NoPerm,
            Code::InvalidArgs,
            Code::Exists,
            Code::RevokeInProgress,
            Code::VpeGone,
            Code::ExchangeDenied,
            Code::NoSpace,
            Code::NoSuchService,
            Code::NoSuchFile,
            Code::FileExists,
            Code::IsDir,
            Code::EndOfFile,
            Code::InvalidSession,
            Code::ChannelFull,
            Code::NotSupported,
            Code::InternalError,
            Code::NoSuchVpe,
            Code::Timeout,
            Code::Unresolved,
        ];
        let mut seen = std::collections::BTreeSet::new();
        for c in codes {
            assert!(seen.insert(c.mnemonic()), "duplicate mnemonic {}", c.mnemonic());
        }
    }
}
