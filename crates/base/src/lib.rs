//! Shared foundation types for the SemperOS reproduction.
//!
//! This crate is dependency-free (besides `serde`) and holds everything the
//! other crates need to agree on:
//!
//! * [`ids`] — strongly-typed identifiers for processing elements (PEs),
//!   VPEs, kernels, DTU endpoints, and capability selectors.
//! * [`error`] — the system-wide error type mirroring M3's error codes.
//! * [`ddl`] — the Distributed Data Lookup key format (§3.2 of the paper):
//!   a globally valid capability address packing
//!   `(PE id, VPE id, type, object id)`.
//! * [`hash`] — deterministic fast hashing; backs the O(1) bookkeeping
//!   maps on the kernel hot paths without sacrificing run-to-run
//!   reproducibility.
//! * [`msg`] — the wire protocol: system calls, inter-kernel calls, the
//!   m3fs IPC protocol, and application-level messages.
//! * [`cost`] — the calibrated cycle-cost model that stands in for gem5's
//!   micro-architectural timing.
//! * [`config`] — machine- and experiment-level configuration.
//!
//! The split matters: `semper-caps` builds capability *trees* over the raw
//! [`ddl::DdlKey`] defined here, and `semper-kernel` implements the
//! distributed protocol over the [`msg::Payload`] enum defined here, so the
//! two can evolve independently without a dependency cycle.

pub mod config;
pub mod cost;
pub mod ddl;
pub mod error;
pub mod hash;
pub mod ids;
pub mod msg;

pub use config::{Feature, KernelMode, MachineConfig};
pub use cost::CostModel;
pub use ddl::{CapType, DdlKey};
pub use error::{Code, Error, Result};
pub use hash::{DetHashMap, DetHashSet, DetState};
pub use ids::{CapSel, EpId, KernelId, OpId, PeId, RawDdlKey, ServiceId, VpeId};
pub use msg::{CapDesc, CapKindDesc, ExchangeKind, Msg, Payload, Perms};
