//! The cycle-cost model — our stand-in for gem5's micro-architecture.
//!
//! The paper's evaluation runs on gem5 with 2 GHz out-of-order x86 cores
//! and DTUs. We replace the micro-architecture with a table of calibrated
//! per-operation costs. The *shapes* of the paper's results come from
//! protocol round trips and kernel serialization, which the discrete-event
//! simulation models exactly; these constants only pin the absolute scale.
//!
//! Calibration targets (Table 3 of the paper, in cycles):
//!
//! | operation          | M3   | SemperOS |
//! |--------------------|------|----------|
//! | exchange, local    | 3250 | 3597     |
//! | exchange, spanning | —    | 6484     |
//! | revoke, local      | 1423 | 1997     |
//! | revoke, spanning   | —    | 3876     |
//!
//! The `benches/table3_cap_ops` harness reports measured values next to
//! these targets.

use serde::{Deserialize, Serialize};

/// Per-operation cycle costs. All values are in CPU cycles at the modeled
/// 2 GHz clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    // --- NoC / DTU ---
    /// Fixed latency for any NoC packet (router pipeline + link).
    pub noc_base_latency: u64,
    /// Extra latency per mesh hop.
    pub noc_per_hop: u64,
    /// Payload bytes moved per cycle on a link.
    pub noc_bytes_per_cycle: u64,
    /// Cycles the sending DTU needs to serialise and inject a message.
    pub dtu_send: u64,
    /// Cycles the receiving DTU needs to deposit a message into a slot.
    pub dtu_recv: u64,

    // --- kernel: common ---
    /// Decoding and dispatching an incoming system call.
    pub syscall_entry: u64,
    /// Building and sending the system-call reply.
    pub syscall_exit: u64,
    /// Decoding one item of a batched system call out of the batch
    /// buffer ([`Syscall::Batch`] pays `syscall_entry` once plus this
    /// per item; the item's own handler cost comes on top).
    pub batch_item: u64,
    /// Decoding and dispatching an incoming inter-kernel call.
    pub kcall_entry: u64,
    /// Building and sending an inter-kernel reply.
    pub kcall_exit: u64,
    /// Thread switch at a preemption point (park/unpark a kernel thread).
    pub thread_switch: u64,

    // --- capability operations ---
    /// Looking up a capability via a plain pointer (M3 mode).
    pub cap_lookup: u64,
    /// Extra cost to decode a DDL key and consult the membership table
    /// (SemperOS pays this on every parent/child reference; §5.2 explains
    /// the ~10-40% local overhead this causes).
    pub ddl_decode: u64,
    /// Creating a capability object.
    pub cap_create: u64,
    /// Inserting a capability into a VPE's table and the mapping database.
    pub cap_insert: u64,
    /// Marking one capability for revocation (phase 1).
    pub revoke_mark: u64,
    /// Deleting one capability (phase 2 sweep).
    pub revoke_delete: u64,
    /// Completing a revoke operation (waking the syscall thread,
    /// accounting).
    pub revoke_finish: u64,
    /// Marshalling or decoding one subtree-root key of a partitioned
    /// sweep request (`SweepMarkReq`); the per-key share of batching a
    /// whole partition into one message.
    pub sweep_key: u64,
    /// Coordinator bookkeeping per frontier-expansion round of a
    /// partitioned sweep (regrouping reported remote children by owning
    /// kernel).
    pub sweep_round: u64,
    /// Marshalling/validating a capability descriptor for an
    /// inter-kernel exchange (paid once at each kernel of a
    /// group-spanning exchange).
    pub xfer_desc: u64,

    // --- VPE side ---
    /// A VPE's handling of an exchange-accept upcall.
    pub upcall_work: u64,
    /// A service VPE's bookkeeping for a new session.
    pub session_accept: u64,

    // --- memory model (paper §5.3.1: non-contended memory) ---
    /// Fixed latency of a memory access through a memory endpoint.
    pub mem_latency: u64,
    /// Bytes per cycle of streaming bandwidth per PE.
    pub mem_bytes_per_cycle: u64,

    // --- filesystem service ---
    /// m3fs metadata operation (directory lookup, inode touch).
    pub fs_meta_op: u64,
    /// m3fs extent lookup / allocation.
    pub fs_extent_op: u64,
}

impl CostModel {
    /// The calibrated cost model used by all experiments.
    pub fn calibrated() -> CostModel {
        CostModel {
            noc_base_latency: 40,
            noc_per_hop: 8,
            noc_bytes_per_cycle: 16,
            dtu_send: 60,
            dtu_recv: 50,

            syscall_entry: 120,
            syscall_exit: 100,
            batch_item: 35,
            kcall_entry: 520,
            kcall_exit: 400,
            thread_switch: 120,

            cap_lookup: 60,
            ddl_decode: 83,
            cap_create: 350,
            cap_insert: 230,
            revoke_mark: 65,
            revoke_delete: 160,
            revoke_finish: 30,
            sweep_key: 12,
            sweep_round: 90,
            xfer_desc: 455,

            upcall_work: 1570,
            session_accept: 220,

            mem_latency: 160,
            mem_bytes_per_cycle: 8,

            fs_meta_op: 600,
            fs_extent_op: 450,
        }
    }

    /// Cycles to transfer `bytes` of payload across `hops` mesh hops.
    pub fn noc_latency(&self, hops: u64, bytes: u64) -> u64 {
        self.noc_base_latency + self.noc_per_hop * hops + bytes / self.noc_bytes_per_cycle
    }

    /// Cycles a PE spends reading or writing `bytes` through a memory
    /// endpoint, assuming the paper's non-contended memory controller.
    pub fn mem_access(&self, bytes: u64) -> u64 {
        self.mem_latency + bytes / self.mem_bytes_per_cycle
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noc_latency_monotone_in_hops_and_bytes() {
        let c = CostModel::calibrated();
        assert!(c.noc_latency(2, 64) > c.noc_latency(1, 64));
        assert!(c.noc_latency(1, 640) > c.noc_latency(1, 64));
    }

    #[test]
    fn mem_access_scales_with_bytes() {
        let c = CostModel::calibrated();
        let small = c.mem_access(64);
        let big = c.mem_access(64 * 1024);
        assert!(big > small);
        assert_eq!(big - c.mem_latency, 64 * 1024 / c.mem_bytes_per_cycle);
    }

    #[test]
    fn default_is_calibrated() {
        assert_eq!(CostModel::default(), CostModel::calibrated());
    }
}
