//! Network-on-chip and DTU hardware model.
//!
//! M3's key hardware idea (§2.2, Figure 1) is the *data transfer unit*
//! (DTU): a per-PE gateway that is the only way a PE can reach other PEs
//! or memory. Controlling DTU configuration therefore suffices to isolate
//! PEs — "NoC-level isolation". This crate models the pieces of that
//! hardware the distributed capability protocol depends on:
//!
//! * [`mesh`] — PE placement and hop counts on a 2D mesh.
//! * [`dtu`] — endpoints (send/receive/memory), message slots, and the
//!   privileged/deprivileged distinction.
//! * [`noc`] — message routing with per-channel FIFO ordering (the
//!   protocol precondition of §4.3.1) and latency from the cost model.
//! * [`memory`] — the global physical address space backing memory
//!   capabilities (allocation only; contents are not simulated, matching
//!   the paper's non-contended memory methodology).

pub mod dtu;
pub mod memory;
pub mod mesh;
pub mod noc;

pub use dtu::{Dtu, EpConfig};
pub use memory::GlobalMemory;
pub use mesh::Mesh;
pub use noc::Noc;
