//! PE placement on a 2D mesh and hop-count computation.

use semper_base::PeId;

/// A 2D mesh of PEs, numbered row-major.
///
/// The mesh only influences message latency (hop counts); routing is
/// dimension-ordered X-then-Y, as in common NoC designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mesh {
    width: u16,
}

impl Mesh {
    /// Creates a mesh of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: u16) -> Mesh {
        assert!(width > 0, "mesh width must be positive");
        Mesh { width }
    }

    /// Mesh width (PEs per row).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// The (x, y) coordinate of a PE.
    pub fn coords(&self, pe: PeId) -> (u16, u16) {
        (pe.0 % self.width, pe.0 / self.width)
    }

    /// Manhattan distance between two PEs (number of mesh hops).
    pub fn hops(&self, a: PeId, b: PeId) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_coords() {
        let m = Mesh::new(4);
        assert_eq!(m.coords(PeId(0)), (0, 0));
        assert_eq!(m.coords(PeId(3)), (3, 0));
        assert_eq!(m.coords(PeId(4)), (0, 1));
        assert_eq!(m.coords(PeId(7)), (3, 1));
    }

    #[test]
    fn manhattan_hops() {
        let m = Mesh::new(4);
        assert_eq!(m.hops(PeId(0), PeId(0)), 0);
        assert_eq!(m.hops(PeId(0), PeId(3)), 3);
        assert_eq!(m.hops(PeId(0), PeId(5)), 2);
        assert_eq!(m.hops(PeId(5), PeId(0)), 2);
    }

    #[test]
    fn hops_symmetric() {
        let m = Mesh::new(8);
        for a in [0u16, 7, 33, 50] {
            for b in [1u16, 13, 62] {
                assert_eq!(m.hops(PeId(a), PeId(b)), m.hops(PeId(b), PeId(a)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_panics() {
        let _ = Mesh::new(0);
    }
}
