//! The data transfer unit (DTU).
//!
//! Each PE's DTU provides [`semper_base::config::EP_COUNT`] endpoints.
//! An endpoint can be configured as:
//!
//! * a **send endpoint** — the right to send to one remote receive
//!   endpoint, with a credit budget bounding in-flight messages;
//! * a **receive endpoint** — a buffer of
//!   [`semper_base::config::MSG_SLOTS`] message slots; if all slots are
//!   occupied further messages would be *lost* (§4.1), which is why the
//!   kernels bound their in-flight traffic with credits;
//! * a **memory endpoint** — byte-granular access to a region of global
//!   memory (the enforcement half of a memory capability).
//!
//! Initially all DTUs are privileged; the kernel deprivileges every user
//! PE at boot, keeping configuration authority to itself (§2.2).

use semper_base::config::{EP_COUNT, MSG_SLOTS};
use semper_base::msg::Perms;
use semper_base::{Code, EpId, Error, PeId, Result};

/// Configuration of one DTU endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpConfig {
    /// Unconfigured.
    Invalid,
    /// Send endpoint targeting a remote receive endpoint.
    Send {
        /// Destination PE.
        dst: PeId,
        /// Destination receive endpoint.
        dst_ep: EpId,
        /// Remaining credits (one credit = one in-flight message).
        credits: u32,
        /// Credit budget to restore on reply.
        max_credits: u32,
    },
    /// Receive endpoint with a message buffer.
    Receive {
        /// Occupied message slots.
        occupied: u32,
        /// Total message slots.
        slots: u32,
    },
    /// Memory endpoint granting access to `[addr, addr + size)`.
    Memory {
        /// Region start in global memory.
        addr: u64,
        /// Region size in bytes.
        size: u64,
        /// Permitted access.
        perms: Perms,
    },
}

/// One PE's data transfer unit.
#[derive(Debug, Clone)]
pub struct Dtu {
    pe: PeId,
    eps: [EpConfig; EP_COUNT as usize],
    privileged: bool,
}

impl Dtu {
    /// Creates the DTU of `pe`. DTUs start privileged (§2.2) and are
    /// deprivileged by the kernel during boot.
    pub fn new(pe: PeId) -> Dtu {
        Dtu { pe, eps: [EpConfig::Invalid; EP_COUNT as usize], privileged: true }
    }

    /// The PE this DTU belongs to.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Whether this DTU may configure endpoints (kernel PEs only, after
    /// boot).
    pub fn privileged(&self) -> bool {
        self.privileged
    }

    /// Removes configuration authority (done by the kernel at boot for
    /// all user PEs).
    pub fn deprivilege(&mut self) {
        self.privileged = false;
    }

    /// Returns an endpoint's configuration.
    pub fn ep(&self, ep: EpId) -> Result<&EpConfig> {
        self.eps.get(ep.0 as usize).ok_or_else(|| Error::new(Code::InvalidArgs))
    }

    /// Configures an endpoint. Unprivileged DTUs can only be configured
    /// *by* the kernel, which the kernel model expresses by calling this
    /// directly; user code never holds `&mut Dtu`.
    pub fn configure(&mut self, ep: EpId, cfg: EpConfig) -> Result<()> {
        let slot = self.eps.get_mut(ep.0 as usize).ok_or_else(|| Error::new(Code::InvalidArgs))?;
        *slot = cfg;
        Ok(())
    }

    /// Configures a receive endpoint with the default slot count.
    pub fn configure_recv(&mut self, ep: EpId) -> Result<()> {
        self.configure(ep, EpConfig::Receive { occupied: 0, slots: MSG_SLOTS })
    }

    /// Configures a send endpoint with a credit budget.
    pub fn configure_send(
        &mut self,
        ep: EpId,
        dst: PeId,
        dst_ep: EpId,
        credits: u32,
    ) -> Result<()> {
        self.configure(ep, EpConfig::Send { dst, dst_ep, credits, max_credits: credits })
    }

    /// Consumes one send credit; fails with [`Code::ChannelFull`] when
    /// the budget is exhausted.
    pub fn take_credit(&mut self, ep: EpId) -> Result<()> {
        match self.eps.get_mut(ep.0 as usize) {
            Some(EpConfig::Send { credits, .. }) => {
                if *credits == 0 {
                    return Err(Error::new(Code::ChannelFull));
                }
                *credits -= 1;
                Ok(())
            }
            _ => Err(Error::new(Code::InvalidArgs)),
        }
    }

    /// Restores one send credit (the receiver processed a message).
    pub fn return_credit(&mut self, ep: EpId) -> Result<()> {
        match self.eps.get_mut(ep.0 as usize) {
            Some(EpConfig::Send { credits, max_credits, .. }) => {
                if *credits < *max_credits {
                    *credits += 1;
                }
                Ok(())
            }
            _ => Err(Error::new(Code::InvalidArgs)),
        }
    }

    /// Deposits a message into a receive endpoint's buffer; fails with
    /// [`Code::NoSpace`] when all slots are occupied (the hardware would
    /// drop the message — §4.1).
    pub fn deposit(&mut self, ep: EpId) -> Result<()> {
        match self.eps.get_mut(ep.0 as usize) {
            Some(EpConfig::Receive { occupied, slots }) => {
                if occupied >= slots {
                    return Err(Error::new(Code::NoSpace));
                }
                *occupied += 1;
                Ok(())
            }
            _ => Err(Error::new(Code::InvalidArgs)),
        }
    }

    /// Frees a message slot (the PE consumed a message).
    pub fn consume(&mut self, ep: EpId) -> Result<()> {
        match self.eps.get_mut(ep.0 as usize) {
            Some(EpConfig::Receive { occupied, .. }) => {
                if *occupied == 0 {
                    return Err(Error::new(Code::InvalidArgs));
                }
                *occupied -= 1;
                Ok(())
            }
            _ => Err(Error::new(Code::InvalidArgs)),
        }
    }

    /// Validates an access of `[addr, addr + len)` with permissions
    /// `want` through a memory endpoint.
    pub fn check_mem_access(&self, ep: EpId, addr: u64, len: u64, want: Perms) -> Result<()> {
        match self.ep(ep)? {
            EpConfig::Memory { addr: base, size, perms } => {
                if !perms.contains(want) {
                    return Err(Error::new(Code::NoPerm));
                }
                let end = addr.checked_add(len).ok_or_else(|| Error::new(Code::InvalidArgs))?;
                if addr < *base || end > base + size {
                    return Err(Error::new(Code::NoPerm));
                }
                Ok(())
            }
            _ => Err(Error::new(Code::InvalidArgs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_privileged_with_invalid_eps() {
        let d = Dtu::new(PeId(3));
        assert!(d.privileged());
        assert_eq!(d.ep(EpId(0)).unwrap(), &EpConfig::Invalid);
        assert_eq!(d.pe(), PeId(3));
    }

    #[test]
    fn deprivilege_is_sticky() {
        let mut d = Dtu::new(PeId(0));
        d.deprivilege();
        assert!(!d.privileged());
    }

    #[test]
    fn credits_bound_inflight() {
        let mut d = Dtu::new(PeId(0));
        d.configure_send(EpId(1), PeId(5), EpId(2), 2).unwrap();
        d.take_credit(EpId(1)).unwrap();
        d.take_credit(EpId(1)).unwrap();
        assert_eq!(d.take_credit(EpId(1)).unwrap_err().code(), Code::ChannelFull);
        d.return_credit(EpId(1)).unwrap();
        d.take_credit(EpId(1)).unwrap();
    }

    #[test]
    fn return_credit_never_exceeds_budget() {
        let mut d = Dtu::new(PeId(0));
        d.configure_send(EpId(0), PeId(1), EpId(0), 1).unwrap();
        d.return_credit(EpId(0)).unwrap();
        d.take_credit(EpId(0)).unwrap();
        assert!(d.take_credit(EpId(0)).is_err());
    }

    #[test]
    fn receive_slots_fill_and_drain() {
        let mut d = Dtu::new(PeId(0));
        d.configure(EpId(0), EpConfig::Receive { occupied: 0, slots: 2 }).unwrap();
        d.deposit(EpId(0)).unwrap();
        d.deposit(EpId(0)).unwrap();
        assert_eq!(d.deposit(EpId(0)).unwrap_err().code(), Code::NoSpace);
        d.consume(EpId(0)).unwrap();
        d.deposit(EpId(0)).unwrap();
    }

    #[test]
    fn consume_empty_is_error() {
        let mut d = Dtu::new(PeId(0));
        d.configure_recv(EpId(0)).unwrap();
        assert!(d.consume(EpId(0)).is_err());
    }

    #[test]
    fn memory_endpoint_bounds_and_perms() {
        let mut d = Dtu::new(PeId(0));
        d.configure(EpId(3), EpConfig::Memory { addr: 0x1000, size: 0x100, perms: Perms::R })
            .unwrap();
        d.check_mem_access(EpId(3), 0x1000, 0x100, Perms::R).unwrap();
        assert_eq!(
            d.check_mem_access(EpId(3), 0x1000, 0x101, Perms::R).unwrap_err().code(),
            Code::NoPerm
        );
        assert_eq!(
            d.check_mem_access(EpId(3), 0x1000, 4, Perms::W).unwrap_err().code(),
            Code::NoPerm
        );
        assert_eq!(
            d.check_mem_access(EpId(3), 0xFFF, 4, Perms::R).unwrap_err().code(),
            Code::NoPerm
        );
    }

    #[test]
    fn wrong_ep_kind_is_invalid_args() {
        let mut d = Dtu::new(PeId(0));
        d.configure_recv(EpId(0)).unwrap();
        assert_eq!(d.take_credit(EpId(0)).unwrap_err().code(), Code::InvalidArgs);
        assert_eq!(
            d.check_mem_access(EpId(0), 0, 1, Perms::R).unwrap_err().code(),
            Code::InvalidArgs
        );
    }

    #[test]
    fn out_of_range_ep_rejected() {
        let d = Dtu::new(PeId(0));
        assert!(d.ep(EpId(EP_COUNT)).is_err());
    }
}
