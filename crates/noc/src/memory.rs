//! The global physical address space.
//!
//! Memory capabilities in M3/SemperOS reference byte-granular regions of
//! a machine-wide address space (off-chip DRAM or PE-local memories).
//! Following the paper's methodology (§5.3.1), we model *allocation and
//! access timing* but not contents: data accesses cost cycles, and the
//! access-control checks are performed against capability ranges.

use semper_base::{Code, Error, Result};

/// A bump allocator over the global physical address space.
///
/// Regions are never reclaimed: the workloads in the evaluation allocate
/// a bounded amount (filesystem images plus scratch buffers), and keeping
/// allocation monotone makes address assignment deterministic.
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    base: u64,
    next: u64,
    limit: u64,
}

/// Alignment of all allocations (a DRAM burst).
pub const ALLOC_ALIGN: u64 = 64;

impl GlobalMemory {
    /// Creates an address space of `size` bytes starting at `base`.
    pub fn new(base: u64, size: u64) -> GlobalMemory {
        GlobalMemory { base: align_up(base), next: align_up(base), limit: base + size }
    }

    /// A machine-scale default: 64 GiB starting at 4 GiB.
    pub fn machine_default() -> GlobalMemory {
        GlobalMemory::new(4 << 30, 64 << 30)
    }

    /// Allocates `size` bytes; returns the region's base address.
    pub fn alloc(&mut self, size: u64) -> Result<u64> {
        if size == 0 {
            return Err(Error::new(Code::InvalidArgs));
        }
        let base = self.next;
        let end = base.checked_add(align_up(size)).ok_or_else(|| Error::new(Code::NoSpace))?;
        if end > self.limit {
            return Err(Error::new(Code::NoSpace));
        }
        self.next = end;
        Ok(base)
    }

    /// Bytes still allocatable.
    pub fn remaining(&self) -> u64 {
        self.limit - self.next
    }

    /// Bytes allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - self.base
    }
}

fn align_up(v: u64) -> u64 {
    (v + ALLOC_ALIGN - 1) & !(ALLOC_ALIGN - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut m = GlobalMemory::new(0, 1 << 20);
        let a = m.alloc(100).unwrap();
        let b = m.alloc(100).unwrap();
        assert_eq!(a % ALLOC_ALIGN, 0);
        assert_eq!(b % ALLOC_ALIGN, 0);
        assert!(b >= a + 100);
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut m = GlobalMemory::new(0, 1024);
        assert_eq!(m.alloc(0).unwrap_err().code(), Code::InvalidArgs);
    }

    #[test]
    fn exhaustion() {
        let mut m = GlobalMemory::new(0, 128);
        m.alloc(64).unwrap();
        m.alloc(64).unwrap();
        assert_eq!(m.alloc(1).unwrap_err().code(), Code::NoSpace);
    }

    #[test]
    fn remaining_decreases() {
        let mut m = GlobalMemory::new(0, 1024);
        let r0 = m.remaining();
        m.alloc(64).unwrap();
        assert_eq!(m.remaining(), r0 - 64);
    }

    #[test]
    fn machine_default_is_large() {
        let m = GlobalMemory::machine_default();
        assert!(m.remaining() >= 60 << 30);
    }
}
