//! Message routing with per-channel FIFO ordering.
//!
//! The distributed capability protocol requires (§4.3.1) that if kernel
//! K1 sends M1 then M2 to kernel K2, K2 receives M1 before M2. Physical
//! NoCs with deterministic routing provide this per (src, dst) pair; the
//! [`Noc`] model enforces it explicitly: a message's delivery time is at
//! least one cycle after the previous delivery on the same channel.

use crate::mesh::Mesh;
use semper_base::{CostModel, Msg};
use semper_sim::Cycles;

/// The network-on-chip: computes delivery times for messages.
///
/// The per-channel FIFO floor is a flat dense table indexed by
/// `src · PEs + dst`: the PE count is fixed when the mesh is built, and
/// every routed message probes its channel, so the old
/// `BTreeMap<(PeId, PeId), _>` put an O(log channels) tree walk plus
/// pointer chasing on the per-message hot path. Each slot stores the
/// channel's *floor* (last delivery + 1; `0` = channel never used), so
/// the computed delivery times are bit-identical to the map-based
/// implementation.
#[derive(Debug, Clone)]
pub struct Noc {
    mesh: Mesh,
    cost: CostModel,
    /// FIFO floor per (src, dst) channel, `src.idx() * pes + dst.idx()`.
    fifo_floor: Vec<u64>,
    /// PEs per side of the channel table (mesh capacity).
    pes: usize,
    messages_routed: u64,
    bytes_routed: u64,
}

impl Noc {
    /// Creates a NoC over the given mesh with the given cost model.
    pub fn new(mesh: Mesh, cost: CostModel) -> Noc {
        // Mesh capacity bounds the PE ids that can ever be routed.
        let pes = (mesh.width() as usize) * (mesh.width() as usize);
        Noc { mesh, cost, fifo_floor: vec![0; pes * pes], pes, messages_routed: 0, bytes_routed: 0 }
    }

    /// The mesh underlying this NoC.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Routes `msg` injected at time `now`; returns its delivery time.
    ///
    /// Delivery time is `now + dtu_send + wire latency + dtu_recv`,
    /// bumped if necessary to preserve FIFO ordering on the
    /// `(src, dst)` channel.
    pub fn route(&mut self, msg: &Msg, now: Cycles) -> Cycles {
        let hops = self.mesh.hops(msg.src, msg.dst);
        let bytes = msg.wire_size() as u64;
        let wire = self.cost.noc_latency(hops, bytes);
        let arrival = now + self.cost.dtu_send + wire + self.cost.dtu_recv;

        let chan = msg.src.idx() * self.pes + msg.dst.idx();
        let delivery = arrival.max(Cycles(self.fifo_floor[chan]));
        self.fifo_floor[chan] = delivery.0 + 1;

        self.messages_routed += 1;
        self.bytes_routed += bytes;
        delivery
    }

    /// Total messages routed (statistics).
    pub fn messages_routed(&self) -> u64 {
        self.messages_routed
    }

    /// Total payload bytes routed (statistics).
    pub fn bytes_routed(&self) -> u64 {
        self.bytes_routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::{Payload, Syscall};
    use semper_base::PeId;

    fn noop_msg(src: u16, dst: u16) -> Msg {
        Msg::new(PeId(src), PeId(dst), Payload::sys(0, Syscall::Noop))
    }

    fn mk_noc() -> Noc {
        Noc::new(Mesh::new(4), CostModel::calibrated())
    }

    #[test]
    fn latency_grows_with_distance() {
        let mut noc = mk_noc();
        let near = noc.route(&noop_msg(0, 1), Cycles::ZERO);
        let far = noc.route(&noop_msg(0, 15), Cycles::ZERO);
        assert!(far > near, "{far} !> {near}");
    }

    #[test]
    fn fifo_per_channel() {
        let mut noc = mk_noc();
        // Inject M2 "faster" (same time) — it must still arrive after M1.
        let d1 = noc.route(&noop_msg(0, 5), Cycles(100));
        let d2 = noc.route(&noop_msg(0, 5), Cycles(100));
        assert!(d2 > d1);
    }

    #[test]
    fn fifo_does_not_couple_channels() {
        let mut noc = mk_noc();
        let d1 = noc.route(&noop_msg(0, 5), Cycles(100));
        let d2 = noc.route(&noop_msg(1, 5), Cycles(100));
        // Different source: no FIFO constraint, same distance-based time
        // modulo the different hop count.
        assert!(d2 <= d1 + 1000u64);
    }

    #[test]
    fn fifo_ordering_holds_under_out_of_order_injection() {
        let mut noc = mk_noc();
        let d1 = noc.route(&noop_msg(0, 15), Cycles(0));
        // Second message injected later but on a now-"warm" channel still
        // arrives after the first.
        let d2 = noc.route(&noop_msg(0, 15), Cycles(1));
        assert!(d2 > d1);
    }

    #[test]
    fn stats_accumulate() {
        let mut noc = mk_noc();
        noc.route(&noop_msg(0, 1), Cycles::ZERO);
        noc.route(&noop_msg(1, 2), Cycles::ZERO);
        assert_eq!(noc.messages_routed(), 2);
        assert!(noc.bytes_routed() > 0);
    }
}
