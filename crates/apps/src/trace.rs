//! Application traces: what each benchmark instance does.
//!
//! A [`Trace`] is the sequence of filesystem and compute operations one
//! application instance performs. The generators below are calibrated so
//! the capability-operation counts land on the paper's Table 4:
//!
//! | app      | cap ops / instance (paper) |
//! |----------|----------------------------|
//! | tar      | 21                         |
//! | untar    | 11                         |
//! | find     | 3                          |
//! | SQLite   | 24                         |
//! | LevelDB  | 22                         |
//! | PostMark | 38                         |
//!
//! With the reproduction's extent size of 1 MiB, one *file read or write
//! of E extents* costs E delegations (one per extent capability) plus E
//! revocations at close, and each session open is one more capability
//! operation. The `table4_app_capops` bench prints measured counts next
//! to the paper's.

use serde::{Deserialize, Serialize};

/// One step of an application trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Pure computation for the given number of cycles (think time; also
    /// stands in for syscalls SemperOS does not implement, which the
    /// paper accounts for by waiting — §5.3.1).
    Compute {
        /// Busy cycles.
        cycles: u64,
    },
    /// Open a file.
    Open {
        /// Path within the instance's m3fs.
        path: String,
        /// Open for writing.
        write: bool,
        /// Create if missing.
        create: bool,
    },
    /// Sequentially read the first `bytes` bytes of an open file through
    /// delegated extent capabilities.
    Read {
        /// Path (must be open).
        path: String,
        /// Bytes to read; clamped to the file size.
        bytes: u64,
    },
    /// Sequentially write `bytes` bytes (the service allocates extents
    /// as needed).
    Write {
        /// Path (must be open for writing).
        path: String,
        /// Bytes to write.
        bytes: u64,
    },
    /// Stat a path (metadata only, no capabilities).
    Stat {
        /// Path to inspect.
        path: String,
    },
    /// List a directory.
    ReadDir {
        /// Directory path.
        path: String,
    },
    /// Create a directory.
    Mkdir {
        /// New directory path.
        path: String,
    },
    /// Remove a file.
    Unlink {
        /// Path to remove.
        path: String,
    },
    /// Close an open file (revokes its extent capabilities).
    Close {
        /// Path (must be open).
        path: String,
    },
}

/// A full application trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Application name (for reports).
    pub name: String,
    /// The operations, in order.
    pub ops: Vec<TraceOp>,
}

/// The benchmark applications of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// `tar`: pack five files (128–2048 KiB) into a 4 MiB archive.
    Tar,
    /// `untar`: unpack the archive.
    Untar,
    /// `find`: scan a directory tree of 80 entries for a missing file.
    Find,
    /// SQLite: create a table, insert 8 rows, select them.
    Sqlite,
    /// LevelDB: same logical workload, higher file-access frequency.
    LevelDb,
    /// PostMark: a heavily loaded mail server (many small files).
    PostMark,
}

impl AppKind {
    /// All six applications, in the paper's presentation order.
    pub const ALL: [AppKind; 6] = [
        AppKind::Tar,
        AppKind::Untar,
        AppKind::Find,
        AppKind::Sqlite,
        AppKind::LevelDb,
        AppKind::PostMark,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Tar => "tar",
            AppKind::Untar => "untar",
            AppKind::Find => "find",
            AppKind::Sqlite => "SQLite",
            AppKind::LevelDb => "LevelDB",
            AppKind::PostMark => "PostMark",
        }
    }

    /// The paper's Table 4 capability-operation count for one instance.
    pub fn paper_cap_ops(self) -> u64 {
        match self {
            AppKind::Tar => 21,
            AppKind::Untar => 11,
            AppKind::Find => 3,
            AppKind::Sqlite => 24,
            AppKind::LevelDb => 22,
            AppKind::PostMark => 38,
        }
    }

    /// Generates the trace for one instance. `instance` individualises
    /// paths so parallel instances do not collide inside one m3fs image.
    pub fn trace(self, instance: u32) -> Trace {
        let mut t = match self {
            AppKind::Tar => tar(instance),
            AppKind::Untar => untar(instance),
            AppKind::Find => find(instance),
            AppKind::Sqlite => sqlite(instance),
            AppKind::LevelDb => leveldb(instance),
            AppKind::PostMark => postmark(instance),
        };
        t.ops = inject_chatter(t.ops, self.chatter_ops());
        t.ops = pad_with_think(t.ops, replay_think(self));
        t
    }

    /// Number of small metadata requests ("chatter") one instance sends
    /// to its filesystem service beyond the capability-bearing
    /// operations. Real traces contain hundreds to thousands of
    /// lightweight syscalls (stat, lseek, fcntl, small buffered reads)
    /// per instance; these load the *services* without creating
    /// capabilities, which is what makes the applications "heavily
    /// dependent on the OS services" (§1) and drives the
    /// service-dependence curves of Figure 7.
    fn chatter_ops(self) -> u32 {
        match self {
            AppKind::Tar => 680,
            AppKind::Untar => 660,
            AppKind::Find => 480,
            AppKind::Sqlite => 1120,
            AppKind::LevelDb => 660,
            AppKind::PostMark => 405,
        }
    }
}

/// The static filesystem contents every m3fs image must be pre-populated
/// with so any instance of any app can run against it. Returns
/// `(directories, files)`; per-instance `/work/<n>` files are created at
/// runtime by the traces themselves.
pub fn required_image() -> (Vec<String>, Vec<(String, u64)>) {
    let mut dirs = vec!["/input".to_string(), "/work".to_string(), "/docroot".to_string()];
    let mut files = Vec::new();
    // tar members and the untar archive.
    for (i, kib) in TAR_MEMBER_KIB.iter().enumerate() {
        files.push((format!("/input/member{i}.dat"), kib * 1024));
    }
    files.push(("/input/archive.tar".to_string(), TAR_ARCHIVE_BYTES));
    // find's directory tree: 80 entries over 4 directories + an index.
    files.push(("/tree/index.dat".to_string(), 4096));
    for d in 0..4 {
        dirs.push(format!("/tree/d{d}"));
        for e in 0..(FIND_ENTRIES / 4) {
            files.push((format!("/tree/d{d}/e{e}"), 256));
        }
    }
    // Nginx docroot: eight 16 KiB pages.
    for p in 0..8 {
        files.push((format!("/docroot/page{p}.html"), 16 * 1024));
    }
    (dirs, files)
}

/// Sizes of the five archive members (KiB), §5.3.1.
pub const TAR_MEMBER_KIB: [u64; 5] = [128, 256, 512, 1024, 2048];
/// Total archive size: 4 MiB (approximately the sum of the members).
pub const TAR_ARCHIVE_BYTES: u64 = 4 << 20;
/// Entries in the `find` directory tree, §5.3.1.
pub const FIND_ENTRIES: usize = 80;

/// Think-time scale: cycles of compute per KiB processed (memory-bound
/// apps like tar get little; compute-bound apps like SQLite get more).
const LIGHT_COMPUTE: u64 = 2_000;
const MEDIUM_COMPUTE: u64 = 12_000;
const HEAVY_COMPUTE: u64 = 60_000;

/// Per-application replay think time (cycles), distributed across the
/// trace. This models the paper's methodology of *waiting for the
/// recorded Linux duration* of every syscall SemperOS does not implement
/// (§5.3.1) — the bulk of each application's wall time. Values calibrate
/// the solo instance runtime so that Table 4's single-instance
/// "cap ops/s" rates are met (e.g. tar: 21 ops at 7295 ops/s ⇒ ≈ 5.8 M
/// cycles at 2 GHz).
fn replay_think(app: AppKind) -> u64 {
    match app {
        AppKind::Tar => 3_874_000,
        AppKind::Untar => 4_086_000,
        AppKind::Find => 3_937_000,
        AppKind::Sqlite => 5_969_000,
        AppKind::LevelDb => 4_142_000,
        AppKind::PostMark => 2_925_000,
    }
}

/// Spreads `count` metadata requests (stat of a static path) evenly
/// through the trace.
fn inject_chatter(ops: Vec<TraceOp>, count: u32) -> Vec<TraceOp> {
    if count == 0 || ops.is_empty() {
        return ops;
    }
    let per_slot = count as usize / ops.len().max(1) + 1;
    let mut out = Vec::with_capacity(ops.len() + count as usize);
    let mut injected = 0usize;
    for op in ops {
        out.push(op);
        for _ in 0..per_slot {
            if injected < count as usize {
                out.push(TraceOp::Stat { path: "/input/member0.dat".into() });
                injected += 1;
            }
        }
    }
    while injected < count as usize {
        out.push(TraceOp::Stat { path: "/input/member0.dat".into() });
        injected += 1;
    }
    out
}

/// Distributes `total` think cycles across a trace by inserting a
/// `Compute` op after every filesystem operation.
fn pad_with_think(mut ops: Vec<TraceOp>, total: u64) -> Vec<TraceOp> {
    let fs_ops = ops.iter().filter(|o| !matches!(o, TraceOp::Compute { .. })).count() as u64;
    if fs_ops == 0 || total == 0 {
        return ops;
    }
    let per_op = total / fs_ops;
    let mut padded = Vec::with_capacity(ops.len() * 2);
    for op in ops.drain(..) {
        let is_fs = !matches!(op, TraceOp::Compute { .. });
        padded.push(op);
        if is_fs {
            padded.push(TraceOp::Compute { cycles: per_op });
        }
    }
    padded
}

fn tar(instance: u32) -> Trace {
    // Reads five input files, writes one 4 MiB archive.
    // Cap ops: 1 session + (5 member reads = 6 extents) + (archive write
    // = 4 extents) → 10 delegations + 10 revokes + 1 session = 21.
    let mut ops = Vec::new();
    let archive = format!("/work/{instance}/out.tar");
    ops.push(TraceOp::Open { path: archive.clone(), write: true, create: true });
    for (i, kib) in TAR_MEMBER_KIB.iter().enumerate() {
        let path = format!("/input/member{i}.dat");
        ops.push(TraceOp::Open { path: path.clone(), write: false, create: false });
        ops.push(TraceOp::Read { path: path.clone(), bytes: kib * 1024 });
        ops.push(TraceOp::Compute { cycles: LIGHT_COMPUTE * kib / 128 });
        ops.push(TraceOp::Close { path });
        // Append this member to the archive (bytes accumulate; extents
        // are delegated as the file grows).
        ops.push(TraceOp::Write { path: archive.clone(), bytes: kib * 1024 });
    }
    ops.push(TraceOp::Close { path: archive });
    Trace { name: "tar".into(), ops }
}

fn untar(instance: u32) -> Trace {
    // Reads the 4 MiB archive once (4 extents) and unpacks into a
    // per-instance scratch file opened once (1 extent delegated for the
    // whole unpack buffer). Cap ops: 1 session + 5 delegations + 5
    // revokes = 11.
    let mut ops = Vec::new();
    let scratch = format!("/work/{instance}/unpacked.dat");
    ops.push(TraceOp::Open { path: "/input/archive.tar".into(), write: false, create: false });
    ops.push(TraceOp::Open { path: scratch.clone(), write: true, create: true });
    ops.push(TraceOp::Read { path: "/input/archive.tar".into(), bytes: TAR_ARCHIVE_BYTES });
    ops.push(TraceOp::Compute { cycles: LIGHT_COMPUTE * 32 });
    // The unpack writes land in the first extent of the scratch file.
    ops.push(TraceOp::Write { path: scratch.clone(), bytes: 512 * 1024 });
    ops.push(TraceOp::Close { path: "/input/archive.tar".into() });
    ops.push(TraceOp::Close { path: scratch });
    Trace { name: "untar".into(), ops }
}

fn find(_instance: u32) -> Trace {
    // Pure metadata scan: readdir + stat over 80 entries looking for a
    // file that does not exist, plus one read of the directory index.
    // Cap ops: 1 session + 1 delegation + 1 revoke = 3.
    let mut ops = Vec::new();
    ops.push(TraceOp::Open { path: "/tree/index.dat".into(), write: false, create: false });
    ops.push(TraceOp::Read { path: "/tree/index.dat".into(), bytes: 4096 });
    for d in 0..4 {
        ops.push(TraceOp::ReadDir { path: format!("/tree/d{d}") });
        for e in 0..(FIND_ENTRIES / 4) {
            ops.push(TraceOp::Stat { path: format!("/tree/d{d}/e{e}") });
            ops.push(TraceOp::Compute { cycles: 300 });
        }
    }
    ops.push(TraceOp::Close { path: "/tree/index.dat".into() });
    Trace { name: "find".into(), ops }
}

fn sqlite(instance: u32) -> Trace {
    // Create a table, insert 8 rows, select them back — with journaling.
    // The database and journal are opened/closed around bursts, giving
    // several short-lived extent capabilities.
    // Cap ops: 1 session + db(2 opens × 1 extent) + journal(4 opens × 1)
    // + table page (2 × 1) + select read (2) + backup page (1)
    //   = 11 delegations + 11 revokes + 1 session ≈ 24 (paper: 24).
    let mut ops = Vec::new();
    let db = format!("/work/{instance}/app.db");
    let journal = format!("/work/{instance}/app.db-journal");
    // Phase 1: create table (db + journal).
    ops.push(TraceOp::Open { path: db.clone(), write: true, create: true });
    ops.push(TraceOp::Compute { cycles: HEAVY_COMPUTE });
    ops.push(TraceOp::Write { path: db.clone(), bytes: 64 * 1024 });
    ops.push(TraceOp::Open { path: journal.clone(), write: true, create: true });
    ops.push(TraceOp::Write { path: journal.clone(), bytes: 32 * 1024 });
    ops.push(TraceOp::Compute { cycles: HEAVY_COMPUTE });
    ops.push(TraceOp::Close { path: journal.clone() });
    ops.push(TraceOp::Close { path: db.clone() });
    // Phase 2: insert 8 rows in four journaled bursts.
    for _ in 0..4 {
        ops.push(TraceOp::Open { path: db.clone(), write: true, create: false });
        ops.push(TraceOp::Open { path: journal.clone(), write: true, create: false });
        ops.push(TraceOp::Compute { cycles: HEAVY_COMPUTE });
        ops.push(TraceOp::Write { path: journal.clone(), bytes: 16 * 1024 });
        ops.push(TraceOp::Write { path: db.clone(), bytes: 32 * 1024 });
        ops.push(TraceOp::Compute { cycles: HEAVY_COMPUTE });
        ops.push(TraceOp::Close { path: journal.clone() });
        ops.push(TraceOp::Close { path: db.clone() });
    }
    // Phase 3: select the rows back.
    ops.push(TraceOp::Open { path: db.clone(), write: false, create: false });
    ops.push(TraceOp::Read { path: db.clone(), bytes: 96 * 1024 });
    ops.push(TraceOp::Compute { cycles: HEAVY_COMPUTE * 2 });
    ops.push(TraceOp::Close { path: db });
    Trace { name: "SQLite".into(), ops }
}

fn leveldb(instance: u32) -> Trace {
    // LevelDB: log-structured — writes go to a log, then a table file;
    // higher file-access frequency than SQLite, less compute per access.
    // Cap ops target: 22 = 1 session + ~10-11 delegations + revokes.
    let mut ops = Vec::new();
    let log = format!("/work/{instance}/000001.log");
    let manifest = format!("/work/{instance}/MANIFEST");
    let table = format!("/work/{instance}/000002.ldb");
    ops.push(TraceOp::Open { path: manifest.clone(), write: true, create: true });
    ops.push(TraceOp::Write { path: manifest.clone(), bytes: 4 * 1024 });
    ops.push(TraceOp::Close { path: manifest.clone() });
    // 8 inserts hitting the log in 4 reopened batches.
    for _ in 0..4 {
        ops.push(TraceOp::Open { path: log.clone(), write: true, create: true });
        ops.push(TraceOp::Write { path: log.clone(), bytes: 8 * 1024 });
        ops.push(TraceOp::Compute { cycles: MEDIUM_COMPUTE });
        ops.push(TraceOp::Close { path: log.clone() });
    }
    // Compaction: read the log, write the table.
    ops.push(TraceOp::Open { path: log.clone(), write: false, create: false });
    ops.push(TraceOp::Read { path: log.clone(), bytes: 32 * 1024 });
    ops.push(TraceOp::Close { path: log });
    ops.push(TraceOp::Open { path: table.clone(), write: true, create: true });
    ops.push(TraceOp::Write { path: table.clone(), bytes: 32 * 1024 });
    ops.push(TraceOp::Close { path: table.clone() });
    // Selects: read the table twice, reopening in between.
    for _ in 0..2 {
        ops.push(TraceOp::Open { path: table.clone(), write: false, create: false });
        ops.push(TraceOp::Read { path: table.clone(), bytes: 32 * 1024 });
        ops.push(TraceOp::Compute { cycles: MEDIUM_COMPUTE });
        ops.push(TraceOp::Close { path: table.clone() });
    }
    // Update the manifest at shutdown.
    ops.push(TraceOp::Open { path: manifest.clone(), write: true, create: false });
    ops.push(TraceOp::Write { path: manifest.clone(), bytes: 4 * 1024 });
    ops.push(TraceOp::Close { path: manifest });
    Trace { name: "LevelDB".into(), ops }
}

fn postmark(instance: u32) -> Trace {
    // PostMark: little computation, many small mail files — the highest
    // capability-system load (38 cap ops per instance in Table 4).
    // 1 session + 18 file open/access/close rounds + 1 mailbox index
    //   ≈ 18-19 delegations + revokes.
    let mut ops = Vec::new();
    let dir = format!("/work/{instance}");
    ops.push(TraceOp::Mkdir { path: format!("{dir}/mail") });
    // Mailbox index read.
    let index = format!("{dir}/mail/index");
    ops.push(TraceOp::Open { path: index.clone(), write: true, create: true });
    ops.push(TraceOp::Write { path: index.clone(), bytes: 8 * 1024 });
    ops.push(TraceOp::Close { path: index });
    // 8 create+write (deliver), 6 read (fetch), 3 append (flag update);
    // deliveries later unlinked (maildir churn).
    for i in 0..8 {
        let mail = format!("{dir}/mail/msg{i}");
        ops.push(TraceOp::Open { path: mail.clone(), write: true, create: true });
        ops.push(TraceOp::Write { path: mail.clone(), bytes: 6 * 1024 });
        ops.push(TraceOp::Compute { cycles: LIGHT_COMPUTE });
        ops.push(TraceOp::Close { path: mail });
    }
    for i in 0..6 {
        let mail = format!("{dir}/mail/msg{i}");
        ops.push(TraceOp::Open { path: mail.clone(), write: false, create: false });
        ops.push(TraceOp::Read { path: mail.clone(), bytes: 6 * 1024 });
        ops.push(TraceOp::Close { path: mail });
    }
    for i in 0..3 {
        let mail = format!("{dir}/mail/msg{i}");
        ops.push(TraceOp::Open { path: mail.clone(), write: true, create: false });
        ops.push(TraceOp::Write { path: mail.clone(), bytes: 1024 });
        ops.push(TraceOp::Close { path: mail });
    }
    for i in 0..4 {
        ops.push(TraceOp::Unlink { path: format!("{dir}/mail/msg{i}") });
    }
    Trace { name: "PostMark".into(), ops }
}

/// The per-request trace an Nginx worker replays (§5.3.3): serve one
/// static file.
pub fn nginx_request(uri: u32) -> Trace {
    let path = format!("/docroot/page{}.html", uri % 8);
    Trace {
        name: "nginx-req".into(),
        ops: vec![
            // Parse the request, resolve the URI.
            TraceOp::Compute { cycles: 40_000 },
            TraceOp::Open { path: path.clone(), write: false, create: false },
            TraceOp::Read { path: path.clone(), bytes: 16 * 1024 },
            // Build headers, log, serialise the response (the bulk of a
            // webserver's per-request time; ~100 µs/request total,
            // matching the paper's per-server throughput).
            TraceOp::Compute { cycles: 140_000 },
            TraceOp::Close { path },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_generate_nonempty_traces() {
        for app in AppKind::ALL {
            let t = app.trace(0);
            assert!(!t.ops.is_empty(), "{} trace empty", app.name());
            assert_eq!(t.name, app.name());
        }
    }

    #[test]
    fn instances_use_disjoint_work_paths() {
        let a = AppKind::Sqlite.trace(0);
        let b = AppKind::Sqlite.trace(1);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn traces_balance_opens_and_closes() {
        for app in AppKind::ALL {
            let t = app.trace(3);
            let opens = t.ops.iter().filter(|o| matches!(o, TraceOp::Open { .. })).count();
            let closes = t.ops.iter().filter(|o| matches!(o, TraceOp::Close { .. })).count();
            assert_eq!(opens, closes, "{}: {opens} opens vs {closes} closes", app.name());
        }
    }

    #[test]
    fn find_is_metadata_heavy() {
        let t = AppKind::Find.trace(0);
        // The 80 tree entries plus the injected metadata chatter.
        let stats = t.ops.iter().filter(|o| matches!(o, TraceOp::Stat { .. })).count();
        assert!(stats >= FIND_ENTRIES, "find must stat all {FIND_ENTRIES} entries");
    }

    #[test]
    fn postmark_touches_many_files() {
        let t = AppKind::PostMark.trace(0);
        let opens = t.ops.iter().filter(|o| matches!(o, TraceOp::Open { .. })).count();
        assert!(opens >= 17, "postmark opens {opens}");
    }

    #[test]
    fn nginx_request_reads_docroot() {
        let t = nginx_request(3);
        assert!(t
            .ops
            .iter()
            .any(|op| matches!(op, TraceOp::Open { path, .. } if path.contains("docroot"))));
    }

    #[test]
    fn paper_cap_ops_match_table4() {
        assert_eq!(AppKind::Tar.paper_cap_ops(), 21);
        assert_eq!(AppKind::PostMark.paper_cap_ops(), 38);
    }
}
