//! The one kernel connection (and reply correlator) every client uses.
//!
//! Before this module, every actor that talked to a kernel or a service
//! hand-rolled the same three pieces of state: a tag counter, a
//! "waiting for tag X" marker, and a `debug_assert!` that the echoed
//! tag matched — which meant a mismatched reply was *silently dropped*
//! in release builds. [`KernelConn`] and [`Correlator`] are the single
//! implementation of that bookkeeping: typed submission, completion
//! matching that returns a hard [`Error`] on any mismatch, and a
//! [`BatchBuilder`] for issuing several capability operations as one
//! [`Syscall::Batch`].
//!
//! # Migrating from hand-rolled tags
//!
//! The pre-`KernelConn` pattern, repeated in the trace replayer, the
//! webserver, and the m3fs service:
//!
//! ```text
//! // before: every actor owned this state machine
//! next_tag: u64,
//! syscall_busy: bool,            // or: waiting: Waiting::Fs(tag)
//! ...
//! let tag = self.next_tag;
//! self.next_tag += 1;
//! self.syscall_busy = true;
//! out.push(Msg::new(self.pe, self.kernel_pe, Payload::sys(tag, call)));
//! ...
//! // on reply: drops mismatches in release builds!
//! debug_assert!(self.waiting == Waiting::Fs(reply.tag));
//! ```
//!
//! becomes:
//!
//! ```
//! # use semper_apps::conn::KernelConn;
//! # use semper_base::msg::{Outbox, Payload, Syscall, SysReply, SysReplyData};
//! # use semper_base::{Msg, PeId};
//! let mut conn = KernelConn::new(PeId(3), PeId(0));
//! let mut out = Outbox::new();
//! let token = conn.submit(Syscall::Noop, &mut out);
//! assert!(conn.busy());
//! // ... the kernel replies ...
//! let reply = SysReply { tag: token.tag(), result: Ok(SysReplyData::None) };
//! conn.accept(&reply).expect("tag mismatch is a hard error, not a dropped reply");
//! assert!(!conn.busy());
//! ```
//!
//! VPEs have exactly one blocking system call in flight (the invariant
//! the paper's thread-pool sizing rests on), so "completion polling" is
//! a single-slot affair: [`KernelConn::pending`] names the in-flight
//! token, [`KernelConn::accept`] resolves it.

use semper_base::msg::{Outbox, Payload, SysReply, SysReplyData, Syscall};
use semper_base::{CapSel, Code, Error, Msg, PeId, Result};

/// Matches request tags to reply tags for a channel with one request in
/// flight at a time (syscalls to a kernel, filesystem IPC over a
/// session). Allocates tags monotonically; rejects replies that do not
/// match the outstanding request with a hard error instead of a
/// debug-only assertion.
#[derive(Debug, Clone)]
pub struct Correlator {
    next_tag: u64,
    waiting: Option<u64>,
}

impl Correlator {
    /// A correlator whose first issued tag is `first_tag` (existing
    /// actors keep their historical tag sequences, so message payloads
    /// are byte-identical to the hand-rolled counters they replace).
    pub fn new(first_tag: u64) -> Correlator {
        Correlator { next_tag: first_tag, waiting: None }
    }

    /// True while a request is outstanding.
    pub fn busy(&self) -> bool {
        self.waiting.is_some()
    }

    /// The tag of the outstanding request, if any.
    pub fn pending(&self) -> Option<u64> {
        self.waiting
    }

    /// Allocates the next tag and marks it outstanding.
    ///
    /// # Panics
    ///
    /// Debug-panics if a request is already outstanding (one blocking
    /// request per channel).
    pub fn issue(&mut self) -> u64 {
        debug_assert!(self.waiting.is_none(), "one request in flight at a time");
        let tag = self.next_tag;
        self.next_tag += 1;
        self.waiting = Some(tag);
        tag
    }

    /// Resolves the outstanding request against an echoed tag. A reply
    /// that matches nothing — no request outstanding, or a different
    /// tag — is a protocol violation and returns `InternalError`; the
    /// caller surfaces it instead of dropping the reply.
    pub fn accept(&mut self, tag: u64) -> Result<()> {
        match self.waiting {
            Some(t) if t == tag => {
                self.waiting = None;
                Ok(())
            }
            _ => Err(Error::new(Code::InternalError)),
        }
    }

    /// Clears the outstanding marker (failure teardown).
    pub fn reset(&mut self) {
        self.waiting = None;
    }
}

/// Handle for one submitted system call (resolved by the next matching
/// [`KernelConn::accept`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token(u64);

impl Token {
    /// The wire tag carried by the submitted call.
    pub fn tag(&self) -> u64 {
        self.0
    }
}

/// Handle for a promise capability
/// ([`Feature::PromiseIpc`](semper_base::config::Feature::PromiseIpc)):
/// the selector returned by a [`Syscall::SubmitAsync`], standing in for
/// the eventual result of the submitted call. Pass [`PromiseToken::sel`]
/// as a selector operand of a dependent call to chain on the unresolved
/// result, or redeem it with [`KernelConn::wait_promise`] /
/// [`KernelConn::poll_promise`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromiseToken(CapSel);

impl PromiseToken {
    /// The promise selector (usable as a dependent-call operand).
    pub fn sel(&self) -> CapSel {
        self.0
    }
}

/// A VPE's connection to its group's kernel: typed submission of
/// [`Syscall`]s, single-slot completion tracking, hard-error reply
/// matching. See the module docs for the migration story.
#[derive(Debug, Clone)]
pub struct KernelConn {
    pe: PeId,
    kernel_pe: PeId,
    corr: Correlator,
}

impl KernelConn {
    /// A connection from the VPE on `pe` to the kernel on `kernel_pe`,
    /// issuing tags from 1 (the convention of the service actors).
    pub fn new(pe: PeId, kernel_pe: PeId) -> KernelConn {
        KernelConn::starting_at(pe, kernel_pe, 1)
    }

    /// Like [`KernelConn::new`] with an explicit first tag (the trace
    /// replayer historically tags its session call 0).
    pub fn starting_at(pe: PeId, kernel_pe: PeId, first_tag: u64) -> KernelConn {
        KernelConn { pe, kernel_pe, corr: Correlator::new(first_tag) }
    }

    /// Re-homes the connection after the VPE's capability group
    /// migrated: subsequent system calls go to the new owner's PE. An
    /// in-flight call is unaffected — the old owner forwards it and the
    /// reply carries the original correlation tag.
    pub fn set_kernel_pe(&mut self, kernel_pe: PeId) {
        self.kernel_pe = kernel_pe;
    }

    /// True while a system call is in flight (VPEs block on syscalls).
    pub fn busy(&self) -> bool {
        self.corr.busy()
    }

    /// The token of the in-flight system call, if any.
    pub fn pending(&self) -> Option<Token> {
        self.corr.pending().map(Token)
    }

    /// Submits a system call to the kernel; the message leaves with the
    /// handler's output. Returns the token the reply will resolve.
    pub fn submit(&mut self, call: Syscall, out: &mut Outbox) -> Token {
        let tag = self.corr.issue();
        out.push(Msg::new(self.pe, self.kernel_pe, Payload::sys(tag, call)));
        Token(tag)
    }

    /// Resolves the in-flight call against a reply. Returns the token
    /// on a match; a mismatched or unexpected reply is a hard error
    /// (never silently dropped — the caller fails or panics).
    pub fn accept(&mut self, reply: &SysReply) -> Result<Token> {
        self.corr.accept(reply.tag)?;
        Ok(Token(reply.tag))
    }

    /// Clears the in-flight marker (failure teardown).
    pub fn reset(&mut self) {
        self.corr.reset();
    }

    // ----- promise IPC (`Feature::PromiseIpc`) ------------------------

    /// Submits `call` asynchronously ([`Syscall::SubmitAsync`]). The
    /// kernel replies immediately with a promise selector — resolve the
    /// reply with [`KernelConn::accept_promise`] — while the inner call
    /// executes in the background; successive submissions pipeline in
    /// program order.
    pub fn submit_async(&mut self, call: Syscall, out: &mut Outbox) -> Token {
        self.submit(Syscall::SubmitAsync(Box::new(call)), out)
    }

    /// Resolves a [`KernelConn::submit_async`] reply into its
    /// [`PromiseToken`]. Tag mismatches are hard errors (as in
    /// [`KernelConn::accept`]); a non-promise payload is `InvalidArgs`.
    pub fn accept_promise(&mut self, reply: &SysReply) -> Result<PromiseToken> {
        self.corr.accept(reply.tag)?;
        match &reply.result {
            Ok(SysReplyData::Promise { sel }) => Ok(PromiseToken(*sel)),
            Ok(_) => Err(Error::new(Code::InvalidArgs)),
            Err(e) => Err(*e),
        }
    }

    /// Blocks on a promise ([`Syscall::WaitPromise`] with `block`): the
    /// reply carries the resolved result (re-readable — redeeming is
    /// non-consuming).
    pub fn wait_promise(&mut self, p: PromiseToken, out: &mut Outbox) -> Token {
        self.submit(Syscall::WaitPromise { sel: p.sel(), block: true }, out)
    }

    /// Polls a promise: replies immediately with the resolution, or
    /// `Err(Unresolved)` if the submitted call has not completed yet.
    pub fn poll_promise(&mut self, p: PromiseToken, out: &mut Outbox) -> Token {
        self.submit(Syscall::WaitPromise { sel: p.sel(), block: false }, out)
    }
}

/// Builds a [`Syscall::Batch`]: N capability operations submitted as
/// one message, answered by one
/// [`SysReplyData::Batch`](semper_base::msg::SysReplyData::Batch) of
/// per-item results. The m3fs service uses this to revoke all of a
/// closed file's delegated extents in one round trip; see
/// `semper_kernel::ops::bulk` for the kernel side.
#[derive(Debug, Default, Clone)]
pub struct BatchBuilder {
    items: Vec<Syscall>,
}

impl BatchBuilder {
    /// An empty batch.
    pub fn new() -> BatchBuilder {
        BatchBuilder::default()
    }

    /// Appends one operation; items execute in push order.
    pub fn push(&mut self, call: Syscall) -> &mut BatchBuilder {
        self.items.push(call);
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Submits the batch over `conn` as a single [`Syscall::Batch`].
    pub fn submit(self, conn: &mut KernelConn, out: &mut Outbox) -> Token {
        conn.submit(Syscall::Batch(self.items.into_boxed_slice()), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::{Perms, SysReplyData};

    #[test]
    fn submit_and_accept_roundtrip() {
        let mut conn = KernelConn::new(PeId(5), PeId(0));
        let mut out = Outbox::new();
        let token = conn.submit(Syscall::Noop, &mut out);
        assert_eq!(token.tag(), 1);
        assert!(conn.busy());
        assert_eq!(conn.pending(), Some(token));
        let msgs = out.drain();
        assert!(matches!(&msgs[0].0.payload, Payload::Sys { tag: 1, call: Syscall::Noop }));
        assert_eq!(msgs[0].0.dst, PeId(0));
        let reply = SysReply { tag: 1, result: Ok(SysReplyData::None) };
        assert_eq!(conn.accept(&reply).unwrap(), token);
        assert!(!conn.busy());
    }

    #[test]
    fn mismatched_reply_is_a_hard_error() {
        let mut conn = KernelConn::new(PeId(5), PeId(0));
        let mut out = Outbox::new();
        let _ = conn.submit(Syscall::Noop, &mut out);
        let bogus = SysReply { tag: 42, result: Ok(SysReplyData::None) };
        assert_eq!(conn.accept(&bogus).unwrap_err().code(), Code::InternalError);
        // An unsolicited reply with nothing in flight is also an error.
        conn.reset();
        let reply = SysReply { tag: 1, result: Ok(SysReplyData::None) };
        assert_eq!(conn.accept(&reply).unwrap_err().code(), Code::InternalError);
    }

    #[test]
    fn correlator_tags_are_monotone_from_first() {
        let mut c = Correlator::new(0);
        assert_eq!(c.issue(), 0);
        c.accept(0).unwrap();
        assert_eq!(c.issue(), 1);
        c.accept(1).unwrap();
        assert!(!c.busy());
    }

    #[test]
    fn promise_submit_redeem_roundtrip() {
        let mut conn = KernelConn::new(PeId(5), PeId(0));
        let mut out = Outbox::new();
        let token =
            conn.submit_async(Syscall::CreateMem { size: 4096, perms: Perms::RW }, &mut out);
        let msgs = out.drain();
        let Payload::Sys { call: Syscall::SubmitAsync(inner), .. } = &msgs[0].0.payload else {
            panic!("expected an async submission");
        };
        assert!(matches!(**inner, Syscall::CreateMem { size: 4096, .. }));
        let sel = CapSel(1 << 30);
        let reply = SysReply { tag: token.tag(), result: Ok(SysReplyData::Promise { sel }) };
        let p = conn.accept_promise(&reply).unwrap();
        assert_eq!(p.sel(), sel);
        assert!(!conn.busy());
        // Redeem: wait blocks, poll does not.
        let t2 = conn.wait_promise(p, &mut out);
        let msgs = out.drain();
        assert!(matches!(
            &msgs[0].0.payload,
            Payload::Sys { call: Syscall::WaitPromise { block: true, .. }, .. }
        ));
        conn.accept(&SysReply { tag: t2.tag(), result: Ok(SysReplyData::Sel(CapSel(9))) }).unwrap();
        let _ = conn.poll_promise(p, &mut out);
        let msgs = out.drain();
        assert!(matches!(
            &msgs[0].0.payload,
            Payload::Sys { call: Syscall::WaitPromise { block: false, .. }, .. }
        ));
    }

    #[test]
    fn non_promise_reply_to_accept_promise_is_invalid() {
        let mut conn = KernelConn::new(PeId(5), PeId(0));
        let mut out = Outbox::new();
        let token = conn.submit_async(Syscall::Noop, &mut out);
        let reply = SysReply { tag: token.tag(), result: Ok(SysReplyData::None) };
        assert_eq!(conn.accept_promise(&reply).unwrap_err().code(), Code::InvalidArgs);
    }

    #[test]
    fn batch_builder_wraps_items_in_order() {
        let mut conn = KernelConn::new(PeId(5), PeId(0));
        let mut out = Outbox::new();
        let mut b = BatchBuilder::new();
        assert!(b.is_empty());
        b.push(Syscall::Noop);
        b.push(Syscall::Revoke { sel: semper_base::CapSel(7), own: true });
        assert_eq!(b.len(), 2);
        let _ = b.submit(&mut conn, &mut out);
        let msgs = out.drain();
        let Payload::Sys { call: Syscall::Batch(items), .. } = &msgs[0].0.payload else {
            panic!("expected a batch syscall");
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(items[0], Syscall::Noop));
        assert!(matches!(items[1], Syscall::Revoke { .. }));
    }
}
