//! The Nginx webserver experiment (§5.3.3).
//!
//! The paper stresses Nginx "similar to the Apache ab benchmark" with
//! PEs that resemble a network interface, constantly sending requests to
//! webserver processes on separate PEs; the servers replay the recorded
//! request-handling trace per request and respond. [`NginxServer`] is
//! one webserver VPE; [`LoadGen`] is one network-interface PE running a
//! closed loop with a configurable number of outstanding requests.

use std::collections::VecDeque;

use semper_base::msg::{HttpReq, HttpResp, Outbox, Payload};
use semper_base::{CostModel, Msg, PeId, VpeId};

use crate::client::Replayer;
use crate::trace::nginx_request;

/// One webserver VPE serving requests from load generators.
pub struct NginxServer {
    replayer: Replayer,
    pe: PeId,
    pending: VecDeque<(PeId, HttpReq)>,
    current: Option<(PeId, HttpReq)>,
    served: u64,
    booted: bool,
}

impl NginxServer {
    /// Creates a server VPE.
    pub fn new(
        vpe: VpeId,
        pe: PeId,
        kernel_pe: PeId,
        cost: CostModel,
        service_name: u64,
    ) -> NginxServer {
        NginxServer {
            replayer: Replayer::new(vpe, pe, kernel_pe, cost, service_name),
            pe,
            pending: VecDeque::new(),
            current: None,
            served: 0,
            booted: false,
        }
    }

    /// The server's VPE.
    pub fn vpe(&self) -> VpeId {
        self.replayer.vpe()
    }

    /// Requests fully served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// True once the m3fs session is up.
    pub fn ready(&self) -> bool {
        self.replayer.has_session()
    }

    /// Re-homes the kernel connection after a group migration.
    pub fn set_kernel_pe(&mut self, kernel_pe: PeId) {
        self.replayer.set_kernel_pe(kernel_pe);
    }

    /// True while a blocking system call or filesystem request is in
    /// flight (see [`Replayer::syscall_inflight`] /
    /// [`Replayer::fs_inflight`]).
    pub fn op_inflight(&self) -> bool {
        self.replayer.syscall_inflight() || self.replayer.fs_inflight()
    }

    /// True while an extent request is outstanding (see
    /// [`Replayer::awaiting_extent`]).
    pub fn awaiting_extent(&self) -> bool {
        self.replayer.awaiting_extent()
    }

    /// One-line state dump for stall diagnostics (tests/benches).
    pub fn debug_state(&self) -> String {
        format!(
            "sys={} fs={} err={:?} current={:?} pending={} served={}",
            self.replayer.syscall_inflight(),
            self.replayer.fs_inflight(),
            self.replayer.error(),
            self.current.as_ref().map(|(src, req)| (src.0, req.id)),
            self.pending.len(),
            self.served,
        )
    }

    /// Starts the server: opens its m3fs session.
    pub fn boot(&mut self, out: &mut Outbox) -> u64 {
        debug_assert!(!self.booted);
        self.booted = true;
        self.replayer.open_session(out)
    }

    /// Handles one incoming message; returns the modeled cycle cost.
    pub fn handle(&mut self, msg: &Msg, out: &mut Outbox) -> u64 {
        if let Payload::Http(req) = &msg.payload {
            self.pending.push_back((msg.src, *req));
            return self.kick(out);
        }
        let (cost, done) = self.replayer.on_msg(msg, out);
        if done {
            self.finish_current(out);
            return cost + self.kick(out);
        }
        if self.replayer.has_session() && self.current.is_none() {
            return cost + self.kick(out);
        }
        cost
    }

    fn finish_current(&mut self, out: &mut Outbox) {
        let Some((src, req)) = self.current.take() else { return };
        self.served += 1;
        out.push(Msg::new(
            self.pe(),
            src,
            Payload::HttpReply(HttpResp { id: req.id, bytes: 16 * 1024 }),
        ));
    }

    fn kick(&mut self, out: &mut Outbox) -> u64 {
        if !self.replayer.has_session() || self.current.is_some() || self.replayer.busy() {
            return 0;
        }
        let Some((src, req)) = self.pending.pop_front() else { return 0 };
        self.replayer.load(nginx_request(req.uri));
        self.current = Some((src, req));
        let (cost, done) = self.replayer.run(out);
        if done {
            self.finish_current(out);
            return cost + self.kick(out);
        }
        cost
    }

    fn pe(&self) -> PeId {
        self.pe
    }
}

/// One network-interface PE generating closed-loop load.
pub struct LoadGen {
    pe: PeId,
    servers: Vec<PeId>,
    /// Outstanding requests per server.
    depth: u32,
    next_id: u64,
    completed: u64,
    bytes: u64,
    started: bool,
}

impl LoadGen {
    /// Creates a load generator targeting `servers` with `depth`
    /// outstanding requests per server.
    pub fn new(pe: PeId, servers: Vec<PeId>, depth: u32) -> LoadGen {
        LoadGen { pe, servers, depth, next_id: 1, completed: 0, bytes: 0, started: false }
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// (Re)assigns the target servers and depth in place, reusing the
    /// existing target buffer — machine build constructs every load
    /// generator empty and assigns its round-robin share afterwards,
    /// which used to allocate a fresh `Vec` per generator per boot.
    pub fn set_targets(&mut self, servers: impl Iterator<Item = PeId>, depth: u32) {
        self.servers.clear();
        self.servers.extend(servers);
        self.depth = depth;
    }

    /// Response payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Starts the load: `depth` requests to every server. Iterates the
    /// target list by index — the previous implementation cloned the
    /// whole target `Vec` on every boot just to appease the borrow on
    /// `send_request`.
    pub fn boot(&mut self, out: &mut Outbox) -> u64 {
        debug_assert!(!self.started);
        self.started = true;
        for s in 0..self.servers.len() {
            let server = self.servers[s];
            for _ in 0..self.depth {
                self.send_request(server, out);
            }
        }
        0
    }

    fn send_request(&mut self, server: PeId, out: &mut Outbox) {
        let id = self.next_id;
        self.next_id += 1;
        out.push(Msg::new(self.pe, server, Payload::Http(HttpReq { id, uri: (id % 8) as u32 })));
    }

    /// Handles one response; immediately issues the next request
    /// (closed loop).
    pub fn handle(&mut self, msg: &Msg, out: &mut Outbox) -> u64 {
        match &msg.payload {
            Payload::HttpReply(resp) => {
                self.completed += 1;
                self.bytes += resp.bytes;
                let server = msg.src;
                self.send_request(server, out);
                0
            }
            other => {
                debug_assert!(false, "loadgen got unexpected payload {other:?}");
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadgen_boot_sends_depth_per_server() {
        let mut lg = LoadGen::new(PeId(0), vec![PeId(1), PeId(2)], 3);
        let mut out = Outbox::new();
        lg.boot(&mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 6);
        assert_eq!(msgs.iter().filter(|(m, _)| m.dst == PeId(1)).count(), 3);
    }

    #[test]
    fn loadgen_closed_loop_reissues() {
        let mut lg = LoadGen::new(PeId(0), vec![PeId(1)], 1);
        let mut out = Outbox::new();
        lg.boot(&mut out);
        out.drain();
        let resp = Msg::new(PeId(1), PeId(0), Payload::HttpReply(HttpResp { id: 1, bytes: 10 }));
        lg.handle(&resp, &mut out);
        assert_eq!(lg.completed(), 1);
        assert_eq!(lg.bytes(), 10);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0.dst, PeId(1));
    }
}
