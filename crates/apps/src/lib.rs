//! Application workloads for the SemperOS evaluation.
//!
//! The paper drives its evaluation (§5.3) with system-call traces of
//! seven real applications — tar, untar, find, SQLite, LevelDB, PostMark,
//! and Nginx — recorded on Linux and replayed against SemperOS. Only the
//! filesystem and capability interactions touch the OS; remaining
//! syscalls are accounted as think time. We reproduce that methodology
//! with *synthetic traces* that issue the same kinds and counts of
//! filesystem operations (calibrated against Table 4's capability-
//! operation counts), interleaved with compute phases:
//!
//! * [`trace`] — the trace representation and the per-application
//!   generators.
//! * [`client`] — the replay driver: an actor that executes a trace
//!   against a kernel and an m3fs instance, consuming extents through
//!   delegated memory capabilities exactly like a real m3fs client.
//! * [`nginx`] — the webserver experiment (§5.3.3): server VPEs that
//!   replay a request-handling trace and closed-loop load generators.
//! * [`conn`] — the one kernel-connection/reply-matching implementation
//!   ([`KernelConn`], [`conn::Correlator`], [`conn::BatchBuilder`])
//!   shared by every actor above and by the m3fs service.

pub mod client;
pub mod conn;
pub mod nginx;
pub mod trace;

pub use client::{AppClient, ClientPhase, ClientStats};
pub use conn::{BatchBuilder, KernelConn};
pub use nginx::{LoadGen, NginxServer};
pub use trace::{AppKind, Trace, TraceOp};
