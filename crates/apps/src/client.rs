//! The trace-replay driver.
//!
//! [`Replayer`] executes a [`Trace`] against the OS exactly like a real
//! m3fs client: it opens a session, opens files over IPC, pulls extent
//! capabilities for reads and writes, accesses the memory behind them
//! (modeled as compute time per the paper's non-contended-memory
//! methodology), and closes files, triggering revocations at the
//! service. [`AppClient`] wraps one replayer around one application
//! trace; the Nginx server reuses the replayer for per-request traces.

use std::collections::BTreeMap;

use semper_base::msg::{
    FsOp, FsReply, FsReplyData, FsReq, Outbox, Payload, SysReplyData, Syscall, Upcall, UpcallReply,
};
use semper_base::{Code, CostModel, Error, Msg, PeId, VpeId};

use crate::conn::{Correlator, KernelConn};
use crate::trace::{Trace, TraceOp};

/// Lifecycle of an application client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientPhase {
    /// Not started yet.
    Cold,
    /// Waiting for the session to open.
    OpeningSession,
    /// Executing the trace.
    Running,
    /// Trace complete.
    Done,
    /// A filesystem or OS error aborted the trace.
    Failed(Error),
}

/// Per-client statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClientStats {
    /// Filesystem requests issued.
    pub fs_requests: u64,
    /// Extent capabilities received.
    pub extents: u64,
    /// Bytes read through memory capabilities.
    pub bytes_read: u64,
    /// Bytes written through memory capabilities.
    pub bytes_written: u64,
    /// Cycles spent in modeled computation (think time + data access).
    pub compute_cycles: u64,
}

#[derive(Debug, Clone)]
struct FileState {
    fid: u64,
    size: u64,
    /// Extent ranges already delegated to us for this open file
    /// (clients cache their memory capabilities — re-requesting a range
    /// the client already holds would be a wasted IPC *and* a spurious
    /// capability operation). Cleared on close, when the service revokes
    /// the capabilities.
    cached: Vec<(u64, u64)>,
}

impl FileState {
    /// The cached range covering `offset`, if any.
    fn covering(&self, offset: u64) -> Option<(u64, u64)> {
        self.cached.iter().copied().find(|(s, e)| *s <= offset && offset < *e)
    }
}

#[derive(Debug, Clone)]
struct Io {
    path: String,
    /// Next file offset to access.
    offset: u64,
    /// End of the requested range (clamped for reads).
    end: u64,
    write: bool,
}

/// Executes traces against the OS. See the module docs.
///
/// Reply correlation lives in [`crate::conn`]: `sys` is the kernel
/// connection (the one blocking system call — here, `OpenSession`),
/// `fs` correlates filesystem IPC over the session. A reply that
/// matches neither is a hard error surfacing as
/// [`ClientPhase::Failed`], never a silently dropped message.
pub struct Replayer {
    vpe: VpeId,
    pe: PeId,
    cost: CostModel,
    service_name: u64,
    sys: KernelConn,
    fs: Correlator,

    session: Option<(u64, PeId)>,
    trace: Option<Trace>,
    ip: usize,
    files: BTreeMap<String, FileState>,
    io: Option<Io>,
    stats: ClientStats,
    error: Option<Error>,
}

impl Replayer {
    /// Creates an idle replayer for `vpe` on `pe`.
    pub fn new(
        vpe: VpeId,
        pe: PeId,
        kernel_pe: PeId,
        cost: CostModel,
        service_name: u64,
    ) -> Replayer {
        Replayer {
            vpe,
            pe,
            cost,
            service_name,
            // Tag sequences match the hand-rolled counters this struct
            // used to keep: session call 0, filesystem requests from 1.
            sys: KernelConn::starting_at(pe, kernel_pe, 0),
            fs: Correlator::new(1),
            session: None,
            trace: None,
            ip: 0,
            files: BTreeMap::new(),
            io: None,
            stats: ClientStats::default(),
            error: None,
        }
    }

    /// The VPE this replayer drives.
    pub fn vpe(&self) -> VpeId {
        self.vpe
    }

    /// Statistics counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// The first error encountered, if any.
    pub fn error(&self) -> Option<Error> {
        self.error
    }

    /// True once a session to the service is established.
    pub fn has_session(&self) -> bool {
        self.session.is_some()
    }

    /// Re-homes the kernel connection after a group migration (see
    /// [`KernelConn::set_kernel_pe`]).
    pub fn set_kernel_pe(&mut self, kernel_pe: PeId) {
        self.sys.set_kernel_pe(kernel_pe);
    }

    /// True if a trace is loaded and not yet finished.
    pub fn busy(&self) -> bool {
        self.trace.is_some()
    }

    /// True while a blocking system call is in flight at the kernel.
    pub fn syscall_inflight(&self) -> bool {
        self.sys.busy()
    }

    /// True while a filesystem request is in flight at the service.
    /// Extent requests and file closes make the service exchange or
    /// revoke capabilities owned by this VPE's group — the inter-kernel
    /// traffic a non-quiescent migration must hold or forward.
    pub fn fs_inflight(&self) -> bool {
        self.fs.busy()
    }

    /// True while a `NextExtent` request is outstanding: an IO is open
    /// and blocked on the service, whose answer is a `DeriveMem` plus a
    /// capability delegation into this VPE's group. Opening a handover
    /// window at this moment guarantees the delegation races it —
    /// benchmarks use this to exercise forward-or-hold deterministically
    /// instead of hoping a window lands on a capability exchange.
    pub fn awaiting_extent(&self) -> bool {
        self.fs.busy() && self.io.is_some()
    }

    /// Issues the `OpenSession` system call.
    pub fn open_session(&mut self, out: &mut Outbox) -> u64 {
        debug_assert!(self.session.is_none());
        let _ = self.sys.submit(Syscall::OpenSession { name: self.service_name }, out);
        self.cost.fs_meta_op / 4
    }

    /// Loads a trace for execution (requires an established session and
    /// no trace in progress).
    pub fn load(&mut self, trace: Trace) {
        debug_assert!(self.trace.is_none(), "trace already loaded");
        self.trace = Some(trace);
        self.ip = 0;
        self.io = None;
    }

    /// Drives execution until the trace needs a reply or finishes.
    /// Returns `(cycle cost, finished)`.
    pub fn run(&mut self, out: &mut Outbox) -> (u64, bool) {
        let mut cost = 0u64;
        if self.sys.busy() || self.fs.busy() || self.error.is_some() {
            return (cost, false);
        }
        loop {
            let Some(trace) = &self.trace else { return (cost, false) };
            let Some(op) = trace.ops.get(self.ip) else {
                // Trace complete.
                self.trace = None;
                return (cost, true);
            };
            let op = op.clone();
            match op {
                TraceOp::Compute { cycles } => {
                    cost += cycles;
                    self.stats.compute_cycles += cycles;
                    self.ip += 1;
                }
                TraceOp::Open { path, write, create } => {
                    cost += self.send_fs(out, FsOp::Open { path, write, create });
                    return (cost, false);
                }
                TraceOp::Read { path, bytes } => {
                    let Some(f) = self.files.get(&path) else {
                        self.fail(Error::new(Code::InvalidArgs));
                        return (cost, false);
                    };
                    let end = bytes.min(f.size);
                    if end == 0 {
                        self.ip += 1;
                        continue;
                    }
                    self.io = Some(Io { path, offset: 0, end, write: false });
                    if self.drive_io(out, &mut cost) {
                        return (cost, false);
                    }
                }
                TraceOp::Write { path, bytes } => {
                    let Some(f) = self.files.get_mut(&path) else {
                        self.fail(Error::new(Code::InvalidArgs));
                        return (cost, false);
                    };
                    // Appends start at the current end of file.
                    let start = f.size;
                    let end = start + bytes;
                    f.size = end;
                    self.io = Some(Io { path, offset: start, end, write: true });
                    if self.drive_io(out, &mut cost) {
                        return (cost, false);
                    }
                }
                TraceOp::Stat { path } => {
                    cost += self.send_fs(out, FsOp::Stat { path });
                    return (cost, false);
                }
                TraceOp::ReadDir { path } => {
                    cost += self.send_fs(out, FsOp::ReadDir { path });
                    return (cost, false);
                }
                TraceOp::Mkdir { path } => {
                    cost += self.send_fs(out, FsOp::Mkdir { path });
                    return (cost, false);
                }
                TraceOp::Unlink { path } => {
                    cost += self.send_fs(out, FsOp::Unlink { path });
                    return (cost, false);
                }
                TraceOp::Close { path } => {
                    let Some(f) = self.files.remove(&path) else {
                        self.fail(Error::new(Code::InvalidArgs));
                        return (cost, false);
                    };
                    cost += self.send_fs(out, FsOp::Close { fid: f.fid });
                    return (cost, false);
                }
            }
        }
    }

    /// Advances the current IO as far as the cached extent capabilities
    /// allow, charging memory-access cycles. Returns true if an extent
    /// request is now in flight (waiting), false if the IO completed
    /// (`ip` advanced, `io` cleared).
    fn drive_io(&mut self, out: &mut Outbox, cost: &mut u64) -> bool {
        loop {
            let Some(io) = &self.io else { return false };
            if io.offset >= io.end {
                self.io = None;
                self.ip += 1;
                return false;
            }
            let (offset, end, write, path) = (io.offset, io.end, io.write, io.path.clone());
            let Some(f) = self.files.get(&path) else {
                self.fail(Error::new(Code::InvalidArgs));
                return false;
            };
            match f.covering(offset) {
                Some((_, cached_end)) => {
                    // Access through a capability we already hold.
                    let usable = cached_end.min(end) - offset;
                    let access = self.cost.mem_access(usable);
                    *cost += access;
                    self.stats.compute_cycles += access;
                    if write {
                        self.stats.bytes_written += usable;
                    } else {
                        self.stats.bytes_read += usable;
                    }
                    if let Some(io) = &mut self.io {
                        io.offset += usable;
                    }
                }
                None => {
                    let fid = f.fid;
                    *cost += self.send_fs(out, FsOp::NextExtent { fid, offset, write });
                    return true;
                }
            }
        }
    }

    fn send_fs(&mut self, out: &mut Outbox, op: FsOp) -> u64 {
        let (session, srv_pe) = self.session.expect("session established before trace");
        let tag = self.fs.issue();
        self.stats.fs_requests += 1;
        out.push(Msg::new(self.pe, srv_pe, Payload::fs(FsReq { session, tag, op })));
        // Marshalling cost of one IPC request.
        self.cost.dtu_send
    }

    fn fail(&mut self, e: Error) {
        self.error = Some(e);
        self.trace = None;
        self.sys.reset();
        self.fs.reset();
    }

    /// Handles one incoming message. Returns `(cost, trace_finished)`.
    pub fn on_msg(&mut self, msg: &Msg, out: &mut Outbox) -> (u64, bool) {
        match &msg.payload {
            Payload::Upcall(Upcall::AcceptExchange { op, .. }) => {
                // The kernel asks whether we accept a capability (the
                // service delegating an extent): always yes.
                out.push(Msg::new(
                    self.pe,
                    msg.src,
                    Payload::upcall_reply(UpcallReply::AcceptExchange { op: *op, accept: true }),
                ));
                (self.cost.upcall_work, false)
            }
            Payload::SysReply(reply) => {
                // A reply that matches nothing in flight is a protocol
                // violation — fail hard instead of dropping it.
                if let Err(e) = self.sys.accept(reply) {
                    self.fail(e);
                    return (0, false);
                }
                match &reply.result {
                    Ok(SysReplyData::Session { srv_pe, ident, .. }) => {
                        self.session = Some((*ident, *srv_pe));
                        let (c, done) = self.run(out);
                        (c + self.cost.fs_meta_op / 4, done)
                    }
                    other => {
                        self.fail(match other {
                            Err(e) => *e,
                            Ok(_) => Error::new(Code::InternalError),
                        });
                        (0, false)
                    }
                }
            }
            Payload::FsReply(reply) => self.on_fs_reply(reply, out),
            other => {
                debug_assert!(false, "client got unexpected payload {other:?}");
                (0, false)
            }
        }
    }

    fn on_fs_reply(&mut self, reply: &FsReply, out: &mut Outbox) -> (u64, bool) {
        // Previously a `debug_assert!` — a mismatched tag in a release
        // build silently dropped the reply and wedged the client. Now
        // it is a hard error surfaced through `ClientPhase::Failed`.
        if let Err(e) = self.fs.accept(reply.tag) {
            self.fail(e);
            return (0, false);
        }
        let mut cost = self.cost.dtu_recv;
        match &reply.result {
            Ok(FsReplyData::Opened { fid, size }) => {
                // The Open op told us the path.
                let Some(TraceOp::Open { path, .. }) =
                    self.trace.as_ref().and_then(|t| t.ops.get(self.ip)).cloned()
                else {
                    self.fail(Error::new(Code::InternalError));
                    return (cost, false);
                };
                self.files.insert(path, FileState { fid: *fid, size: *size, cached: Vec::new() });
                self.ip += 1;
            }
            Ok(FsReplyData::Extent { sel: _, addr: _, offset, len }) => {
                self.stats.extents += 1;
                let Some(io) = &self.io else {
                    self.fail(Error::new(Code::InternalError));
                    return (cost, false);
                };
                let path = io.path.clone();
                let Some(f) = self.files.get_mut(&path) else {
                    self.fail(Error::new(Code::InternalError));
                    return (cost, false);
                };
                // Cache the delegated capability's range, then continue
                // the IO through it.
                f.cached.push((*offset, offset + len));
                if self.drive_io(out, &mut cost) {
                    return (cost, false);
                }
            }
            Ok(FsReplyData::Stat(_)) | Ok(FsReplyData::Dir { .. }) | Ok(FsReplyData::Ok) => {
                self.ip += 1;
            }
            Err(e)
                if e.code() == Code::EndOfFile && self.io.as_ref().is_some_and(|io| !io.write) =>
            {
                // Reading past the end: treat as a short read.
                self.io = None;
                self.ip += 1;
            }
            Err(e) => {
                self.fail(*e);
                return (cost, false);
            }
        }
        let (c, done) = self.run(out);
        (cost + c, done)
    }
}

/// One application benchmark instance: a replayer bound to one trace.
pub struct AppClient {
    replayer: Replayer,
    trace: Option<Trace>,
    phase: ClientPhase,
}

impl AppClient {
    /// Creates a client that will run `trace` once.
    pub fn new(
        vpe: VpeId,
        pe: PeId,
        kernel_pe: PeId,
        cost: CostModel,
        service_name: u64,
        trace: Trace,
    ) -> AppClient {
        AppClient {
            replayer: Replayer::new(vpe, pe, kernel_pe, cost, service_name),
            trace: Some(trace),
            phase: ClientPhase::Cold,
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> ClientPhase {
        self.phase
    }

    /// The client's VPE.
    pub fn vpe(&self) -> VpeId {
        self.replayer.vpe()
    }

    /// Replay statistics.
    pub fn stats(&self) -> &ClientStats {
        self.replayer.stats()
    }

    /// Re-homes the kernel connection after a group migration.
    pub fn set_kernel_pe(&mut self, kernel_pe: PeId) {
        self.replayer.set_kernel_pe(kernel_pe);
    }

    /// True while a blocking system call or filesystem request is in
    /// flight (see [`Replayer::syscall_inflight`] /
    /// [`Replayer::fs_inflight`]).
    pub fn op_inflight(&self) -> bool {
        self.replayer.syscall_inflight() || self.replayer.fs_inflight()
    }

    /// True while an extent request is outstanding (see
    /// [`Replayer::awaiting_extent`]).
    pub fn awaiting_extent(&self) -> bool {
        self.replayer.awaiting_extent()
    }

    /// Starts the client: opens the service session.
    pub fn boot(&mut self, out: &mut Outbox) -> u64 {
        debug_assert_eq!(self.phase, ClientPhase::Cold);
        self.phase = ClientPhase::OpeningSession;
        self.replayer.open_session(out)
    }

    /// Handles one incoming message; returns the modeled cycle cost.
    pub fn handle(&mut self, msg: &Msg, out: &mut Outbox) -> u64 {
        let was_waiting_session = self.phase == ClientPhase::OpeningSession;
        let (cost, done) = self.replayer.on_msg(msg, out);
        if was_waiting_session && self.replayer.has_session() {
            self.phase = ClientPhase::Running;
            let trace = self.trace.take().expect("trace present until started");
            self.replayer.load(trace);
            let (c2, done2) = self.replayer.run(out);
            if done2 {
                self.phase = ClientPhase::Done;
            }
            return cost + c2;
        }
        if done {
            self.phase = ClientPhase::Done;
        } else if let Some(e) = self.replayer.error() {
            self.phase = ClientPhase::Failed(e);
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AppKind;

    #[test]
    fn boot_opens_session() {
        let mut c = AppClient::new(
            VpeId(0),
            PeId(1),
            PeId(0),
            CostModel::calibrated(),
            7,
            AppKind::Find.trace(0),
        );
        let mut out = Outbox::new();
        c.boot(&mut out);
        assert_eq!(c.phase(), ClientPhase::OpeningSession);
        let msgs = out.drain();
        assert!(matches!(
            &msgs[0].0.payload,
            Payload::Sys { call: Syscall::OpenSession { name: 7 }, .. }
        ));
    }

    #[test]
    fn session_reply_starts_trace() {
        let mut c = AppClient::new(
            VpeId(0),
            PeId(1),
            PeId(0),
            CostModel::calibrated(),
            7,
            AppKind::Find.trace(0),
        );
        let mut out = Outbox::new();
        c.boot(&mut out);
        out.drain();
        let reply = Msg::new(
            PeId(0),
            PeId(1),
            Payload::sys_reply(
                0,
                Ok(SysReplyData::Session {
                    sel: semper_base::CapSel(3),
                    srv_pe: PeId(9),
                    ident: 1,
                }),
            ),
        );
        c.handle(&reply, &mut out);
        assert_eq!(c.phase(), ClientPhase::Running);
        // find's first op is Open → an Fs request to the service PE.
        let msgs = out.drain();
        assert!(msgs.iter().any(|(m, _)| matches!(&m.payload, Payload::Fs(_)) && m.dst == PeId(9)));
    }

    #[test]
    fn failed_session_marks_failure() {
        let mut c = AppClient::new(
            VpeId(0),
            PeId(1),
            PeId(0),
            CostModel::calibrated(),
            7,
            AppKind::Find.trace(0),
        );
        let mut out = Outbox::new();
        c.boot(&mut out);
        let reply =
            Msg::new(PeId(0), PeId(1), Payload::sys_reply(0, Err(Error::new(Code::NoSuchService))));
        c.handle(&reply, &mut out);
        assert!(matches!(c.phase(), ClientPhase::Failed(_)));
    }
}
