//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the real criterion
//! cannot be fetched. This shim implements the small API surface the
//! workspace's benches use — [`Criterion::bench_function`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! warmup-then-measure wall-clock loop. It reports the per-iteration
//! median of several samples, which is plenty to catch order-of-magnitude
//! regressions in the data-structure microbenchmarks. Swap the workspace
//! dependency back to the real criterion for statistically rigorous
//! numbers.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; the shim treats all variants the
/// same (one setup per routine invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    /// Collected per-iteration sample durations, in nanoseconds.
    samples: Vec<f64>,
}

const SAMPLES: usize = 15;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

impl Bencher {
    /// Measures `f` in a warmup-then-sample loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and calibration: find an iteration count that fills the
        // per-sample time budget.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
                break;
            }
            iters = (iters * 2).max(1);
        }
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            self.samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            std_black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one named benchmark and prints its median per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new() };
        f(&mut b);
        b.samples.sort_by(|a, x| a.partial_cmp(x).expect("sample times are finite"));
        let median = if b.samples.is_empty() { 0.0 } else { b.samples[b.samples.len() / 2] };
        println!("{name:<40} median {median:>12.1} ns/iter ({} samples)", b.samples.len());
        self
    }
}

/// Declares a benchmark group runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
