//! PE-role assignment.
//!
//! The machine is divided into contiguous PE groups, one per kernel
//! (§3.1); the first PE of each group hosts the kernel. Service
//! instances and application VPEs are distributed round-robin across
//! groups, mirroring the paper's even distribution of benchmark
//! instances (§5.3.2: "distributing them equally between kernels and
//! filesystem services").

use semper_base::{KernelId, MachineConfig, PeId, VpeId};
use semper_caps::MembershipTable;

/// What runs on a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A kernel (one per group).
    Kernel(KernelId),
    /// An m3fs service instance (index into the service list).
    Service(u16),
    /// An application benchmark instance (index into the client list).
    Client(u32),
    /// An Nginx webserver process.
    Server(u16),
    /// A load-generator ("network interface") PE. Load generators are
    /// pure traffic sources; they have no VPE and never issue syscalls.
    LoadGen(u16),
    /// Unused.
    Idle,
}

/// The machine layout: who lives where.
#[derive(Debug, Clone)]
pub struct Topology {
    /// PE → kernel mapping.
    pub membership: MembershipTable,
    /// Role of every PE.
    pub roles: Vec<Role>,
    /// VPE → PE directory (services first, then clients, then servers).
    pub vpe_dir: Vec<PeId>,
    /// PEs of the service instances, by service index.
    pub service_pes: Vec<PeId>,
    /// PEs of the clients, by client index.
    pub client_pes: Vec<PeId>,
    /// PEs of the webserver processes, by server index.
    pub server_pes: Vec<PeId>,
    /// PEs of the load generators, by generator index.
    pub loadgen_pes: Vec<PeId>,
    /// VPE ids of the service instances.
    pub service_vpes: Vec<VpeId>,
    /// VPE ids of the clients.
    pub client_vpes: Vec<VpeId>,
    /// VPE ids of the webservers.
    pub server_vpes: Vec<VpeId>,
}

impl Topology {
    /// Builds a layout for `clients` application instances, `servers`
    /// webservers, and `loadgens` load generators on top of `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not have enough PEs.
    pub fn build(cfg: &MachineConfig, clients: u32, servers: u16, loadgens: u16) -> Topology {
        cfg.validate().unwrap_or_else(|e| panic!("invalid config: {e}"));
        let membership = MembershipTable::contiguous(cfg.num_pes, cfg.kernels);
        let mut roles = vec![Role::Idle; cfg.num_pes as usize];
        for k in 0..cfg.kernels {
            let pe = membership.kernel_pe(KernelId(k));
            roles[pe.idx()] = Role::Kernel(KernelId(k));
        }

        // Free PEs per group, in PE order (deterministic).
        let mut free: Vec<Vec<PeId>> = (0..cfg.kernels)
            .map(|k| {
                membership
                    .group_pes(KernelId(k))
                    .filter(|pe| roles[pe.idx()] == Role::Idle)
                    .collect()
            })
            .collect();
        // Pop from the front for locality with the kernel PE.
        for f in &mut free {
            f.reverse();
        }
        let mut take_from_group = |g: usize, roles: &mut Vec<Role>, role: Role| -> PeId {
            let pe = match free[g].pop() {
                Some(pe) => pe,
                None => {
                    // Group full: steal from the least-loaded other group.
                    let (gi, len) = free
                        .iter()
                        .enumerate()
                        .map(|(i, v)| (i, v.len()))
                        .max_by_key(|(_, len)| *len)
                        .expect("at least one group");
                    assert!(len > 0, "machine out of PEs");
                    free[gi].pop().expect("checked non-empty")
                }
            };
            roles[pe.idx()] = role;
            pe
        };

        let mut vpe_dir = Vec::new();
        let mut service_pes = Vec::new();
        let mut service_vpes = Vec::new();
        for s in 0..cfg.services {
            let g = (s % cfg.kernels) as usize;
            let pe = take_from_group(g, &mut roles, Role::Service(s));
            let vpe = VpeId(vpe_dir.len() as u16);
            vpe_dir.push(pe);
            service_pes.push(pe);
            service_vpes.push(vpe);
        }
        let mut client_pes = Vec::new();
        let mut client_vpes = Vec::new();
        for c in 0..clients {
            let g = (c % cfg.kernels as u32) as usize;
            let pe = take_from_group(g, &mut roles, Role::Client(c));
            let vpe = VpeId(vpe_dir.len() as u16);
            vpe_dir.push(pe);
            client_pes.push(pe);
            client_vpes.push(vpe);
        }
        let mut server_pes = Vec::new();
        let mut server_vpes = Vec::new();
        for s in 0..servers {
            let g = (s % cfg.kernels) as usize;
            let pe = take_from_group(g, &mut roles, Role::Server(s));
            let vpe = VpeId(vpe_dir.len() as u16);
            vpe_dir.push(pe);
            server_pes.push(pe);
            server_vpes.push(vpe);
        }
        let mut loadgen_pes = Vec::new();
        for l in 0..loadgens {
            let g = (l % cfg.kernels) as usize;
            let pe = take_from_group(g, &mut roles, Role::LoadGen(l));
            loadgen_pes.push(pe);
        }

        Topology {
            membership,
            roles,
            vpe_dir,
            service_pes,
            client_pes,
            server_pes,
            loadgen_pes,
            service_vpes,
            client_vpes,
            server_vpes,
        }
    }

    /// The kernel managing a PE.
    pub fn kernel_of(&self, pe: PeId) -> KernelId {
        self.membership.kernel_of(pe)
    }

    /// Number of PEs consumed by the OS (kernels + services) — the
    /// denominator adjustment of the paper's *system efficiency*
    /// (Figure 9).
    pub fn os_pes(&self) -> usize {
        self.membership.kernel_count() + self.service_pes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kernels: u16, services: u16) -> MachineConfig {
        let mut c = MachineConfig::paper_testbed(kernels, services);
        c.num_pes = 640;
        c
    }

    #[test]
    fn kernels_sit_at_group_starts() {
        let t = Topology::build(&cfg(4, 4), 16, 0, 0);
        assert_eq!(t.roles[0], Role::Kernel(KernelId(0)));
        assert_eq!(t.roles[160], Role::Kernel(KernelId(1)));
    }

    #[test]
    fn services_spread_across_groups() {
        let t = Topology::build(&cfg(4, 8), 0, 0, 0);
        let groups: Vec<KernelId> = t.service_pes.iter().map(|pe| t.kernel_of(*pe)).collect();
        // 8 services over 4 kernels → 2 per group.
        for k in 0..4u16 {
            assert_eq!(groups.iter().filter(|g| **g == KernelId(k)).count() as u16, 2);
        }
    }

    #[test]
    fn clients_get_unique_pes_and_vpes() {
        let t = Topology::build(&cfg(8, 8), 128, 0, 0);
        let mut pes: Vec<PeId> = t.client_pes.clone();
        pes.sort();
        pes.dedup();
        assert_eq!(pes.len(), 128);
        assert_eq!(t.client_vpes.len(), 128);
        assert_eq!(t.vpe_dir.len(), 8 + 128);
    }

    #[test]
    fn servers_and_loadgens_allocated() {
        let t = Topology::build(&cfg(8, 8), 0, 32, 8);
        assert_eq!(t.server_pes.len(), 32);
        assert_eq!(t.loadgen_pes.len(), 8);
        assert_eq!(t.os_pes(), 8 + 8);
    }

    #[test]
    #[should_panic(expected = "out of PEs")]
    fn overflow_panics() {
        let mut c = MachineConfig::small();
        c.num_pes = 8;
        c.mesh_width = 3;
        let _ = Topology::build(&c, 32, 0, 0);
    }
}
