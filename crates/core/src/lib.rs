//! SemperOS reproduction — the assembled system.
//!
//! This crate wires the substrates together into a runnable machine:
//! the deterministic simulator (`semper-sim`), the NoC/DTU hardware
//! model (`semper-noc`), the multikernel with its distributed capability
//! protocol (`semper-kernel`), the m3fs service (`semper-m3fs`), and the
//! application workloads (`semper-apps`).
//!
//! * [`topology`] — PE-role assignment: kernels, services, clients,
//!   webservers, load generators.
//! * [`machine`] — the timed event loop: message delivery, per-PE busy
//!   time (kernel serialization!), boot sequencing.
//! * [`experiment`] — the experiment drivers used by the benchmark
//!   harness: capability-operation microbenchmarks (Table 3, Figures
//!   4-5), application runs with parallel efficiency (Table 4, Figures
//!   6-9), and the Nginx throughput experiment (Figure 10).
//! * [`pool`] — a reusable machine pool so figure benches stop paying
//!   machine construction per measurement.
//! * [`runner`] — parallel execution of *independent* machines on
//!   worker threads with a deterministic, submission-ordered merge.
//!
//! # Quick example
//!
//! ```
//! use semperos::experiment::{self, MicroMachine};
//! use semper_base::{KernelMode, MachineConfig};
//!
//! // Measure one group-local capability exchange, as in Table 3.
//! let mut m = MicroMachine::new(1, 2, KernelMode::SemperOS);
//! let cycles = m.measure_exchange_local();
//! assert!(cycles > 0);
//! # let _ = MachineConfig::small();
//! ```

pub mod experiment;
pub mod machine;
pub mod pool;
pub mod runner;
pub mod topology;

pub use experiment::{AppRunResult, MicroMachine, NginxResult};
pub use machine::{Machine, Node, Workload};
pub use pool::{MachinePool, SharedMachinePool};
pub use runner::{Job, Runner};
pub use topology::{Role, Topology};
