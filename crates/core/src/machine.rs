//! The timed machine: event loop, busy-time modeling, boot sequencing.
//!
//! Every PE hosts one [`Node`]. Messages pop from the deterministic
//! event queue in delivery order; a node that is still executing a
//! previous handler delays delivery until it is free — this per-PE
//! serialization is what makes kernels the contention points whose
//! behaviour the paper measures (parallel efficiency drops as more
//! instances share a kernel).

use std::collections::{BTreeMap, BTreeSet};

use semper_apps::client::ClientPhase;
use semper_apps::{AppClient, LoadGen, NginxServer, Trace};
use semper_base::msg::{Outbox, Payload, SysReply, Upcall, UpcallReply};
use semper_base::{Code, Error, KernelId, MachineConfig, Msg, PeId, VpeId};
use semper_kernel::{Kernel, KernelStats};
use semper_m3fs::{FsImage, FsService, FsSpec, M3FS_NAME};
use semper_noc::{GlobalMemory, Mesh, Noc};
use semper_sim::{Cycles, FaultPlan, FaultStats, NetVerdict, PeSchedule};

use crate::topology::{Role, Topology};

/// A stub VPE used by the microbenchmarks: accepts every exchange and
/// collects system-call replies.
#[derive(Debug, Default)]
pub struct StubVpe {
    /// The last system-call reply received, with its delivery time.
    pub last_reply: Option<(SysReply, Cycles)>,
}

/// What runs on one PE.
pub enum Node {
    /// A kernel instance.
    Kernel(Box<Kernel>),
    /// An m3fs instance.
    Service(Box<FsService>),
    /// An application benchmark instance.
    Client(Box<AppClient>),
    /// An Nginx webserver process.
    Server(Box<NginxServer>),
    /// A load generator.
    LoadGen(LoadGen),
    /// A microbenchmark stub VPE.
    Stub(StubVpe),
    /// Unused PE.
    Idle,
}

/// What to populate the non-OS PEs with.
pub enum Workload {
    /// Stub VPEs on every client PE (microbenchmarks).
    Micro,
    /// One application client per trace.
    Apps(Vec<Trace>),
    /// Webservers plus closed-loop load generators.
    Nginx {
        /// Outstanding requests per (generator, server) pair.
        depth: u32,
    },
}

/// Boot stagger between client starts, in cycles. The paper replays the
/// *same* trace in every instance, started together — the resulting
/// alignment of capability-operation bursts at the kernels is the very
/// contention the evaluation measures. A small per-instance offset
/// (~launch jitter) keeps the simulation realistic without decorrelating
/// the bursts.
const CLIENT_STAGGER: u64 = 40;

/// The assembled machine.
pub struct Machine {
    cfg: MachineConfig,
    topo: Topology,
    noc: Noc,
    /// The stall-lane event schedule: global heap plus per-PE lanes for
    /// messages arriving while their destination is still executing
    /// (see [`semper_sim::sched`] for the ordering contract).
    sched: PeSchedule<Msg>,
    nodes: Vec<Node>,
    /// Per-client (start, finish) times.
    client_times: BTreeMap<u32, (Cycles, Option<Cycles>)>,
    booted_os: bool,
    /// Reusable outbox for handler output (capacity persists across
    /// events; see [`Outbox::drain_iter`]).
    scratch: Outbox,
    /// Reusable outbox for credit-return traffic, kept separate so the
    /// injection order (credits first, handler output second) is
    /// preserved exactly.
    credit_scratch: Outbox,
    /// Message-level tracing to stderr (`MACHINE_TRACE=1`), cached at
    /// build time. A diagnostics aid for stalls: prints every event as
    /// it is dispatched and every handler emission as it is scheduled,
    /// so lost-versus-parked messages can be told apart.
    trace: bool,
    /// The scripted fault plan ([`Machine::set_fault_plan`]); `None`
    /// (the default) is the fault-free machine, bit-identical to before
    /// the fault engine existed.
    fault_plan: Option<FaultPlan>,
    /// Kernels taken down by a scripted crash; traffic to their PE
    /// drops.
    dead_kernels: BTreeSet<KernelId>,
}

/// A group migration whose handover window is open: returned by
/// [`Machine::start_vpe_migration`], consumed by
/// [`Machine::finish_vpe_migration`].
#[must_use = "a started migration must be finished via finish_vpe_migration"]
pub struct MigrationTicket {
    vpe: VpeId,
    dst: KernelId,
    /// The migrating VPE's PE (re-homed at completion).
    vpe_pe: PeId,
    /// The source kernel's PE, polled for completion.
    src_pe: PeId,
    /// `migrations_out` at the source before the start was injected.
    before: u64,
    /// When the start was injected (elapsed-cycle accounting).
    start: Cycles,
}

impl Machine {
    /// Builds a machine: `cfg` hardware/OS shape, `clients`/`servers`/
    /// `loadgens` role counts, populated per `workload`.
    pub fn build(cfg: MachineConfig, clients: u32, loadgens: u16, workload: Workload) -> Machine {
        Machine::build_with_threads(cfg, clients, loadgens, workload, 1)
    }

    /// [`Machine::build`] with the construction phase spread over
    /// `threads` worker threads: the per-kernel state (capability
    /// tables, membership copy, VPE registration) is built one kernel
    /// per job, and the filesystem image — the single most expensive
    /// construction step — is built concurrently with the kernels.
    ///
    /// Construction is embarrassingly parallel per kernel: every kernel
    /// derives only from the (read-only) topology and configuration, so
    /// the built machine is identical to a serial build regardless of
    /// `threads` — pinned by
    /// `tests/determinism.rs::parallel_build_matches_serial_build`.
    /// `threads = 1` takes the inline path and spawns nothing.
    pub fn build_with_threads(
        cfg: MachineConfig,
        clients: u32,
        loadgens: u16,
        workload: Workload,
        threads: usize,
    ) -> Machine {
        let nginx_depth = match &workload {
            Workload::Nginx { depth } => Some(*depth),
            _ => None,
        };
        let servers = if nginx_depth.is_some() { clients as u16 } else { 0 };
        let app_clients = if nginx_depth.is_some() { 0 } else { clients };
        let topo = Topology::build(&cfg, app_clients, servers, loadgens);
        let noc = Noc::new(Mesh::new(cfg.mesh_width), cfg.cost);

        // Per-kernel VPE registration lists, in VPE order — the same
        // relative order per kernel the single sweep over `vpe_dir`
        // produced, so a kernel built from its list is identical.
        let mut per_kernel_vpes: Vec<Vec<(VpeId, PeId)>> = vec![Vec::new(); cfg.kernels as usize];
        for (vpe_idx, pe) in topo.vpe_dir.iter().enumerate() {
            let k = topo.membership.kernel_of(*pe);
            per_kernel_vpes[k.idx()].push((VpeId(vpe_idx as u16), *pe));
        }
        // One kernel with its disjoint 1 TiB memory partition, its VPEs
        // registered and the directory installed. Reads only `cfg` and
        // `topo`; safe to run on any worker.
        let build_kernel = |k: usize, vpes: Vec<(VpeId, PeId)>| -> Kernel {
            let mem = GlobalMemory::new(((k as u64) + 1) << 40, 1 << 40);
            let mut kernel =
                Kernel::new(KernelId(k as u16), cfg.clone(), topo.membership.clone(), mem);
            for (vpe, pe) in vpes {
                kernel.add_vpe(vpe, pe);
            }
            kernel.set_vpe_dir(topo.vpe_dir.clone());
            kernel
        };

        // The filesystem image shared by all service instances via `Arc`
        // (each instance clones its private copy lazily on first
        // metadata write — copy-on-write keeps the paper's
        // per-instance-copy semantics while machine build pays for one
        // image instead of one per service). Built lazily: micro-
        // benchmark machines host no services, and the image build
        // dominated their construction cost (the figure benches build
        // machines per measurement). In a parallel build it is known
        // up-front whether services exist, so the image builds on its
        // own worker while the kernels build on the rest.
        let mut image_parts: Option<(std::sync::Arc<FsImage>, u64)> = None;
        let kernels: Vec<Kernel> = if threads > 1 {
            let runner = crate::runner::Runner::new(threads);
            std::thread::scope(|s| {
                let image =
                    (cfg.services > 0).then(|| s.spawn(|| build_image(app_clients.max(clients))));
                let jobs: Vec<(usize, Vec<(VpeId, PeId)>)> =
                    per_kernel_vpes.drain(..).enumerate().collect();
                let kernels = runner.map(jobs, |_, (k, vpes)| build_kernel(k, vpes));
                if let Some(handle) = image {
                    image_parts = Some(handle.join().expect("image build worker"));
                }
                kernels
            })
        } else {
            per_kernel_vpes.drain(..).enumerate().map(|(k, vpes)| build_kernel(k, vpes)).collect()
        };
        let mut kernels: BTreeMap<u16, Kernel> =
            kernels.into_iter().map(|k| (k.id().0, k)).collect();

        let mut nodes: Vec<Node> = Vec::with_capacity(cfg.num_pes as usize);
        let mut trace_iter = match workload {
            Workload::Apps(traces) => {
                assert_eq!(traces.len() as u32, app_clients, "one trace per client");
                Some(traces.into_iter())
            }
            _ => None,
        };
        for pe in 0..cfg.num_pes {
            let pe = PeId(pe);
            let node = match topo.roles[pe.idx()] {
                Role::Kernel(k) => {
                    Node::Kernel(Box::new(kernels.remove(&k.0).expect("each kernel used once")))
                }
                Role::Service(s) => {
                    let vpe = topo.service_vpes[s as usize];
                    let kernel_pe = topo.membership.kernel_pe(topo.kernel_of(pe));
                    let (image, region_size) =
                        image_parts.get_or_insert_with(|| build_image(app_clients.max(clients)));
                    let mut svc = FsService::new(
                        vpe,
                        pe,
                        kernel_pe,
                        cfg.cost,
                        std::sync::Arc::clone(image),
                        *region_size,
                    );
                    // The service-side half of syscall batching: close
                    // one file = one batched revoke of its extents.
                    svc.set_batched_ops(cfg.has_feature(semper_base::Feature::SyscallBatching));
                    // The service-side half of promise IPC: close one
                    // file = pipelined async revokes, tail-waited.
                    svc.set_pipelined_ops(cfg.has_feature(semper_base::Feature::PromiseIpc));
                    Node::Service(Box::new(svc))
                }
                Role::Client(c) => {
                    let vpe = topo.client_vpes[c as usize];
                    let kernel_pe = topo.membership.kernel_pe(topo.kernel_of(pe));
                    match &mut trace_iter {
                        Some(it) => {
                            let trace = it.next().expect("trace per client");
                            Node::Client(Box::new(AppClient::new(
                                vpe, pe, kernel_pe, cfg.cost, M3FS_NAME, trace,
                            )))
                        }
                        None => Node::Stub(StubVpe::default()),
                    }
                }
                Role::Server(s) => {
                    let vpe = topo.server_vpes[s as usize];
                    let kernel_pe = topo.membership.kernel_pe(topo.kernel_of(pe));
                    Node::Server(Box::new(NginxServer::new(
                        vpe, pe, kernel_pe, cfg.cost, M3FS_NAME,
                    )))
                }
                Role::LoadGen(l) => {
                    // Targets assigned at boot (round-robin share of the
                    // servers).
                    let _ = l;
                    Node::LoadGen(LoadGen::new(pe, Vec::new(), 0))
                }
                Role::Idle => Node::Idle,
            };
            nodes.push(node);
        }

        let sched = PeSchedule::new(cfg.num_pes as usize);
        let mut m = Machine {
            cfg,
            topo,
            noc,
            sched,
            nodes,
            client_times: BTreeMap::new(),
            booted_os: false,
            scratch: Outbox::new(),
            credit_scratch: Outbox::new(),
            trace: std::env::var_os("MACHINE_TRACE").is_some(),
            fault_plan: None,
            dead_kernels: BTreeSet::new(),
        };
        if let Some(depth) = nginx_depth {
            m.assign_loadgen_targets(depth);
        }
        m
    }

    /// Assigns each load generator its round-robin share of the servers
    /// in place (no per-generator `Vec` churn; the generators reuse
    /// their target buffers).
    fn assign_loadgen_targets(&mut self, depth: u32) {
        let gens = std::mem::take(&mut self.topo.loadgen_pes);
        if gens.is_empty() {
            return;
        }
        for (i, pe) in gens.iter().enumerate() {
            let servers = &self.topo.server_pes;
            if let Node::LoadGen(lg) = &mut self.nodes[pe.idx()] {
                lg.set_targets(
                    servers
                        .iter()
                        .enumerate()
                        .filter(|(s, _)| s % gens.len() == i)
                        .map(|(_, p)| *p),
                    depth,
                );
            }
        }
        self.topo.loadgen_pes = gens;
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The topology.
    pub fn topo(&self) -> &Topology {
        &self.topo
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.sched.now()
    }

    /// Events processed so far.
    pub fn events(&self) -> u64 {
        self.sched.processed()
    }

    // ----- event loop -----------------------------------------------------

    /// Injects messages into the NoC. Messages without an offset leave
    /// when the handler completes (`end`); messages with an offset leave
    /// that many cycles after the handler started (`start`) — the
    /// pipelined sends of loop-heavy handlers like the revocation
    /// fan-out.
    fn send_batch(&mut self, msgs: Vec<(Msg, Option<u64>)>, start: Cycles, end: Cycles) {
        for (m, off) in msgs {
            let at = match off {
                None => end,
                Some(o) => (start + o).min(end),
            };
            let delivery = self.noc.route(&m, at);
            let dst = m.dst.idx();
            self.sched.schedule(delivery, dst, m);
        }
    }

    /// Injects messages into the NoC at time `at`.
    fn send_at(&mut self, msgs: Vec<(Msg, Option<u64>)>, at: Cycles) {
        self.send_batch(msgs, at, at);
    }

    /// Processes one event; returns false when the queue is empty.
    ///
    /// Messages for a PE that is still executing park in that PE's
    /// stall lane inside [`PeSchedule`]; `pop_ready` hands back only
    /// messages whose PE is free at their delivery time, in the exact
    /// order the old requeue-retry loop produced.
    pub fn step(&mut self) -> bool {
        self.step_bounded(None)
    }

    /// [`Machine::step`] with an optional delivery deadline: heap
    /// entries after `deadline` are not popped, so a stalled message
    /// whose PE frees beyond the deadline stays parked instead of
    /// running its handler early — exactly where the old retry loop
    /// stopped when its requeued entry landed past the deadline.
    fn step_bounded(&mut self, deadline: Option<Cycles>) -> bool {
        let popped = match deadline {
            None => self.sched.pop_ready(),
            Some(d) => self.sched.pop_ready_before(d),
        };
        let Some((t, pe, msg)) = popped else { return false };
        // The fault plan's NoC-boundary verdicts (see `semper_sim::faults`)
        // apply at delivery: drop, duplicate, re-delay, or kill traffic
        // to a crashed island. `None` verdict = deliver normally.
        if self.fault_plan.is_some() && !self.deliver_verdict(t, pe, &msg) {
            return true;
        }
        if self.trace {
            eprintln!("[{t}] {} -> {} (pe {pe}): {:?}", msg.src, msg.dst, msg.payload);
        }
        debug_assert!(self.scratch.is_empty() && self.credit_scratch.is_empty());
        let cost = match &mut self.nodes[pe] {
            Node::Kernel(k) => k.handle(&msg, &mut self.scratch),
            Node::Service(s) => s.handle(&msg, &mut self.scratch),
            Node::Client(c) => c.handle(&msg, &mut self.scratch),
            Node::Server(s) => s.handle(&msg, &mut self.scratch),
            Node::LoadGen(l) => l.handle(&msg, &mut self.scratch),
            Node::Stub(stub) => handle_stub(stub, &msg, &mut self.scratch, t, &self.cfg.cost),
            Node::Idle => 0,
        };
        let end = t + cost;
        self.sched.set_busy(pe, end);
        if self.fault_plan.is_some() {
            if let Node::Kernel(k) = &self.nodes[pe] {
                if k.crashed() {
                    // The scripted crash point fired inside this handler:
                    // the island dies with the handler's output unsent,
                    // and every survivor runs peer-death detection.
                    let dead = k.id();
                    self.scratch.drain_iter().for_each(drop);
                    self.kernel_down(dead, end);
                    return true;
                }
            }
        }
        // DTU slot tracking (§4.1): consuming an inter-kernel request
        // frees the slot, returning the sender's credit. This is a
        // hardware-level exchange, so it does not occupy the sender's
        // kernel CPU. Credit traffic is injected before the handler's
        // output, as it was when each used a throwaway outbox.
        if matches!(msg.payload, Payload::Kcall(_)) {
            let dst_kernel = self.topo.kernel_of(msg.dst);
            let src_pe = msg.src.idx();
            if let Node::Kernel(k) = &mut self.nodes[src_pe] {
                k.return_credit(&mut self.credit_scratch, dst_kernel);
            }
            for (m, _) in self.credit_scratch.drain_iter() {
                let delivery = self.noc.route(&m, t);
                let dst = m.dst.idx();
                self.sched.schedule(delivery, dst, m);
            }
        }
        // Record client completion.
        if let (Role::Client(c), Node::Client(client)) = (self.topo.roles[pe], &self.nodes[pe]) {
            match client.phase() {
                ClientPhase::Done => {
                    if let Some(entry) = self.client_times.get_mut(&c) {
                        entry.1.get_or_insert(end);
                    }
                }
                ClientPhase::Failed(e) => {
                    panic!("client {c} failed: {e}");
                }
                _ => {}
            }
        }
        for (m, off) in self.scratch.drain_iter() {
            let at = match off {
                None => end,
                Some(o) => (t + o).min(end),
            };
            let delivery = self.noc.route(&m, at);
            let dst = m.dst.idx();
            if self.trace {
                eprintln!(
                    "  [emit@{at} deliver@{delivery}] {} -> {}: {:?}",
                    m.src, m.dst, m.payload
                );
            }
            self.sched.schedule(delivery, dst, m);
        }
        if self.fault_plan.is_some() {
            self.poll_fault_deadlines(end);
        }
        true
    }

    /// Runs until no events remain; returns the final time. Under a
    /// fault plan, "no events" additionally requires every pending-op
    /// deadline to have fired: a faulted run is only over once every
    /// operation completed or aborted.
    pub fn run_until_idle(&mut self) -> Cycles {
        loop {
            while self.step() {}
            if !self.pump_fault_deadlines(None) {
                break;
            }
        }
        self.sched.now()
    }

    /// Runs until the next event would be after `deadline` (events at
    /// exactly `deadline` are processed; messages stalled behind a PE
    /// that only frees after the deadline are left parked).
    pub fn run_until(&mut self, deadline: Cycles) {
        loop {
            while self.step_bounded(Some(deadline)) {}
            if !self.pump_fault_deadlines(Some(deadline)) {
                break;
            }
        }
    }

    /// Advances simulated time to (at least) `horizon` and returns the
    /// base for the caller's next wait: `max(horizon, now())`.
    ///
    /// This codifies the PR 7 lesson on wait windows: `Machine::now()`
    /// only advances when an event is processed, so a wait loop that
    /// recomputes `run_until(now() + window)` livelocks as soon as the
    /// next event lies beyond the window — `now()` never moves, the
    /// horizon never reaches the event. Callers instead thread the
    /// *returned* horizon through consecutive waits:
    ///
    /// ```text
    /// let mut horizon = m.now();
    /// while !condition(&m) {
    ///     horizon = m.advance_until(horizon + WINDOW);
    /// }
    /// ```
    ///
    /// Each wait moves the absolute horizon forward by `WINDOW` even
    /// when no event lands inside it, so a future event is always
    /// reached after finitely many waits. A horizon in the past is a
    /// no-op that returns `now()` (the clamp that makes interleaved
    /// unbounded runs — e.g. `finish_vpe_migration` — safe).
    pub fn advance_until(&mut self, horizon: Cycles) -> Cycles {
        let horizon = horizon.max(self.sched.now());
        self.run_until(horizon);
        horizon.max(self.sched.now())
    }

    // ----- fault injection --------------------------------------------------

    /// Arms a scripted fault plan (see `semper_sim::faults`): the plan's
    /// NoC verdicts apply to every inter-kernel message at delivery
    /// (drop / duplicate / delay / one-way partition, with the plan's
    /// `now` being the delivery cycle), scripted crash points are
    /// installed, and every kernel runs fault-tolerant with
    /// per-pending-op deadlines of `deadline_budget` cycles. Must be
    /// armed before the faulted workload starts; without a plan the
    /// machine is bit-identical to one built before the fault engine
    /// existed.
    pub fn set_fault_plan(&mut self, plan: FaultPlan, deadline_budget: u64) {
        for pe in 0..self.cfg.num_pes {
            if let Node::Kernel(k) = &mut self.nodes[pe as usize] {
                k.enable_fault_injection(deadline_budget);
                let points = plan.crash_points(k.id().0);
                if !points.is_empty() {
                    k.arm_crash_points(points);
                }
            }
        }
        self.fault_plan = Some(plan);
    }

    /// The armed plan's NoC-level fault counters, if a plan is set.
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.fault_plan.as_ref().map(|p| p.stats())
    }

    /// Kernels taken down by scripted crashes.
    pub fn dead_kernels(&self) -> &BTreeSet<KernelId> {
        &self.dead_kernels
    }

    /// Asserts that every surviving kernel reached true quiescence
    /// (empty pending-op ledger, no open migration windows, no sweep
    /// partitions, no leaked waiters, no credit-stalled requests) — the
    /// termination property of the fault engine. Call after
    /// [`Machine::run_until_idle`].
    pub fn assert_quiescent(&self) {
        for pe in 0..self.cfg.num_pes {
            if let Node::Kernel(k) = &self.nodes[pe as usize] {
                if self.dead_kernels.contains(&k.id()) {
                    continue;
                }
                k.check_quiescent().unwrap_or_else(|e| panic!("not quiescent: {e}"));
            }
        }
    }

    /// The kernel hosted on `pe`, if that PE is a kernel PE.
    fn kernel_role(&self, pe: PeId) -> Option<KernelId> {
        match self.topo.roles.get(pe.idx()) {
            Some(Role::Kernel(k)) => Some(*k),
            _ => None,
        }
    }

    /// Applies the fault plan to one popped event. Returns true when the
    /// message should be delivered normally; false when the fault path
    /// consumed it (dropped, delayed, or addressed to a dead island).
    fn deliver_verdict(&mut self, t: Cycles, pe: usize, msg: &Msg) -> bool {
        let dst_kernel = self.kernel_role(msg.dst);
        // Traffic to a crashed island vanishes. A request's DTU slot at
        // the dead end is gone with it; release the sender's credit so
        // its queue towards the corpse keeps draining (those ops abort
        // via peer-death or their deadlines).
        if let Some(dk) = dst_kernel {
            if self.dead_kernels.contains(&dk) {
                self.return_credit_faulted(msg, t);
                return false;
            }
        }
        // The plan's verdicts apply to the inter-kernel NoC boundary
        // only: requests and replies between two kernel islands.
        let (Some(from), Some(to)) = (self.kernel_role(msg.src), dst_kernel) else {
            return true;
        };
        if !matches!(msg.payload, Payload::Kcall(_) | Payload::KReply(_)) {
            return true;
        }
        let verdict = match self.fault_plan.as_mut() {
            Some(p) => p.verdict(from.0, to.0, t.0),
            None => NetVerdict::Deliver,
        };
        match verdict {
            NetVerdict::Deliver => true,
            NetVerdict::Drop => {
                // Lost *after* the wire: the slot counts as consumed so
                // credit accounting cannot deadlock the sender.
                self.return_credit_faulted(msg, t);
                false
            }
            NetVerdict::Duplicate => {
                // Deliver now and once more later; the copy takes its
                // own verdict when it surfaces.
                self.sched.schedule(t, pe, msg.clone());
                true
            }
            NetVerdict::Delay(d) => {
                self.sched.schedule(t + d, pe, msg.clone());
                false
            }
        }
    }

    /// Releases the sender's DTU credit for a request that was dropped
    /// instead of delivered, injecting whatever queued traffic the
    /// freed slot releases.
    fn return_credit_faulted(&mut self, msg: &Msg, at: Cycles) {
        if !matches!(msg.payload, Payload::Kcall(_)) {
            return;
        }
        let Some(from) = self.kernel_role(msg.src) else { return };
        let Some(to) = self.kernel_role(msg.dst) else { return };
        if self.dead_kernels.contains(&from) {
            return;
        }
        debug_assert!(self.credit_scratch.is_empty());
        if let Node::Kernel(k) = &mut self.nodes[msg.src.idx()] {
            k.return_credit(&mut self.credit_scratch, to);
        }
        for (m, _) in self.credit_scratch.drain_iter() {
            let delivery = self.noc.route(&m, at);
            let dst = m.dst.idx();
            self.sched.schedule(delivery, dst, m);
        }
    }

    /// Takes a crashed kernel down: marks it dead and runs peer-death
    /// detection on every survivor (in kernel-id order), so their
    /// in-flight operations towards the corpse abort.
    fn kernel_down(&mut self, dead: KernelId, at: Cycles) {
        self.dead_kernels.insert(dead);
        for k in 0..self.cfg.kernels {
            let k = KernelId(k);
            if self.dead_kernels.contains(&k) {
                continue;
            }
            let pe = self.topo.membership.kernel_pe(k);
            let mut out = Outbox::new();
            if let Node::Kernel(kn) = &mut self.nodes[pe.idx()] {
                kn.peer_down(dead, &mut out);
            }
            self.send_at(out.drain(), at);
        }
    }

    /// Runs every surviving kernel's deadline poll at fault-clock `at`
    /// (in kernel-id order) and injects whatever the aborts produced.
    fn poll_fault_deadlines(&mut self, at: Cycles) {
        for k in 0..self.cfg.kernels {
            let k = KernelId(k);
            if self.dead_kernels.contains(&k) {
                continue;
            }
            let pe = self.topo.membership.kernel_pe(k);
            let mut out = Outbox::new();
            let crashed = match &mut self.nodes[pe.idx()] {
                Node::Kernel(kn) => {
                    kn.poll_faults(at.0, &mut out);
                    kn.crashed()
                }
                _ => false,
            };
            if crashed {
                // A crash point on an abort path (e.g. a re-park).
                drop(out);
                self.kernel_down(k, at);
                continue;
            }
            self.send_at(out.drain(), at);
        }
    }

    /// With the event queue quiet, jumps the fault clock to the earliest
    /// armed pending-op deadline (within `horizon`, if given) and fires
    /// it, so starved operations abort instead of hanging the run.
    /// Returns true when a deadline fired (the caller keeps stepping);
    /// always false without a fault plan.
    fn pump_fault_deadlines(&mut self, horizon: Option<Cycles>) -> bool {
        if self.fault_plan.is_none() {
            return false;
        }
        let mut next: Option<u64> = None;
        for k in 0..self.cfg.kernels {
            let k = KernelId(k);
            if self.dead_kernels.contains(&k) {
                continue;
            }
            let pe = self.topo.membership.kernel_pe(k);
            if let Node::Kernel(kn) = &self.nodes[pe.idx()] {
                if let Some(d) = kn.next_fault_deadline() {
                    next = Some(next.map_or(d, |n| n.min(d)));
                }
            }
        }
        let Some(deadline) = next else { return false };
        if let Some(h) = horizon {
            if deadline > h.0 {
                return false;
            }
        }
        let at = Cycles(deadline).max(self.sched.now());
        self.poll_fault_deadlines(at);
        true
    }

    // ----- boot ------------------------------------------------------------

    /// Boots the OS services and waits for them to become ready.
    pub fn boot_os(&mut self) {
        assert!(!self.booted_os, "boot_os called twice");
        self.booted_os = true;
        let pes = self.topo.service_pes.clone();
        for (i, pe) in pes.iter().enumerate() {
            let at = self.sched.now() + (i as u64) * 200;
            let mut out = Outbox::new();
            let cost = match &mut self.nodes[pe.idx()] {
                Node::Service(s) => s.boot(&mut out),
                _ => unreachable!("service PE hosts a service"),
            };
            self.sched.extend_busy(pe.idx(), at + cost);
            self.send_at(out.drain(), at + cost);
        }
        self.run_until_idle();
        for pe in &self.topo.service_pes {
            if let Node::Service(s) = &self.nodes[pe.idx()] {
                assert!(s.ready(), "service on {pe} failed to boot");
            }
        }
    }

    /// Starts all application clients (staggered); returns the base
    /// start time.
    pub fn start_clients(&mut self) -> Cycles {
        assert!(self.booted_os, "boot_os first");
        let base = self.sched.now();
        let pes = self.topo.client_pes.clone();
        for (i, pe) in pes.iter().enumerate() {
            let at = base + (i as u64) * CLIENT_STAGGER;
            let mut out = Outbox::new();
            let cost = match &mut self.nodes[pe.idx()] {
                Node::Client(c) => c.boot(&mut out),
                Node::Stub(_) => continue,
                _ => unreachable!("client PE hosts a client"),
            };
            self.client_times.insert(i as u32, (at, None));
            self.sched.extend_busy(pe.idx(), at + cost);
            self.send_at(out.drain(), at + cost);
        }
        base
    }

    /// Boots the Nginx servers, waits for their sessions, then starts
    /// the load generators.
    pub fn start_nginx(&mut self) {
        assert!(self.booted_os, "boot_os first");
        let pes = self.topo.server_pes.clone();
        for (i, pe) in pes.iter().enumerate() {
            let at = self.sched.now() + (i as u64) * 200;
            let mut out = Outbox::new();
            let cost = match &mut self.nodes[pe.idx()] {
                Node::Server(s) => s.boot(&mut out),
                _ => unreachable!("server PE hosts a server"),
            };
            self.sched.extend_busy(pe.idx(), at + cost);
            self.send_at(out.drain(), at + cost);
        }
        self.run_until_idle();
        let gens = self.topo.loadgen_pes.clone();
        for pe in gens {
            let mut out = Outbox::new();
            if let Node::LoadGen(lg) = &mut self.nodes[pe.idx()] {
                lg.boot(&mut out);
            }
            let at = self.sched.now();
            self.send_at(out.drain(), at);
        }
    }

    // ----- capability-group migration (machine control) --------------------

    /// Migrates `vpe`'s capability group to kernel `dst` and runs the
    /// machine until the handover completes (install at the destination,
    /// record handover, membership acks from every bystander kernel —
    /// see `semper_kernel::ops::migrate`). Returns the elapsed simulated
    /// cycles.
    ///
    /// The group need not be quiescent: the source holds or forwards
    /// operations that race the handover window, so this can be called
    /// while clients are mid-trace. If the group is busy when the
    /// migration is requested, the start retries (bounded) while
    /// in-flight operations referencing the group drain. Events not on
    /// the migration's critical path stay queued — the caller's workload
    /// keeps running.
    ///
    /// # Errors
    ///
    /// Returns the kernel's refusal when the source rejects the start
    /// (service VPE, active endpoints, a capability under revocation
    /// that never drains) or the destination rejects the install; on
    /// error the group stays at the source with membership untouched.
    ///
    /// # Panics
    ///
    /// Panics if the VPE is already in `dst`'s group.
    pub fn migrate_vpe(&mut self, vpe: VpeId, dst: KernelId) -> Result<u64, Error> {
        let ticket = self.start_vpe_migration(vpe, dst)?;
        self.finish_vpe_migration(ticket)
    }

    /// Opens the handover window for `vpe`'s group without driving it to
    /// completion: injects the migration start at the source kernel and
    /// returns a ticket for [`Machine::finish_vpe_migration`]. Between
    /// the two calls the caller may keep running the machine — traffic
    /// that races the open window rides the source kernel's hold queue
    /// or is forwarded (see `semper_kernel::ops::migrate`), which is how
    /// benchmarks exercise non-quiescent handovers under live load.
    ///
    /// The start retries (bounded) while in-flight operations still
    /// reference the group, draining one event per retry; validation is
    /// side-effect free, so a refused attempt leaves no trace.
    ///
    /// # Errors
    ///
    /// Returns the source kernel's refusal (service VPE, active
    /// endpoints, a capability under revocation that never drains).
    ///
    /// # Panics
    ///
    /// Panics if the VPE is already in `dst`'s group.
    pub fn start_vpe_migration(
        &mut self,
        vpe: VpeId,
        dst: KernelId,
    ) -> Result<MigrationTicket, Error> {
        let pe = self.topo.vpe_dir[vpe.idx()];
        let src_kernel = self.topo.kernel_of(pe);
        assert_ne!(src_kernel, dst, "{vpe} is already in {dst}'s group");
        let src_pe = self.topo.membership.kernel_pe(src_kernel);
        let mut out = Outbox::new();
        let mut retries = 0u32;
        let (start, cost) = loop {
            let start = self.sched.now().max(self.sched.busy_until(src_pe.idx()));
            let res = match &mut self.nodes[src_pe.idx()] {
                Node::Kernel(k) => k.start_group_migration(vpe, dst, &mut out),
                _ => unreachable!("kernel PE hosts a kernel"),
            };
            match res {
                Ok(cost) => break (start, cost),
                Err(e) if e.code() == Code::RevokeInProgress && retries < 4096 => {
                    retries += 1;
                    if !self.step() {
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        };
        self.sched.extend_busy(src_pe.idx(), start + cost);
        self.send_at(out.drain(), start + cost);
        let before = match &self.nodes[src_pe.idx()] {
            Node::Kernel(k) => k.stats().migrations_out,
            _ => unreachable!("kernel PE hosts a kernel"),
        };
        Ok(MigrationTicket { vpe, dst, vpe_pe: pe, src_pe, before, start })
    }

    /// Drives a migration started by [`Machine::start_vpe_migration`] to
    /// completion (install at the destination, record handover,
    /// membership acks from every bystander kernel), then re-homes
    /// machine-level routing. Returns the simulated cycles elapsed since
    /// the start was injected — including any window the caller ran
    /// between the two calls.
    ///
    /// # Errors
    ///
    /// Returns the install-side failure; the group stays at the source
    /// with membership untouched.
    pub fn finish_vpe_migration(&mut self, ticket: MigrationTicket) -> Result<u64, Error> {
        let MigrationTicket { vpe, dst, vpe_pe: pe, src_pe, before, start } = ticket;
        loop {
            let (failure, done) = match &mut self.nodes[src_pe.idx()] {
                Node::Kernel(k) => {
                    (k.take_migration_failure(vpe), k.stats().migrations_out > before)
                }
                _ => unreachable!("kernel PE hosts a kernel"),
            };
            if let Some(e) = failure {
                return Err(e);
            }
            if done {
                break;
            }
            if !self.step() && !self.pump_fault_deadlines(None) {
                panic!("queue drained while migration of {vpe} was pending");
            }
        }
        // Mirror the membership change for machine-level routing
        // (syscall injection and credit returns use the topology's
        // copy). Kernel PEs never migrate, so in-flight credit returns
        // cannot be misrouted; VPE traffic still heading for the old
        // owner is forwarded by it.
        self.topo.membership.set_kernel_of(pe, dst);
        // Re-home the moved VPE's actor so new system calls go straight
        // to the new owner.
        let new_kernel_pe = self.topo.membership.kernel_pe(dst);
        match &mut self.nodes[pe.idx()] {
            Node::Server(s) => s.set_kernel_pe(new_kernel_pe),
            Node::Client(c) => c.set_kernel_pe(new_kernel_pe),
            _ => {}
        }
        Ok((self.sched.now() - start).0)
    }

    // ----- direct syscall injection (microbenchmarks) ----------------------

    /// Issues a system call from a stub VPE and runs the machine until
    /// the reply arrives. Returns the reply and the round-trip time in
    /// cycles (issue to reply delivery) — the measurement of Table 3.
    pub fn syscall_blocking(
        &mut self,
        vpe: VpeId,
        call: semper_base::msg::Syscall,
    ) -> (SysReply, u64) {
        let pe = self.topo.vpe_dir[vpe.idx()];
        let kernel_pe = self.topo.membership.kernel_pe(self.topo.kernel_of(pe));
        match &mut self.nodes[pe.idx()] {
            Node::Stub(s) => s.last_reply = None,
            _ => panic!("syscall_blocking requires a stub VPE on {pe}"),
        }
        let start = self.sched.now().max(self.sched.busy_until(pe.idx()));
        let msg = Msg::new(pe, kernel_pe, Payload::sys(0, call));
        let delivery = self.noc.route(&msg, start);
        self.sched.schedule(delivery, kernel_pe.idx(), msg);
        loop {
            if let Node::Stub(s) = &mut self.nodes[pe.idx()] {
                if let Some((reply, at)) = s.last_reply.take() {
                    return (reply, (at - start).0);
                }
            }
            // Under a fault plan a drained queue may still hold armed
            // pending-op deadlines whose aborts produce the reply.
            if !self.step() && !self.pump_fault_deadlines(None) {
                panic!("queue drained without a syscall reply for {vpe}");
            }
        }
    }

    // ----- metrics ----------------------------------------------------------

    /// Per-client `(start, finish)` times; finish is `None` for clients
    /// still running.
    pub fn client_times(&self) -> &BTreeMap<u32, (Cycles, Option<Cycles>)> {
        &self.client_times
    }

    /// Statistics of every kernel, by kernel id.
    pub fn kernel_stats(&self) -> Vec<KernelStats> {
        let mut v = Vec::new();
        for pe in 0..self.cfg.num_pes {
            if let Node::Kernel(k) = &self.nodes[pe as usize] {
                v.push(*k.stats());
            }
        }
        v
    }

    /// True while `vpe` (a server or client node) has a kernel syscall
    /// or filesystem request in flight — the moment a non-quiescent
    /// migration wants to start so that the operation's capability
    /// traffic races the handover window (the rebalancing bench keys
    /// on this; an arbitrary instant usually finds the VPE in modeled
    /// compute with nothing outstanding).
    pub fn vpe_op_inflight(&self, vpe: VpeId) -> bool {
        let pe = self.topo.vpe_dir[vpe.idx()];
        match &self.nodes[pe.idx()] {
            Node::Server(s) => s.op_inflight(),
            Node::Client(c) => c.op_inflight(),
            _ => false,
        }
    }

    /// True while `vpe` has an extent request outstanding at its m3fs
    /// service: the service's answer is a capability delegation into
    /// `vpe`'s group, so a handover window opened now is guaranteed to
    /// race inter-kernel traffic (see `Replayer::awaiting_extent` in
    /// `semper_apps`).
    pub fn vpe_awaiting_extent(&self, vpe: VpeId) -> bool {
        let pe = self.topo.vpe_dir[vpe.idx()];
        match &self.nodes[pe.idx()] {
            Node::Server(s) => s.awaiting_extent(),
            Node::Client(c) => c.awaiting_extent(),
            _ => false,
        }
    }

    /// One-line node state dump for stall diagnostics (tests/benches).
    pub fn vpe_debug(&self, vpe: VpeId) -> String {
        let pe = self.topo.vpe_dir[vpe.idx()];
        match &self.nodes[pe.idx()] {
            Node::Server(s) => s.debug_state(),
            Node::Service(s) => s.debug_state(),
            _ => "non-server".to_string(),
        }
    }

    /// Total requests completed by all load generators.
    pub fn loadgen_completed(&self) -> u64 {
        self.topo
            .loadgen_pes
            .iter()
            .map(|pe| match &self.nodes[pe.idx()] {
                Node::LoadGen(lg) => lg.completed(),
                _ => 0,
            })
            .sum()
    }

    /// Runs kernel invariant checks (tests). Crashed islands are
    /// excluded — their state froze mid-operation by design.
    pub fn check_invariants(&self) {
        for pe in 0..self.cfg.num_pes {
            if let Node::Kernel(k) = &self.nodes[pe as usize] {
                if self.dead_kernels.contains(&k.id()) {
                    continue;
                }
                k.check_invariants().unwrap_or_else(|e| panic!("kernel {}: {e}", k.id()));
            }
        }
    }

    /// Enables an optional protocol feature on every kernel — and, for
    /// the features with an actor-side half, on the affected actors
    /// (ablation benchmarks).
    pub fn enable_feature_everywhere(&mut self, f: semper_base::Feature) {
        if !self.cfg.features.contains(&f) {
            self.cfg.features.push(f);
        }
        for node in &mut self.nodes {
            match node {
                Node::Kernel(k) => k.enable_feature_for_test(f),
                Node::Service(s) if f == semper_base::Feature::SyscallBatching => {
                    s.set_batched_ops(true)
                }
                Node::Service(s) if f == semper_base::Feature::PromiseIpc => {
                    s.set_pipelined_ops(true)
                }
                _ => {}
            }
        }
    }

    /// Access to a kernel node by id (tests).
    pub fn kernel(&self, id: KernelId) -> &Kernel {
        let pe = self.topo.membership.kernel_pe(id);
        match &self.nodes[pe.idx()] {
            Node::Kernel(k) => k,
            _ => unreachable!("kernel PE hosts a kernel"),
        }
    }
}

fn handle_stub(
    stub: &mut StubVpe,
    msg: &Msg,
    out: &mut Outbox,
    t: Cycles,
    cost: &semper_base::CostModel,
) -> u64 {
    match &msg.payload {
        Payload::SysReply(r) => {
            stub.last_reply = Some((r.clone(), t));
            0
        }
        Payload::Upcall(Upcall::AcceptExchange { op, .. }) => {
            out.push(Msg::new(
                msg.dst,
                msg.src,
                Payload::upcall_reply(UpcallReply::AcceptExchange { op: *op, accept: true }),
            ));
            cost.upcall_work
        }
        Payload::Upcall(Upcall::SessionOpen { op, .. }) => {
            out.push(Msg::new(
                msg.dst,
                msg.src,
                Payload::upcall_reply(UpcallReply::SessionOpen { op: *op, result: Ok(1) }),
            ));
            cost.session_accept
        }
        other => {
            debug_assert!(false, "stub got unexpected payload {other:?}");
            0
        }
    }
}

/// Builds the benchmark filesystem image sized for `max_instances`
/// parallel instances (shared across instances via `Arc`).
fn build_image(max_instances: u32) -> (std::sync::Arc<FsImage>, u64) {
    let (dirs, files) = semper_apps::trace::required_image();
    let mut spec = FsSpec::empty();
    for d in dirs {
        spec = spec.dir(&d);
    }
    for (p, s) in files {
        spec = spec.file(&p, s);
    }
    // Headroom: runtime work files — generous 32 MiB per instance.
    let headroom = 64 * 1024 * 1024 + max_instances as u64 * 32 * 1024 * 1024;
    let region = spec.region_size(headroom);
    (std::sync::Arc::new(FsImage::build(&spec, region)), region)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::{Perms, SysReplyData, Syscall};

    fn micro(kernels: u16, vpes: u32) -> Machine {
        let mut cfg = MachineConfig::small();
        cfg.kernels = kernels;
        cfg.services = 0;
        cfg.num_pes = (kernels + kernels * 2).max(kernels + vpes as u16 + 2);
        cfg.mesh_width = semper_base::config::mesh_width_for(cfg.num_pes);
        Machine::build(cfg, vpes, 0, Workload::Micro)
    }

    #[test]
    fn micro_machine_noop_roundtrip() {
        let mut m = micro(1, 2);
        let (reply, cycles) = m.syscall_blocking(VpeId(0), Syscall::Noop);
        assert!(reply.result.is_ok());
        assert!(cycles > 0, "syscall must take time");
    }

    #[test]
    fn create_and_obtain_across_groups_timed() {
        let mut m = micro(2, 4);
        // Client 0 → group 0, client 1 → group 1 (round-robin).
        let (r, _) =
            m.syscall_blocking(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!("{r:?}") };
        let (r, spanning_cycles) = m.syscall_blocking(
            VpeId(1),
            Syscall::Exchange {
                other: VpeId(0),
                own_sel: semper_base::CapSel::INVALID,
                other_sel: sel,
                kind: semper_base::ExchangeKind::Obtain,
            },
        );
        assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{r:?}");
        // Local obtain for comparison: client 2 is in group 0 with 0.
        let (r, local_cycles) = m.syscall_blocking(
            VpeId(2),
            Syscall::Exchange {
                other: VpeId(0),
                own_sel: semper_base::CapSel::INVALID,
                other_sel: sel,
                kind: semper_base::ExchangeKind::Obtain,
            },
        );
        assert!(r.result.is_ok(), "{r:?}");
        assert!(
            spanning_cycles > local_cycles,
            "spanning {spanning_cycles} should exceed local {local_cycles}"
        );
        m.check_invariants();
    }

    /// The PR 7 livelock regression: a naive wait loop that recomputes
    /// `run_until(now() + window)` never advances once the queue is
    /// quiet, because `now()` only moves when an event is processed.
    /// `advance_until` must keep moving the returned base horizon by the
    /// full window even across an empty queue, and must clamp a horizon
    /// that an interleaved unbounded run left in the past.
    #[test]
    fn advance_until_moves_the_horizon_without_events() {
        let mut m = micro(1, 2);
        let (_, _) = m.syscall_blocking(VpeId(0), Syscall::Noop);
        let t0 = m.now();
        assert!(t0 > Cycles(0));
        // Horizon in the past: terminates, returns now().
        assert_eq!(m.advance_until(Cycles(0)), t0);
        // Empty queue: each wait still advances the base by the window,
        // so a bounded number of waits crosses any future event time.
        let mut horizon = m.now();
        for i in 1..=8u64 {
            horizon = m.advance_until(horizon + 500);
            assert_eq!(horizon, t0 + i * 500, "wait {i} must move the horizon");
        }
    }

    /// Fault smoke at machine level: a lossy, delaying inter-kernel NoC
    /// must not hang a cross-group obtain — the op completes or aborts
    /// within its deadline, every kernel ends quiescent, and the plan's
    /// counters record the injections.
    #[test]
    fn faulted_machine_terminates_and_stays_quiescent() {
        use semper_sim::FaultPlan;
        let mut m = micro(2, 4);
        m.set_fault_plan(
            FaultPlan::seeded(0xFA_17ED).with_drop(250).with_delay(250, 4_000),
            200_000,
        );
        let (r, _) =
            m.syscall_blocking(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!("{r:?}") };
        for i in 0..16u16 {
            // Alternate a spanning and a local obtain; each must produce
            // *a* reply (Ok, or Err(Timeout) when a dropped leg exhausts
            // its retries) — never a hang.
            let requester = VpeId(1 + (i % 3));
            let (r, _) = m.syscall_blocking(
                requester,
                Syscall::Exchange {
                    other: VpeId(0),
                    own_sel: semper_base::CapSel::INVALID,
                    other_sel: sel,
                    kind: semper_base::ExchangeKind::Obtain,
                },
            );
            assert!(
                matches!(r.result, Ok(SysReplyData::Sel(_)) | Err(_)),
                "obtain {i} must complete or abort, got {r:?}"
            );
        }
        m.run_until_idle();
        m.check_invariants();
        m.assert_quiescent();
        let st = m.fault_stats().expect("plan armed");
        assert!(st.injected > 0, "the plan never fired on 16 spanning obtains");
    }

    #[test]
    fn submit_async_without_feature_rejected() {
        let mut m = micro(1, 2);
        let (r, _) = m.syscall_blocking(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::CreateMem { size: 4096, perms: Perms::RW })),
        );
        assert_eq!(r.result.unwrap_err().code(), semper_base::Code::NotSupported);
    }

    #[test]
    fn promise_submit_wait_roundtrip() {
        let mut m = micro(1, 2);
        m.enable_feature_everywhere(semper_base::Feature::PromiseIpc);
        let (r, submit_cycles) = m.syscall_blocking(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::CreateMem { size: 4096, perms: Perms::RW })),
        );
        let Ok(SysReplyData::Promise { sel }) = r.result else { panic!("{r:?}") };
        // The submission replies immediately — before the inner call's
        // own round trip would have completed.
        assert!(submit_cycles > 0);
        let (r, _) = m.syscall_blocking(VpeId(0), Syscall::WaitPromise { sel, block: true });
        assert!(matches!(r.result, Ok(SysReplyData::Mem { .. })), "{r:?}");
        // Redeeming again returns the stored result (promises are
        // idempotent until the handle is severed).
        let (r, _) = m.syscall_blocking(VpeId(0), Syscall::WaitPromise { sel, block: false });
        assert!(matches!(r.result, Ok(SysReplyData::Mem { .. })), "{r:?}");
        m.run_until_idle();
        m.check_invariants();
        let st = &m.kernel_stats()[0];
        assert_eq!(st.promises_created, 1);
        assert_eq!(st.promises_resolved, 1);
    }

    #[test]
    fn dependent_call_parks_until_promise_resolves() {
        // A purely local inner call resolves synchronously at submit
        // time, so the dependent call needs a promise still in flight:
        // gate a CreateMem promise behind a slow cross-kernel delegate
        // (program order), then name it before it can resolve.
        let mut m = micro(2, 4);
        m.enable_feature_everywhere(semper_base::Feature::PromiseIpc);
        let (r, _) =
            m.syscall_blocking(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!("{r:?}") };
        let (r, _) = m.syscall_blocking(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::Exchange {
                other: VpeId(1),
                own_sel: sel,
                other_sel: semper_base::CapSel::INVALID,
                kind: semper_base::ExchangeKind::Delegate,
            })),
        );
        let Ok(SysReplyData::Promise { .. }) = r.result else { panic!("{r:?}") };
        let (r, _) = m.syscall_blocking(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::CreateMem { size: 8192, perms: Perms::RW })),
        );
        let Ok(SysReplyData::Promise { sel: p2 }) = r.result else { panic!("{r:?}") };
        // Dependent call naming the unresolved promise: the kernel parks
        // it, replays it with the resolved selector substituted, and the
        // reply carries the derived capability.
        let (r, _) = m.syscall_blocking(
            VpeId(0),
            Syscall::DeriveMem { src: p2, offset: 0, size: 4096, perms: Perms::R },
        );
        assert!(matches!(r.result, Ok(SysReplyData::Sel(_))), "{r:?}");
        m.run_until_idle();
        m.check_invariants();
        let st = &m.kernel_stats()[0];
        assert_eq!(st.promises_created, 2);
        assert_eq!(st.promises_resolved, 2);
        // Two pipelined calls: the gated second submission (program
        // order behind the in-flight delegate) and the parked derive.
        assert_eq!(st.calls_pipelined, 2, "the derive never parked");
    }

    #[test]
    fn promise_chain_runs_in_program_order() {
        let mut m = micro(1, 2);
        m.enable_feature_everywhere(semper_base::Feature::PromiseIpc);
        // Three async submissions back to back; only then wait on the
        // last. Program-order gating must execute them sequentially, so
        // all three are resolved when the tail redeems.
        let mut sels = Vec::new();
        for _ in 0..3 {
            let (r, _) = m.syscall_blocking(
                VpeId(0),
                Syscall::SubmitAsync(Box::new(Syscall::CreateMem { size: 4096, perms: Perms::RW })),
            );
            let Ok(SysReplyData::Promise { sel }) = r.result else { panic!("{r:?}") };
            sels.push(sel);
        }
        let (r, _) =
            m.syscall_blocking(VpeId(0), Syscall::WaitPromise { sel: sels[2], block: true });
        assert!(matches!(r.result, Ok(SysReplyData::Mem { .. })), "{r:?}");
        for s in &sels[..2] {
            let (r, _) =
                m.syscall_blocking(VpeId(0), Syscall::WaitPromise { sel: *s, block: false });
            assert!(matches!(r.result, Ok(SysReplyData::Mem { .. })), "tail resolved first: {r:?}");
        }
        m.run_until_idle();
        m.check_invariants();
        assert_eq!(m.kernel_stats()[0].promises_resolved, 3);
    }

    #[test]
    fn promise_handle_revoke_severs_binding() {
        let mut m = micro(1, 2);
        m.enable_feature_everywhere(semper_base::Feature::PromiseIpc);
        let (r, _) = m.syscall_blocking(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::CreateMem { size: 4096, perms: Perms::RW })),
        );
        let Ok(SysReplyData::Promise { sel }) = r.result else { panic!("{r:?}") };
        let (r, _) = m.syscall_blocking(VpeId(0), Syscall::Revoke { sel, own: true });
        assert!(r.result.is_ok(), "{r:?}");
        // The handle is gone; the inner call still ran to completion in
        // the background without leaking kernel state.
        let (r, _) = m.syscall_blocking(VpeId(0), Syscall::WaitPromise { sel, block: true });
        assert_eq!(r.result.unwrap_err().code(), semper_base::Code::NoSuchCap);
        m.run_until_idle();
        m.check_invariants();
        m.assert_quiescent();
    }

    #[test]
    fn promise_cross_kernel_delegate_resolves() {
        let mut m = micro(2, 4);
        m.enable_feature_everywhere(semper_base::Feature::PromiseIpc);
        // VPE 0 (group 0) creates memory and async-delegates it to
        // VPE 1 (group 1) — the eager provide prefetches the receiver's
        // consent across kernels while the operand gate is still shut.
        let (r, _) =
            m.syscall_blocking(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
        let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!("{r:?}") };
        let (r, _) = m.syscall_blocking(
            VpeId(0),
            Syscall::SubmitAsync(Box::new(Syscall::Exchange {
                other: VpeId(1),
                own_sel: sel,
                other_sel: semper_base::CapSel::INVALID,
                kind: semper_base::ExchangeKind::Delegate,
            })),
        );
        let Ok(SysReplyData::Promise { sel: psel }) = r.result else { panic!("{r:?}") };
        let (r, _) = m.syscall_blocking(VpeId(0), Syscall::WaitPromise { sel: psel, block: true });
        assert!(matches!(r.result, Ok(SysReplyData::Delegated { .. })), "{r:?}");
        m.run_until_idle();
        m.check_invariants();
        m.assert_quiescent();
    }
}
