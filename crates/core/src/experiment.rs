//! Experiment drivers for the paper's evaluation (§5).
//!
//! Three families:
//!
//! * [`MicroMachine`] — capability-operation latency microbenchmarks
//!   (Table 3, Figures 4 and 5) on stub VPEs.
//! * [`run_app_instances`] / [`parallel_efficiency`] — the application
//!   benchmarks (Table 4, Figures 6-9): N trace-replay instances against
//!   kernels and m3fs instances, measuring per-instance runtimes.
//! * [`run_nginx`] — the webserver throughput experiment (Figure 10).

use semper_apps::AppKind;
use semper_base::msg::{Perms, SysReplyData, Syscall};
use semper_base::{CapSel, ExchangeKind, KernelMode, MachineConfig, VpeId};
use semper_kernel::KernelStats;
use semper_sim::{Cycles, Summary};

use crate::machine::{Machine, Workload};

/// A machine populated with stub VPEs for latency microbenchmarks.
///
/// Stub VPEs are assigned round-robin to groups: stub `i` lives in group
/// `i mod kernels`, so `(0, kernels)` is a same-group pair and `(0, 1)`
/// spans two groups (when `kernels > 1`).
pub struct MicroMachine {
    machine: Machine,
    kernels: u16,
    vpes_per_group: u16,
    mode: KernelMode,
}

impl MicroMachine {
    /// Builds a machine with `kernels` kernels and `vpes_per_group` stub
    /// VPEs per group.
    pub fn new(kernels: u16, vpes_per_group: u16, mode: KernelMode) -> MicroMachine {
        MicroMachine::new_with_threads(kernels, vpes_per_group, mode, 1)
    }

    /// [`MicroMachine::new`] with machine construction spread over
    /// `threads` workers ([`Machine::build_with_threads`]); the built
    /// machine is identical regardless of `threads`.
    pub fn new_with_threads(
        kernels: u16,
        vpes_per_group: u16,
        mode: KernelMode,
        threads: usize,
    ) -> MicroMachine {
        let vpes = kernels as u32 * vpes_per_group as u32;
        let mut cfg = MachineConfig::small();
        cfg.mode = mode;
        cfg.kernels = kernels;
        cfg.services = 0;
        cfg.num_pes = kernels * (1 + vpes_per_group);
        cfg.mesh_width = semper_base::config::mesh_width_for(cfg.num_pes);
        let machine = Machine::build_with_threads(cfg, vpes, 0, Workload::Micro, threads);
        MicroMachine { machine, kernels, vpes_per_group, mode }
    }

    /// The underlying machine.
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The construction shape `(kernels, vpes_per_group, mode)` — the
    /// pooling key of [`crate::pool::MachinePool`].
    pub fn shape(&self) -> (u16, u16, KernelMode) {
        (self.kernels, self.vpes_per_group, self.mode)
    }

    /// The stub VPE `j` of group `g`.
    pub fn vpe(&self, g: u16, j: u16) -> VpeId {
        VpeId(g + j * self.kernels)
    }

    /// Creates a memory capability at `vpe`; returns its selector.
    pub fn create_mem(&mut self, vpe: VpeId) -> CapSel {
        let (r, _) =
            self.machine.syscall_blocking(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW });
        match r.result {
            Ok(SysReplyData::Mem { sel, .. }) => sel,
            other => panic!("create_mem failed: {other:?}"),
        }
    }

    /// `to` obtains `from`'s capability at `sel`; returns (selector,
    /// cycles).
    pub fn obtain(&mut self, to: VpeId, from: VpeId, sel: CapSel) -> (CapSel, u64) {
        let (r, cycles) = self.machine.syscall_blocking(
            to,
            Syscall::Exchange {
                other: from,
                own_sel: CapSel::INVALID,
                other_sel: sel,
                kind: ExchangeKind::Obtain,
            },
        );
        match r.result {
            Ok(SysReplyData::Sel(s)) => (s, cycles),
            other => panic!("obtain failed: {other:?}"),
        }
    }

    /// `from` delegates its capability at `sel` to `to`; returns
    /// (receiver selector, cycles).
    pub fn delegate(&mut self, from: VpeId, to: VpeId, sel: CapSel) -> (CapSel, u64) {
        let (r, cycles) = self.machine.syscall_blocking(
            from,
            Syscall::Exchange {
                other: to,
                own_sel: sel,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        match r.result {
            Ok(SysReplyData::Delegated { recv_sel }) => (recv_sel, cycles),
            other => panic!("delegate failed: {other:?}"),
        }
    }

    /// Revokes `vpe`'s capability at `sel`; returns cycles.
    pub fn revoke(&mut self, vpe: VpeId, sel: CapSel) -> u64 {
        let (r, cycles) = self.machine.syscall_blocking(vpe, Syscall::Revoke { sel, own: true });
        assert!(r.result.is_ok(), "revoke failed: {:?}", r.result);
        cycles
    }

    /// Table 3 row: one group-local exchange (obtain between two VPEs of
    /// group 0).
    pub fn measure_exchange_local(&mut self) -> u64 {
        let a = self.vpe(0, 0);
        let b = self.vpe(0, 1);
        let sel = self.create_mem(a);
        let (_, cycles) = self.obtain(b, a, sel);
        cycles
    }

    /// Table 3 row: one group-spanning exchange (requires ≥ 2 kernels).
    pub fn measure_exchange_spanning(&mut self) -> u64 {
        assert!(self.kernels >= 2);
        let a = self.vpe(0, 0);
        let b = self.vpe(1, 0);
        let sel = self.create_mem(a);
        let (_, cycles) = self.obtain(b, a, sel);
        cycles
    }

    /// Table 3 row: revoke after a group-local exchange.
    pub fn measure_revoke_local(&mut self) -> u64 {
        let a = self.vpe(0, 0);
        let b = self.vpe(0, 1);
        let sel = self.create_mem(a);
        let _ = self.obtain(b, a, sel);
        self.revoke(a, sel)
    }

    /// Table 3 row: revoke after a group-spanning exchange.
    pub fn measure_revoke_spanning(&mut self) -> u64 {
        assert!(self.kernels >= 2);
        let a = self.vpe(0, 0);
        let b = self.vpe(1, 0);
        let sel = self.create_mem(a);
        let _ = self.obtain(b, a, sel);
        self.revoke(a, sel)
    }

    /// Figure 4: build a delegation chain of `len` capabilities by
    /// ping-ponging between two VPEs, then revoke the root. Returns the
    /// revocation time in cycles.
    ///
    /// `spanning = false` keeps both VPEs in group 0 (the local chain);
    /// `spanning = true` alternates between groups 0 and 1 (the
    /// adversarial cross-kernel chain of §5.2).
    pub fn measure_chain_revoke(&mut self, len: u32, spanning: bool) -> u64 {
        let a = self.vpe(0, 0);
        let b = if spanning { self.vpe(1, 0) } else { self.vpe(0, 1) };
        let root = self.create_mem(a);
        let mut holder = a;
        let mut sel = root;
        for _ in 0..len {
            let next = if holder == a { b } else { a };
            let (nsel, _) = self.delegate(holder, next, sel);
            holder = next;
            sel = nsel;
        }
        self.revoke(a, root)
    }

    /// Figure 5: delegate `children` copies of one capability to VPEs
    /// spread over `child_kernels` other kernels (0 = all children stay
    /// in the root's group), then revoke the root. Returns the
    /// revocation time in cycles.
    pub fn measure_tree_revoke(&mut self, children: u32, child_kernels: u16) -> u64 {
        let a = self.vpe(0, 0);
        let root = self.create_mem(a);
        for c in 0..children {
            let to = if child_kernels == 0 {
                self.vpe(0, 1)
            } else {
                // Spread across groups 1..=child_kernels.
                self.vpe(1 + (c % child_kernels as u32) as u16, 0)
            };
            let _ = self.delegate(a, to, root);
        }
        self.revoke(a, root)
    }
}

/// Result of one application-benchmark run.
#[derive(Debug, Clone)]
pub struct AppRunResult {
    /// Per-instance runtimes in cycles (session open through last op).
    pub durations: Vec<u64>,
    /// End of the simulation (cycles).
    pub makespan: u64,
    /// Capability operations per instance trace, summed over kernels:
    /// exchanges + revokes + sessions.
    pub cap_ops: u64,
    /// Events processed by the machine over the whole run.
    pub events: u64,
    /// Per-kernel statistics.
    pub kernel_stats: Vec<KernelStats>,
}

impl AppRunResult {
    /// Mean instance runtime in cycles.
    pub fn mean_duration(&self) -> f64 {
        let mut s = Summary::new();
        for d in &self.durations {
            s.add(*d);
        }
        s.mean()
    }

    /// Capability operations per second of simulated time, over the
    /// whole run (Table 4's "cap ops/s").
    pub fn cap_ops_per_sec(&self) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.cap_ops as f64 / Cycles(self.makespan).as_secs()
    }
}

/// Runs `instances` copies of `app` on `cfg`; returns the measurements.
pub fn run_app_instances(cfg: &MachineConfig, app: AppKind, instances: u32) -> AppRunResult {
    run_app_instances_threads(cfg, app, instances, 1)
}

/// [`run_app_instances`] with machine construction spread over `threads`
/// workers. The simulation itself stays single-threaded (one
/// deterministic event loop); only the build phase parallelizes, so the
/// measurements are identical regardless of `threads`.
pub fn run_app_instances_threads(
    cfg: &MachineConfig,
    app: AppKind,
    instances: u32,
    threads: usize,
) -> AppRunResult {
    let traces = (0..instances).map(|i| app.trace(i)).collect::<Vec<_>>();
    let mut m =
        Machine::build_with_threads(cfg.clone(), instances, 0, Workload::Apps(traces), threads);
    m.boot_os();
    let base = m.start_clients();
    m.run_until_idle();
    m.check_invariants();

    let mut durations = Vec::new();
    for (c, (start, end)) in m.client_times() {
        let end = end.unwrap_or_else(|| panic!("client {c} never finished"));
        durations.push((end - *start).0);
    }
    let kernel_stats = m.kernel_stats();
    let cap_ops: u64 = kernel_stats.iter().map(|s| s.cap_ops() + s.sessions_opened).sum();
    AppRunResult {
        durations,
        makespan: (m.now() - base).0,
        cap_ops,
        events: m.events(),
        kernel_stats,
    }
}

/// Parallel efficiency (§5.3.1): mean single-instance runtime divided by
/// mean runtime at `n` instances, in percent.
pub fn parallel_efficiency(single_mean: f64, parallel_mean: f64) -> f64 {
    if parallel_mean == 0.0 {
        return 0.0;
    }
    100.0 * single_mean / parallel_mean
}

/// System efficiency (Figure 9): parallel efficiency scaled by the
/// fraction of PEs doing application work (OS PEs count as efficiency
/// zero).
pub fn system_efficiency(parallel_eff: f64, instances: u32, os_pes: usize) -> f64 {
    let total = instances as f64 + os_pes as f64;
    parallel_eff * instances as f64 / total
}

/// Result of one Nginx throughput run.
#[derive(Debug, Clone, Copy)]
pub struct NginxResult {
    /// Requests completed in the measurement window.
    pub completed: u64,
    /// Window length in cycles.
    pub window: u64,
    /// Requests per second of simulated time.
    pub requests_per_sec: f64,
}

/// Runs the webserver experiment: `servers` webserver processes,
/// `loadgens` network-interface PEs with `depth` outstanding requests
/// per (generator, server) pair. Measures throughput over
/// `measure_cycles` after `warmup_cycles`.
pub fn run_nginx(
    cfg: &MachineConfig,
    servers: u16,
    loadgens: u16,
    depth: u32,
    warmup_cycles: u64,
    measure_cycles: u64,
) -> NginxResult {
    let mut m = Machine::build(cfg.clone(), servers as u32, loadgens, Workload::Nginx { depth });
    m.boot_os();
    m.start_nginx();
    let t0 = m.now();
    m.run_until(t0 + warmup_cycles);
    let before = m.loadgen_completed();
    m.run_until(t0 + warmup_cycles + measure_cycles);
    let after = m.loadgen_completed();
    let completed = after - before;
    NginxResult {
        completed,
        window: measure_cycles,
        requests_per_sec: completed as f64 / Cycles(measure_cycles).as_secs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_local_vs_spanning() {
        let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
        let local = m.measure_exchange_local();
        let spanning = m.measure_exchange_spanning();
        assert!(spanning > local, "spanning {spanning} !> local {local}");
        let rl = m.measure_revoke_local();
        let rs = m.measure_revoke_spanning();
        assert!(rs > rl, "spanning revoke {rs} !> local {rl}");
    }

    #[test]
    fn semperos_local_slower_than_m3() {
        let mut semper = MicroMachine::new(1, 2, KernelMode::SemperOS);
        let mut m3 = MicroMachine::new(1, 2, KernelMode::M3);
        let s = semper.measure_exchange_local();
        let m = m3.measure_exchange_local();
        assert!(s > m, "SemperOS local exchange {s} !> M3 {m} (DDL overhead)");
    }

    #[test]
    fn chain_revoke_grows_with_length() {
        let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
        let short = m.measure_chain_revoke(5, false);
        let mut m2 = MicroMachine::new(2, 2, KernelMode::SemperOS);
        let long = m2.measure_chain_revoke(40, false);
        assert!(long > short, "long chain {long} !> short {short}");
    }

    #[test]
    fn spanning_chain_costs_more() {
        let mut a = MicroMachine::new(2, 2, KernelMode::SemperOS);
        let local = a.measure_chain_revoke(20, false);
        let mut b = MicroMachine::new(2, 2, KernelMode::SemperOS);
        let spanning = b.measure_chain_revoke(20, true);
        assert!(spanning > local, "spanning {spanning} !> local {local}");
    }

    #[test]
    fn small_app_run_completes() {
        let mut cfg = MachineConfig::small();
        cfg.num_pes = 16;
        cfg.kernels = 2;
        cfg.services = 2;
        let res = run_app_instances(&cfg, AppKind::Find, 4);
        assert_eq!(res.durations.len(), 4);
        assert!(res.cap_ops >= 4 * AppKind::Find.paper_cap_ops());
        assert!(res.mean_duration() > 0.0);
    }

    #[test]
    fn efficiency_math() {
        assert_eq!(parallel_efficiency(100.0, 125.0), 80.0);
        let se = system_efficiency(80.0, 512, 64);
        assert!((se - 80.0 * 512.0 / 576.0).abs() < 1e-9);
    }
}
