//! A pool of reusable [`MicroMachine`]s for the figure benches.
//!
//! The paper's figure experiments (Figures 4, 5 and the ablations)
//! perform many short measurements, each of which used to pay full
//! machine construction: topology, membership tables, 13 kernels with
//! their capability tables, and (before it was made lazy) the
//! filesystem image. [`MachinePool`] keeps quiesced machines around,
//! keyed by their shape, so consecutive measurements on the same shape
//! reuse one machine.
//!
//! # Reuse and determinism
//!
//! A measurement on a reused machine yields the *same simulated cycle
//! counts* as on a fresh one: selector free lists hand back the freed
//! selectors, credit budgets are restored once the protocol quiesces,
//! and neither NoC FIFO floors (strictly in the past) nor allocator
//! high-water marks enter any cost computation. The determinism suite
//! pins this with a fresh-vs-reused comparison
//! (`pooled_reuse_is_cycle_identical` in `tests/determinism.rs`).
//! Machines whose configuration was mutated mid-run (a feature toggle)
//! must not be reused; [`MachinePool::put`] enforces this by dropping
//! them instead of pooling.

use std::sync::Mutex;

use semper_base::KernelMode;

use crate::experiment::MicroMachine;

/// The shape of a pooled machine.
type Shape = (u16, u16, KernelMode);

/// A pool of quiesced [`MicroMachine`]s, keyed by shape.
#[derive(Default)]
pub struct MachinePool {
    /// Linear keyed store: benches use a handful of shapes at most.
    free: Vec<(Shape, Vec<MicroMachine>)>,
}

impl MachinePool {
    /// Creates an empty pool.
    pub fn new() -> MachinePool {
        MachinePool::default()
    }

    /// Takes a machine of the given shape, building one only if the
    /// pool has none available.
    pub fn take(&mut self, kernels: u16, vpes_per_group: u16, mode: KernelMode) -> MicroMachine {
        self.try_take(kernels, vpes_per_group, mode)
            .unwrap_or_else(|| MicroMachine::new(kernels, vpes_per_group, mode))
    }

    /// Takes a pooled machine of the given shape if one is parked,
    /// without building. This is the locking-friendly half of `take`:
    /// [`SharedMachinePool`] holds its shard lock only across this call
    /// and builds outside the lock, so concurrent takers of one shape
    /// never serialize machine construction behind each other.
    pub fn try_take(
        &mut self,
        kernels: u16,
        vpes_per_group: u16,
        mode: KernelMode,
    ) -> Option<MicroMachine> {
        let shape = (kernels, vpes_per_group, mode);
        self.free.iter_mut().find(|(s, _)| *s == shape).and_then(|(_, v)| v.pop())
    }

    /// Returns a quiesced machine to the pool for reuse.
    ///
    /// Only hand back machines in their steady state (all syscalls
    /// completed). Machines whose feature set was toggled since
    /// construction are silently dropped instead of pooled: the shape
    /// key does not include features, so pooling one would leak the
    /// toggle into every later measurement of this shape.
    pub fn put(&mut self, mut m: MicroMachine) {
        if m.machine().cfg().features != semper_base::MachineConfig::small().features {
            return;
        }
        let shape = m.shape();
        match self.free.iter_mut().find(|(s, _)| *s == shape) {
            Some((_, v)) => v.push(m),
            None => self.free.push((shape, vec![m])),
        }
    }

    /// Runs one measurement on a pooled machine of the given shape and
    /// returns the machine to the pool afterwards.
    pub fn with<R>(
        &mut self,
        kernels: u16,
        vpes_per_group: u16,
        mode: KernelMode,
        f: impl FnOnce(&mut MicroMachine) -> R,
    ) -> R {
        let mut m = self.take(kernels, vpes_per_group, mode);
        let r = f(&mut m);
        self.put(m);
        r
    }

    /// Number of machines currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.iter().map(|(_, v)| v.len()).sum()
    }
}

/// A sharded, thread-safe [`MachinePool`] for the parallel harness
/// (`crate::runner`): worker threads take and return machines
/// concurrently, with one mutex per shard so same-shape traffic
/// contends only on its own shard.
///
/// # Determinism
///
/// Which worker gets which *instance* of a shape is
/// scheduling-dependent; the measured cycles are not. A measurement on
/// any quiesced machine of a shape yields the same simulated cycles as
/// on a fresh one — the reuse contract of [`MachinePool`], pinned by
/// `pooled_reuse_is_cycle_identical` in `tests/determinism.rs` and
/// re-checked across workers by
/// `parallel_runner_matches_serial`. Shards therefore never leak into
/// results: they only decide how often a machine is rebuilt.
pub struct SharedMachinePool {
    shards: Vec<Mutex<MachinePool>>,
}

impl SharedMachinePool {
    /// A pool with `shards` shards (clamped to at least 1). Size it to
    /// the runner's worker count: with one shard per worker, same-shape
    /// takers rarely contend.
    pub fn new(shards: usize) -> SharedMachinePool {
        SharedMachinePool {
            shards: (0..shards.max(1)).map(|_| Mutex::new(MachinePool::new())).collect(),
        }
    }

    /// The shard responsible for a shape. Keyed by shape — not by
    /// worker — so a machine parked by one worker is found by every
    /// other worker asking for that shape.
    fn shard(&self, shape: Shape) -> &Mutex<MachinePool> {
        let (kernels, vpes, mode) = shape;
        let h = kernels as usize * 31 + vpes as usize * 7 + mode as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Takes a machine of the given shape, building one (outside the
    /// shard lock) only if the shard has none parked.
    pub fn take(&self, kernels: u16, vpes_per_group: u16, mode: KernelMode) -> MicroMachine {
        let pooled = self.shard((kernels, vpes_per_group, mode)).lock().unwrap().try_take(
            kernels,
            vpes_per_group,
            mode,
        );
        pooled.unwrap_or_else(|| MicroMachine::new(kernels, vpes_per_group, mode))
    }

    /// Returns a quiesced machine to its shape's shard (same rules as
    /// [`MachinePool::put`]: feature-mutated machines are dropped).
    pub fn put(&self, m: MicroMachine) {
        self.shard(m.shape()).lock().unwrap().put(m);
    }

    /// Runs one measurement on a pooled machine of the given shape and
    /// returns the machine to the pool afterwards.
    pub fn with<R>(
        &self,
        kernels: u16,
        vpes_per_group: u16,
        mode: KernelMode,
        f: impl FnOnce(&mut MicroMachine) -> R,
    ) -> R {
        let mut m = self.take(kernels, vpes_per_group, mode);
        let r = f(&mut m);
        self.put(m);
        r
    }

    /// Number of machines currently parked across all shards.
    pub fn idle(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().idle()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_builds_then_reuses() {
        let mut pool = MachinePool::new();
        let m = pool.take(1, 2, KernelMode::M3);
        assert_eq!(pool.idle(), 0);
        pool.put(m);
        assert_eq!(pool.idle(), 1);
        let _m = pool.take(1, 2, KernelMode::M3);
        assert_eq!(pool.idle(), 0, "same shape must reuse the parked machine");
    }

    #[test]
    fn shapes_do_not_mix() {
        let mut pool = MachinePool::new();
        let m = pool.take(1, 2, KernelMode::M3);
        pool.put(m);
        let _other = pool.take(2, 2, KernelMode::SemperOS);
        assert_eq!(pool.idle(), 1, "different shape must not steal the parked machine");
    }

    #[test]
    fn feature_mutated_machines_are_not_pooled() {
        let mut pool = MachinePool::new();
        let mut m = pool.take(1, 2, KernelMode::M3);
        m.machine().enable_feature_everywhere(semper_base::Feature::RevokeBatching);
        pool.put(m);
        assert_eq!(pool.idle(), 0, "a feature-mutated machine must be dropped, not pooled");
    }

    #[test]
    fn with_returns_the_machine() {
        let mut pool = MachinePool::new();
        let cycles = pool.with(1, 2, KernelMode::M3, |m| m.measure_exchange_local());
        assert!(cycles > 0);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn shared_pool_parks_and_reuses_across_threads() {
        let pool = SharedMachinePool::new(4);
        pool.put(MicroMachine::new(1, 2, KernelMode::M3));
        pool.put(MicroMachine::new(1, 2, KernelMode::M3));
        assert_eq!(pool.idle(), 2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let cycles = pool.with(1, 2, KernelMode::M3, |m| m.measure_exchange_local());
                    assert!(cycles > 0);
                });
            }
        });
        // Both workers drew parked machines and returned them.
        assert_eq!(pool.idle(), 2, "pooled machines must come back after parallel use");
    }

    #[test]
    fn shared_pool_builds_when_empty() {
        let pool = SharedMachinePool::new(2);
        let m = pool.take(1, 2, KernelMode::M3);
        assert_eq!(pool.idle(), 0);
        pool.put(m);
        assert_eq!(pool.idle(), 1);
    }
}
