//! Parallel experiment execution with a deterministic result merge.
//!
//! The simulator is single-threaded by design — one [`Machine`] is one
//! deterministic event loop — but the *harness* around it runs many
//! independent machines: the `scale_capops` scenarios, the figure
//! benches' measurement sweeps, and the property suites' 48-case loops
//! each build their own machine and never share state. [`Runner`]
//! executes such independent jobs on `std::thread::scope` worker
//! threads and merges the results back into **submission order**, so
//! every report row, table line, and JSON byte that derives from the
//! results is identical to a serial run — only wall-clock drops.
//!
//! # Determinism contract
//!
//! Parallelism here is strictly *between* machines, never inside one:
//!
//! * each job owns its machine(s); nothing is shared but the job inputs
//!   (which are `Send` by construction) and read-only configuration;
//! * workers claim jobs from an atomic cursor, so which worker runs
//!   which job is scheduling-dependent — but a job's *result* depends
//!   only on the job (the simulator has no global state, locked in by
//!   the [`Send`-audit](#send-audit) below), so per-job results are
//!   bit-identical to the serial run;
//! * completion order is scheduling-dependent, so the merge sorts by
//!   submission index explicitly instead of trusting arrival order.
//!
//! `tests/determinism.rs::parallel_runner_matches_serial` pins the
//! contract: the same job list at 1, 2 and 4 workers must produce
//! byte-identical rows and equal kernel state digests.
//!
//! # Send audit
//!
//! The whole simulator tree is free of `Rc`, `RefCell`, thread-local
//! and global mutable state; machines migrate freely between worker
//! threads. The compile-time assertions at the bottom of this module
//! turn that audit into a build failure: a future `Rc`/`RefCell`
//! regression anywhere under [`Machine`] breaks the build here, not at
//! parallelization time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::experiment::MicroMachine;
use crate::machine::Machine;
use crate::pool::{MachinePool, SharedMachinePool};

/// A boxed heterogeneous job for [`Runner::run`]: the scenario closures
/// of a bench driver, each returning one result row.
pub type Job<'a, R> = Box<dyn FnOnce() -> R + Send + 'a>;

/// Worker-thread count of the harness, from the `BENCH_THREADS`
/// environment knob. Absent, empty, unparsable, or `0` all mean `1`
/// (the serial harness — exactly the pre-runner behaviour).
pub fn env_threads() -> usize {
    std::env::var("BENCH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Executes independent jobs on scoped worker threads and merges the
/// results into submission order.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with `threads` workers; `0` is clamped to `1`, and `1`
    /// runs every job inline on the calling thread (no threads are
    /// spawned — the serial path is literally the serial loop).
    pub fn new(threads: usize) -> Runner {
        Runner { threads: threads.max(1) }
    }

    /// A runner sized by the `BENCH_THREADS` environment knob
    /// ([`env_threads`]).
    pub fn from_env() -> Runner {
        Runner::new(env_threads())
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every item on the worker threads; returns the
    /// results in item (submission) order. `f` receives the item's
    /// submission index alongside the item.
    ///
    /// Jobs are claimed from an atomic cursor in submission order, so
    /// at one worker this is exactly `items.map(f)`; at N workers the
    /// claim order is still submission order while completion order is
    /// not — the merge sorts explicitly.
    ///
    /// # Panics
    ///
    /// A panicking job propagates its panic to the caller (after all
    /// workers have stopped), as the serial loop would.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.threads == 1 || n <= 1 {
            return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        // Each slot is claimed exactly once via the cursor; the Mutex
        // is uncontended (take-once) and only exists to move the item
        // out from behind the shared reference.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..self.threads.min(n))
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let item =
                                slots[i].lock().unwrap().take().expect("each job claimed once");
                            local.push((i, f(i, item)));
                        }
                        done.lock().unwrap().append(&mut local);
                    })
                })
                .collect();
            // Join explicitly so a panicking job resurfaces with its own
            // payload (scope's implicit join would replace it with the
            // generic "a scoped thread panicked").
            for worker in workers {
                if let Err(payload) = worker.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        let mut merged = done.into_inner().unwrap();
        // Deterministic merge: completion order is scheduling-dependent,
        // submission order is not. Sort explicitly rather than assuming
        // workers finished in claim order.
        merged.sort_by_key(|(i, _)| *i);
        assert_eq!(merged.len(), n, "every job must deliver exactly one result");
        debug_assert!(merged.iter().enumerate().all(|(pos, (i, _))| pos == *i));
        merged.into_iter().map(|(_, r)| r).collect()
    }

    /// Runs heterogeneous boxed jobs ([`Job`]); returns the results in
    /// submission order. The scenario form of [`Runner::map`].
    pub fn run<'a, R: Send>(&self, jobs: Vec<Job<'a, R>>) -> Vec<R> {
        self.map(jobs, |_, job| job())
    }

    /// Takes machines of one shape from a [`SharedMachinePool`], runs
    /// `f` over every item with a pooled machine, and returns the
    /// machines afterwards — the pooled counterpart of [`Runner::map`].
    /// Reuse is cycle-identical per shape (the `MachinePool` contract),
    /// so results do not depend on which worker got which machine.
    #[allow(clippy::too_many_arguments)]
    pub fn map_pooled<T, R, F>(
        &self,
        pool: &SharedMachinePool,
        kernels: u16,
        vpes_per_group: u16,
        mode: semper_base::KernelMode,
        items: Vec<T>,
        f: F,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T, &mut MicroMachine) -> R + Sync,
    {
        self.map(items, |i, item| pool.with(kernels, vpes_per_group, mode, |m| f(i, item, m)))
    }
}

impl Default for Runner {
    fn default() -> Runner {
        Runner::from_env()
    }
}

// ----- the Send audit, as a build failure ----------------------------------
//
// The parallel harness is sound because a machine — and everything it
// transitively owns: kernels, services, clients, the NoC, the event
// schedule — is `Send`, i.e. free of `Rc`, `RefCell`, and aliased
// mutability. These compile-time assertions lock that in: introducing
// an `Rc` anywhere under these types fails `cargo build` right here
// with the offending type in the error, instead of surfacing later as
// a trait-bound error inside the runner (or not at all while the
// parallel paths are feature-gated off).
const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}
const _: () = {
    assert_send::<Machine>();
    assert_send::<MicroMachine>();
    assert_send::<MachinePool>();
    assert_send::<SharedMachinePool>();
    // Shared read-only inputs of parallel machine construction.
    assert_sync::<SharedMachinePool>();
    assert_sync::<crate::topology::Topology>();
    assert_sync::<semper_base::MachineConfig>();
    assert_sync::<semper_m3fs::FsImage>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_submission_ordered() {
        // Jobs deliberately finish out of submission order (later jobs
        // are cheaper); the merge must restore submission order at
        // every worker count.
        let serial: Vec<u64> = Runner::new(1).map((0..16u64).collect(), |i, v| {
            assert_eq!(i as u64, v);
            v * v
        });
        for threads in [2, 3, 4, 8] {
            let parallel: Vec<u64> = Runner::new(threads).map((0..16u64).collect(), |_, v| {
                std::thread::sleep(std::time::Duration::from_micros(200 * (16 - v)));
                v * v
            });
            assert_eq!(serial, parallel, "{threads} workers broke the merge order");
        }
    }

    #[test]
    fn boxed_jobs_run_in_order() {
        let jobs: Vec<Job<usize>> =
            (0..8usize).map(|i| Box::new(move || i * 10) as Job<usize>).collect();
        assert_eq!(Runner::new(4).run(jobs), vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        assert_eq!(Runner::new(0).threads(), 1);
        assert_eq!(Runner::new(0).map(vec![7, 8], |_, v| v + 1), vec![8, 9]);
    }

    #[test]
    fn empty_and_singleton_job_lists() {
        let empty: Vec<u32> = Runner::new(4).map(Vec::<u32>::new(), |_, v| v);
        assert!(empty.is_empty());
        assert_eq!(Runner::new(4).map(vec![3], |_, v| v * 2), vec![6]);
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn job_panics_propagate() {
        let _ = Runner::new(2).map((0..6).collect::<Vec<u32>>(), |i, _| {
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
    }
}
